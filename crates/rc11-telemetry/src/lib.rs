//! # rc11-telemetry — the exploration telemetry spine
//!
//! A zero-cost-when-disabled instrumentation layer for the rc11 engines,
//! request path, CLI, and daemon (DESIGN.md §9). The design contract:
//!
//! * **One branch when off.** The sink travels as
//!   `Option<Arc<Telemetry>>` on `ExploreOptions`; every instrumentation
//!   site is `if let Some(t) = … { t.add(…) }`. No sink, no atomics.
//! * **Relaxed, sharded counters when on.** Counters are monotone event
//!   tallies — nothing orders on them — so every increment is a single
//!   `Relaxed` RMW into one of [`SHARDS`] cache-line-padded banks picked
//!   by a per-thread hint. Reads ([`Telemetry::snapshot`]) sum the banks;
//!   the snapshot is a plain value type safe to ship over the wire.
//! * **Deltas, not resets.** One cumulative sink can back a whole batch
//!   run (the `--progress` heartbeat reads it live) while each engine run
//!   attaches only its own contribution via
//!   [`TelemetrySnapshot::delta`] — so `snapshot.states` matches the
//!   run's `EngineReport::states` exactly.
//!
//! The crate is std-only and dependency-free; JSON encoding lives next
//! to the wire format in `rc11-check`.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Number of cache-line-padded counter banks. Power of two; threads pick
/// a bank by a cheap per-thread hint, so concurrent workers rarely
/// contend on the same line.
pub const SHARDS: usize = 16;

/// Per-worker expansion slots. Worker indices at or above this clamp to
/// the last slot (the engines cap far below it).
pub const MAX_WORKER_SLOTS: usize = 64;

/// The structured event counters. Each is a monotone tally; see the
/// variant docs for the exact counting site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Distinct states committed to the visited structure (incl. the
    /// initial state).
    States = 0,
    /// Transitions taken (successors generated and processed).
    Transitions,
    /// Probes that hit an already-visited state (dedup hits).
    DupHits,
    /// Fingerprint bucket collisions confirmed by canonical comparison
    /// (distinct states sharing an Fp128).
    FpCollisions,
    /// Successors pruned by sleep sets (A5).
    SleepSetPrunes,
    /// Enabled threads shed by the persistent mask (A7 DPOR).
    PersistentSheds,
    /// Dedup hits that required a symmetry-orbit fold (A6): the probe
    /// matched only under a non-identity thread permutation.
    SymmetryFolds,
    /// Times a reduction degraded at a cap (POR >64 threads, DPOR
    /// location cap, symmetry orbit cap).
    CapDegradations,
    /// Batches of work flushed from a worker's local deque to the
    /// global injector (parallel engine).
    InjectorFlushes,
    /// Novel states a parallel worker kept on its local deque instead
    /// of publishing (keep-local scheduling).
    KeepLocalRetained,
    /// States expanded (popped and successor-generated). Also tallied
    /// per worker; the per-worker slots sum to this counter.
    Expansions,
    /// Verdict-cache probes issued by the request path.
    CacheProbes,
    /// Verdict-cache probes that hit.
    CacheHits,
}

impl Counter {
    /// Number of counters.
    pub const COUNT: usize = 13;

    /// Every counter, in wire order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::States,
        Counter::Transitions,
        Counter::DupHits,
        Counter::FpCollisions,
        Counter::SleepSetPrunes,
        Counter::PersistentSheds,
        Counter::SymmetryFolds,
        Counter::CapDegradations,
        Counter::InjectorFlushes,
        Counter::KeepLocalRetained,
        Counter::Expansions,
        Counter::CacheProbes,
        Counter::CacheHits,
    ];

    /// Stable snake_case name (wire key in snapshot JSON).
    pub const fn name(self) -> &'static str {
        match self {
            Counter::States => "states",
            Counter::Transitions => "transitions",
            Counter::DupHits => "dup_hits",
            Counter::FpCollisions => "fp_collisions",
            Counter::SleepSetPrunes => "sleep_set_prunes",
            Counter::PersistentSheds => "persistent_sheds",
            Counter::SymmetryFolds => "symmetry_folds",
            Counter::CapDegradations => "cap_degradations",
            Counter::InjectorFlushes => "injector_flushes",
            Counter::KeepLocalRetained => "keep_local_retained",
            Counter::Expansions => "expansions",
            Counter::CacheProbes => "cache_probes",
            Counter::CacheHits => "cache_hits",
        }
    }

    /// Inverse of [`Counter::name`].
    pub fn from_name(name: &str) -> Option<Counter> {
        Counter::ALL.into_iter().find(|c| c.name() == name)
    }
}

/// Coarse request-path phases timed by the sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// `.litmus` text → AST.
    Parse = 0,
    /// Canonicalisation of the compiled program.
    Canon,
    /// Canonical fingerprint computation.
    Fingerprint,
    /// Verdict-cache probe (memory + disk tiers).
    CacheProbe,
    /// State-space exploration proper.
    Explore,
}

impl Phase {
    /// Number of phases.
    pub const COUNT: usize = 5;

    /// Every phase, in wire order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::Parse,
        Phase::Canon,
        Phase::Fingerprint,
        Phase::CacheProbe,
        Phase::Explore,
    ];

    /// Stable snake_case name (wire key in snapshot JSON).
    pub const fn name(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::Canon => "canon",
            Phase::Fingerprint => "fingerprint",
            Phase::CacheProbe => "cache_probe",
            Phase::Explore => "explore",
        }
    }

    /// Inverse of [`Phase::name`].
    pub fn from_name(name: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.name() == name)
    }
}

/// One cache-line-padded bank of counters.
#[repr(align(64))]
struct Bank {
    counters: [AtomicU64; Counter::COUNT],
}

impl Bank {
    fn new() -> Bank {
        Bank { counters: std::array::from_fn(|_| AtomicU64::new(0)) }
    }
}

static NEXT_SHARD_HINT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Each thread gets a stable bank index once, round-robin; `& (SHARDS-1)`
    /// keeps it in range without a modulo on the hot path.
    static SHARD_HINT: usize =
        NEXT_SHARD_HINT.fetch_add(1, Ordering::Relaxed) & (SHARDS - 1);
}

/// The telemetry sink: sharded relaxed counters, coarse phase timers, a
/// frontier-depth gauge, per-worker expansion slots, and a last-seen
/// visited-shard occupancy histogram.
///
/// Shared as `Arc<Telemetry>`; every method takes `&self` and is safe to
/// call from any thread. All counter traffic is `Ordering::Relaxed`:
/// counters are statistics, not synchronisation — the engines' own
/// joins/channels order the interesting events, and `snapshot()` taken
/// after a run joins its workers observes every increment.
pub struct Telemetry {
    banks: Vec<Bank>,
    phase_nanos: [AtomicU64; Phase::COUNT],
    worker_expansions: Vec<AtomicU64>,
    frontier: AtomicI64,
    frontier_peak: AtomicU64,
    shard_occupancy: Mutex<Vec<u64>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry").field("snapshot", &self.snapshot()).finish()
    }
}

impl Default for Telemetry {
    fn default() -> Telemetry {
        Telemetry::new()
    }
}

impl Telemetry {
    /// Fresh sink with all counters zero.
    pub fn new() -> Telemetry {
        Telemetry {
            banks: (0..SHARDS).map(|_| Bank::new()).collect(),
            phase_nanos: std::array::from_fn(|_| AtomicU64::new(0)),
            worker_expansions: (0..MAX_WORKER_SLOTS).map(|_| AtomicU64::new(0)).collect(),
            frontier: AtomicI64::new(0),
            frontier_peak: AtomicU64::new(0),
            shard_occupancy: Mutex::new(Vec::new()),
        }
    }

    /// Fresh shared sink — the shape everything downstream wants.
    pub fn shared() -> Arc<Telemetry> {
        Arc::new(Telemetry::new())
    }

    /// Add `n` to a counter (relaxed, into this thread's bank).
    #[inline]
    pub fn add(&self, counter: Counter, n: u64) {
        if n == 0 {
            return;
        }
        let shard = SHARD_HINT.with(|s| *s);
        self.banks[shard].counters[counter as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1 to a counter.
    #[inline]
    pub fn incr(&self, counter: Counter) {
        let shard = SHARD_HINT.with(|s| *s);
        self.banks[shard].counters[counter as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` expansions by worker `worker` (clamped to
    /// [`MAX_WORKER_SLOTS`]). Tallies both the per-worker slot and the
    /// [`Counter::Expansions`] total, so slots always sum to the total.
    #[inline]
    pub fn add_expansions(&self, worker: usize, n: u64) {
        if n == 0 {
            return;
        }
        let slot = worker.min(MAX_WORKER_SLOTS - 1);
        self.worker_expansions[slot].fetch_add(n, Ordering::Relaxed);
        self.add(Counter::Expansions, n);
    }

    /// Add elapsed nanoseconds to a phase timer.
    #[inline]
    pub fn add_phase_nanos(&self, phase: Phase, nanos: u64) {
        self.phase_nanos[phase as usize].fetch_add(nanos, Ordering::Relaxed);
    }

    /// Time a closure under a phase.
    #[inline]
    pub fn time_phase<R>(&self, phase: Phase, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.add_phase_nanos(phase, start.elapsed().as_nanos() as u64);
        out
    }

    /// Raise the frontier-depth gauge by `n` (states pushed).
    #[inline]
    pub fn frontier_add(&self, n: u64) {
        if n == 0 {
            return;
        }
        let now = self.frontier.fetch_add(n as i64, Ordering::Relaxed) + n as i64;
        self.frontier_peak.fetch_max(now.max(0) as u64, Ordering::Relaxed);
    }

    /// Lower the frontier-depth gauge by `n` (states popped).
    #[inline]
    pub fn frontier_sub(&self, n: u64) {
        if n != 0 {
            self.frontier.fetch_sub(n as i64, Ordering::Relaxed);
        }
    }

    /// Set the frontier-depth gauge to an absolute value (the sequential
    /// engine knows its exact frontier length at every item boundary).
    #[inline]
    pub fn frontier_set(&self, n: u64) {
        self.frontier.store(n as i64, Ordering::Relaxed);
        self.frontier_peak.fetch_max(n, Ordering::Relaxed);
    }

    /// Current frontier depth (clamped at 0: concurrent pushes/pops can
    /// transiently observe a negative raw value).
    pub fn frontier_depth(&self) -> u64 {
        self.frontier.load(Ordering::Relaxed).max(0) as u64
    }

    /// Replace the visited-shard occupancy histogram (entries per shard,
    /// recorded by the parallel store at end of run).
    pub fn record_shard_occupancy(&self, occupancy: &[usize]) {
        let mut slot = self.shard_occupancy.lock().unwrap();
        slot.clear();
        slot.extend(occupancy.iter().map(|&n| n as u64));
    }

    /// Sum one counter across all banks.
    pub fn get(&self, counter: Counter) -> u64 {
        self.banks
            .iter()
            .map(|b| b.counters[counter as usize].load(Ordering::Relaxed))
            .sum()
    }

    /// Materialise the current totals as a plain value.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut counters = [0u64; Counter::COUNT];
        for bank in &self.banks {
            for (i, c) in bank.counters.iter().enumerate() {
                counters[i] += c.load(Ordering::Relaxed);
            }
        }
        let phase_nanos = std::array::from_fn(|i| self.phase_nanos[i].load(Ordering::Relaxed));
        let mut worker_expansions: Vec<u64> = self
            .worker_expansions
            .iter()
            .map(|w| w.load(Ordering::Relaxed))
            .collect();
        while worker_expansions.last() == Some(&0) {
            worker_expansions.pop();
        }
        TelemetrySnapshot {
            counters,
            phase_nanos,
            worker_expansions,
            shard_occupancy: self.shard_occupancy.lock().unwrap().clone(),
            frontier_depth: self.frontier_depth(),
            frontier_peak: self.frontier_peak.load(Ordering::Relaxed),
            served_from_cache: false,
        }
    }
}

/// A point-in-time copy of a [`Telemetry`] sink: plain data, cheap to
/// clone, comparable, and serializable (JSON encoding lives in
/// `rc11_check::telemetry`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// Counter totals, indexed by `Counter as usize`.
    pub counters: [u64; Counter::COUNT],
    /// Phase timer totals in nanoseconds, indexed by `Phase as usize`.
    pub phase_nanos: [u64; Phase::COUNT],
    /// Per-worker expansion tallies (trailing zero slots trimmed).
    pub worker_expansions: Vec<u64>,
    /// Visited-store entries per shard at snapshot time (empty for the
    /// sequential engine's single map).
    pub shard_occupancy: Vec<u64>,
    /// Frontier depth at snapshot time (gauge, not delta'd).
    pub frontier_depth: u64,
    /// Peak frontier depth observed so far.
    pub frontier_peak: u64,
    /// True when this snapshot describes a verdict-cache hit rather
    /// than a fresh exploration.
    pub served_from_cache: bool,
}

impl TelemetrySnapshot {
    /// One counter's total.
    pub fn get(&self, counter: Counter) -> u64 {
        self.counters[counter as usize]
    }

    /// One phase timer's total, nanoseconds.
    pub fn phase(&self, phase: Phase) -> u64 {
        self.phase_nanos[phase as usize]
    }

    /// The contribution between `earlier` and `self`: counters, phase
    /// timers, and per-worker tallies subtract (saturating); gauges
    /// (frontier, shard occupancy) and `served_from_cache` keep `self`'s
    /// values. This is how a single cumulative sink shared across a
    /// batch run yields exact per-run snapshots.
    pub fn delta(&self, earlier: &TelemetrySnapshot) -> TelemetrySnapshot {
        let counters = std::array::from_fn(|i| {
            self.counters[i].saturating_sub(earlier.counters[i])
        });
        let phase_nanos = std::array::from_fn(|i| {
            self.phase_nanos[i].saturating_sub(earlier.phase_nanos[i])
        });
        let n = self.worker_expansions.len().max(earlier.worker_expansions.len());
        let mut worker_expansions: Vec<u64> = (0..n)
            .map(|i| {
                let now = self.worker_expansions.get(i).copied().unwrap_or(0);
                let was = earlier.worker_expansions.get(i).copied().unwrap_or(0);
                now.saturating_sub(was)
            })
            .collect();
        while worker_expansions.last() == Some(&0) {
            worker_expansions.pop();
        }
        TelemetrySnapshot {
            counters,
            phase_nanos,
            worker_expansions,
            shard_occupancy: self.shard_occupancy.clone(),
            frontier_depth: self.frontier_depth,
            frontier_peak: self.frontier_peak,
            served_from_cache: self.served_from_cache,
        }
    }

    /// Sum of all phase timers, nanoseconds.
    pub fn total_phase_nanos(&self) -> u64 {
        self.phase_nanos.iter().sum()
    }

    /// True when every counter, phase timer, and worker slot is zero.
    pub fn is_empty(&self) -> bool {
        self.counters.iter().all(|&c| c == 0)
            && self.phase_nanos.iter().all(|&p| p == 0)
            && self.worker_expansions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_across_threads() {
        let tel = Telemetry::shared();
        let mut handles = Vec::new();
        for w in 0..4 {
            let t = Arc::clone(&tel);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    t.incr(Counter::Transitions);
                }
                t.add(Counter::States, 7);
                t.add_expansions(w, 50);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let snap = tel.snapshot();
        assert_eq!(snap.get(Counter::Transitions), 4000);
        assert_eq!(snap.get(Counter::States), 28);
        assert_eq!(snap.get(Counter::Expansions), 200);
        assert_eq!(snap.worker_expansions, vec![50, 50, 50, 50]);
        assert_eq!(
            snap.worker_expansions.iter().sum::<u64>(),
            snap.get(Counter::Expansions)
        );
    }

    #[test]
    fn delta_isolates_a_run() {
        let tel = Telemetry::new();
        tel.add(Counter::States, 10);
        tel.add_expansions(0, 4);
        tel.add_phase_nanos(Phase::Explore, 100);
        let t0 = tel.snapshot();
        tel.add(Counter::States, 5);
        tel.add_expansions(1, 3);
        tel.add_phase_nanos(Phase::Explore, 50);
        let d = tel.snapshot().delta(&t0);
        assert_eq!(d.get(Counter::States), 5);
        assert_eq!(d.phase(Phase::Explore), 50);
        assert_eq!(d.worker_expansions, vec![0, 3]);
        assert!(!d.served_from_cache);
    }

    #[test]
    fn frontier_gauge_tracks_depth_and_peak() {
        let tel = Telemetry::new();
        tel.frontier_add(5);
        tel.frontier_sub(2);
        tel.frontier_add(1);
        assert_eq!(tel.frontier_depth(), 4);
        let snap = tel.snapshot();
        assert_eq!(snap.frontier_depth, 4);
        assert!(snap.frontier_peak >= 5);
    }

    #[test]
    fn names_round_trip() {
        for c in Counter::ALL {
            assert_eq!(Counter::from_name(c.name()), Some(c));
        }
        for p in Phase::ALL {
            assert_eq!(Phase::from_name(p.name()), Some(p));
        }
    }

    #[test]
    fn occupancy_histogram_replaces() {
        let tel = Telemetry::new();
        tel.record_shard_occupancy(&[1, 2, 3]);
        tel.record_shard_occupancy(&[4, 5]);
        assert_eq!(tel.snapshot().shard_occupancy, vec![4, 5]);
    }

    #[test]
    fn zero_adds_are_free_of_effect() {
        let tel = Telemetry::new();
        tel.add(Counter::States, 0);
        tel.add_expansions(0, 0);
        tel.frontier_add(0);
        tel.frontier_sub(0);
        assert!(tel.snapshot().is_empty());
    }
}
