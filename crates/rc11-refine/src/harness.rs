//! Standard synchronisation-free clients for refinement checking.
//!
//! Definition 8 applies to clients that synchronise only through the object
//! under test; these harness clients use relaxed client accesses and
//! lock-protected critical sections, and never bind lock-method return
//! values (so `rval` agreement is by construction — see the module docs of
//! [`crate::sim`]).
//!
//! The exploration helpers ([`explore_abstract`], [`explore_concrete`]) are
//! engine-parametric: every harness client can be swept under the
//! sequential reference explorer or the parallel engine
//! ([`rc11_check::Engine`]) interchangeably.

use rc11_check::{Engine, EngineReport, ExploreOptions};
use rc11_lang::builder::*;
use rc11_lang::inline::{instantiate, ObjectImpl};
use rc11_lang::machine::NoObjects;
use rc11_lang::{compile, ObjRef, Program};
use rc11_objects::AbstractObjects;

/// The publication hand-off client: T1 writes `d := 5` inside its critical
/// section; T2 reads `d` inside its own. The paper's Figure-7 pattern with
/// one data variable — the canonical test that a lock implementation
/// transfers views on hand-off.
pub fn handoff_client() -> (Program, ObjRef) {
    let mut p = ProgramBuilder::new("handoff");
    let d = p.client_var("d", 0);
    let l = p.lock("l");
    let t1 = ThreadBuilder::new();
    p.add_thread(t1, seq([acquire(l), wr(d, 5), release(l)]));
    let mut t2 = ThreadBuilder::new();
    let r = t2.reg("r");
    p.add_thread(t2, seq([acquire(l), rd(r, d), release(l)]));
    (p.build(), l)
}

/// The full Figure-7 client (unlabelled, for refinement): two data
/// variables written in one critical section and read in another.
pub fn fig7_client() -> (Program, ObjRef) {
    let mut p = ProgramBuilder::new("fig7");
    let d1 = p.client_var("d1", 0);
    let d2 = p.client_var("d2", 0);
    let l = p.lock("l");
    let t1 = ThreadBuilder::new();
    p.add_thread(t1, seq([acquire(l), wr(d1, 5), wr(d2, 5), release(l)]));
    let mut t2 = ThreadBuilder::new();
    let r1 = t2.reg("r1");
    let r2 = t2.reg("r2");
    p.add_thread(t2, seq([acquire(l), rd(r1, d1), rd(r2, d2), release(l)]));
    (p.build(), l)
}

/// A lock-protected counter client with `n_threads` incrementing threads —
/// scales the state space for the benches.
pub fn counter_client(n_threads: usize) -> (Program, ObjRef) {
    let mut p = ProgramBuilder::new(format!("counter{n_threads}"));
    let x = p.client_var("x", 0);
    let l = p.lock("l");
    for _ in 0..n_threads {
        let mut tb = ThreadBuilder::new();
        let r = tb.reg("r");
        p.add_thread(tb, seq([acquire(l), rd(r, x), wr(x, add(r, 1)), release(l)]));
    }
    (p.build(), l)
}

/// A client where each thread performs `rounds` acquire/write/release
/// rounds — scales trace length rather than width.
pub fn rounds_client(rounds: usize) -> (Program, ObjRef) {
    let mut p = ProgramBuilder::new(format!("rounds{rounds}"));
    let d = p.client_var("d", 0);
    let l = p.lock("l");
    let t1 = ThreadBuilder::new();
    let mut body1 = Vec::new();
    for i in 0..rounds {
        body1.extend([acquire(l), wr(d, (i + 1) as i64), release(l)]);
    }
    p.add_thread(t1, seq(body1));
    let mut t2 = ThreadBuilder::new();
    let r = t2.reg("r");
    let mut body2 = Vec::new();
    for _ in 0..rounds {
        body2.extend([acquire(l), rd(r, d), release(l)]);
    }
    p.add_thread(t2, seq(body2));
    (p.build(), l)
}

/// Explore a harness client with its abstract object(s) under `engine`
/// (traces off — harness sweeps only need counts and terminals).
pub fn explore_abstract(client: &Program, engine: &Engine) -> EngineReport {
    let opts = ExploreOptions { record_traces: false, ..Default::default() };
    engine.explore(&compile(client), &AbstractObjects, &opts)
}

/// Explore a harness client with `imp` inlined into `obj`'s method holes
/// under `engine`. The instantiated program has no abstract objects left,
/// so it runs under [`NoObjects`].
pub fn explore_concrete(
    client: &Program,
    obj: ObjRef,
    imp: &ObjectImpl,
    engine: &Engine,
) -> EngineReport {
    let conc = instantiate(client, obj, imp);
    let opts = ExploreOptions { record_traces: false, ..Default::default() };
    engine.explore(&compile(&conc), &NoObjects, &opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc11_check::choose_engine;

    #[test]
    fn harness_clients_validate() {
        let (p, _) = handoff_client();
        assert_eq!(p.n_threads(), 2);
        let (p, _) = fig7_client();
        assert_eq!(p.client_locs.len(), 2);
        let (p, _) = counter_client(3);
        assert_eq!(p.n_threads(), 3);
        let (p, _) = rounds_client(2);
        assert_eq!(p.n_threads(), 2);
    }

    /// Abstract harness sweeps agree across engines on the widest client.
    #[test]
    fn abstract_exploration_agrees_across_engines() {
        let (client, _) = counter_client(3);
        let seq = explore_abstract(&client, &Engine::Sequential);
        assert!(seq.ok());
        for workers in [2, 4] {
            let par = explore_abstract(&client, &choose_engine(workers));
            assert_eq!(par.states, seq.states, "workers = {workers}");
            assert_eq!(par.transitions, seq.transitions);
            assert_eq!(par.terminated.len(), seq.terminated.len());
            assert_eq!(par.deadlocked.len(), seq.deadlocked.len());
        }
    }

    /// Concrete (inlined-lock) harness sweeps agree across engines.
    #[test]
    fn concrete_exploration_agrees_across_engines() {
        let (client, l) = handoff_client();
        let imp = rc11_locks::ticket();
        let seq = explore_concrete(&client, l, &imp, &Engine::Sequential);
        assert!(seq.ok());
        let par = explore_concrete(&client, l, &imp, &choose_engine(4));
        assert_eq!(par.states, seq.states);
        assert_eq!(par.transitions, seq.transitions);
        assert_eq!(par.terminated.len(), seq.terminated.len());
    }
}
