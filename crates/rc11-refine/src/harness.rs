//! Standard synchronisation-free clients for refinement checking.
//!
//! Definition 8 applies to clients that synchronise only through the object
//! under test; these harness clients use relaxed client accesses and
//! lock-protected critical sections, and never bind lock-method return
//! values (so `rval` agreement is by construction — see the module docs of
//! [`crate::sim`]).

use rc11_lang::builder::*;
use rc11_lang::{ObjRef, Program};

/// The publication hand-off client: T1 writes `d := 5` inside its critical
/// section; T2 reads `d` inside its own. The paper's Figure-7 pattern with
/// one data variable — the canonical test that a lock implementation
/// transfers views on hand-off.
pub fn handoff_client() -> (Program, ObjRef) {
    let mut p = ProgramBuilder::new("handoff");
    let d = p.client_var("d", 0);
    let l = p.lock("l");
    let t1 = ThreadBuilder::new();
    p.add_thread(t1, seq([acquire(l), wr(d, 5), release(l)]));
    let mut t2 = ThreadBuilder::new();
    let r = t2.reg("r");
    p.add_thread(t2, seq([acquire(l), rd(r, d), release(l)]));
    (p.build(), l)
}

/// The full Figure-7 client (unlabelled, for refinement): two data
/// variables written in one critical section and read in another.
pub fn fig7_client() -> (Program, ObjRef) {
    let mut p = ProgramBuilder::new("fig7");
    let d1 = p.client_var("d1", 0);
    let d2 = p.client_var("d2", 0);
    let l = p.lock("l");
    let t1 = ThreadBuilder::new();
    p.add_thread(t1, seq([acquire(l), wr(d1, 5), wr(d2, 5), release(l)]));
    let mut t2 = ThreadBuilder::new();
    let r1 = t2.reg("r1");
    let r2 = t2.reg("r2");
    p.add_thread(t2, seq([acquire(l), rd(r1, d1), rd(r2, d2), release(l)]));
    (p.build(), l)
}

/// A lock-protected counter client with `n_threads` incrementing threads —
/// scales the state space for the benches.
pub fn counter_client(n_threads: usize) -> (Program, ObjRef) {
    let mut p = ProgramBuilder::new(format!("counter{n_threads}"));
    let x = p.client_var("x", 0);
    let l = p.lock("l");
    for _ in 0..n_threads {
        let mut tb = ThreadBuilder::new();
        let r = tb.reg("r");
        p.add_thread(tb, seq([acquire(l), rd(r, x), wr(x, add(r, 1)), release(l)]));
    }
    (p.build(), l)
}

/// A client where each thread performs `rounds` acquire/write/release
/// rounds — scales trace length rather than width.
pub fn rounds_client(rounds: usize) -> (Program, ObjRef) {
    let mut p = ProgramBuilder::new(format!("rounds{rounds}"));
    let d = p.client_var("d", 0);
    let l = p.lock("l");
    let t1 = ThreadBuilder::new();
    let mut body1 = Vec::new();
    for i in 0..rounds {
        body1.extend([acquire(l), wr(d, (i + 1) as i64), release(l)]);
    }
    p.add_thread(t1, seq(body1));
    let mut t2 = ThreadBuilder::new();
    let r = t2.reg("r");
    let mut body2 = Vec::new();
    for _ in 0..rounds {
        body2.extend([acquire(l), rd(r, d), release(l)]);
    }
    p.add_thread(t2, seq(body2));
    (p.build(), l)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_clients_validate() {
        let (p, _) = handoff_client();
        assert_eq!(p.n_threads(), 2);
        let (p, _) = fig7_client();
        assert_eq!(p.client_locs.len(), 2);
        let (p, _) = counter_client(3);
        assert_eq!(p.n_threads(), 3);
        let (p, _) = rounds_client(2);
        assert_eq!(p.n_threads(), 2);
    }
}
