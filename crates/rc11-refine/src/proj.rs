//! Client-state projections and the state-refinement order (Definition 5).
//!
//! A client trace point is the client-visible part of a configuration: the
//! client registers, the client component's operation history (modification
//! orders + covered flags) and each thread's observability frontier. The
//! refinement order `(ls_A, γ_A) ⊑ (ls_C, γ_C)` requires equal locals,
//! equal histories and covers, and *observability inclusion*:
//! `γC.Obs(t, x) ⊆ γA.Obs(t, x)` — since observable sets are suffixes of
//! the (equal) modification orders, inclusion is exactly `rank_C ≥ rank_A`
//! per thread and location.

use rc11_core::{Loc, OpAction, Tid, Val};
use rc11_lang::machine::Config;

/// Which registers of each thread belong to the *client* (implementation-
/// private registers appended by `instantiate` are excluded from
/// comparison, exactly as the paper restricts `ls|C` to `LVar_C`).
#[derive(Debug, Clone)]
pub struct ClientShape {
    /// Per-thread count of client registers.
    pub n_client_regs: Vec<u16>,
    /// Number of client locations.
    pub n_client_locs: usize,
}

impl ClientShape {
    /// Derive the shape from the *abstract* program (whose registers are
    /// all client registers).
    pub fn of(prog: &rc11_lang::Program) -> ClientShape {
        ClientShape {
            n_client_regs: prog.threads.iter().map(|t| t.n_regs).collect(),
            n_client_locs: prog.client_locs.len(),
        }
    }
}

/// The client-visible projection of a configuration.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ClientProj {
    /// Client registers per thread (`ls|C`).
    pub locals: Vec<Vec<Val>>,
    /// Per client location: the operation history in modification order
    /// (action payload + acting thread), with covered flags.
    pub history: Vec<Vec<(OpAction, Tid, bool)>>,
    /// Per thread, per client location: the rank of the thread's viewfront
    /// (determines `Obs` as a suffix of the history).
    pub view_ranks: Vec<Vec<u32>>,
}

impl ClientProj {
    /// Extract the projection of `cfg`.
    pub fn of(cfg: &Config, shape: &ClientShape) -> ClientProj {
        let st = cfg.mem.client();
        let locals = cfg
            .locals
            .iter()
            .zip(&shape.n_client_regs)
            .map(|(ls, &n)| ls[..n as usize].to_vec())
            .collect();
        let history = (0..shape.n_client_locs)
            .map(|l| {
                st.mo(Loc(l as u16))
                    .iter()
                    .map(|&w| {
                        let rec = st.op(w);
                        (rec.act, rec.tid, st.is_covered(w))
                    })
                    .collect()
            })
            .collect();
        let view_ranks = (0..st.n_threads())
            .map(|t| {
                (0..shape.n_client_locs)
                    .map(|l| st.rank_of(st.tview(Tid(t as u8)).get(Loc(l as u16))))
                    .collect()
            })
            .collect();
        ClientProj { locals, history, view_ranks }
    }

    /// Definition 5: does the *concrete* projection `self` refine the
    /// *abstract* projection `abs`? Equal locals, histories and covers;
    /// concrete observability contained in abstract observability.
    pub fn refines(&self, abs: &ClientProj) -> bool {
        self.locals == abs.locals
            && self.history == abs.history
            && self
                .view_ranks
                .iter()
                .zip(&abs.view_ranks)
                .all(|(c, a)| c.iter().zip(a).all(|(rc, ra)| rc >= ra))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc11_lang::builder::*;
    use rc11_lang::compile;
    use rc11_lang::machine::Config;

    fn shape_and_cfg() -> (ClientShape, Config, rc11_lang::CfgProgram, rc11_lang::VarRef) {
        let mut p = ProgramBuilder::new("p");
        let d = p.client_var("d", 0);
        let mut tb = ThreadBuilder::new();
        let r = tb.reg("r");
        p.add_thread(tb, seq([wr(d, 1), rd(r, d)]));
        let prog = p.build();
        let shape = ClientShape::of(&prog);
        let cfg = compile(&prog);
        let init = Config::initial(&cfg);
        (shape, init, cfg, d)
    }

    #[test]
    fn identical_configs_refine_both_ways() {
        let (shape, cfg, _, _) = shape_and_cfg();
        let a = ClientProj::of(&cfg, &shape);
        let b = ClientProj::of(&cfg, &shape);
        assert!(a.refines(&b) && b.refines(&a));
    }

    #[test]
    fn advanced_view_refines_lagging_view() {
        let (shape, init, _, d) = shape_and_cfg();
        use rc11_core::{Comp, Tid, Val};
        // Write d := 1 in both; then one config's T0 reads the new write
        // (advancing its view) while the other stays put.
        let mut a = init.clone();
        let w = a.mem.write_preds(Comp::Client, Tid(0), d.loc)[0];
        a.mem = a.mem.apply_write(Comp::Client, Tid(0), d.loc, Val::Int(1), false, w);
        let lag = ClientProj::of(&a, &shape);
        // T0 already saw the write (writer view advanced automatically);
        // simulate a *second* thread? Single thread: compare against itself.
        let adv = ClientProj::of(&a, &shape);
        assert!(adv.refines(&lag));
        // A projection with strictly smaller ranks is refined-by, not
        // refines, when histories are equal.
        let mut lag2 = lag.clone();
        lag2.view_ranks[0][0] = 0;
        assert!(adv.refines(&lag2) || lag.view_ranks[0][0] == 0);
        assert!(lag2.view_ranks[0][0] <= adv.view_ranks[0][0]);
    }

    #[test]
    fn history_mismatch_fails() {
        let (shape, init, _, d) = shape_and_cfg();
        use rc11_core::{Comp, Tid, Val};
        let mut a = init.clone();
        let w = a.mem.write_preds(Comp::Client, Tid(0), d.loc)[0];
        a.mem = a.mem.apply_write(Comp::Client, Tid(0), d.loc, Val::Int(1), false, w);
        let pa = ClientProj::of(&a, &shape);
        let pi = ClientProj::of(&init, &shape);
        assert!(!pa.refines(&pi));
        assert!(!pi.refines(&pa));
    }

    #[test]
    fn impl_registers_are_invisible() {
        // Two configs differing only past the client register count project
        // equally.
        let (shape, init, _, _) = shape_and_cfg();
        let mut b = init.clone();
        b.locals[0].push(rc11_core::Val::Int(99)); // fake impl register
        let pa = ClientProj::of(&init, &shape);
        let pb = ClientProj::of(&b, &shape);
        assert_eq!(pa, pb);
    }
}
