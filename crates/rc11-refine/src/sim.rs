//! The forward-simulation checker (Definition 8, Theorem 8.1).
//!
//! Searches for a forward simulation between `C[AO]` (abstract program) and
//! `C[CO]` (concrete program, produced by `instantiate`) for
//! synchronisation-free clients, using the *maximal* candidate relation:
//! each concrete configuration is paired with the set of all abstract
//! configurations satisfying Definition 8's condition 1
//! (`als|C = cls|C`, equal client histories/covers, observability
//! inclusion). A concrete step that leaves the client projection unchanged
//! is matched by abstract *stuttering* (condition 3's stuttering case,
//! realised as the closure over client-invisible abstract steps); a
//! client-visible concrete step is matched by stuttering followed by
//! exactly one client-visible abstract step. The closure is essential for
//! repeated-handoff clients: e.g. the seqlock's spin read may transfer the
//! previous critical section's views to a waiting thread *before* its
//! acquire completes, which the abstract lock can only match by running
//! the other thread's (client-invisible) release first.
//!
//! Because the candidate sets are maximal, an empty match set is a genuine
//! refutation of stuttering forward simulation with the Definition-8
//! relation, and the offending concrete trace is reported. (As usual,
//! forward simulation is sound but not complete for trace inclusion; the
//! independent Definitions-5–7 baseline in [`crate::traces`] closes the
//! loop on Theorem 8.1 empirically.)
//!
//! Harness requirements (checked where possible): clients synchronise only
//! through the object (no release/acquire client accesses), do not bind
//! lock-method return values, and are unlabelled (labels introduce fusion
//! barriers that break the one-shared-access-per-step alignment).

use crate::proj::{ClientProj, ClientShape};
use rc11_check::fxhash::FxHashMap;
use rc11_core::Tid;
use rc11_lang::cfg::CfgProgram;
use rc11_lang::machine::{successors, Config, ObjectSemantics, StepOptions};
use std::collections::BTreeSet;

/// Options for the simulation search.
#[derive(Debug, Clone, Copy)]
pub struct SimOptions {
    /// Step generation (fusion must stay on for step alignment).
    pub step: StepOptions,
    /// Cap on distinct concrete configurations.
    pub max_states: usize,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions { step: StepOptions { fuse_local: true }, max_states: 2_000_000 }
    }
}

/// Result of a simulation check.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Whether a forward simulation exists (the check succeeded).
    pub holds: bool,
    /// Distinct concrete configurations visited.
    pub concrete_states: usize,
    /// Distinct abstract configurations materialised.
    pub abstract_states: usize,
    /// Total size of all candidate sets (product measure).
    pub product_size: usize,
    /// Transitions examined.
    pub transitions: usize,
    /// On failure: the client-visible trace of the refuting concrete run.
    pub counterexample: Option<Vec<ClientProj>>,
    /// True iff the state cap was hit (result not conclusive).
    pub truncated: bool,
}

/// Interned abstract configurations with memoised successors and
/// stutter-closures.
struct AbsSpace<'a> {
    prog: &'a CfgProgram,
    objs: &'a dyn ObjectSemantics,
    step: StepOptions,
    configs: Vec<Config>,
    ids: FxHashMap<Config, u32>,
    succs: Vec<Option<Vec<(Tid, u32)>>>,
    projs: Vec<ClientProj>,
    closures: Vec<Option<std::rc::Rc<BTreeSet<u32>>>>,
    shape: &'a ClientShape,
}

impl<'a> AbsSpace<'a> {
    fn intern(&mut self, cfg: Config) -> u32 {
        if let Some(&id) = self.ids.get(&cfg) {
            return id;
        }
        let id = self.configs.len() as u32;
        self.projs.push(ClientProj::of(&cfg, self.shape));
        self.ids.insert(cfg.clone(), id);
        self.configs.push(cfg);
        self.succs.push(None);
        self.closures.push(None);
        id
    }

    fn successors_of(&mut self, id: u32) -> Vec<(Tid, u32)> {
        if let Some(s) = &self.succs[id as usize] {
            return s.clone();
        }
        let cfg = self.configs[id as usize].clone();
        let succ = successors(self.prog, self.objs, &cfg, self.step)
            .into_iter()
            .map(|(t, c)| (t, self.intern(c.canonical())))
            .collect::<Vec<_>>();
        self.succs[id as usize] = Some(succ.clone());
        succ
    }

    /// All abstract configurations reachable from `id` via client-invisible
    /// steps (projection unchanged), `id` included.
    fn closure_of(&mut self, id: u32) -> std::rc::Rc<BTreeSet<u32>> {
        if let Some(c) = &self.closures[id as usize] {
            return c.clone();
        }
        let base = self.projs[id as usize].clone();
        let mut set: BTreeSet<u32> = [id].into_iter().collect();
        let mut work = vec![id];
        while let Some(x) = work.pop() {
            for (_, y) in self.successors_of(x) {
                if self.projs[y as usize] == base && set.insert(y) {
                    work.push(y);
                }
            }
        }
        let rc = std::rc::Rc::new(set);
        self.closures[id as usize] = Some(rc.clone());
        rc
    }
}

/// Check `C[AO] ⊑ C[CO]` by forward simulation. `abs`/`conc` are the
/// compiled abstract and concrete programs (same client, holes abstract vs
/// inlined); `abs_objs`/`conc_objs` their object semantics (the concrete
/// program usually has none).
pub fn check_forward_simulation(
    abs: &CfgProgram,
    abs_objs: &dyn ObjectSemantics,
    conc: &CfgProgram,
    conc_objs: &dyn ObjectSemantics,
    shape: &ClientShape,
    opts: SimOptions,
) -> SimReport {
    assert_eq!(abs.n_threads(), conc.n_threads(), "client thread counts differ");
    let mut aspace = AbsSpace {
        prog: abs,
        objs: abs_objs,
        step: opts.step,
        configs: Vec::new(),
        ids: FxHashMap::default(),
        succs: Vec::new(),
        projs: Vec::new(),
        closures: Vec::new(),
        shape,
    };

    let mut report = SimReport {
        holds: true,
        concrete_states: 0,
        abstract_states: 0,
        product_size: 0,
        transitions: 0,
        counterexample: None,
        truncated: false,
    };

    // Concrete side: interned configs with candidate abstract sets and
    // parent pointers for counterexample reconstruction.
    let mut cids: FxHashMap<Config, u32> = FxHashMap::default();
    let mut cconfigs: Vec<Config> = Vec::new();
    let mut cprojs: Vec<ClientProj> = Vec::new();
    let mut candidates: Vec<BTreeSet<u32>> = Vec::new();
    let mut parents: Vec<Option<u32>> = Vec::new();

    let c0 = Config::initial(conc).canonical();
    let a0 = aspace.intern(Config::initial(abs).canonical());
    cids.insert(c0.clone(), 0);
    cprojs.push(ClientProj::of(&c0, shape));
    cconfigs.push(c0);
    parents.push(None);
    // Initial candidate: the abstract initial state, which must be related.
    if !cprojs[0].refines(&aspace.projs[a0 as usize]) {
        return SimReport {
            holds: false,
            counterexample: Some(vec![cprojs[0].clone()]),
            ..report
        };
    }
    candidates.push([a0].into_iter().collect());

    let mut work: Vec<u32> = vec![0];
    'outer: while let Some(cid) = work.pop() {
        let ccfg = cconfigs[cid as usize].clone();
        let cands = candidates[cid as usize].clone();
        let csuccs = successors(conc, conc_objs, &ccfg, opts.step);
        report.transitions += csuccs.len();
        for (_t, csucc) in csuccs {
            let canon = csucc.canonical();
            let sproj = ClientProj::of(&canon, shape);
            let stutter = sproj == cprojs[cid as usize];

            // Compute the matched abstract set for this edge, per
            // Definition 8: the abstract side may stutter (remain at any
            // closure member that is still R-related — inclusion lets a
            // concrete view-only advance be absorbed without abstract
            // movement), and on a client-visible concrete step it may
            // additionally take exactly one client-visible step.
            let mut matched: BTreeSet<u32> = BTreeSet::new();
            for &a in &cands {
                let closure = aspace.closure_of(a);
                // All closure members share a projection: one R check.
                if sproj.refines(&aspace.projs[a as usize]) {
                    matched.extend(closure.iter().copied());
                }
                if !stutter {
                    for &b in closure.iter() {
                        for (_t2, a2) in aspace.successors_of(b) {
                            if aspace.projs[a2 as usize] != aspace.projs[b as usize]
                                && sproj.refines(&aspace.projs[a2 as usize])
                            {
                                matched.insert(a2);
                            }
                        }
                    }
                }
            }
            if matched.is_empty() {
                // Refutation: reconstruct the concrete client trace.
                let mut rev = vec![sproj];
                let mut cur = Some(cid);
                while let Some(i) = cur {
                    rev.push(cprojs[i as usize].clone());
                    cur = parents[i as usize];
                }
                rev.reverse();
                rev.dedup();
                report.holds = false;
                report.counterexample = Some(rev);
                break 'outer;
            }

            // Merge into the successor's candidate set.
            match cids.get(&canon) {
                Some(&sid) => {
                    let set = &mut candidates[sid as usize];
                    let before = set.len();
                    set.extend(matched.iter().copied());
                    if set.len() > before {
                        work.push(sid);
                    }
                }
                None => {
                    if cconfigs.len() >= opts.max_states {
                        report.truncated = true;
                        continue;
                    }
                    let sid = cconfigs.len() as u32;
                    cids.insert(canon.clone(), sid);
                    cprojs.push(sproj);
                    cconfigs.push(canon);
                    candidates.push(matched);
                    parents.push(Some(cid));
                    work.push(sid);
                }
            }
        }
    }

    report.concrete_states = cconfigs.len();
    report.abstract_states = aspace.configs.len();
    report.product_size = candidates.iter().map(|s| s.len()).sum();
    if report.truncated {
        report.holds = false;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness;
    use rc11_lang::compile;
    use rc11_lang::inline::instantiate;
    use rc11_lang::machine::NoObjects;
    use rc11_objects::AbstractObjects;

    fn check(imp: rc11_lang::ObjectImpl) -> SimReport {
        let (abs_prog, l) = harness::handoff_client();
        let shape = ClientShape::of(&abs_prog);
        let conc_prog = instantiate(&abs_prog, l, &imp);
        check_forward_simulation(
            &compile(&abs_prog),
            &AbstractObjects,
            &compile(&conc_prog),
            &NoObjects,
            &shape,
            SimOptions::default(),
        )
    }

    #[test]
    fn seqlock_simulates_abstract_lock() {
        let report = check(rc11_locks::seqlock());
        assert!(report.holds, "Proposition 9 (seqlock) failed: {report:?}");
        assert!(!report.truncated);
    }

    #[test]
    fn ticket_simulates_abstract_lock() {
        let report = check(rc11_locks::ticket());
        assert!(report.holds, "Proposition 10 (ticket) failed");
    }

    #[test]
    fn tas_simulates_abstract_lock() {
        assert!(check(rc11_locks::tas()).holds);
    }

    #[test]
    fn relaxed_seqlock_is_refuted() {
        let report = check(rc11_locks::broken_relaxed_seqlock());
        assert!(!report.holds, "the relaxed-release seqlock must NOT simulate");
        let cex = report.counterexample.expect("refutations carry a trace");
        assert!(cex.len() >= 2, "non-trivial counterexample");
    }

    #[test]
    fn noop_lock_is_refuted() {
        let report = check(rc11_locks::broken_noop_lock());
        assert!(!report.holds);
    }
}
