//! The brute-force baseline: stutter-free client-trace enumeration and
//! direct trace-inclusion checking (Definitions 5–7).
//!
//! `TrSF(P)` is materialised explicitly: every stutter-free client trace of
//! every execution, with client projections hash-consed so a trace is a
//! `Vec<u32>`. Inclusion `C[AO] ⊑ C[CO]` is then checked directly: for
//! every concrete trace there must exist an abstract trace it refines
//! under a *monotone* matching — a non-decreasing surjection `f` from
//! concrete onto abstract indices with `ct_i ⊑ at_{f(i)}` throughout.
//! Monotonicity (rather than strict pointwise equality of positions) is
//! forced by weak memory: a concrete implementation step may advance a
//! thread's viewfront without any abstract counterpart (e.g. a seqlock
//! spin read synchronising with the previous critical section), and
//! Definition 5's observability *inclusion* is exactly what lets the same
//! abstract state absorb such refinement-only changes.
//!
//! This is intentionally the naive algorithm — the paper's Definition 6/7
//! read as stated — and serves two purposes: it cross-checks Theorem 8.1
//! (simulation verdicts must imply trace-inclusion verdicts) on small
//! clients, and it is the baseline the simulation checker is benchmarked
//! against (ablation A2). Trace counts explode combinatorially; caps are
//! reported honestly.

use crate::proj::{ClientProj, ClientShape};
use rc11_check::fxhash::FxHashMap;
use rc11_lang::cfg::CfgProgram;
use rc11_lang::machine::{successors, Config, ObjectSemantics, StepOptions};
use std::collections::BTreeSet;

/// Hash-consed projections + the set of stutter-free traces.
#[derive(Debug, Default)]
pub struct TraceSet {
    /// Distinct projections, indexed by trace entries.
    pub projs: Vec<ClientProj>,
    /// The stutter-free traces (projection indices).
    pub traces: BTreeSet<Vec<u32>>,
    /// True iff the enumeration cap was hit.
    pub truncated: bool,
}

/// Enumeration caps.
#[derive(Debug, Clone, Copy)]
pub struct TraceOptions {
    /// Step generation.
    pub step: StepOptions,
    /// Cap on the number of distinct traces.
    pub max_traces: usize,
    /// Cap on visited (configuration, trace-point) pairs.
    pub max_expansions: usize,
}

impl Default for TraceOptions {
    fn default() -> Self {
        TraceOptions {
            step: StepOptions { fuse_local: true },
            max_traces: 2_000_000,
            max_expansions: 20_000_000,
        }
    }
}

/// Enumerate `TrSF(prog)` — the stutter-free client traces of all
/// executions of `prog`.
pub fn stutter_free_traces(
    prog: &CfgProgram,
    objs: &dyn ObjectSemantics,
    shape: &ClientShape,
    opts: TraceOptions,
) -> TraceSet {
    let mut out = TraceSet::default();
    let mut intern: FxHashMap<ClientProj, u32> = FxHashMap::default();
    let mut intern_proj = |p: ClientProj, projs: &mut Vec<ClientProj>| -> u32 {
        if let Some(&i) = intern.get(&p) {
            return i;
        }
        let i = projs.len() as u32;
        intern.insert(p.clone(), i);
        projs.push(p);
        i
    };

    // DFS over (config, current trace); cycles only stutter (spin loops do
    // not change the client projection), so visited (config, trace-last)
    // pairs can be pruned: continuing from the same configuration with the
    // same trace suffix head yields the same trace completions.
    // Memoisation maps configuration → set of trace *completions*.
    let mut memo: FxHashMap<Config, BTreeSet<Vec<u32>>> = FxHashMap::default();
    let mut on_stack: FxHashMap<Config, ()> = FxHashMap::default();
    let mut expansions = 0usize;

    #[allow(clippy::too_many_arguments)]
    fn completions(
        prog: &CfgProgram,
        objs: &dyn ObjectSemantics,
        shape: &ClientShape,
        opts: &TraceOptions,
        cfg: &Config,
        cur_proj: u32,
        memo: &mut FxHashMap<Config, BTreeSet<Vec<u32>>>,
        on_stack: &mut FxHashMap<Config, ()>,
        intern: &mut dyn FnMut(ClientProj) -> u32,
        expansions: &mut usize,
        truncated: &mut bool,
    ) -> BTreeSet<Vec<u32>> {
        if let Some(c) = memo.get(cfg) {
            return c.clone();
        }
        if on_stack.contains_key(cfg) {
            // Cycle: stuttering loop — contributes no completions beyond
            // its exits, which are explored by the callers on the stack.
            return BTreeSet::new();
        }
        *expansions += 1;
        if *expansions > opts.max_expansions {
            *truncated = true;
            return BTreeSet::new();
        }
        on_stack.insert(cfg.clone(), ());
        let succs = successors(prog, objs, cfg, opts.step);
        let mut out: BTreeSet<Vec<u32>> = BTreeSet::new();
        if succs.is_empty() {
            out.insert(Vec::new()); // the empty completion: trace ends here
        }
        for (_, succ) in succs {
            let canon = succ.canonical();
            let p = intern(ClientProj::of(&canon, shape));
            let subs = completions(
                prog, objs, shape, opts, &canon, p, memo, on_stack, intern, expansions, truncated,
            );
            if p == cur_proj {
                // Stutter: completions pass through unchanged.
                out.extend(subs);
            } else {
                for mut s in subs {
                    s.insert(0, p);
                    out.insert(s);
                }
            }
            if out.len() > opts.max_traces {
                *truncated = true;
                break;
            }
        }
        on_stack.remove(cfg);
        memo.insert(cfg.clone(), out.clone());
        out
    }

    let init = Config::initial(prog).canonical();
    let p0 = intern_proj(ClientProj::of(&init, shape), &mut out.projs);
    let mut intern_fn = |p: ClientProj| intern_proj(p, &mut out.projs);
    let mut truncated = false;
    let comps = completions(
        prog,
        objs,
        shape,
        &opts,
        &init,
        p0,
        &mut memo,
        &mut on_stack,
        &mut intern_fn,
        &mut expansions,
        &mut truncated,
    );
    out.truncated = truncated;
    for mut t in comps {
        t.insert(0, p0);
        out.traces.insert(t);
    }
    out
}

/// Result of the direct inclusion check.
#[derive(Debug, Clone)]
pub struct InclusionReport {
    /// Whether every concrete trace refines some abstract trace.
    pub holds: bool,
    /// Number of concrete traces enumerated.
    pub concrete_traces: usize,
    /// Number of abstract traces enumerated.
    pub abstract_traces: usize,
    /// A concrete trace with no abstract match, if any (projection
    /// sequences).
    pub counterexample: Option<Vec<ClientProj>>,
    /// True iff any enumeration cap was hit.
    pub truncated: bool,
}

/// Does concrete trace `ct` refine abstract trace `at` under a monotone
/// surjective matching? Dynamic programming over positions: `cur[j]` marks
/// "ct[..=i] matchable with f(i) = j"; surjectivity requires finishing at
/// the last abstract index.
fn monotone_match(
    ct: &[u32],
    at: &[u32],
    refines: &mut impl FnMut(u32, u32) -> bool,
) -> bool {
    if ct.is_empty() || at.is_empty() {
        return ct.is_empty() && at.is_empty();
    }
    let mut cur = vec![false; at.len()];
    cur[0] = refines(ct[0], at[0]);
    for &c in &ct[1..] {
        let mut next = vec![false; at.len()];
        let mut any = false;
        for j in 0..at.len() {
            if !cur[j] {
                continue;
            }
            if refines(c, at[j]) {
                next[j] = true;
                any = true;
            }
            if j + 1 < at.len() && refines(c, at[j + 1]) {
                next[j + 1] = true;
                any = true;
            }
        }
        if !any {
            return false;
        }
        cur = next;
    }
    cur[at.len() - 1]
}

/// Definition 6/7 checked literally: `C[AO] ⊑ C[CO]` iff every stutter-free
/// concrete trace monotonically refines some stutter-free abstract trace.
pub fn check_trace_inclusion(
    abs: &CfgProgram,
    abs_objs: &dyn ObjectSemantics,
    conc: &CfgProgram,
    conc_objs: &dyn ObjectSemantics,
    shape: &ClientShape,
    opts: TraceOptions,
) -> InclusionReport {
    let aset = stutter_free_traces(abs, abs_objs, shape, opts);
    let cset = stutter_free_traces(conc, conc_objs, shape, opts);

    // Cache pointwise refinement verdicts between projection ids.
    let mut cache: FxHashMap<(u32, u32), bool> = FxHashMap::default();
    let mut refines = |c: u32, a: u32| -> bool {
        *cache
            .entry((c, a))
            .or_insert_with(|| cset.projs[c as usize].refines(&aset.projs[a as usize]))
    };

    let mut counterexample = None;
    let mut holds = true;
    for ct in &cset.traces {
        let matched = aset.traces.iter().any(|at| monotone_match(ct, at, &mut refines));
        if !matched {
            holds = false;
            counterexample =
                Some(ct.iter().map(|&i| cset.projs[i as usize].clone()).collect());
            break;
        }
    }
    InclusionReport {
        holds,
        concrete_traces: cset.traces.len(),
        abstract_traces: aset.traces.len(),
        counterexample,
        truncated: aset.truncated || cset.truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness;
    use rc11_lang::compile;
    use rc11_lang::inline::instantiate;
    use rc11_lang::machine::NoObjects;
    use rc11_objects::AbstractObjects;

    fn inclusion(imp: rc11_lang::ObjectImpl) -> InclusionReport {
        let (abs_prog, l) = harness::handoff_client();
        let shape = ClientShape::of(&abs_prog);
        let conc_prog = instantiate(&abs_prog, l, &imp);
        check_trace_inclusion(
            &compile(&abs_prog),
            &AbstractObjects,
            &compile(&conc_prog),
            &NoObjects,
            &shape,
            TraceOptions::default(),
        )
    }

    #[test]
    fn abstract_traces_are_self_included() {
        let (abs_prog, _) = harness::handoff_client();
        let shape = ClientShape::of(&abs_prog);
        let cfg = compile(&abs_prog);
        let report = check_trace_inclusion(
            &cfg,
            &AbstractObjects,
            &cfg,
            &AbstractObjects,
            &shape,
            TraceOptions::default(),
        );
        assert!(report.holds, "reflexivity");
        assert!(report.abstract_traces > 0);
    }

    #[test]
    fn seqlock_trace_inclusion_holds() {
        let report = inclusion(rc11_locks::seqlock());
        assert!(report.holds, "{report:?}");
        assert!(!report.truncated);
    }

    #[test]
    fn noop_lock_trace_inclusion_fails() {
        let report = inclusion(rc11_locks::broken_noop_lock());
        assert!(!report.holds);
        assert!(report.counterexample.is_some());
    }
}
