//! # rc11-refine — contextual refinement (Section 6)
//!
//! What it means for a concrete library to implement an abstract one in
//! RC11 RAR, checked two independent ways:
//!
//! * [`sim`] — the forward-simulation rule of Definition 8, searched over
//!   the maximal candidate relation (sound and, over finite spaces with the
//!   fixed Definition-8 relation, complete — refutations carry traces);
//! * [`traces`] — Definitions 5–7 read literally: enumerate the stutter-free
//!   client traces of `C[AO]` and `C[CO]` and check pointwise inclusion.
//!   Exponential; kept as the Theorem-8.1 cross-check and bench baseline.
//!
//! [`proj`] defines the client-state projection and Definition 5's
//! refinement order; [`harness`] the synchronisation-free clients.

#![warn(missing_docs)]

pub mod harness;
pub mod proj;
pub mod sim;
pub mod traces;

pub use proj::{ClientProj, ClientShape};
pub use sim::{check_forward_simulation, SimOptions, SimReport};
pub use traces::{
    check_trace_inclusion, stutter_free_traces, InclusionReport, TraceOptions, TraceSet,
};

use rc11_lang::inline::ObjectImpl;
use rc11_lang::machine::NoObjects;
use rc11_lang::{compile, ObjRef, Program};
use rc11_objects::AbstractObjects;

/// One-call convenience: check that `imp` contextually refines the abstract
/// lock for the given client (the client must use exactly one abstract
/// object, `obj`). Returns the simulation report.
pub fn check_lock_refinement(client: &Program, obj: ObjRef, imp: &ObjectImpl) -> SimReport {
    let shape = ClientShape::of(client);
    let conc = rc11_lang::inline::instantiate(client, obj, imp);
    check_forward_simulation(
        &compile(client),
        &AbstractObjects,
        &compile(&conc),
        &NoObjects,
        &shape,
        SimOptions::default(),
    )
}
