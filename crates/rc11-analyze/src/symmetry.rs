//! Thread-symmetry detection and the sorted-orbit canonical choice.
//!
//! Two threads are *symmetric* when their compiled instruction streams are
//! identical modulo a consistent renaming of registers (and, implicitly, of
//! the thread id itself). Swapping two symmetric threads in any reachable
//! configuration yields another reachable configuration with the same
//! future behaviour up to the same swap — a program automorphism — so an
//! explorer may identify configurations that differ only by such a swap.
//! On fully symmetric programs this sheds up to `N!` redundancy that
//! partial-order reduction cannot see (POR prunes *transitions*; symmetry
//! identifies *states*). DESIGN.md ablation A6 states the full soundness
//! argument.
//!
//! Detection ([`thread_symmetry`]) partitions threads into groups with
//! equal register-renumbered instruction streams, equal label/region maps
//! and compatible register initialisation; the canonical choice
//! ([`SymmetrySpec::choose`]) picks, per configuration, the permutation
//! that sorts each group's members by a permutation-invariant per-thread
//! key, so every orbit member maps to the same representative.

use rc11_core::{CanonPerms, Loc, Tid, Val};
use rc11_lang::cfg::{CfgProgram, Instr};
use rc11_lang::{Config, Exp, Reg, SymMaps};

/// Orbit-size cap: groups whose combined orbit (product of factorials)
/// exceeds this are not worth the per-state canonical-choice and orbit
/// expansion cost; detection returns a trivial spec instead.
pub const ORBIT_CAP: usize = 10_000;

/// The thread-symmetry structure of one compiled program.
#[derive(Debug, Clone)]
pub struct SymmetrySpec {
    /// Symmetric groups: thread indices, each sorted ascending, size ≥ 2.
    groups: Vec<Vec<u8>>,
    /// Per-thread register renaming maps into representative numbering.
    maps: SymMaps,
    n_threads: usize,
    /// When detection found groups whose combined orbit exceeds
    /// [`ORBIT_CAP`], the spec degrades to trivial and this records the
    /// abandoned orbit size so callers can surface the downgrade.
    capped: Option<usize>,
}

/// Collect the registers an instruction mentions, in a fixed left-to-right
/// order (destination first) — the order that defines first-use register
/// renumbering.
fn instr_regs(i: &Instr, out: &mut Vec<Reg>) {
    match i {
        Instr::Assign(r, e) => {
            out.push(*r);
            e.regs(out);
        }
        Instr::Write { exp, .. } => exp.regs(out),
        Instr::Read { reg, .. } => out.push(*reg),
        Instr::Cas { reg, expect, new, .. } => {
            out.push(*reg);
            expect.regs(out);
            new.regs(out);
        }
        Instr::Fai { reg, .. } => out.push(*reg),
        Instr::Method { reg, arg, .. } => {
            if let Some(r) = reg {
                out.push(*r);
            }
            if let Some(a) = arg {
                a.regs(out);
            }
        }
        Instr::JmpUnless { cond, .. } => cond.regs(out),
        Instr::Jmp(_) | Instr::Halt => {}
    }
}

/// Rewrite every register mention in an expression through `m`.
fn map_exp(e: &Exp, m: &[u16]) -> Exp {
    match e {
        Exp::Val(v) => Exp::Val(*v),
        Exp::Reg(r) => Exp::Reg(Reg(m[r.idx()])),
        Exp::Un(op, a) => Exp::Un(*op, Box::new(map_exp(a, m))),
        Exp::Bin(op, a, b) => Exp::Bin(*op, Box::new(map_exp(a, m)), Box::new(map_exp(b, m))),
    }
}

/// Rewrite every register mention in an instruction through `m`.
fn map_instr(i: &Instr, m: &[u16]) -> Instr {
    let mr = |r: &Reg| Reg(m[r.idx()]);
    match i {
        Instr::Assign(r, e) => Instr::Assign(mr(r), map_exp(e, m)),
        Instr::Write { var, exp, rel } => {
            Instr::Write { var: *var, exp: map_exp(exp, m), rel: *rel }
        }
        Instr::Read { reg, var, acq } => Instr::Read { reg: mr(reg), var: *var, acq: *acq },
        Instr::Cas { reg, var, expect, new } => Instr::Cas {
            reg: mr(reg),
            var: *var,
            expect: map_exp(expect, m),
            new: map_exp(new, m),
        },
        Instr::Fai { reg, var } => Instr::Fai { reg: mr(reg), var: *var },
        Instr::Method { reg, obj, method, arg, sync } => Instr::Method {
            reg: reg.as_ref().map(mr),
            obj: *obj,
            method: *method,
            arg: arg.as_ref().map(|a| map_exp(a, m)),
            sync: *sync,
        },
        Instr::Jmp(t) => Instr::Jmp(*t),
        Instr::JmpUnless { cond, target } => {
            Instr::JmpUnless { cond: map_exp(cond, m), target: *target }
        }
        Instr::Halt => Instr::Halt,
    }
}

/// First-use renumbering of one thread's registers over its instruction
/// stream: registers get representative indices in order of first mention;
/// never-mentioned registers follow in index order. Returns `to_rep`
/// (`to_rep[r] = representative index`).
fn first_use_numbering(instrs: &[Instr], n_regs: u16) -> Vec<u16> {
    let mut to_rep = vec![u16::MAX; n_regs as usize];
    let mut next = 0u16;
    let mut buf = Vec::new();
    for i in instrs {
        buf.clear();
        instr_regs(i, &mut buf);
        for r in &buf {
            if to_rep[r.idx()] == u16::MAX {
                to_rep[r.idx()] = next;
                next += 1;
            }
        }
    }
    for slot in to_rep.iter_mut() {
        if *slot == u16::MAX {
            *slot = next;
            next += 1;
        }
    }
    to_rep
}

/// Detect the thread-symmetry groups of `prog`.
///
/// Threads land in the same group iff their instruction streams are equal
/// after first-use register renumbering, their label and region maps are
/// equal, they have the same register count, and their register
/// initialisation vectors agree position-wise *in representative
/// numbering* (so the renaming is an initialisation-preserving bijection).
/// Groups of size 1 are dropped; if the combined orbit size exceeds an
/// internal cap the whole spec degrades to trivial.
pub fn thread_symmetry(prog: &CfgProgram) -> SymmetrySpec {
    let n = prog.n_threads();
    let mut to_rep: Vec<Vec<u16>> = Vec::with_capacity(n);
    let mut keys: Vec<(Vec<Instr>, Vec<Val>)> = Vec::with_capacity(n);
    for (t, th) in prog.threads.iter().enumerate() {
        let def = &prog.source.threads[t];
        let map = first_use_numbering(&th.instrs, def.n_regs);
        let stream: Vec<Instr> = th.instrs.iter().map(|i| map_instr(i, &map)).collect();
        // Initial register values in representative order.
        let mut inits = vec![Val::Bot; def.n_regs as usize];
        for (r, &rep) in map.iter().enumerate() {
            inits[rep as usize] = def.reg_inits[r];
        }
        keys.push((stream, inits));
        to_rep.push(map);
    }

    // Group threads with equal keys (streams + rep-ordered inits + labels +
    // regions). Quadratic in thread count, which is tiny.
    let mut groups: Vec<Vec<u8>> = Vec::new();
    let mut grouped = vec![false; n];
    for t in 0..n {
        if grouped[t] {
            continue;
        }
        let mut g = vec![t as u8];
        for u in t + 1..n {
            if grouped[u]
                || keys[t] != keys[u]
                || prog.threads[t].labels != prog.threads[u].labels
                || prog.threads[t].region != prog.threads[u].region
            {
                continue;
            }
            grouped[u] = true;
            g.push(u as u8);
        }
        if g.len() >= 2 {
            for &m in &g {
                grouped[m as usize] = true;
            }
            groups.push(g);
        }
    }

    let orbit: usize = groups.iter().map(|g| factorial(g.len())).product();
    let capped = (orbit > ORBIT_CAP).then_some(orbit);
    if capped.is_some() {
        groups.clear();
    }

    // Threads outside every group keep identity maps — cheaper than the
    // first-use renumbering round-trip and observably identical.
    let in_group: Vec<bool> = {
        let mut v = vec![false; n];
        for g in &groups {
            for &m in g {
                v[m as usize] = true;
            }
        }
        v
    };
    let to_rep: Vec<Vec<u16>> = to_rep
        .into_iter()
        .enumerate()
        .map(|(t, m)| {
            if in_group[t] {
                m
            } else {
                (0..prog.source.threads[t].n_regs).collect()
            }
        })
        .collect();
    let from_rep: Vec<Vec<u16>> = to_rep
        .iter()
        .map(|m| {
            let mut inv = vec![0u16; m.len()];
            for (r, &rep) in m.iter().enumerate() {
                inv[rep as usize] = r as u16;
            }
            inv
        })
        .collect();

    SymmetrySpec { groups, maps: SymMaps { to_rep, from_rep }, n_threads: n, capped }
}

fn factorial(n: usize) -> usize {
    (2..=n).product::<usize>().max(1)
}

impl SymmetrySpec {
    /// True iff no symmetry group was detected (or detection was disabled
    /// by the orbit cap) — canonical choice is then always the identity.
    pub fn is_trivial(&self) -> bool {
        self.groups.is_empty()
    }

    /// The detected groups: sorted thread indices, each of size ≥ 2.
    pub fn groups(&self) -> &[Vec<u8>] {
        &self.groups
    }

    /// The per-thread register renaming maps.
    pub fn maps(&self) -> &SymMaps {
        &self.maps
    }

    /// Number of threads in the analysed program.
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// The orbit size: product over groups of `|group|!`.
    pub fn orbit_size(&self) -> usize {
        self.groups.iter().map(|g| factorial(g.len())).product()
    }

    /// When detection hit [`ORBIT_CAP`] and degraded to the trivial spec,
    /// the orbit size it gave up on; `None` for genuine (or genuinely
    /// trivial) specs. Engines surface this as a structured report note.
    pub fn capped_orbit(&self) -> Option<usize> {
        self.capped
    }

    /// The canonical group permutation for `cfg`: sorts each group's
    /// members by a permutation-invariant per-thread key (pc, register
    /// file in representative numbering, thread views remapped to
    /// canonical op positions, authorship sets), assigning the group's
    /// thread ids ascending in key order. Returns `None` when the choice
    /// is the identity (the overwhelmingly common case).
    ///
    /// Key invariance makes the choice orbit-constant: applying any group
    /// permutation to `cfg` permutes the members' keys without changing
    /// them (op permutations depend only on per-location modification
    /// orders, which thread renaming leaves untouched), so every orbit
    /// member sorts to the same representative. Members with *equal* keys
    /// are fully interchangeable (equal keys imply empty authorship and
    /// identical control/view content), so the stable sort's tie order is
    /// immaterial — and an index tiebreak would *break* invariance.
    pub fn choose(&self, cfg: &Config, perms: &CanonPerms) -> Option<Vec<u8>> {
        if self.groups.is_empty() {
            return None;
        }
        let mut sigma: Vec<u8> = (0..self.n_threads as u8).collect();
        let mut changed = false;
        for g in &self.groups {
            let mut keyed: Vec<(ThreadKey, u8)> =
                g.iter().map(|&t| (self.thread_key(cfg, perms, t), t)).collect();
            keyed.sort_by(|a, b| a.0.cmp(&b.0));
            for (i, &(_, old_t)) in keyed.iter().enumerate() {
                let dest = g[i];
                sigma[old_t as usize] = dest;
                changed |= dest != old_t;
            }
        }
        changed.then_some(sigma)
    }

    /// The permutation-invariant sort key of group member `t` at `cfg`.
    fn thread_key(&self, cfg: &Config, perms: &CanonPerms, t: u8) -> ThreadKey {
        let ti = t as usize;
        let file = &cfg.locals[ti];
        let from_rep = &self.maps.from_rep[ti];
        let locals_rep: Vec<Val> =
            from_rep.iter().map(|&r| file[r as usize]).collect();
        let remap_view = |view: &rc11_core::View, perm: &[rc11_core::OpId]| -> Vec<u32> {
            view.as_slice().iter().map(|e| perm[e.idx()].0).collect()
        };
        let tid = Tid(t);
        let client = cfg.mem.client();
        let lib = cfg.mem.lib();
        ThreadKey {
            pc: cfg.pcs[ti],
            locals_rep,
            client_view: remap_view(client.tview(tid), &perms.client),
            lib_view: remap_view(lib.tview(tid), &perms.lib),
            client_auth: authorship(client, &perms.client, tid),
            lib_auth: authorship(lib, &perms.lib, tid),
        }
    }

    /// All group permutations (full `sigma` vectors over every thread),
    /// identity included — the orbit expansion set. Bounded by the
    /// detection-time orbit cap.
    pub fn group_perms(&self) -> Vec<Vec<u8>> {
        let identity: Vec<u8> = (0..self.n_threads as u8).collect();
        let mut out = vec![identity];
        for g in &self.groups {
            let perms_of_g = permutations(g);
            let mut next = Vec::with_capacity(out.len() * perms_of_g.len());
            for base in &out {
                for p in &perms_of_g {
                    let mut sigma = base.clone();
                    for (i, &m) in g.iter().enumerate() {
                        sigma[m as usize] = p[i];
                    }
                    next.push(sigma);
                }
            }
            out = next;
        }
        out
    }
}

/// The permutation-invariant per-thread sort key (see
/// [`SymmetrySpec::choose`]).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct ThreadKey {
    pc: u32,
    locals_rep: Vec<Val>,
    client_view: Vec<u32>,
    lib_view: Vec<u32>,
    client_auth: Vec<u32>,
    lib_auth: Vec<u32>,
}

/// Canonical op positions of the non-initialisation operations authored by
/// `tid` in one component, in `(location, mo-position)` order. Init ops
/// (mo-position 0 everywhere) carry a dummy tid and are excluded.
fn authorship(st: &rc11_core::CState, perm: &[rc11_core::OpId], tid: Tid) -> Vec<u32> {
    let mut out = Vec::new();
    for li in 0..st.n_locs() {
        for (pos, &w) in st.mo(Loc(li as u16)).iter().enumerate() {
            if pos > 0 && st.op(w).tid == tid {
                out.push(perm[w.idx()].0);
            }
        }
    }
    out
}

/// All permutations of `items` (each returned as a reordering of the input
/// slice), in a deterministic order.
fn permutations(items: &[u8]) -> Vec<Vec<u8>> {
    if items.len() <= 1 {
        return vec![items.to_vec()];
    }
    let mut out = Vec::new();
    for (i, &first) in items.iter().enumerate() {
        let mut rest = items.to_vec();
        rest.remove(i);
        for mut tail in permutations(&rest) {
            tail.insert(0, first);
            out.push(tail);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc11_core::Comp;
    use rc11_lang::ast::Com;
    use rc11_lang::cfg::compile;
    use rc11_lang::parse_litmus;
    use rc11_lang::program::Program;

    fn compiled(src: &str) -> CfgProgram {
        compile(&parse_litmus(src).unwrap().prog)
    }

    #[test]
    fn identical_threads_group_together() {
        let prog = compiled(
            r#"
            litmus "sym"
            var x = 0
            thread A { r = fai(x); }
            thread B { s = fai(x); }
            thread C { t = fai(x); }
            observe A.r B.s C.t
            expected { (0,1,2) (0,2,1) (1,0,2) (1,2,0) (2,0,1) (2,1,0) }
        "#,
        );
        let spec = thread_symmetry(&prog);
        assert_eq!(spec.groups(), &[vec![0, 1, 2]]);
        assert_eq!(spec.orbit_size(), 6);
        assert_eq!(spec.group_perms().len(), 6);
    }

    #[test]
    fn register_renaming_is_modded_out() {
        // Same streams with differently-ordered register introductions.
        let prog = compiled(
            r#"
            litmus "ren"
            var x = 0
            thread A { a1 = 1; a2 = a1 + 1; x = a2; }
            thread B { b9 = 1; b3 = b9 + 1; x = b3; }
            observe A.a1 B.b9
            expected { (1,1) }
        "#,
        );
        let spec = thread_symmetry(&prog);
        assert_eq!(spec.groups(), &[vec![0, 1]]);
    }

    #[test]
    fn asymmetric_threads_stay_apart() {
        let prog = compiled(
            r#"
            litmus "asym"
            var x = 0
            var y = 0
            thread A { x = 1; }
            thread B { y = 1; }
            thread C { r = x; }
            observe C.r
            expected { (0) (1) }
        "#,
        );
        let spec = thread_symmetry(&prog);
        assert!(spec.is_trivial(), "different locations must not be symmetric: {spec:?}");
    }

    #[test]
    fn release_annotation_breaks_symmetry() {
        use rc11_core::{InitLoc, LocKind, LocTable};
        use rc11_lang::ast::{Exp, VarRef};
        use rc11_lang::program::ThreadDef;
        let mut locs = LocTable::new();
        locs.add("x", LocKind::Var);
        let var = VarRef { comp: Comp::Client, loc: Loc(0) };
        let mk = |rel: bool| ThreadDef {
            body: Com::Write { var, exp: Exp::Val(Val::Int(1)), rel },
            n_regs: 0,
            reg_names: vec![],
            reg_inits: vec![],
        };
        let prog = Program {
            name: "ann".into(),
            client_locs: locs,
            client_inits: vec![InitLoc::Var(Val::Int(0))],
            lib_locs: LocTable::new(),
            lib_inits: vec![],
            objects: vec![],
            threads: vec![mk(false), mk(true)],
        };
        prog.validate().unwrap();
        let spec = thread_symmetry(&compile(&prog));
        assert!(spec.is_trivial());
    }

    #[test]
    fn differing_reg_inits_break_symmetry() {
        use rc11_core::{InitLoc, LocKind, LocTable};
        use rc11_lang::ast::{Exp, VarRef};
        use rc11_lang::program::ThreadDef;
        let mut locs = LocTable::new();
        locs.add("x", LocKind::Var);
        let var = VarRef { comp: Comp::Client, loc: Loc(0) };
        let mk = |init: i64| ThreadDef {
            body: Com::Write { var, exp: Exp::Reg(Reg(0)), rel: false },
            n_regs: 1,
            reg_names: vec!["r0".into()],
            reg_inits: vec![Val::Int(init)],
        };
        let prog = Program {
            name: "inits".into(),
            client_locs: locs,
            client_inits: vec![InitLoc::Var(Val::Int(0))],
            lib_locs: LocTable::new(),
            lib_inits: vec![],
            objects: vec![],
            threads: vec![mk(1), mk(2)],
        };
        prog.validate().unwrap();
        let spec = thread_symmetry(&compile(&prog));
        assert!(spec.is_trivial());
    }

    #[test]
    fn choice_identifies_the_initial_orbit() {
        let prog = compiled(
            r#"
            litmus "orbit"
            var x = 0
            thread A { r = fai(x); }
            thread B { s = fai(x); }
            observe A.r B.s
            expected { (0,1) (1,0) }
        "#,
        );
        let spec = thread_symmetry(&prog);
        let init = Config::initial(&prog);
        // Initial state: all keys equal, the choice is the identity.
        let perms = init.canonical_perms();
        assert!(spec.choose(&init, &perms).is_none());

        // Every orbit member of any reachable state canonicalises (with the
        // chosen permutation installed) to the same form.
        let succs = rc11_lang::successors(&prog, &rc11_lang::NoObjects, &init, Default::default());
        for (_, s) in &succs {
            let canon_of = |c: &Config| {
                let mut perms = c.canonical_perms();
                perms.threads = spec.choose(c, &perms);
                c.canonical_sym(&perms, spec.maps())
            };
            let mirror = s.permute_threads(&[1, 0], spec.maps());
            assert_eq!(canon_of(s), canon_of(&mirror), "orbit members must coincide");
        }
    }
}
