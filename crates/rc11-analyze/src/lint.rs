//! Span-carrying diagnostics for litmus files.
//!
//! The rules catch the mistakes that actually happen when writing litmus
//! tests by hand: registers and variables that never feed an outcome,
//! loops that can never terminate or never exit visibly, code that can
//! never run, and `observe`/`expected` blocks that don't say what the
//! author meant. Two rules are hard errors because the checkers cannot
//! do anything sensible with the file: an empty `expected` set (every
//! outcome would be a violation) and more threads than the 64-bit
//! reduction masks address.
//!
//! A finding is suppressed by a `// lint: allow(rule-name)` comment
//! anywhere in the file (the parser collects these off the raw text,
//! since comments never reach the token stream).

use rc11_lang::ast::{Com, Exp, Reg, VarRef};
use rc11_lang::parse::const_bool;
use rc11_lang::{ParsedLitmus, Span};

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but runnable; `--deny-warnings` upgrades these.
    Warning,
    /// The file cannot be checked meaningfully.
    Error,
}

/// The lint rules. `name()` gives the kebab-case identifier used in
/// rendered diagnostics and `// lint: allow(…)` comments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// A register is assigned but never read in an expression or observed.
    UnusedRegister,
    /// A shared variable is declared but no thread reads or writes it.
    UnusedVariable,
    /// A shared variable is written but never read — no outcome can
    /// depend on the values stored there.
    WriteOnlyLocation,
    /// A shared variable is read but never written — every read returns
    /// the initial value, so the variable could be a constant.
    ReadOnlyLocation,
    /// A statement follows `while (true) { … }`; the language has no
    /// `break`, so it can never execute.
    UnreachableCode,
    /// A loop guard is a constant: `while (true)` never terminates (no
    /// `break` exists) and `do … until (false)` likewise; `while (false)`
    /// never runs its body.
    ConstantGuard,
    /// No statement in a loop's body assigns any register the guard
    /// reads, so the guard can never change once the loop is entered.
    DivergentLoop,
    /// The same `thread.register` appears twice in `observe`.
    DuplicateObserve,
    /// The `expected` set is empty, which declares every outcome a
    /// violation.
    EmptyExpected,
    /// More threads than the 64-bit reduction masks support.
    TooManyThreads,
}

impl Rule {
    /// The kebab-case rule identifier.
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnusedRegister => "unused-register",
            Rule::UnusedVariable => "unused-variable",
            Rule::WriteOnlyLocation => "write-only-location",
            Rule::ReadOnlyLocation => "read-only-location",
            Rule::UnreachableCode => "unreachable-code",
            Rule::ConstantGuard => "constant-guard",
            Rule::DivergentLoop => "divergent-loop",
            Rule::DuplicateObserve => "duplicate-observe",
            Rule::EmptyExpected => "empty-expected",
            Rule::TooManyThreads => "too-many-threads",
        }
    }

    fn severity(self) -> Severity {
        match self {
            Rule::EmptyExpected | Rule::TooManyThreads => Severity::Error,
            _ => Severity::Warning,
        }
    }
}

/// One finding: rule, severity, source position and message.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The rule that fired.
    pub rule: Rule,
    /// Its severity.
    pub severity: Severity,
    /// Where in the source.
    pub span: Span,
    /// Human-readable description.
    pub msg: String,
}

/// Render a diagnostic in the conventional `file:line:col: level[rule]:
/// message` form.
pub fn render_diagnostic(file: &str, d: &Diagnostic) -> String {
    let level = match d.severity {
        Severity::Warning => "warning",
        Severity::Error => "error",
    };
    format!("{file}:{}: {level}[{}]: {}", d.span, d.rule.name(), d.msg)
}

/// Per-register / per-variable usage counters accumulated from the bodies.
#[derive(Default, Clone)]
struct Usage {
    reads: u32,
    writes: u32,
}

/// Lint one parsed litmus test. Findings suppressed by the file's
/// `// lint: allow(…)` comments are dropped; the rest come back in
/// source order per rule group.
pub fn lint(p: &ParsedLitmus) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut emit = |rule: Rule, span: Span, msg: String| {
        if !p.lint.allows.iter().any(|a| a == rule.name()) {
            out.push(Diagnostic { rule, severity: rule.severity(), span, msg });
        }
    };

    // Usage counters: one per declared variable, one per (thread, reg).
    let mut var_use: Vec<Usage> = vec![Usage::default(); p.lint.vars.len()];
    let var_slot = |v: VarRef| p.lint.vars.iter().position(|(w, _, _)| *w == v);
    let mut reg_use: Vec<Vec<Usage>> =
        p.lint.threads.iter().map(|t| vec![Usage::default(); t.regs.len()]).collect();
    // The loop nodes, across threads in declaration order — `Com::visit`
    // is pre-order, which is exactly the order the parser recorded
    // `loop_spans` in (spans are pushed at the `while`/`do` keyword,
    // before the body is parsed).
    let mut loops: Vec<(usize, Exp, Com)> = Vec::new();

    for (ti, td) in p.prog.threads.iter().enumerate() {
        let mut exp_regs = Vec::new();
        td.body.visit(&mut |c| {
            let mut read_var = |v: &VarRef| {
                if let Some(i) = var_slot(*v) {
                    var_use[i].reads += 1;
                }
            };
            match c {
                Com::Assign(r, e) => {
                    reg_use[ti][r.idx()].writes += 1;
                    e.regs(&mut exp_regs);
                }
                Com::Write { var, exp, .. } => {
                    if let Some(i) = var_slot(*var) {
                        var_use[i].writes += 1;
                    }
                    exp.regs(&mut exp_regs);
                }
                Com::Read { reg, var, .. } => {
                    reg_use[ti][reg.idx()].writes += 1;
                    read_var(var);
                }
                Com::Cas { reg, var, expect, new } => {
                    reg_use[ti][reg.idx()].writes += 1;
                    read_var(var);
                    if let Some(i) = var_slot(*var) {
                        var_use[i].writes += 1;
                    }
                    expect.regs(&mut exp_regs);
                    new.regs(&mut exp_regs);
                }
                Com::Fai { reg, var } => {
                    reg_use[ti][reg.idx()].writes += 1;
                    read_var(var);
                    if let Some(i) = var_slot(*var) {
                        var_use[i].writes += 1;
                    }
                }
                Com::MethodCall { reg, arg, .. } => {
                    if let Some(r) = reg {
                        reg_use[ti][r.idx()].writes += 1;
                    }
                    if let Some(a) = arg {
                        a.regs(&mut exp_regs);
                    }
                }
                Com::If { cond, .. } => cond.regs(&mut exp_regs),
                Com::While { cond, body } => {
                    cond.regs(&mut exp_regs);
                    loops.push((ti, cond.clone(), (**body).clone()));
                }
                Com::DoUntil { body, cond } => {
                    cond.regs(&mut exp_regs);
                    loops.push((ti, cond.clone(), (**body).clone()));
                }
                Com::Skip | Com::Seq(..) | Com::Labeled(..) => {}
            }
            for r in exp_regs.drain(..) {
                if r.idx() < reg_use[ti].len() {
                    reg_use[ti][r.idx()].reads += 1;
                }
            }
        });
    }
    // Observed registers count as read: they are the outcome.
    for &(ti, r) in &p.observe {
        if ti < reg_use.len() && r.idx() < reg_use[ti].len() {
            reg_use[ti][r.idx()].reads += 1;
        }
    }

    // --- unused-variable / write-only-location / read-only-location ---
    for ((var, name, span), u) in p.lint.vars.iter().zip(&var_use) {
        let _ = var;
        if u.reads == 0 && u.writes == 0 {
            emit(
                Rule::UnusedVariable,
                *span,
                format!("shared variable `{name}` is never read or written"),
            );
        } else if u.reads == 0 {
            emit(
                Rule::WriteOnlyLocation,
                *span,
                format!("shared variable `{name}` is written but never read"),
            );
        } else if u.writes == 0 {
            emit(
                Rule::ReadOnlyLocation,
                *span,
                format!(
                    "shared variable `{name}` is never written; \
                     every read returns its initial value"
                ),
            );
        }
    }

    // --- unused-register ---
    for (t, tl) in p.lint.threads.iter().enumerate() {
        for (r, (name, span)) in tl.regs.iter().enumerate() {
            if reg_use[t][r].reads == 0 {
                emit(
                    Rule::UnusedRegister,
                    *span,
                    format!(
                        "register `{name}` of thread `{}` is assigned \
                         but never read or observed",
                        tl.name
                    ),
                );
            }
        }
    }

    // --- unreachable-code ---
    for span in &p.lint.unreachable {
        emit(
            Rule::UnreachableCode,
            *span,
            "statement follows `while (true)` and can never execute".to_string(),
        );
    }

    // --- constant-guard / divergent-loop ---
    for ((ti, cond, body), span) in loops.iter().zip(&p.lint.loop_spans) {
        if let Some(b) = const_bool(cond) {
            emit(
                Rule::ConstantGuard,
                *span,
                format!(
                    "loop guard is constantly `{b}`; the loop {}",
                    if b { "can never exit (the language has no `break`)" } else { "never runs" }
                ),
            );
            continue;
        }
        let mut guard_regs = Vec::new();
        cond.regs(&mut guard_regs);
        guard_regs.sort_unstable();
        guard_regs.dedup();
        let mut assigns_guard = false;
        body.visit(&mut |c| {
            let dest: Option<Reg> = match c {
                Com::Assign(r, _) => Some(*r),
                Com::Read { reg, .. } | Com::Cas { reg, .. } | Com::Fai { reg, .. } => Some(*reg),
                Com::MethodCall { reg, .. } => *reg,
                _ => None,
            };
            if let Some(r) = dest {
                assigns_guard |= guard_regs.contains(&r);
            }
        });
        if !assigns_guard {
            let names: Vec<&str> = guard_regs
                .iter()
                .filter_map(|r| p.lint.threads[*ti].regs.get(r.idx()).map(|(n, _)| n.as_str()))
                .collect();
            emit(
                Rule::DivergentLoop,
                *span,
                format!(
                    "loop body never assigns the guard register{} `{}`; \
                     the guard cannot change once the loop is entered",
                    if names.len() == 1 { "" } else { "s" },
                    names.join("`, `")
                ),
            );
        }
    }

    // --- duplicate-observe ---
    for (i, pair) in p.observe.iter().enumerate() {
        if p.observe[..i].contains(pair) {
            let (t, r) = &p.observe_names[i];
            let span = p.lint.observe_spans.get(i).copied().unwrap_or_default();
            emit(
                Rule::DuplicateObserve,
                span,
                format!("`{t}.{r}` appears more than once in `observe`"),
            );
        }
    }

    // --- empty-expected ---
    if p.expected.is_empty() {
        emit(
            Rule::EmptyExpected,
            p.lint.expected_span,
            "`expected` set is empty: every outcome would be a violation".to_string(),
        );
    }

    // --- too-many-threads ---
    if p.prog.n_threads() > 64 {
        let span = p.lint.threads.get(64).map(|t| t.span).unwrap_or_default();
        emit(
            Rule::TooManyThreads,
            span,
            format!(
                "{} threads exceed the 64-thread limit of the reduction \
                 masks; `--por` falls back to unreduced search",
                p.prog.n_threads()
            ),
        );
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc11_lang::parse_litmus;

    fn lint_src(src: &str) -> Vec<Diagnostic> {
        lint(&parse_litmus(src).unwrap())
    }

    fn fired(ds: &[Diagnostic], rule: Rule) -> Option<&Diagnostic> {
        ds.iter().find(|d| d.rule == rule)
    }

    #[test]
    fn clean_file_has_no_findings() {
        let ds = lint_src(
            r#"
            litmus "clean"
            var x = 0
            thread A { x = 1; }
            thread B { r = x; }
            observe B.r
            expected { (0) (1) }
        "#,
        );
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn unused_register_is_flagged_with_its_span() {
        let src = "litmus \"u\"\nvar x = 0\nthread A {\n  dead = 3;\n  x = 1;\n}\nthread B { r = x; }\nobserve B.r\nexpected { (0) (1) }";
        let ds = lint_src(src);
        let d = fired(&ds, Rule::UnusedRegister).expect("fires");
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!((d.span.line, d.span.col), (4, 3));
        assert!(d.msg.contains("`dead`"), "{}", d.msg);
        assert_eq!(
            render_diagnostic("f.litmus", d),
            format!("f.litmus:4:3: warning[unused-register]: {}", d.msg)
        );
    }

    #[test]
    fn observed_registers_are_not_unused() {
        let ds = lint_src(
            r#"
            litmus "o"
            var x = 0
            thread A { r = x; }
            observe A.r
            expected { (0) }
        "#,
        );
        assert!(fired(&ds, Rule::UnusedRegister).is_none(), "{ds:?}");
    }

    #[test]
    fn variable_usage_rules() {
        let ds = lint_src(
            r#"
            litmus "v"
            var never = 0
            var wonly = 0
            var ronly = 7
            thread A { wonly = 1; r = ronly; }
            observe A.r
            expected { (7) }
        "#,
        );
        assert!(fired(&ds, Rule::UnusedVariable).unwrap().msg.contains("`never`"));
        assert!(fired(&ds, Rule::WriteOnlyLocation).unwrap().msg.contains("`wonly`"));
        assert!(fired(&ds, Rule::ReadOnlyLocation).unwrap().msg.contains("`ronly`"));
    }

    #[test]
    fn cas_counts_as_read_and_write() {
        let ds = lint_src(
            r#"
            litmus "c"
            var x = 0
            thread A { r = cas(x, 0, 1); }
            observe A.r
            expected { (true) }
        "#,
        );
        assert!(fired(&ds, Rule::WriteOnlyLocation).is_none(), "{ds:?}");
        assert!(fired(&ds, Rule::ReadOnlyLocation).is_none(), "{ds:?}");
    }

    #[test]
    fn unreachable_code_after_while_true() {
        let src = "litmus \"w\"\nvar x = 0\nthread A {\n  while (true) { x = 1; }\n  r = x;\n}\nobserve A.r\nexpected { (1) }";
        let ds = lint_src(src);
        let d = fired(&ds, Rule::UnreachableCode).expect("fires");
        assert_eq!(d.span.line, 5);
        // The `while (true)` itself is also a constant guard.
        assert!(fired(&ds, Rule::ConstantGuard).is_some());
    }

    #[test]
    fn divergent_loop_guard_never_reassigned() {
        let ds = lint_src(
            r#"
            litmus "d"
            var x = 0
            var y = 0
            thread A { r = x; while (r == 0) { y = 1; } s = x; }
            observe A.s
            expected { (0) }
        "#,
        );
        let d = fired(&ds, Rule::DivergentLoop).expect("fires");
        assert!(d.msg.contains("`r`"), "{}", d.msg);
    }

    #[test]
    fn spin_loops_that_reload_the_guard_are_fine() {
        let ds = lint_src(
            r#"
            litmus "s"
            var f = 0
            thread A { f = 1; }
            thread B { do { r = f; } until (r == 1); s = r; }
            observe B.s
            expected { (1) }
        "#,
        );
        assert!(fired(&ds, Rule::DivergentLoop).is_none(), "{ds:?}");
        assert!(fired(&ds, Rule::ConstantGuard).is_none(), "{ds:?}");
    }

    #[test]
    fn duplicate_observe_and_empty_expected() {
        let ds = lint_src(
            r#"
            litmus "de"
            var x = 0
            thread A { r = x; }
            observe A.r A.r
            expected { }
        "#,
        );
        assert!(fired(&ds, Rule::DuplicateObserve).is_some(), "{ds:?}");
        let e = fired(&ds, Rule::EmptyExpected).expect("fires");
        assert_eq!(e.severity, Severity::Error);
    }

    #[test]
    fn allow_comments_suppress_rules() {
        let ds = lint_src(
            r#"
            litmus "a"
            // lint: allow(unused-variable, read-only-location)
            var never = 0
            var ronly = 1
            thread A { r = ronly; }
            observe A.r
            expected { (1) }
        "#,
        );
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn too_many_threads_is_an_error() {
        let mut src = String::from("litmus \"big\"\nvar x = 0\n");
        for i in 0..65 {
            src.push_str(&format!("thread T{i} {{ r = x; }}\n"));
        }
        src.push_str("observe T0.r\nexpected { (0) }");
        let ds = lint_src(&src);
        let d = fired(&ds, Rule::TooManyThreads).expect("fires");
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.span.line, 67, "span points at the 65th thread");
    }
}
