//! Static may-conflict matrices for partial-order reduction.
//!
//! Per thread, an over-approximate *static footprint*: every `(component,
//! location)` pair the thread's code can touch, with a may-write flag.
//! Two threads **may conflict** iff they share a touched pair one of them
//! may write; the complement — static independence — is sound in *every*
//! state, because the dynamic [`rc11_core::StepFootprint`] of any step is
//! always contained in the static footprint of its thread (a `CAS` that
//! dynamically refines to a failure read is statically an update; a method
//! call is statically a write unless it is the register object's read).
//!
//! `rc11-check`'s sleep-set computation consults the matrix as a free
//! pre-filter before extracting dynamic footprints, and the per-(thread,
//! location) API plus [`ConflictMatrix::read_only`] are the inputs a
//! persistent-set computation needs.

use rc11_core::{Comp, Loc};
use rc11_lang::ast::Method;
use rc11_lang::cfg::{CfgProgram, Instr};

/// One static footprint entry: a `(component, location)` the thread may
/// touch, and whether any of its accesses may modify the history there.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct StaticAccess {
    /// Owning component of the location.
    pub comp: Comp,
    /// The location.
    pub loc: Loc,
    /// May any access by this thread modify the location's history?
    pub writes: bool,
}

/// The static conflict structure of one compiled program.
#[derive(Debug, Clone)]
pub struct ConflictMatrix {
    /// Per-thread static footprints, deduplicated and sorted.
    footprints: Vec<Vec<StaticAccess>>,
    /// `indep[t]` has bit `u` set iff `u != t` and threads `t`,`u` are
    /// statically independent (no shared location with a static writer).
    indep: Vec<u64>,
}

/// Build the static conflict matrix of `prog`.
pub fn conflict_matrix(prog: &CfgProgram) -> ConflictMatrix {
    let n = prog.n_threads();
    let mut footprints: Vec<Vec<StaticAccess>> = Vec::with_capacity(n);
    for th in &prog.threads {
        let mut fp: Vec<StaticAccess> = Vec::new();
        let mut touch = |comp: Comp, loc: Loc, writes: bool| {
            if let Some(e) = fp.iter_mut().find(|e| e.comp == comp && e.loc == loc) {
                e.writes |= writes;
            } else {
                fp.push(StaticAccess { comp, loc, writes });
            }
        };
        for i in &th.instrs {
            match i {
                Instr::Write { var, .. } => touch(var.comp, var.loc, true),
                Instr::Read { var, .. } => touch(var.comp, var.loc, false),
                // Updates (and CAS, whatever its dynamic refinement) are
                // statically writes: static ⊇ dynamic.
                Instr::Cas { var, .. } | Instr::Fai { var, .. } => touch(var.comp, var.loc, true),
                Instr::Method { obj, method, .. } => {
                    // The abstract register's read never modifies the
                    // object history (mirrors `thread_footprint`).
                    let writes = !matches!(method, Method::RegRead);
                    touch(Comp::Lib, obj.loc, writes);
                }
                Instr::Assign(..) | Instr::Jmp(_) | Instr::JmpUnless { .. } | Instr::Halt => {}
            }
        }
        fp.sort_unstable();
        footprints.push(fp);
    }

    let mut indep = vec![0u64; n];
    for t in 0..n {
        for u in 0..n {
            if t == u || u >= 64 {
                continue;
            }
            let conflict = footprints[t].iter().any(|a| {
                footprints[u]
                    .iter()
                    .any(|b| a.comp == b.comp && a.loc == b.loc && (a.writes || b.writes))
            });
            if !conflict {
                indep[t] |= 1u64 << u;
            }
        }
    }
    ConflictMatrix { footprints, indep }
}

impl ConflictMatrix {
    /// May threads `t` and `u` ever perform conflicting steps? `true` for
    /// `t == u` (a thread always conflicts with itself, mirroring the
    /// dynamic oracle).
    pub fn may_conflict(&self, t: usize, u: usize) -> bool {
        if t == u {
            return true;
        }
        u >= 64 || self.indep[t] & (1u64 << u) == 0
    }

    /// Per-thread independence bitmasks: `static_indep()[t]` has bit `u`
    /// set iff `t` and `u` are statically independent. The sleep-set
    /// pre-filter consumes this directly.
    pub fn static_indep(&self) -> &[u64] {
        &self.indep
    }

    /// Thread `t`'s static footprint: every `(component, location)` it may
    /// touch, with the may-write flag.
    pub fn thread_footprint(&self, t: usize) -> &[StaticAccess] {
        &self.footprints[t]
    }

    /// True iff no thread's code may modify `loc`'s history — reads of it
    /// always observe the initialisation write.
    pub fn read_only(&self, comp: Comp, loc: Loc) -> bool {
        !self
            .footprints
            .iter()
            .any(|fp| fp.iter().any(|a| a.comp == comp && a.loc == loc && a.writes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc11_lang::cfg::compile;
    use rc11_lang::parse_litmus;

    fn matrix(src: &str) -> ConflictMatrix {
        conflict_matrix(&compile(&parse_litmus(src).unwrap().prog))
    }

    #[test]
    fn disjoint_writers_are_independent() {
        let m = matrix(
            r#"
            litmus "dis"
            var x = 0
            var y = 0
            thread A { x = 1; }
            thread B { y = 1; }
            thread C { r = x; }
            observe C.r
            expected { (0) (1) }
        "#,
        );
        assert!(!m.may_conflict(0, 1), "disjoint locations");
        assert!(m.may_conflict(0, 2), "A writes what C reads");
        assert!(!m.may_conflict(1, 2));
        assert!(m.may_conflict(1, 1), "self-conflict by convention");
        assert_eq!(m.static_indep()[0], 0b010);
    }

    #[test]
    fn readers_of_the_same_location_are_independent() {
        let m = matrix(
            r#"
            litmus "rr"
            var x = 0
            thread A { r = x; }
            thread B { s = x; }
            observe A.r B.s
            expected { (0,0) }
        "#,
        );
        assert!(!m.may_conflict(0, 1), "two readers never conflict");
        assert!(m.read_only(Comp::Client, Loc(0)));
    }

    #[test]
    fn cas_counts_as_a_static_writer() {
        let m = matrix(
            r#"
            litmus "cas"
            var x = 0
            thread A { r = cas(x, 0, 1); }
            thread B { s = x; }
            observe A.r B.s
            expected { (true,0) (true,1) }
        "#,
        );
        assert!(m.may_conflict(0, 1));
        assert!(!m.read_only(Comp::Client, Loc(0)));
        assert_eq!(
            m.thread_footprint(0),
            &[StaticAccess { comp: Comp::Client, loc: Loc(0), writes: true }]
        );
    }
}
