//! # rc11-analyze — static analyses over rc11 programs
//!
//! Everything here runs *before* exploration, over the compiled
//! [`rc11_lang::CfgProgram`] (or the parsed litmus file, for lint), and
//! feeds the checkers:
//!
//! * [`symmetry`] — detect groups of threads that are identical modulo a
//!   consistent renaming of thread id and registers, and pick a canonical
//!   representative per orbit so the explorers shed up to `N!` redundancy
//!   that partial-order reduction cannot see;
//! * [`conflict`] — over-approximate per-thread static footprints and the
//!   derived may-conflict matrix, a free pre-filter for the sleep-set
//!   computation and the input a persistent-set computation needs;
//! * [`persistent`] — pc-sensitive *future* static footprints and the
//!   per-state persistent-set closure DPOR (A7) expands instead of every
//!   thread;
//! * [`lint`] — span-carrying diagnostics for litmus files: dead
//!   registers and variables, unreachable code, loops that cannot
//!   terminate visibly, malformed `expected` blocks, and thread counts
//!   beyond what reduction supports.

#![warn(missing_docs)]

pub mod conflict;
pub mod lint;
pub mod persistent;
pub mod symmetry;

pub use conflict::{conflict_matrix, ConflictMatrix, StaticAccess};
pub use persistent::{future_footprints, FutureFootprints};
pub use lint::{lint, render_diagnostic, Diagnostic, Rule, Severity};
pub use symmetry::{thread_symmetry, SymmetrySpec, ORBIT_CAP};
