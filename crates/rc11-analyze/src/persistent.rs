//! Pc-sensitive future footprints and per-state persistent sets (A7).
//!
//! [`conflict_matrix`](crate::conflict_matrix) answers "may these two
//! threads *ever* conflict?" over whole thread bodies. Persistent-set
//! search needs the sharper, state-indexed question: "may they still
//! conflict from *here on*?" — a thread that has left its critical
//! section, or halted, should stop inflating every other thread's
//! conflict closure. This module computes, per `(thread, pc)`, the
//! **future static footprint**: the union of the static accesses of every
//! instruction reachable from that pc in the thread's own control-flow
//! graph (a monotone fixpoint over instruction successors — `Jmp`,
//! `JmpUnless` fan out, `Halt` stops). Dynamic step footprints are always
//! contained in the future footprint at the step's pc (the CAS
//! failure-read and empty-`pop`/`deq` read refinements only *shrink*
//! access kinds), so future-footprint disjointness is a sound
//! independence guarantee for **every** step either thread can still
//! take.
//!
//! [`FutureFootprints::persistent_mask`] derives a persistent set from
//! the future footprints: starting from a seed thread, close under
//! "some member's future footprint conflicts with yours" among the
//! non-halted threads. Every thread outside the closure is then
//! independent of every member for the rest of the run — by Godefroid's
//! persistent-set theorem, expanding only the closure at a state still
//! reaches every terminal and deadlocked configuration. The engines pick
//! the *smallest* closure over all seeds (ties to the lowest thread
//! index), which is a pure function of the program counters — both
//! engines, and every arrival at a state, agree on the set without
//! coordination.
//!
//! Capacity: footprint masks are `u128` bit vectors over the program's
//! distinct `(component, location)` pairs. Programs touching more than
//! 128 locations return `None` from [`future_footprints`] and the
//! checkers degrade to sleep-sets-only reduction (sound, just coarser);
//! thread counts beyond 64 are already handled by the engines' POR
//! fallback.

use rc11_lang::ast::Method;
use rc11_lang::cfg::{CfgProgram, Instr};

/// Future static footprints of one compiled program, indexed by
/// `(thread, pc)`. Built once per exploration by [`future_footprints`].
#[derive(Debug, Clone)]
pub struct FutureFootprints {
    /// `touch[t][pc]`: bit `i` set iff location-index `i` may be touched
    /// by some instruction reachable from `pc` in thread `t`.
    touch: Vec<Vec<u128>>,
    /// Like `touch`, but only accesses that may modify the location's
    /// history.
    write: Vec<Vec<u128>>,
    /// Per-thread halt pc (a thread parked there has no future steps).
    halt: Vec<u32>,
}

/// Build the future static footprints of `prog`, or `None` if the
/// program touches more than 128 distinct `(component, location)` pairs
/// (callers then fall back to sleep-sets-only reduction).
pub fn future_footprints(prog: &CfgProgram) -> Option<FutureFootprints> {
    // Index the program's distinct (component, location) pairs.
    let mut locs: Vec<(rc11_core::Comp, rc11_core::Loc)> = Vec::new();
    let mut access = |i: &Instr| -> Option<(u128, u128)> {
        let (comp, loc, writes) = match i {
            Instr::Write { var, .. } => (var.comp, var.loc, true),
            Instr::Read { var, .. } => (var.comp, var.loc, false),
            // Statically writes, whatever the dynamic refinement says.
            Instr::Cas { var, .. } | Instr::Fai { var, .. } => (var.comp, var.loc, true),
            Instr::Method { obj, method, .. } => {
                (rc11_core::Comp::Lib, obj.loc, !matches!(method, Method::RegRead))
            }
            Instr::Assign(..) | Instr::Jmp(_) | Instr::JmpUnless { .. } | Instr::Halt => {
                return Some((0, 0))
            }
        };
        let i = match locs.iter().position(|&p| p == (comp, loc)) {
            Some(i) => i,
            None => {
                if locs.len() >= 128 {
                    return None;
                }
                locs.push((comp, loc));
                locs.len() - 1
            }
        };
        let bit = 1u128 << i;
        Some((bit, if writes { bit } else { 0 }))
    };

    let mut touch: Vec<Vec<u128>> = Vec::with_capacity(prog.n_threads());
    let mut write: Vec<Vec<u128>> = Vec::with_capacity(prog.n_threads());
    let mut halt: Vec<u32> = Vec::with_capacity(prog.n_threads());
    for th in &prog.threads {
        let n = th.instrs.len();
        let own: Vec<(u128, u128)> =
            th.instrs.iter().map(&mut access).collect::<Option<_>>()?;
        let mut t_masks = vec![0u128; n];
        let mut w_masks = vec![0u128; n];
        // Monotone fixpoint over instruction successors; reverse pc order
        // converges in one pass for straight-line code and in a handful
        // of passes around loops.
        loop {
            let mut changed = false;
            for pc in (0..n).rev() {
                let (mut tm, mut wm) = own[pc];
                let mut succ = |s: usize| {
                    tm |= t_masks[s];
                    wm |= w_masks[s];
                };
                match &th.instrs[pc] {
                    Instr::Halt => {}
                    Instr::Jmp(target) => succ(*target as usize),
                    Instr::JmpUnless { target, .. } => {
                        succ(pc + 1);
                        succ(*target as usize);
                    }
                    _ => succ(pc + 1),
                }
                if tm != t_masks[pc] || wm != w_masks[pc] {
                    t_masks[pc] = tm;
                    w_masks[pc] = wm;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        touch.push(t_masks);
        write.push(w_masks);
        halt.push(th.halt_pc());
    }
    Some(FutureFootprints { touch, write, halt })
}

impl FutureFootprints {
    /// May threads `t` at `pc_t` and `u` at `pc_u` still perform
    /// conflicting steps — i.e. do their future footprints share a
    /// location one side may write?
    pub fn conflicts(&self, t: usize, pc_t: u32, u: usize, pc_u: u32) -> bool {
        let (tt, tw) = (self.touch[t][pc_t as usize], self.write[t][pc_t as usize]);
        let (ut, uw) = (self.touch[u][pc_u as usize], self.write[u][pc_u as usize]);
        (tt & uw) | (tw & ut) != 0
    }

    /// Has thread `t` halted at `pcs`' program point?
    pub fn halted(&self, t: usize, pcs: &[u32]) -> bool {
        pcs[t] == self.halt[t]
    }

    /// A persistent set for the state with program counters `pcs`, as a
    /// thread bitmask: the smallest conflict closure over all non-halted
    /// seed threads (ties to the lowest seed index), or `0` when every
    /// thread has halted. Threads outside the returned mask cannot
    /// conflict with any member from here on, so expanding only the
    /// members still reaches every terminal and deadlock. Deterministic
    /// in `pcs` — both engines and every arrival at a state agree.
    ///
    /// A member may be *blocked* (a lock acquire with no matching
    /// release): persistence guarantees nothing unblocks it from
    /// outside, but the engines must still detect "every member blocked,
    /// some outsider enabled" and grow the expansion — see the retry
    /// rule in `rc11-check`'s explorers.
    pub fn persistent_mask(&self, pcs: &[u32]) -> u64 {
        let n = pcs.len().min(64);
        let mut best: u64 = 0;
        for seed in 0..n {
            if self.halted(seed, pcs) {
                continue;
            }
            let mut p = 1u64 << seed;
            loop {
                let mut grew = false;
                for u in 0..n {
                    if p & (1u64 << u) != 0 || self.halted(u, pcs) {
                        continue;
                    }
                    let conflict = (0..n)
                        .filter(|&m| p & (1u64 << m) != 0)
                        .any(|m| self.conflicts(u, pcs[u], m, pcs[m]));
                    if conflict {
                        p |= 1u64 << u;
                        grew = true;
                    }
                }
                if !grew {
                    break;
                }
            }
            if best == 0 || p.count_ones() < best.count_ones() {
                best = p;
            }
            if best.count_ones() == 1 {
                break; // no closure beats a singleton; earliest seed wins
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc11_lang::cfg::compile;
    use rc11_lang::parse_litmus;

    fn fps(src: &str) -> (CfgProgram, FutureFootprints) {
        let prog = compile(&parse_litmus(src).unwrap().prog);
        let fps = future_footprints(&prog).expect("small program");
        (prog, fps)
    }

    /// Two independent writer/reader pairs: the persistent set at the
    /// initial state is one pair, never all four threads.
    #[test]
    fn disjoint_components_split() {
        let (prog, fps) = fps(
            r#"
            litmus "two-pairs"
            var x = 0
            var y = 0
            thread A { x = 1; }
            thread B { r = x; }
            thread C { y = 1; }
            thread D { s = y; }
            observe B.r D.s
            expected { (0,0) (0,1) (1,0) (1,1) }
        "#,
        );
        let pcs = vec![0u32; prog.n_threads()];
        let p = fps.persistent_mask(&pcs);
        assert_eq!(p, 0b0011, "closure of the x-pair, chosen over the y-pair tie");
        assert!(fps.conflicts(0, 0, 1, 0), "A's write meets B's read");
        assert!(!fps.conflicts(0, 0, 2, 0), "disjoint locations never conflict");
    }

    /// Future footprints are pc-sensitive: once a thread is past its last
    /// access of a location, it stops conflicting there.
    #[test]
    fn footprints_shrink_along_the_body() {
        let (prog, fps) = fps(
            r#"
            litmus "shrink"
            var x = 0
            var y = 0
            thread A { x = 1; y = 1; }
            thread B { r = y; }
            observe B.r
            expected { (0) (1) }
        "#,
        );
        // At pc 0, A still writes y eventually; at pc 1 only y; at halt,
        // nothing.
        assert!(fps.conflicts(0, 0, 1, 0));
        assert!(fps.conflicts(0, 1, 1, 0));
        let halt = prog.threads[0].halt_pc();
        assert!(fps.halted(0, &[halt, 0]));
        assert!(!fps.conflicts(0, halt, 1, 0), "a halted thread conflicts with nobody");
        // With A halted, the persistent set is B alone.
        assert_eq!(fps.persistent_mask(&[halt, 0]), 0b10);
    }

    /// Loops keep their body's accesses in the future footprint at every
    /// pc of the loop.
    #[test]
    fn loops_reach_fixpoint() {
        let (prog, fps) = fps(
            r#"
            litmus "spin"
            var f = 0
            thread A { f =rel 1; }
            thread B {
              r = 0;
              while (r != 1) { r = f; }
            }
            observe B.r
            expected { (1) }
        "#,
        );
        // Every pc of B's loop still reads f.
        let halt = prog.threads[1].halt_pc();
        for pc in 0..halt {
            assert!(fps.conflicts(1, pc, 0, 0), "B at pc {pc} still reads f");
        }
        assert_eq!(fps.persistent_mask(&[0, 0]), 0b11, "writer and spinner conflict");
    }

    /// A thread with only local work left is a singleton persistent set —
    /// the cheapest possible expansion.
    #[test]
    fn local_tail_is_a_singleton() {
        let (_prog, fps) = fps(
            r#"
            litmus "local-tail"
            var x = 0
            thread A { x = 1; }
            thread B { s = x; }
            thread C { r = 1; r = r + 1; }
            observe C.r
            expected { (2) }
        "#,
        );
        let p = fps.persistent_mask(&[0, 0, 0]);
        assert_eq!(p, 0b100, "C touches nothing shared: expand it alone");
    }

    #[test]
    fn all_halted_is_empty() {
        let (prog, fps) = fps(
            r#"
            litmus "tiny"
            var x = 0
            thread A { x = 1; }
            thread B { r = x; }
            observe B.r
            expected { (0) (1) }
        "#,
        );
        let pcs: Vec<u32> = prog.threads.iter().map(|t| t.halt_pc()).collect();
        assert_eq!(fps.persistent_mask(&pcs), 0);
    }
}
