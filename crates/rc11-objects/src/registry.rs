//! The [`ObjectSemantics`] implementation wiring the Section-4 objects into
//! the program machine.

use crate::{counter, lock, queue, register, stack};
use rc11_lang::machine::ObjectSemantics;
use rc11_lang::program::ObjKind;
use rc11_lang::Method;
use rc11_core::{Combined, Loc, Tid, Val};

/// Abstract execution of every shipped object kind. Stateless: all object
/// state lives in the library component's operation history.
#[derive(Debug, Clone, Copy, Default)]
pub struct AbstractObjects;

impl ObjectSemantics for AbstractObjects {
    fn method_steps(
        &self,
        mem: &Combined,
        tid: Tid,
        obj: Loc,
        kind: ObjKind,
        method: Method,
        arg: Option<Val>,
        sync: bool,
    ) -> Vec<(Val, Combined)> {
        match (kind, method) {
            // Example 1: Acquire's rval is `true`; Release's is `⊥`.
            (ObjKind::Lock, Method::Acquire) => lock::acquire_steps(mem, tid, obj)
                .into_iter()
                .map(|(_, m)| (Val::Bool(true), m))
                .collect(),
            // Figure 7's proof device: bind the lock version.
            (ObjKind::Lock, Method::AcquireV) => lock::acquire_steps(mem, tid, obj)
                .into_iter()
                .map(|(n, m)| (Val::Int(n as i64), m))
                .collect(),
            (ObjKind::Lock, Method::Release) => lock::release_steps(mem, tid, obj)
                .into_iter()
                .map(|(_, m)| (Val::Bot, m))
                .collect(),
            (ObjKind::Stack, Method::Push) => {
                let v = arg.expect("push requires an argument");
                stack::push_steps(mem, tid, obj, v, sync)
                    .into_iter()
                    .map(|m| (Val::Bot, m))
                    .collect()
            }
            (ObjKind::Stack, Method::Pop) => stack::pop_steps(mem, tid, obj, sync),
            (ObjKind::Register, Method::RegWrite) => {
                let v = arg.expect("register write requires an argument");
                register::write_steps(mem, tid, obj, v, sync)
                    .into_iter()
                    .map(|m| (Val::Bot, m))
                    .collect()
            }
            (ObjKind::Register, Method::RegRead) => register::read_steps(mem, tid, obj, sync),
            (ObjKind::Counter, Method::Inc) => counter::inc_steps(mem, tid, obj),
            (ObjKind::Queue, Method::Enq) => {
                let v = arg.expect("enq requires an argument");
                queue::enq_steps(mem, tid, obj, v, sync)
                    .into_iter()
                    .map(|m| (Val::Bot, m))
                    .collect()
            }
            (ObjKind::Queue, Method::Deq) => queue::deq_steps(mem, tid, obj, sync),
            (k, m) => panic!("object kind {k:?} has no method {m}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc11_core::InitLoc;

    #[test]
    fn dispatch_lock_acquire_returns_true() {
        let mem = Combined::new(&[], &[InitLoc::Obj], 1);
        let steps = AbstractObjects.method_steps(
            &mem,
            Tid(0),
            Loc(0),
            ObjKind::Lock,
            Method::Acquire,
            None,
            true,
        );
        assert_eq!(steps.len(), 1);
        assert_eq!(steps[0].0, Val::Bool(true));
    }

    #[test]
    fn dispatch_acquirev_returns_version() {
        let mem = Combined::new(&[], &[InitLoc::Obj], 1);
        let steps = AbstractObjects.method_steps(
            &mem,
            Tid(0),
            Loc(0),
            ObjKind::Lock,
            Method::AcquireV,
            None,
            true,
        );
        assert_eq!(steps[0].0, Val::Int(1));
    }

    #[test]
    #[should_panic(expected = "no method")]
    fn dispatch_rejects_kind_mismatch() {
        let mem = Combined::new(&[], &[InitLoc::Obj], 1);
        AbstractObjects.method_steps(
            &mem,
            Tid(0),
            Loc(0),
            ObjKind::Lock,
            Method::Push,
            Some(Val::Int(1)),
            false,
        );
    }
}
