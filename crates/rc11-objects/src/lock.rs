//! The abstract lock — Figure 6 of the paper.
//!
//! "Locks have a clear ordering semantics (each new lock acquire and lock
//! release operation must have a larger timestamp than all other existing
//! operations) and synchronisation requirements (there must be a
//! release-acquire synchronisation from the lock release to the lock
//! acquire)."
//!
//! * `Acquire` is enabled iff the maximal-timestamp lock operation `(w, q)`
//!   is `l.init_0` or `l.release_{n-1}` (the lock is free). It inserts
//!   `l.acquire_n(t)` at a fresh maximal timestamp, **covers** `w` (no later
//!   acquire can slot between the release and this acquire), joins the
//!   acquiring thread's views — in both components — with `mview(w)`, and
//!   records the merged views as the acquire's own `mview`.
//! * `Release` is enabled iff the maximal operation is `l.acquire_{n-1}(t)`
//!   *by the same thread* (you only release a lock you hold). It inserts
//!   `l.release_n` at a fresh maximal timestamp; like a plain releasing
//!   write it records the releasing thread's cross-component views but joins
//!   nothing.

use rc11_core::{Combined, Comp, Loc, MethodOp, OpAction, OpRecord, Tid};

/// The lock-operation index of the maximal operation on `l`, if the lock is
/// in a state where `m` can fire; `None` if `l`'s history is malformed.
fn lock_index_of_max(mem: &Combined, l: Loc) -> Option<(rc11_core::OpId, MethodOp)> {
    let lib = mem.lib();
    let w = lib.max_op(l);
    lib.op(w).act.method().map(|m| (w, m))
}

/// All `Acquire` outcomes: zero (blocked — lock held) or one (the lock is
/// free; the transition is deterministic up to the timestamp, which is
/// canonically maximal). Returns the new lock version `n` with the state.
pub fn acquire_steps(mem: &Combined, t: Tid, l: Loc) -> Vec<(u32, Combined)> {
    let Some((w, m)) = lock_index_of_max(mem, l) else {
        return Vec::new();
    };
    // Premise: w ∈ {l.init_0, l.release_{n-1}}.
    let n_prev = match m {
        MethodOp::Init => 0,
        MethodOp::LockRelease { n } => n,
        _ => return Vec::new(), // lock held: acquire blocked
    };
    let n = n_prev + 1;

    let mut next = mem.clone();
    let (exec, ctx) = next.exec_ctx_mut(Comp::Lib);
    let b = MethodOp::LockAcquire { n, tid: t };
    let new = exec.insert_at_max(OpRecord { loc: l, tid: t, act: OpAction::Method(b) });
    // cvd' = cvd ∪ {(w, q)}.
    exec.cover(w);
    // tview' = γ.tview_t[l := (b, q')] ⊗ γ.mview_(w,q).
    exec.tview_mut(t).set(l, new);
    let mv_own = exec.mview_own(w).clone();
    exec.join_tview_with(t, &mv_own);
    // ctview' = β.tview_t ⊗ γ.mview_(w,q).
    let mv_other = exec.mview_other(w).clone();
    ctx.join_tview_with(t, &mv_other);
    // mview' = tview' ∪ ctview'.
    let own = exec.tview(t).clone();
    let other = ctx.tview(t).clone();
    exec.set_mview(new, own, other);

    vec![(n, next)]
}

/// All `Release` outcomes: zero (the caller does not hold the lock) or one.
/// Returns the new lock version with the state.
pub fn release_steps(mem: &Combined, t: Tid, l: Loc) -> Vec<(u32, Combined)> {
    let Some((_w, m)) = lock_index_of_max(mem, l) else {
        return Vec::new();
    };
    // Premise: w = l.acquire_{n-1}(t) — held by *this* thread.
    let n = match m {
        MethodOp::LockAcquire { n, tid } if tid == t => n + 1,
        _ => return Vec::new(),
    };

    let mut next = mem.clone();
    let (exec, ctx) = next.exec_ctx_mut(Comp::Lib);
    let a = MethodOp::LockRelease { n };
    let new = exec.insert_at_max(OpRecord { loc: l, tid: t, act: OpAction::Method(a) });
    // tview' = γ.tview_t[l := (a, q')]; mview' = tview' ∪ β.tview_t.
    exec.tview_mut(t).set(l, new);
    let own = exec.tview(t).clone();
    let other = ctx.tview(t).clone();
    exec.set_mview(new, own, other);

    vec![(n, next)]
}

/// True iff thread `t` currently holds lock `l` (the maximal operation is an
/// acquire by `t`). Used by tests and the mutual-exclusion assertions.
pub fn holds_lock(mem: &Combined, t: Tid, l: Loc) -> bool {
    matches!(
        lock_index_of_max(mem, l),
        Some((_, MethodOp::LockAcquire { tid, .. })) if tid == t
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc11_core::{InitLoc, Val};

    const L: Loc = Loc(0);
    const D: Loc = Loc(0);
    const T1: Tid = Tid(0);
    const T2: Tid = Tid(1);

    fn lock_state() -> Combined {
        Combined::new(&[InitLoc::Var(Val::Int(0))], &[InitLoc::Obj], 2)
    }

    #[test]
    fn acquire_succeeds_on_free_lock() {
        let s = lock_state();
        let steps = acquire_steps(&s, T1, L);
        assert_eq!(steps.len(), 1);
        let (n, s2) = &steps[0];
        assert_eq!(*n, 1, "first acquire has version 1");
        assert!(holds_lock(s2, T1, L));
        assert!(s2.lib().is_covered(rc11_core::OpId(0)), "init is covered by the acquire");
    }

    #[test]
    fn acquire_blocks_on_held_lock() {
        let s = lock_state();
        let (_, s) = acquire_steps(&s, T1, L).pop().unwrap();
        assert!(acquire_steps(&s, T2, L).is_empty(), "second acquire must block");
        assert!(acquire_steps(&s, T1, L).is_empty(), "re-acquire must block too");
    }

    #[test]
    fn release_requires_ownership() {
        let s = lock_state();
        assert!(release_steps(&s, T1, L).is_empty(), "cannot release a free lock");
        let (_, s) = acquire_steps(&s, T1, L).pop().unwrap();
        assert!(release_steps(&s, T2, L).is_empty(), "non-owner cannot release");
        let rel = release_steps(&s, T1, L);
        assert_eq!(rel.len(), 1);
        assert_eq!(rel[0].0, 2, "release after acquire_1 is release_2");
        assert!(!holds_lock(&rel[0].1, T1, L));
    }

    #[test]
    fn versions_count_all_lock_operations() {
        let s = lock_state();
        let (n1, s) = acquire_steps(&s, T1, L).pop().unwrap();
        let (n2, s) = release_steps(&s, T1, L).pop().unwrap();
        let (n3, s) = acquire_steps(&s, T2, L).pop().unwrap();
        let (n4, _) = release_steps(&s, T2, L).pop().unwrap();
        assert_eq!((n1, n2, n3, n4), (1, 2, 3, 4));
    }

    /// The heart of Figure 7: writes made under the lock are *definitely*
    /// visible to the next acquirer (release-acquire synchronisation through
    /// the lock object, across components: lock in β, data in γ).
    #[test]
    fn acquire_synchronises_with_previous_critical_section() {
        let s = lock_state();
        let (_, s) = acquire_steps(&s, T1, L).pop().unwrap();
        // T1 writes client d := 5 inside the critical section (relaxed!).
        let w = s.write_preds(Comp::Client, T1, D)[0];
        let s = s.apply_write(Comp::Client, T1, D, Val::Int(5), false, w);
        let (_, s) = release_steps(&s, T1, L).pop().unwrap();
        // T2 acquires: its *client* view must now only see d = 5.
        let (_, s) = acquire_steps(&s, T2, L).pop().unwrap();
        let vals: Vec<Val> =
            s.read_choices(Comp::Client, T2, D).iter().map(|c| c.val).collect();
        assert_eq!(vals, vec![Val::Int(5)], "lock hand-off must publish the d=5 write");
    }

    /// Without the lock (no synchronisation), the stale value stays
    /// observable — the negative control for the test above.
    #[test]
    fn no_sync_without_lock_handoff() {
        let s = lock_state();
        let w = s.write_preds(Comp::Client, T1, D)[0];
        let s = s.apply_write(Comp::Client, T1, D, Val::Int(5), false, w);
        let vals: Vec<Val> =
            s.read_choices(Comp::Client, T2, D).iter().map(|c| c.val).collect();
        assert!(vals.contains(&Val::Int(0)), "stale read remains possible without hand-off");
    }

    #[test]
    fn acquire_after_release_covers_release() {
        let s = lock_state();
        let (_, s) = acquire_steps(&s, T1, L).pop().unwrap();
        let (_, s) = release_steps(&s, T1, L).pop().unwrap();
        let release_op = s.lib().max_op(L);
        let (_, s) = acquire_steps(&s, T2, L).pop().unwrap();
        assert!(s.lib().is_covered(release_op));
    }
}
