//! Extension object: an abstract fetch-and-increment counter.
//!
//! Lock-style ordering (every `inc` lands at a fresh maximal timestamp and
//! covers its predecessor, so counts are gap-free), with every `inc`
//! synchronising with the previous one — the abstract analogue of an `FAI`
//! chain over a single variable. Not in the paper; exercises the framework
//! on a second totally-ordered object.

use rc11_core::{Combined, Comp, Loc, MethodOp, OpAction, OpRecord, Tid, Val};

/// The running count recorded by operation `w` (`init_0` = 0).
fn count_of(act: OpAction) -> Option<i64> {
    match act.method() {
        Some(MethodOp::Init) => Some(0),
        Some(MethodOp::CtrInc { v }) => v.as_int(),
        _ => None,
    }
}

/// All `inc()` outcomes: exactly one — the counter is strictly serialised.
/// Returns the *old* count (fetch-and-increment).
pub fn inc_steps(mem: &Combined, t: Tid, c: Loc) -> Vec<(Val, Combined)> {
    let lib = mem.lib();
    let w = lib.max_op(c);
    let Some(old) = count_of(lib.op(w).act) else {
        return Vec::new();
    };

    let mut next = mem.clone();
    let (exec, ctx) = next.exec_ctx_mut(Comp::Lib);
    let new = exec.insert_at_max(OpRecord {
        loc: c,
        tid: t,
        act: OpAction::Method(MethodOp::CtrInc { v: Val::Int(old + 1) }),
    });
    exec.cover(w);
    exec.tview_mut(t).set(c, new);
    let mv_own = exec.mview_own(w).clone();
    exec.join_tview_with(t, &mv_own);
    let mv_other = exec.mview_other(w).clone();
    ctx.join_tview_with(t, &mv_other);
    let own = exec.tview(t).clone();
    let other = ctx.tview(t).clone();
    exec.set_mview(new, own, other);

    vec![(Val::Int(old), next)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc11_core::InitLoc;

    const C: Loc = Loc(0);
    const D: Loc = Loc(0);
    const T1: Tid = Tid(0);
    const T2: Tid = Tid(1);

    fn state() -> Combined {
        Combined::new(&[InitLoc::Var(Val::Int(0))], &[InitLoc::Obj], 2)
    }

    #[test]
    fn counts_are_sequential() {
        let s = state();
        let (v1, s) = inc_steps(&s, T1, C).pop().unwrap();
        let (v2, s) = inc_steps(&s, T2, C).pop().unwrap();
        let (v3, _) = inc_steps(&s, T1, C).pop().unwrap();
        assert_eq!((v1, v2, v3), (Val::Int(0), Val::Int(1), Val::Int(2)));
    }

    #[test]
    fn inc_synchronises_with_previous_inc() {
        // T1 writes d=5 then incs; T2's inc must see T1's d=5 publication.
        let s = state();
        let w = s.write_preds(Comp::Client, T1, D)[0];
        let s = s.apply_write(Comp::Client, T1, D, Val::Int(5), false, w);
        let (_, s) = inc_steps(&s, T1, C).pop().unwrap();
        let (_, s) = inc_steps(&s, T2, C).pop().unwrap();
        let vals: Vec<Val> =
            s.read_choices(Comp::Client, T2, D).iter().map(|c| c.val).collect();
        assert_eq!(vals, vec![Val::Int(5)], "inc chain carries the publication");
    }

    #[test]
    fn predecessors_become_covered() {
        let s = state();
        let (_, s) = inc_steps(&s, T1, C).pop().unwrap();
        assert!(s.lib().is_covered(rc11_core::OpId(0)));
    }
}
