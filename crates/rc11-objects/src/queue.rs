//! Extension object: an abstract FIFO queue.
//!
//! The paper closes with "it would be interesting to further investigate
//! implementations of other concurrent data types … within this
//! operational framework"; the queue is the canonical next ADT. Semantics
//! mirror the stack's (DESIGN.md, design choice 3) with the selection
//! flipped to FIFO:
//!
//! * `enq[^R](v)` inserts `q.enq(v)` at a fresh **maximal** timestamp and
//!   records the enqueuer's cross-component views;
//! * `deq[^A]()` takes the **oldest** uncovered enqueue, covers it
//!   (update-style atomicity), inserts `q.deq(v)` immediately after it,
//!   and — when an acquiring dequeue takes a releasing enqueue — joins the
//!   dequeuer's views in both components with the enqueue's `mview`;
//! * `deq` returns `Empty` iff no uncovered enqueue exists; an empty
//!   dequeue is view-preserving and adds no operation.

use rc11_core::{Combined, Comp, Loc, MethodOp, OpAction, OpId, OpRecord, Tid, Val};

/// The oldest uncovered enqueue on `q`, if any — the element the next
/// dequeue removes.
pub fn front(mem: &Combined, q: Loc) -> Option<(OpId, Val, bool)> {
    let lib = mem.lib();
    lib.mo(q)
        .iter()
        .filter(|&&w| !lib.is_covered(w))
        .find_map(|&w| match lib.op(w).act.method() {
            Some(MethodOp::Enq { v, rel }) => Some((w, v, rel)),
            _ => None,
        })
}

/// All `enq` outcomes (always exactly one).
pub fn enq_steps(mem: &Combined, t: Tid, q: Loc, v: Val, rel: bool) -> Vec<Combined> {
    let mut next = mem.clone();
    let (exec, ctx) = next.exec_ctx_mut(Comp::Lib);
    let new = exec.insert_at_max(OpRecord {
        loc: q,
        tid: t,
        act: OpAction::Method(MethodOp::Enq { v, rel }),
    });
    exec.tview_mut(t).set(q, new);
    let own = exec.tview(t).clone();
    let other = ctx.tview(t).clone();
    exec.set_mview(new, own, other);
    vec![next]
}

/// All `deq` outcomes: one value-returning dequeue (the FIFO front) or one
/// `Empty` result.
pub fn deq_steps(mem: &Combined, t: Tid, q: Loc, acq: bool) -> Vec<(Val, Combined)> {
    match front(mem, q) {
        None => vec![(Val::Empty, mem.clone())],
        Some((w, v, rel)) => {
            let mut next = mem.clone();
            let (exec, ctx) = next.exec_ctx_mut(Comp::Lib);
            let new = exec.insert_after(
                w,
                OpRecord { loc: q, tid: t, act: OpAction::Method(MethodOp::Deq { v, acq }) },
            );
            exec.cover(w);
            if exec.rank_of(new) > exec.rank_of(exec.tview(t).get(q)) {
                exec.tview_mut(t).set(q, new);
            }
            if acq && rel {
                let mv_own = exec.mview_own(w).clone();
                exec.join_tview_with(t, &mv_own);
                let mv_other = exec.mview_other(w).clone();
                ctx.join_tview_with(t, &mv_other);
            }
            let own = exec.tview(t).clone();
            let other = ctx.tview(t).clone();
            exec.set_mview(new, own, other);
            vec![(v, next)]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc11_core::InitLoc;

    const Q: Loc = Loc(0);
    const D: Loc = Loc(0);
    const T1: Tid = Tid(0);
    const T2: Tid = Tid(1);

    fn state() -> Combined {
        Combined::new(&[InitLoc::Var(Val::Int(0))], &[InitLoc::Obj], 2)
    }

    #[test]
    fn fifo_order() {
        let s = state();
        let s = enq_steps(&s, T1, Q, Val::Int(1), false).pop().unwrap();
        let s = enq_steps(&s, T1, Q, Val::Int(2), false).pop().unwrap();
        let (v1, s) = deq_steps(&s, T2, Q, false).pop().unwrap();
        let (v2, s) = deq_steps(&s, T2, Q, false).pop().unwrap();
        let (v3, _) = deq_steps(&s, T2, Q, false).pop().unwrap();
        assert_eq!((v1, v2, v3), (Val::Int(1), Val::Int(2), Val::Empty));
    }

    #[test]
    fn empty_dequeue_preserves_state() {
        let s = state();
        let steps = deq_steps(&s, T1, Q, true);
        assert_eq!(steps[0].0, Val::Empty);
        assert_eq!(steps[0].1, s);
    }

    #[test]
    fn releasing_enq_acquiring_deq_synchronises() {
        let s = state();
        let w = s.write_preds(Comp::Client, T1, D)[0];
        let s = s.apply_write(Comp::Client, T1, D, Val::Int(5), false, w);
        let s = enq_steps(&s, T1, Q, Val::Int(1), true).pop().unwrap();
        let (v, s) = deq_steps(&s, T2, Q, true).pop().unwrap();
        assert_eq!(v, Val::Int(1));
        let vals: Vec<Val> =
            s.read_choices(Comp::Client, T2, D).iter().map(|c| c.val).collect();
        assert_eq!(vals, vec![Val::Int(5)], "deq^A of enq^R publishes d = 5");
    }

    #[test]
    fn relaxed_enq_does_not_synchronise() {
        let s = state();
        let w = s.write_preds(Comp::Client, T1, D)[0];
        let s = s.apply_write(Comp::Client, T1, D, Val::Int(5), false, w);
        let s = enq_steps(&s, T1, Q, Val::Int(1), false).pop().unwrap();
        let (_, s) = deq_steps(&s, T2, Q, true).pop().unwrap();
        let vals: Vec<Val> =
            s.read_choices(Comp::Client, T2, D).iter().map(|c| c.val).collect();
        assert!(vals.contains(&Val::Int(0)), "stale read must remain possible");
    }

    #[test]
    fn interleaved_producers_consumers() {
        // Two producers, one consumer: dequeues return each value once.
        let s = state();
        let s = enq_steps(&s, T1, Q, Val::Int(10), true).pop().unwrap();
        let s = enq_steps(&s, T2, Q, Val::Int(20), true).pop().unwrap();
        let (a, s) = deq_steps(&s, T1, Q, true).pop().unwrap();
        let (b, s) = deq_steps(&s, T2, Q, true).pop().unwrap();
        assert_eq!((a, b), (Val::Int(10), Val::Int(20)));
        let (c, _) = deq_steps(&s, T1, Q, true).pop().unwrap();
        assert_eq!(c, Val::Empty);
    }
}
