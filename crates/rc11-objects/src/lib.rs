//! # rc11-objects — abstract object semantics (Section 4)
//!
//! Abstract objects are view-tracked library locations whose histories
//! record *method operations* instead of writes. This crate implements
//! their transition rules over the rc11-core combined state:
//!
//! * [`lock`] — the paper's abstract lock, Figure 6 (plus [`lit_lock`], the
//!   same rules over the literal engine, cross-validated in tests);
//! * [`stack`] — the abstract stack used by the message-passing Figures
//!   1–3 (semantics fixed in DESIGN.md, design choice 3);
//! * [`register`], [`counter`], [`queue`] — extension objects demonstrating the
//!   framework's generality (weakly-ordered and totally-ordered
//!   respectively);
//! * [`registry::AbstractObjects`] — the [`rc11_lang::ObjectSemantics`]
//!   dispatcher plugging all of the above into the program machine.

#![warn(missing_docs)]

pub mod counter;
pub mod lit_lock;
pub mod lock;
pub mod queue;
pub mod register;
pub mod registry;
pub mod stack;

pub use registry::AbstractObjects;
