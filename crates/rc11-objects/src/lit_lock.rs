//! Figure 6 transcribed over the **literal** engine (rational timestamps),
//! used to cross-validate the fast lock semantics in `lock.rs`.

use rc11_core::lit::{LitAction, LitCState, LitCombined, LitCrossView, LitOp};
use rc11_core::{Comp, Loc, MethodOp, Tid};

fn max_lock_op(st: &LitCState, l: Loc) -> LitOp {
    st.max_op(l)
}

/// Figure 6 `Acquire` (literal): enabled iff the maximal operation on `l` is
/// `init_0` or `release_{n-1}`; returns the new version and state.
pub fn acquire_steps(s: &LitCombined, t: Tid, l: Loc) -> Vec<(u32, LitCombined)> {
    let (w_act, q) = max_lock_op(&s.lib, l);
    let n_prev = match w_act {
        LitAction::Method { m: MethodOp::Init, .. } => 0,
        LitAction::Method { m: MethodOp::LockRelease { n }, .. } => n,
        _ => return Vec::new(),
    };
    let n = n_prev + 1;
    let w: LitOp = (w_act, q);

    let mut next = s.clone();
    let (exec, ctx) = next.exec_ctx_mut(Comp::Lib);
    let b = LitAction::Method { loc: l, m: MethodOp::LockAcquire { n, tid: t }, tid: t };
    let q2 = exec.fresh_after(q);
    let new: LitOp = (b, q2);
    exec.ops.insert(new);
    exec.cvd.insert(w);
    let mv = exec.mview[&w].clone();
    {
        let tv = exec.tview.get_mut(&t).unwrap();
        tv.insert(l, new);
        *tv = LitCState::join_views(tv, &mv.own);
    }
    {
        let ctv = ctx.tview.get_mut(&t).unwrap();
        *ctv = LitCState::join_views(ctv, &mv.other);
    }
    let mview = LitCrossView { own: exec.tview[&t].clone(), other: ctx.tview[&t].clone() };
    exec.mview.insert(new, mview);
    vec![(n, next)]
}

/// Figure 6 `Release` (literal): enabled iff the maximal operation is
/// `acquire_{n-1}(t)` by the calling thread.
pub fn release_steps(s: &LitCombined, t: Tid, l: Loc) -> Vec<(u32, LitCombined)> {
    let (w_act, q) = max_lock_op(&s.lib, l);
    let n = match w_act {
        LitAction::Method { m: MethodOp::LockAcquire { n, tid }, .. } if tid == t => n + 1,
        _ => return Vec::new(),
    };

    let mut next = s.clone();
    let (exec, ctx) = next.exec_ctx_mut(Comp::Lib);
    let a = LitAction::Method { loc: l, m: MethodOp::LockRelease { n }, tid: t };
    let q2 = exec.fresh_after(q);
    let new: LitOp = (a, q2);
    exec.ops.insert(new);
    exec.tview.get_mut(&t).unwrap().insert(l, new);
    let mview = LitCrossView { own: exec.tview[&t].clone(), other: ctx.tview[&t].clone() };
    exec.mview.insert(new, mview);
    vec![(n, next)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lock;
    use rc11_core::{Combined, InitLoc, Val};

    const L: Loc = Loc(0);
    const D: Loc = Loc(0);
    const T1: Tid = Tid(0);
    const T2: Tid = Tid(1);

    /// Drive the fast and literal lock semantics through the same script and
    /// compare enabledness, versions and client observability throughout.
    #[test]
    fn fast_and_literal_locks_agree() {
        let mut fast = Combined::new(&[InitLoc::Var(Val::Int(0))], &[InitLoc::Obj], 2);
        let mut lit = LitCombined::new(&[InitLoc::Var(Val::Int(0))], &[InitLoc::Obj], 2);

        // Script: T1 acquire; T1 write d=5; T1 release; T2 acquire (blocked
        // checks in between); T2's client observability must match.
        assert_eq!(
            lock::acquire_steps(&fast, T1, L).len(),
            acquire_steps(&lit, T1, L).len()
        );
        let (nf, f2) = lock::acquire_steps(&fast, T1, L).pop().unwrap();
        let (nl, l2) = acquire_steps(&lit, T1, L).pop().unwrap();
        assert_eq!(nf, nl);
        fast = f2;
        lit = l2;

        // Both block T2 while held.
        assert!(lock::acquire_steps(&fast, T2, L).is_empty());
        assert!(acquire_steps(&lit, T2, L).is_empty());
        // Both refuse release by non-owner.
        assert!(lock::release_steps(&fast, T2, L).is_empty());
        assert!(release_steps(&lit, T2, L).is_empty());

        // T1 writes d := 5 (client, relaxed) in both engines.
        let wp = fast.write_preds(Comp::Client, T1, D);
        fast = fast.apply_write(Comp::Client, T1, D, Val::Int(5), false, wp[0]);
        let lp = rc11_core::lit::step::write_choices(&lit, Comp::Client, T1, D);
        lit = rc11_core::lit::step::apply_write(&lit, Comp::Client, T1, D, Val::Int(5), false, lp[0]);

        let (nf, f2) = lock::release_steps(&fast, T1, L).pop().unwrap();
        let (nl, l2) = release_steps(&lit, T1, L).pop().unwrap();
        assert_eq!(nf, nl);
        fast = f2;
        lit = l2;

        let (nf, f2) = lock::acquire_steps(&fast, T2, L).pop().unwrap();
        let (nl, l2) = acquire_steps(&lit, T2, L).pop().unwrap();
        assert_eq!((nf, nl), (3, 3));
        fast = f2;
        lit = l2;

        // Client observability of T2 agrees: only d = 5.
        let fv: Vec<Val> = fast.read_choices(Comp::Client, T2, D).iter().map(|c| c.val).collect();
        let lv: Vec<Val> =
            lit.client.obs(T2, D).iter().map(|w| w.0.wrval()).collect();
        assert_eq!(fv, lv);
        assert_eq!(fv, vec![Val::Int(5)]);
    }
}
