//! Extension object: an abstract atomic register.
//!
//! Not in the paper; included to demonstrate that the Section-4 framework
//! ("the theory itself is generic and can be applied to concurrent objects
//! in general") accommodates objects whose operations are *not* totally
//! ordered. Writes behave like Figure-5 writes (the writer picks any
//! observable uncovered predecessor — stale placements allowed); reads
//! behave like Figure-5 reads over the method history, with `read^A` of a
//! `write^R` synchronising.
//!
//! The register's initial value is `0` (the `init_0` operation reads as 0).

use rc11_core::{Combined, Comp, Loc, MethodOp, OpAction, OpId, OpRecord, Tid, Val};

/// The value a read of operation `w` on a register returns (`init_0` = 0).
fn reg_val(act: OpAction) -> Val {
    match act.method() {
        Some(MethodOp::Init) => Val::Int(0),
        Some(MethodOp::RegWrite { v, .. }) => v,
        _ => Val::Bot,
    }
}

/// All `write(v)` outcomes: one per observable uncovered predecessor.
pub fn write_steps(mem: &Combined, t: Tid, r: Loc, v: Val, rel: bool) -> Vec<Combined> {
    let preds: Vec<OpId> = mem.lib().obs_uncovered(t, r).collect();
    preds
        .into_iter()
        .map(|w| {
            let mut next = mem.clone();
            let (exec, ctx) = next.exec_ctx_mut(Comp::Lib);
            let new = exec.insert_after(
                w,
                OpRecord { loc: r, tid: t, act: OpAction::Method(MethodOp::RegWrite { v, rel }) },
            );
            exec.tview_mut(t).set(r, new);
            let own = exec.tview(t).clone();
            let other = ctx.tview(t).clone();
            exec.set_mview(new, own, other);
            next
        })
        .collect()
}

/// All `read()` outcomes: one per observable operation.
pub fn read_steps(mem: &Combined, t: Tid, r: Loc, acq: bool) -> Vec<(Val, Combined)> {
    let choices: Vec<OpId> = mem.lib().obs(t, r).to_vec();
    choices
        .into_iter()
        .map(|w| {
            let v = reg_val(mem.lib().op(w).act);
            let rel = mem.lib().op(w).act.is_releasing();
            let mut next = mem.clone();
            let (exec, ctx) = next.exec_ctx_mut(Comp::Lib);
            if acq && rel {
                let mv_own = exec.mview_own(w).clone();
                exec.join_tview_with(t, &mv_own);
                let mv_other = exec.mview_other(w).clone();
                ctx.join_tview_with(t, &mv_other);
            } else {
                exec.tview_mut(t).set(r, w);
            }
            (v, next)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc11_core::InitLoc;

    const R: Loc = Loc(0);
    const D: Loc = Loc(0);
    const T1: Tid = Tid(0);
    const T2: Tid = Tid(1);

    fn state() -> Combined {
        Combined::new(&[InitLoc::Var(Val::Int(0))], &[InitLoc::Obj], 2)
    }

    #[test]
    fn initial_read_is_zero() {
        let s = state();
        let reads = read_steps(&s, T1, R, false);
        assert_eq!(reads.len(), 1);
        assert_eq!(reads[0].0, Val::Int(0));
    }

    #[test]
    fn stale_reads_allowed_until_observed() {
        let s = state();
        let s = write_steps(&s, T1, R, Val::Int(9), false).pop().unwrap();
        let vals: Vec<Val> = read_steps(&s, T2, R, false).iter().map(|(v, _)| *v).collect();
        assert_eq!(vals, vec![Val::Int(0), Val::Int(9)], "T2 may read stale 0 or new 9");
        // After reading 9, 0 is gone.
        let (_, s2) = read_steps(&s, T2, R, false).pop().unwrap();
        let vals: Vec<Val> = read_steps(&s2, T2, R, false).iter().map(|(v, _)| *v).collect();
        assert_eq!(vals, vec![Val::Int(9)]);
    }

    #[test]
    fn message_passing_through_register() {
        let s = state();
        let w = s.write_preds(Comp::Client, T1, D)[0];
        let s = s.apply_write(Comp::Client, T1, D, Val::Int(5), false, w);
        let s = write_steps(&s, T1, R, Val::Int(1), true).pop().unwrap();
        // T2 acquiring-reads the flag value 1.
        let (v, s) = read_steps(&s, T2, R, true).pop().unwrap();
        assert_eq!(v, Val::Int(1));
        let vals: Vec<Val> =
            s.read_choices(Comp::Client, T2, D).iter().map(|c| c.val).collect();
        assert_eq!(vals, vec![Val::Int(5)]);
    }

    #[test]
    fn writes_can_be_placed_behind_other_writes() {
        // Two relaxed writes by different threads that haven't seen each
        // other: the second writer may place before or after the first.
        let s = state();
        let s = write_steps(&s, T1, R, Val::Int(1), false).pop().unwrap();
        let placements = write_steps(&s, T2, R, Val::Int(2), false);
        assert_eq!(placements.len(), 2, "T2 may slot before or after T1's write");
    }
}
