//! The abstract stack used in Figures 1–3.
//!
//! The paper uses the stack illustratively and never fixes its semantics;
//! this module defines it in the style of the Figure-6 lock (see DESIGN.md,
//! design choice 3):
//!
//! * `push[^R](v)` inserts `s.push(v)` at a fresh **maximal** timestamp
//!   (pushes are totally ordered, like lock operations) and records the
//!   pusher's cross-component views as the push's `mview` — exactly a
//!   (releasing) write's bookkeeping.
//! * `pop[^A]()` is **update-like**: it takes the *globally* maximal
//!   uncovered push (like the Figure-6 acquire, which observes the
//!   `maxTS` release regardless of the acquirer's viewfront), covers it
//!   (atomicity — no two pops return the same element), inserts `s.pop(v)`
//!   immediately after it, and, when an acquiring pop takes a releasing
//!   push, joins the popping thread's views in both components with the
//!   push's `mview` — this is what makes Figure 2's publication pattern
//!   sound.
//! * `pop` returns `Empty` iff **no** uncovered push exists. An empty pop
//!   is view-preserving and adds no operation (keeping `do … until` retry
//!   loops finite-state); it is enabled exactly when `[s.pop emp]` of
//!   Figure 3 holds. Figure 1's weak behaviour lives in the *data* views
//!   (a relaxed push transfers no view), not in pop-value nondeterminism.

use rc11_core::{Combined, Comp, Loc, MethodOp, OpAction, OpId, OpRecord, Tid, Val};

/// The globally maximal uncovered push on `s`, if any — the element the
/// next pop removes.
pub fn top(mem: &Combined, s: Loc) -> Option<(OpId, Val, bool)> {
    let lib = mem.lib();
    lib.mo(s)
        .iter()
        .rev()
        .filter(|&&w| !lib.is_covered(w))
        .find_map(|&w| match lib.op(w).act.method() {
            Some(MethodOp::Push { v, rel }) => Some((w, v, rel)),
            _ => None,
        })
}

/// All `push` outcomes (always exactly one).
pub fn push_steps(mem: &Combined, t: Tid, s: Loc, v: Val, rel: bool) -> Vec<Combined> {
    let mut next = mem.clone();
    let (exec, ctx) = next.exec_ctx_mut(Comp::Lib);
    let new = exec.insert_at_max(OpRecord {
        loc: s,
        tid: t,
        act: OpAction::Method(MethodOp::Push { v, rel }),
    });
    exec.tview_mut(t).set(s, new);
    let own = exec.tview(t).clone();
    let other = ctx.tview(t).clone();
    exec.set_mview(new, own, other);
    vec![next]
}

/// All `pop` outcomes: either one value-returning pop (the global top) or
/// one `Empty` result — never both, and never blocked.
pub fn pop_steps(mem: &Combined, t: Tid, s: Loc, acq: bool) -> Vec<(Val, Combined)> {
    match top(mem, s) {
        None => vec![(Val::Empty, mem.clone())],
        Some((w, v, rel)) => {
            let mut next = mem.clone();
            let (exec, ctx) = next.exec_ctx_mut(Comp::Lib);
            let new = exec.insert_after(
                w,
                OpRecord { loc: s, tid: t, act: OpAction::Method(MethodOp::Pop { v, acq }) },
            );
            exec.cover(w);
            // Views are monotone: only advance towards the new pop (the
            // popped push may lie below the popper's current viewfront).
            if exec.rank_of(new) > exec.rank_of(exec.tview(t).get(s)) {
                exec.tview_mut(t).set(s, new);
            }
            if acq && rel {
                let mv_own = exec.mview_own(w).clone();
                exec.join_tview_with(t, &mv_own);
                let mv_other = exec.mview_other(w).clone();
                ctx.join_tview_with(t, &mv_other);
            }
            let own = exec.tview(t).clone();
            let other = ctx.tview(t).clone();
            exec.set_mview(new, own, other);
            vec![(v, next)]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc11_core::InitLoc;

    const S: Loc = Loc(0);
    const D: Loc = Loc(0);
    const T1: Tid = Tid(0);
    const T2: Tid = Tid(1);

    fn stack_state() -> Combined {
        Combined::new(&[InitLoc::Var(Val::Int(0))], &[InitLoc::Obj], 2)
    }

    #[test]
    fn pop_on_empty_returns_empty_and_preserves_state() {
        let s = stack_state();
        let steps = pop_steps(&s, T1, S, true);
        assert_eq!(steps.len(), 1);
        assert_eq!(steps[0].0, Val::Empty);
        assert_eq!(steps[0].1, s, "empty pop must not disturb the state");
    }

    #[test]
    fn push_then_pop_round_trips() {
        let s = stack_state();
        let s = push_steps(&s, T1, S, Val::Int(7), true).pop().unwrap();
        let steps = pop_steps(&s, T2, S, true);
        assert_eq!(steps.len(), 1);
        assert_eq!(steps[0].0, Val::Int(7));
        // The push is now covered: a second pop sees empty.
        let again = pop_steps(&steps[0].1, T1, S, true);
        assert_eq!(again[0].0, Val::Empty);
    }

    #[test]
    fn lifo_order() {
        let s = stack_state();
        let s = push_steps(&s, T1, S, Val::Int(1), false).pop().unwrap();
        let s = push_steps(&s, T1, S, Val::Int(2), false).pop().unwrap();
        let (v1, s) = pop_steps(&s, T1, S, false).pop().unwrap();
        let (v2, s) = pop_steps(&s, T1, S, false).pop().unwrap();
        let (v3, _) = pop_steps(&s, T1, S, false).pop().unwrap();
        assert_eq!((v1, v2, v3), (Val::Int(2), Val::Int(1), Val::Empty));
    }

    /// Figure 2's publication pattern at the object level: a releasing push
    /// taken by an acquiring pop transfers the client-side `d = 5` write.
    #[test]
    fn release_push_acquire_pop_synchronises() {
        let s = stack_state();
        let w = s.write_preds(Comp::Client, T1, D)[0];
        let s = s.apply_write(Comp::Client, T1, D, Val::Int(5), false, w);
        let s = push_steps(&s, T1, S, Val::Int(1), true).pop().unwrap();
        let (v, s) = pop_steps(&s, T2, S, true).pop().unwrap();
        assert_eq!(v, Val::Int(1));
        let vals: Vec<Val> =
            s.read_choices(Comp::Client, T2, D).iter().map(|c| c.val).collect();
        assert_eq!(vals, vec![Val::Int(5)], "pop^A of push^R publishes d = 5");
    }

    /// Figure 1's weakness: with a *relaxed* push (or pop) the stale read
    /// stays possible even after popping the value.
    #[test]
    fn relaxed_push_does_not_synchronise() {
        let s = stack_state();
        let w = s.write_preds(Comp::Client, T1, D)[0];
        let s = s.apply_write(Comp::Client, T1, D, Val::Int(5), false, w);
        let s = push_steps(&s, T1, S, Val::Int(1), false).pop().unwrap();
        let (v, s) = pop_steps(&s, T2, S, true).pop().unwrap();
        assert_eq!(v, Val::Int(1));
        let vals: Vec<Val> =
            s.read_choices(Comp::Client, T2, D).iter().map(|c| c.val).collect();
        assert!(vals.contains(&Val::Int(0)), "stale d=0 must remain observable (Figure 1)");
        assert!(vals.contains(&Val::Int(5)));
    }

    #[test]
    fn pop_skips_covered_later_pushes() {
        // T1 pushes 1 then 2; T2 pops 2 (covering it). T1's next pop must
        // return 1 even though a (covered) later push exists.
        let s = stack_state();
        let s = push_steps(&s, T1, S, Val::Int(1), false).pop().unwrap();
        let s = push_steps(&s, T1, S, Val::Int(2), false).pop().unwrap();
        let (v, s) = pop_steps(&s, T2, S, false).pop().unwrap();
        assert_eq!(v, Val::Int(2));
        let (v, _) = pop_steps(&s, T1, S, false).pop().unwrap();
        assert_eq!(v, Val::Int(1));
    }
}
