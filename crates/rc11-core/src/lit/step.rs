//! The Figure-5 transition rules, transcribed clause by clause over the
//! literal state representation.
//!
//! Each rule is split into a *choices* function enumerating the
//! existentially-quantified premise (`(w, q) ∈ Obs(t, x) …`) and an *apply*
//! function computing the unique conclusion state for one witness. Choices
//! are returned in timestamp order so the fast engine's enumeration (which
//! walks modification order) corresponds index by index — the differential
//! tests rely on this alignment.

use crate::ids::{Comp, Loc, Tid};
use crate::lit::state::{LitAction, LitCState, LitCombined, LitCrossView, LitOp};
use crate::val::Val;

/// Read premise: all `(w, q) ∈ Obs(t, x)`.
pub fn read_choices(s: &LitCombined, c: Comp, t: Tid, x: Loc) -> Vec<LitOp> {
    s.comp(c).obs(t, x)
}

/// Figure 5 `Read`:
///
/// ```text
/// a ∈ {rd(x,n), rd^A(x,n)}   (w,q) ∈ γ.Obs(t,x)   wrval(w) = n
/// tview'  = γ.tview_t ⊗ γ.mview_(w,q)   if (w,a) ∈ W^R × R^A
///           γ.tview_t[x := (w,q)]       otherwise
/// ctview' = β.tview_t ⊗ γ.mview_(w,q)   if (w,a) ∈ W^R × R^A
///           β.tview_t                   otherwise
/// ```
pub fn apply_read(s: &LitCombined, c: Comp, t: Tid, x: Loc, acq: bool, w: LitOp) -> LitCombined {
    let mut next = s.clone();
    let (exec, ctx) = next.exec_ctx_mut(c);
    let sync = acq && w.0.is_releasing();
    if sync {
        let mv = exec.mview[&w].clone();
        let tv = exec.tview.get_mut(&t).unwrap();
        *tv = LitCState::join_views(tv, &mv.own);
        let ctv = ctx.tview.get_mut(&t).unwrap();
        *ctv = LitCState::join_views(ctv, &mv.other);
    } else {
        exec.tview.get_mut(&t).unwrap().insert(x, w);
    }
    next
}

/// Write premise: all `(w, q) ∈ Obs(t, x) \ cvd`.
pub fn write_choices(s: &LitCombined, c: Comp, t: Tid, x: Loc) -> Vec<LitOp> {
    s.comp(c).obs(t, x).into_iter().filter(|w| !s.comp(c).cvd.contains(w)).collect()
}

/// Figure 5 `Write`:
///
/// ```text
/// a ∈ {wr(x,n), wr^R(x,n)}   (w,q) ∈ γ.Obs(t,x) \ γ.cvd   fresh_γ(q,q')
/// ops'   = γ.ops ∪ {(a,q')}
/// tview' = γ.tview_t[x := (a,q')]
/// mview' = tview' ∪ β.tview_t
/// ```
pub fn apply_write(
    s: &LitCombined,
    c: Comp,
    t: Tid,
    x: Loc,
    v: Val,
    rel: bool,
    w: LitOp,
) -> LitCombined {
    let mut next = s.clone();
    let (exec, ctx) = next.exec_ctx_mut(c);
    let a = LitAction::Wr { loc: x, v, rel, tid: t };
    let q2 = exec.fresh_after(w.1);
    let new: LitOp = (a, q2);
    exec.ops.insert(new);
    let tv = exec.tview.get_mut(&t).unwrap();
    tv.insert(x, new);
    let mview = LitCrossView { own: tv.clone(), other: ctx.tview[&t].clone() };
    exec.mview.insert(new, mview);
    next
}

/// Update premise: all `(w, q) ∈ Obs(t, x) \ cvd` with `wrval(w) = m` when a
/// CAS expects `m`.
pub fn update_choices(
    s: &LitCombined,
    c: Comp,
    t: Tid,
    x: Loc,
    expect: Option<Val>,
) -> Vec<LitOp> {
    write_choices(s, c, t, x)
        .into_iter()
        .filter(|w| expect.is_none_or(|m| w.0.wrval() == m))
        .collect()
}

/// Figure 5 `Update`:
///
/// ```text
/// a = upd^RA(x,m,n)   (w,q) ∈ γ.Obs(t,x) \ γ.cvd   wrval(w) = m   fresh_γ(q,q')
/// ops'  = γ.ops ∪ {(a,q')}       cvd' = γ.cvd ∪ {(w,q)}
/// tview'  = γ.tview_t[x := (a,q')] ⊗ γ.mview_(w,q)   if w ∈ W^R
///           γ.tview_t[x := (a,q')]                   otherwise
/// ctview' = β.tview_t ⊗ γ.mview_(w,q)                if w ∈ W^R
///           β.tview_t                                otherwise
/// mview' = tview' ∪ ctview'
/// ```
pub fn apply_update(s: &LitCombined, c: Comp, t: Tid, x: Loc, v: Val, w: LitOp) -> LitCombined {
    let mut next = s.clone();
    let (exec, ctx) = next.exec_ctx_mut(c);
    let a = LitAction::Upd { loc: x, v_read: w.0.wrval(), v, tid: t };
    let q2 = exec.fresh_after(w.1);
    let new: LitOp = (a, q2);
    exec.ops.insert(new);
    exec.cvd.insert(w);
    let sync = w.0.is_releasing();
    let mv = exec.mview.get(&w).cloned();
    {
        let tv = exec.tview.get_mut(&t).unwrap();
        tv.insert(x, new);
        if sync {
            let mv = mv.as_ref().expect("every op has an mview");
            *tv = LitCState::join_views(tv, &mv.own);
        }
    }
    if sync {
        let mv = mv.as_ref().expect("every op has an mview");
        let ctv = ctx.tview.get_mut(&t).unwrap();
        *ctv = LitCState::join_views(ctv, &mv.other);
    }
    let mview =
        LitCrossView { own: exec.tview[&t].clone(), other: ctx.tview[&t].clone() };
    exec.mview.insert(new, mview);
    next
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::InitLoc;

    const D: Loc = Loc(0);
    const F: Loc = Loc(1);
    const T1: Tid = Tid(0);
    const T2: Tid = Tid(1);

    fn mp() -> LitCombined {
        LitCombined::new(&[InitLoc::Var(Val::Int(0)), InitLoc::Var(Val::Int(0))], &[], 2)
    }

    #[test]
    fn literal_mp_relaxed_allows_stale() {
        let s = mp();
        let w0 = s.client.obs(T1, D)[0];
        let s = apply_write(&s, Comp::Client, T1, D, Val::Int(5), false, w0);
        let f0 = s.client.obs(T1, F)[0];
        let s = apply_write(&s, Comp::Client, T1, F, Val::Int(1), false, f0);
        let f1 = *s.client.obs(T2, F).last().unwrap();
        assert_eq!(f1.0.wrval(), Val::Int(1));
        let s = apply_read(&s, Comp::Client, T2, F, false, f1);
        let vals: Vec<Val> =
            read_choices(&s, Comp::Client, T2, D).iter().map(|w| w.0.wrval()).collect();
        assert!(vals.contains(&Val::Int(0)));
        assert!(vals.contains(&Val::Int(5)));
    }

    #[test]
    fn literal_mp_release_acquire_synchronises() {
        let s = mp();
        let w0 = s.client.obs(T1, D)[0];
        let s = apply_write(&s, Comp::Client, T1, D, Val::Int(5), false, w0);
        let f0 = s.client.obs(T1, F)[0];
        let s = apply_write(&s, Comp::Client, T1, F, Val::Int(1), true, f0);
        let f1 = *s.client.obs(T2, F).last().unwrap();
        let s = apply_read(&s, Comp::Client, T2, F, true, f1);
        let vals: Vec<Val> =
            read_choices(&s, Comp::Client, T2, D).iter().map(|w| w.0.wrval()).collect();
        assert_eq!(vals, vec![Val::Int(5)]);
    }

    #[test]
    fn literal_update_covers_and_blocks() {
        let s = mp();
        let w0 = s.client.obs(T1, D)[0];
        let s = apply_update(&s, Comp::Client, T1, D, Val::Int(1), w0);
        assert!(s.client.cvd.contains(&w0));
        // T2 cannot update the covered op.
        assert!(update_choices(&s, Comp::Client, T2, D, Some(Val::Int(0))).is_empty());
        // But can update the update itself.
        assert_eq!(update_choices(&s, Comp::Client, T2, D, Some(Val::Int(1))).len(), 1);
    }

    #[test]
    fn fresh_timestamps_interleave() {
        // Writing twice after the same predecessor nests timestamps between
        // the predecessor and the previously-inserted write.
        let s = mp();
        let w0 = s.client.obs(T1, D)[0];
        let s1 = apply_write(&s, Comp::Client, T1, D, Val::Int(1), false, w0);
        let s2 = apply_write(&s1, Comp::Client, T2, D, Val::Int(2), false, w0);
        let mut ops: Vec<LitOp> =
            s2.client.ops.iter().filter(|(a, _)| a.loc() == D).copied().collect();
        ops.sort_by_key(|a| a.1);
        // Timestamp order: init(0) < wr(2) < wr(1) — the second write bisects.
        let vals: Vec<Val> = ops.iter().map(|w| w.0.wrval()).collect();
        assert_eq!(vals, vec![Val::Int(0), Val::Int(2), Val::Int(1)]);
    }
}
