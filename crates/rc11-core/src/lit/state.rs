//! Literal component states: sets of `(action, timestamp)` pairs and
//! map-based views, exactly as written in Section 3.3.

use crate::action::MethodOp;
use crate::ids::{Comp, Loc, Tid};
use crate::state::InitLoc;
use crate::ts::Ts;
use crate::val::Val;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// An action, as it appears inside `ops` (modifying actions only — reads are
/// never recorded, per Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LitAction {
    /// `wr(x, v)` / `wr^R(x, v)` by thread `tid`.
    Wr {
        /// Written location.
        loc: Loc,
        /// Written value.
        v: Val,
        /// Releasing annotation.
        rel: bool,
        /// Writing thread.
        tid: Tid,
    },
    /// `upd^RA(x, v_read, v)` by thread `tid`.
    Upd {
        /// Updated location.
        loc: Loc,
        /// Value read (wrval of the covered operation).
        v_read: Val,
        /// Value written.
        v: Val,
        /// Updating thread.
        tid: Tid,
    },
    /// An abstract method operation `o.m` (Section 4).
    Method {
        /// The object's location.
        loc: Loc,
        /// The method operation.
        m: MethodOp,
        /// Executing thread.
        tid: Tid,
    },
}

impl LitAction {
    /// `var(a)` — the location an action is on.
    pub fn loc(self) -> Loc {
        match self {
            LitAction::Wr { loc, .. }
            | LitAction::Upd { loc, .. }
            | LitAction::Method { loc, .. } => loc,
        }
    }

    /// `wrval(a)` — the value a read of this action returns.
    pub fn wrval(self) -> Val {
        match self {
            LitAction::Wr { v, .. } => v,
            LitAction::Upd { v, .. } => v,
            LitAction::Method { m, .. } => m.written_val(),
        }
    }

    /// Membership in `W^R` (releasing writes; updates always release).
    pub fn is_releasing(self) -> bool {
        match self {
            LitAction::Wr { rel, .. } => rel,
            LitAction::Upd { .. } => true,
            LitAction::Method { m, .. } => m.is_releasing(),
        }
    }
}

impl fmt::Display for LitAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LitAction::Wr { loc, v, rel, tid } => {
                write!(f, "wr{}({loc},{v})@{tid}", if *rel { "^R" } else { "" })
            }
            LitAction::Upd { loc, v_read, v, tid } => {
                write!(f, "upd^RA({loc},{v_read},{v})@{tid}")
            }
            LitAction::Method { loc, m, tid } => write!(f, "{loc}.{m}@{tid}"),
        }
    }
}

/// An operation: an action paired with its timestamp — the elements of
/// `ops ⊆ Act × Q`.
pub type LitOp = (LitAction, Ts);

/// A viewfront over one component's locations: `Loc ↦ (action, timestamp)`.
pub type LitView = BTreeMap<Loc, LitOp>;

/// A modification view spanning both components (Section 3.3: "the
/// modification view function may map to operations across the system").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LitCrossView {
    /// Viewfront over the executing component's locations.
    pub own: LitView,
    /// Viewfront over the context component's locations.
    pub other: LitView,
}

/// A literal component state — exactly the tuple of Section 3.3:
/// `(ops, tview, mview, cvd)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LitCState {
    /// Which component this is.
    pub comp: Comp,
    /// The modifying operations executed so far.
    pub ops: BTreeSet<LitOp>,
    /// Per-thread viewfronts.
    pub tview: BTreeMap<Tid, LitView>,
    /// Per-operation modification views.
    pub mview: BTreeMap<LitOp, LitCrossView>,
    /// Covered operations.
    pub cvd: BTreeSet<LitOp>,
}

impl LitCState {
    /// `tst(tview_t(x))` and the observable-set `Obs(t, x)` of Section 3.3.
    pub fn obs(&self, t: Tid, x: Loc) -> Vec<LitOp> {
        let front_ts = self.tview[&t][&x].1;
        let mut v: Vec<LitOp> = self
            .ops
            .iter()
            .filter(|(a, q)| a.loc() == x && front_ts <= *q)
            .copied()
            .collect();
        // Present choices in timestamp order so the fast and literal engines
        // enumerate corresponding choices at the same indices.
        v.sort_by_key(|op| op.1);
        v
    }

    /// The maximal timestamp on location `x` — `maxTS(x, σ)` of Figure 6.
    pub fn max_ts(&self, x: Loc) -> Ts {
        self.ops
            .iter()
            .filter(|(a, _)| a.loc() == x)
            .map(|(_, q)| *q)
            .max()
            .expect("location is initialised")
    }

    /// The operation holding the maximal timestamp on `x`.
    pub fn max_op(&self, x: Loc) -> LitOp {
        *self
            .ops
            .iter()
            .filter(|(a, _)| a.loc() == x)
            .max_by_key(|(_, q)| *q)
            .expect("location is initialised")
    }

    /// `fresh_γ(q, q')` witness: the canonical fresh timestamp strictly
    /// after `q` and before every existing timestamp greater than `q`
    /// (quantified over **all** ops, per the paper's definition).
    pub fn fresh_after(&self, q: Ts) -> Ts {
        match self.ops.iter().map(|(_, t)| *t).filter(|t| *t > q).min() {
            Some(next) => q.midpoint(next),
            None => q.succ(),
        }
    }

    /// `V1 ⊗ V2` — keep, per location, the later entry (Section 3.3).
    pub fn join_views(v1: &LitView, v2: &LitView) -> LitView {
        let mut out = v1.clone();
        for (x, w2) in v2 {
            match out.get(x) {
                Some(w1) if w2.1 <= w1.1 => {}
                _ => {
                    out.insert(*x, *w2);
                }
            }
        }
        out
    }
}

/// The combined literal state: client `γ` and library `β`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LitCombined {
    /// The client component state.
    pub client: LitCState,
    /// The library component state.
    pub lib: LitCState,
}

impl LitCombined {
    /// Initialisation per Section 3.3: one timestamp-0 operation per
    /// location; all thread views at the initial operations; every initial
    /// operation's modification view spans both components.
    pub fn new(client_inits: &[InitLoc], lib_inits: &[InitLoc], n_threads: usize) -> LitCombined {
        let mk = |comp: Comp, inits: &[InitLoc]| -> LitCState {
            let mut ops = BTreeSet::new();
            let mut view = LitView::new();
            for (i, init) in inits.iter().enumerate() {
                let loc = Loc(i as u16);
                let act = match *init {
                    InitLoc::Var(v) => LitAction::Wr { loc, v, rel: false, tid: Tid(0) },
                    InitLoc::Obj => LitAction::Method { loc, m: MethodOp::Init, tid: Tid(0) },
                };
                ops.insert((act, Ts::ZERO));
                view.insert(loc, (act, Ts::ZERO));
            }
            let tview: BTreeMap<Tid, LitView> =
                (0..n_threads).map(|t| (Tid(t as u8), view.clone())).collect();
            LitCState { comp, ops, tview, mview: BTreeMap::new(), cvd: BTreeSet::new() }
        };
        let mut client = mk(Comp::Client, client_inits);
        let mut lib = mk(Comp::Lib, lib_inits);
        let cv = client.tview[&Tid(0)].clone();
        let lv = lib.tview[&Tid(0)].clone();
        for op in client.ops.clone() {
            client.mview.insert(op, LitCrossView { own: cv.clone(), other: lv.clone() });
        }
        for op in lib.ops.clone() {
            lib.mview.insert(op, LitCrossView { own: lv.clone(), other: cv.clone() });
        }
        LitCombined { client, lib }
    }

    /// The state of component `c`.
    pub fn comp(&self, c: Comp) -> &LitCState {
        match c {
            Comp::Client => &self.client,
            Comp::Lib => &self.lib,
        }
    }

    /// Split-borrow `(executing, context)` for a step in component `c`.
    pub fn exec_ctx_mut(&mut self, c: Comp) -> (&mut LitCState, &mut LitCState) {
        match c {
            Comp::Client => (&mut self.client, &mut self.lib),
            Comp::Lib => (&mut self.lib, &mut self.client),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_is_well_formed() {
        let s = LitCombined::new(&[InitLoc::Var(Val::Int(0))], &[InitLoc::Obj], 2);
        assert_eq!(s.client.ops.len(), 1);
        assert_eq!(s.lib.ops.len(), 1);
        assert_eq!(s.client.max_ts(Loc(0)), Ts::ZERO);
        assert_eq!(s.client.tview[&Tid(1)][&Loc(0)].1, Ts::ZERO);
        // Initial mviews span both components.
        let init_op = *s.client.ops.iter().next().unwrap();
        let mv = &s.client.mview[&init_op];
        assert_eq!(mv.own.len(), 1);
        assert_eq!(mv.other.len(), 1);
    }

    #[test]
    fn fresh_after_bisects_or_extends() {
        let s = LitCombined::new(&[InitLoc::Var(Val::Int(0))], &[], 1);
        let q = s.client.fresh_after(Ts::ZERO);
        assert!(q > Ts::ZERO);
        assert_eq!(q, Ts::int(1), "no later op: succ");
    }

    #[test]
    fn join_views_keeps_later() {
        let a = LitAction::Wr { loc: Loc(0), v: Val::Int(1), rel: false, tid: Tid(0) };
        let b = LitAction::Wr { loc: Loc(0), v: Val::Int(2), rel: false, tid: Tid(1) };
        let v1: LitView = [(Loc(0), (a, Ts::int(1)))].into_iter().collect();
        let v2: LitView = [(Loc(0), (b, Ts::int(2)))].into_iter().collect();
        let j = LitCState::join_views(&v1, &v2);
        assert_eq!(j[&Loc(0)].0, b);
        let j2 = LitCState::join_views(&v2, &v1);
        assert_eq!(j, j2);
    }
}
