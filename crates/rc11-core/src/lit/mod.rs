//! The **literal engine**: a line-by-line transcription of the paper's
//! memory semantics (Figure 5) with exact rational timestamps.
//!
//! Everything here favours one-to-one correspondence with the paper over
//! speed: `ops` is a set of `(action, timestamp)` pairs, views are maps from
//! locations to such pairs, and the transition functions quote the premises
//! of Figure 5 clause by clause. The fast engine ([`crate::state`],
//! [`crate::combined`]) implements the same relation with dense ranks; the
//! two are cross-validated by differential tests and compared in the
//! engine-ablation bench (A1 in DESIGN.md).

pub mod state;
pub mod step;

pub use state::{LitAction, LitCState, LitCombined, LitCrossView, LitOp};
