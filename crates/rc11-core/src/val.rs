//! Runtime values.
//!
//! The paper's value domain `Val` is left abstract; programs in the paper use
//! integers, booleans (CAS results, lock-acquire results) and the null value
//! `⊥` (the result of statements and value-less method calls, written
//! [`Val::Bot`] here).

use std::fmt;

/// A runtime value: an integer, a boolean, or the null value `⊥`.
///
/// `⊥` is *not* a member of the paper's `Val`; it is the distinguished result
/// of completed statements and of method calls that return nothing (e.g.
/// `Release`). Keeping it in the same enum keeps local-state updates uniform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Val {
    /// An integer value.
    Int(i64),
    /// A boolean value (e.g. the result of a `CAS`).
    Bool(bool),
    /// The `Empty` result of popping an empty stack (Figures 1–2 use
    /// `s.pop() = Empty` as the retry condition; `[s.pop emp]_t` asserts it
    /// is the only possible result).
    Empty,
    /// The null value `⊥` — the "result" of a completed statement.
    Bot,
}

impl Val {
    /// The integer payload, or `None` for booleans and `⊥`.
    #[inline]
    pub fn as_int(self) -> Option<i64> {
        match self {
            Val::Int(n) => Some(n),
            _ => None,
        }
    }

    /// The boolean payload. Integers are *not* coerced: the paper's
    /// expression language keeps booleans and integers distinct.
    #[inline]
    pub fn as_bool(self) -> Option<bool> {
        match self {
            Val::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// True iff this is the null value `⊥`.
    #[inline]
    pub fn is_bot(self) -> bool {
        matches!(self, Val::Bot)
    }

    /// Truthiness used by `if`/`while` guards: `Bool(b)` is `b`; any other
    /// value is a guard-evaluation error surfaced by the interpreter.
    #[inline]
    pub fn truthy(self) -> Option<bool> {
        self.as_bool()
    }
}

impl From<i64> for Val {
    #[inline]
    fn from(n: i64) -> Self {
        Val::Int(n)
    }
}

impl From<bool> for Val {
    #[inline]
    fn from(b: bool) -> Self {
        Val::Bool(b)
    }
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Val::Int(n) => write!(f, "{n}"),
            Val::Bool(b) => write!(f, "{b}"),
            Val::Empty => write!(f, "Empty"),
            Val::Bot => write!(f, "⊥"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_round_trip() {
        let v = Val::from(42);
        assert_eq!(v.as_int(), Some(42));
        assert_eq!(v.as_bool(), None);
        assert!(!v.is_bot());
    }

    #[test]
    fn bool_round_trip() {
        let v = Val::from(true);
        assert_eq!(v.as_bool(), Some(true));
        assert_eq!(v.as_int(), None);
    }

    #[test]
    fn bot_is_distinct() {
        assert!(Val::Bot.is_bot());
        assert_ne!(Val::Bot, Val::Int(0));
        assert_ne!(Val::Bot, Val::Bool(false));
    }

    #[test]
    fn no_int_bool_coercion() {
        assert_eq!(Val::Int(1).truthy(), None);
        assert_eq!(Val::Bool(true).truthy(), Some(true));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Val::Int(-3).to_string(), "-3");
        assert_eq!(Val::Bool(false).to_string(), "false");
        assert_eq!(Val::Bot.to_string(), "⊥");
    }
}
