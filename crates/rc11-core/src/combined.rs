//! The combined client–library memory state and the Figure-5 transition
//! relation `γ, β ⟿ₜᵃ γ', β'`.
//!
//! Every transition is executed against a pair of component states: the
//! *executing* component `γ` and its *context* `β` (Section 3.2). For a
//! client step the client state is `γ`; for a library step the roles swap —
//! [`Combined`] holds both and each step names the executing [`Comp`].
//!
//! Nondeterminism is explicit: `*_choices`/`*_preds` enumerate the premises
//! Figure 5 existentially quantifies over (which observable write a read
//! reads from; which uncovered observable write a write/update succeeds),
//! and `apply_*` builds the unique successor state for one choice. The
//! explorer (rc11-check) fans out over all choices.

use crate::action::OpAction;
use crate::ids::{Comp, Loc, OpId, Tid};
use crate::state::{CState, InitLoc, OpRecord};
use crate::val::Val;

/// One possible result of a read: the operation read from and its value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadChoice {
    /// The observable operation the read reads from.
    pub from: OpId,
    /// `wrval(from)` — the value returned.
    pub val: Val,
}

/// The combined memory state: client component + library component.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Combined {
    states: [CState; 2],
}

impl Combined {
    /// Initialise both components (Section 3.3 `Initialisation`): every
    /// location gets a timestamp-0 operation, all thread views point at the
    /// initialising operations, and every initial operation's modification
    /// view spans both components' initial views
    /// (`γInit.mview_x = γInit.tview_t ∪ βInit.tview_t`).
    pub fn new(client_inits: &[InitLoc], lib_inits: &[InitLoc], n_threads: usize) -> Combined {
        assert!(n_threads >= 1, "at least one thread");
        let mut client = CState::init(Comp::Client, client_inits, n_threads);
        let mut lib = CState::init(Comp::Lib, lib_inits, n_threads);
        let cv = client.tview(Tid(0)).clone();
        let lv = lib.tview(Tid(0)).clone();
        for i in 0..client.n_ops() {
            client.set_mview(OpId(i as u32), cv.clone(), lv.clone());
        }
        for i in 0..lib.n_ops() {
            lib.set_mview(OpId(i as u32), lv.clone(), cv.clone());
        }
        Combined { states: [client, lib] }
    }

    /// Reassemble a combined state from its two components (used by
    /// canonicalisation). The components must agree on thread count and be
    /// tagged `Client`/`Lib` respectively.
    pub(crate) fn from_parts(client: CState, lib: CState) -> Combined {
        debug_assert_eq!(client.comp, Comp::Client);
        debug_assert_eq!(lib.comp, Comp::Lib);
        Combined { states: [client, lib] }
    }

    /// The client component state `γ`.
    #[inline]
    pub fn client(&self) -> &CState {
        &self.states[0]
    }

    /// The library component state `β`.
    #[inline]
    pub fn lib(&self) -> &CState {
        &self.states[1]
    }

    /// Approximate heap footprint of both component states in bytes (see
    /// [`CState::approx_bytes`]).
    pub fn approx_bytes(&self) -> usize {
        self.states.iter().map(CState::approx_bytes).sum()
    }

    /// The state of component `c`.
    #[inline]
    pub fn comp(&self, c: Comp) -> &CState {
        &self.states[c.idx()]
    }

    /// Mutable state of component `c`.
    #[inline]
    pub fn comp_mut(&mut self, c: Comp) -> &mut CState {
        &mut self.states[c.idx()]
    }

    /// Split-borrow `(executing, context)` for a step in component `c`.
    #[inline]
    pub fn exec_ctx_mut(&mut self, c: Comp) -> (&mut CState, &mut CState) {
        let [client, lib] = &mut self.states;
        match c {
            Comp::Client => (client, lib),
            Comp::Lib => (lib, client),
        }
    }

    /// Check both components' internal invariants (test helper).
    pub fn check_invariants(&self) {
        self.states[0].check_invariants();
        self.states[1].check_invariants();
    }

    // ------------------------------------------------------------------
    // Read transitions (Figure 5, `Read`)
    // ------------------------------------------------------------------

    /// All operations a read of `loc` by `t` in component `c` may read from:
    /// `{ (w, q) ∈ Obs(t, x) }`, with their values.
    pub fn read_choices(&self, c: Comp, t: Tid, loc: Loc) -> Vec<ReadChoice> {
        self.comp(c)
            .obs(t, loc)
            .iter()
            .map(|&w| ReadChoice { from: w, val: self.comp(c).op(w).act.wrval() })
            .collect()
    }

    /// Apply a read (`rd` / `rd^A`) of `loc` by `t` reading from `from`.
    ///
    /// An acquiring read of a releasing write synchronises: the executing
    /// component's thread view joins the write's own-half `mview`, and the
    /// *context* thread view joins the cross-half — this is how library
    /// synchronisation updates client views and vice versa.
    #[must_use]
    pub fn apply_read(&self, c: Comp, t: Tid, loc: Loc, acq: bool, from: OpId) -> Combined {
        let mut next = self.clone();
        let (exec, ctx) = next.exec_ctx_mut(c);
        let sync = acq && exec.op(from).act.is_releasing();
        if sync {
            let mv_own = exec.mview_own(from).clone();
            let mv_other = exec.mview_other(from).clone();
            exec.join_tview_with(t, &mv_own);
            ctx.join_tview_with(t, &mv_other);
        } else {
            exec.tview_mut(t).set(loc, from);
        }
        next
    }

    // ------------------------------------------------------------------
    // Write transitions (Figure 5, `Write`)
    // ------------------------------------------------------------------

    /// The legal predecessors for a new write: `Obs(t, x) \ cvd`.
    pub fn write_preds(&self, c: Comp, t: Tid, loc: Loc) -> Vec<OpId> {
        self.comp(c).obs_uncovered(t, loc).collect()
    }

    /// Apply a write (`wr` / `wr^R`) of `v` to `loc`, placed immediately
    /// after `after`. The writer's view moves to the new write, and the new
    /// write's modification view records the writer's views of *both*
    /// components (`mview' = tview' ∪ β.tview_t`).
    #[must_use]
    pub fn apply_write(
        &self,
        c: Comp,
        t: Tid,
        loc: Loc,
        v: Val,
        rel: bool,
        after: OpId,
    ) -> Combined {
        let mut next = self.clone();
        let (exec, ctx) = next.exec_ctx_mut(c);
        debug_assert!(!exec.is_covered(after), "write after a covered op violates atomicity");
        let new = exec.insert_after(after, OpRecord { loc, tid: t, act: OpAction::Write { v, rel } });
        exec.tview_mut(t).set(loc, new);
        let own = exec.tview(t).clone();
        let other = ctx.tview(t).clone();
        exec.set_mview(new, own, other);
        next
    }

    // ------------------------------------------------------------------
    // Update transitions (Figure 5, `Update`)
    // ------------------------------------------------------------------

    /// The operations an update may interact with: `Obs(t, x) \ cvd`,
    /// optionally filtered to those whose `wrval` equals `expect` (the CAS
    /// success premise `wrval(w) = m`).
    pub fn update_preds(&self, c: Comp, t: Tid, loc: Loc, expect: Option<Val>) -> Vec<OpId> {
        self.comp(c)
            .obs_uncovered(t, loc)
            .filter(|&w| expect.is_none_or(|m| self.comp(c).op(w).act.wrval() == m))
            .collect()
    }

    /// `wrval` of an operation in component `c` — used by FAI to compute the
    /// written value from the chosen predecessor.
    pub fn wrval_of(&self, c: Comp, w: OpId) -> Val {
        self.comp(c).op(w).act.wrval()
    }

    /// Apply an update (`upd^RA`) writing `v`, interacting with `after`.
    ///
    /// Combines Read and Write: the interacted-with operation becomes
    /// covered (no later write may intervene — atomicity of read-modify-
    /// write), the updater's view includes the new operation, and if the
    /// covered operation was releasing, the update additionally synchronises
    /// like an acquiring read (both component views join the `mview`).
    #[must_use]
    pub fn apply_update(&self, c: Comp, t: Tid, loc: Loc, v: Val, after: OpId) -> Combined {
        let mut next = self.clone();
        let (exec, ctx) = next.exec_ctx_mut(c);
        debug_assert!(!exec.is_covered(after), "update of a covered op violates atomicity");
        let v_read = exec.op(after).act.wrval();
        let sync = exec.op(after).act.is_releasing();
        let new =
            exec.insert_after(after, OpRecord { loc, tid: t, act: OpAction::Update { v_read, v } });
        exec.cover(after);
        exec.tview_mut(t).set(loc, new);
        if sync {
            let mv_own = exec.mview_own(after).clone();
            let mv_other = exec.mview_other(after).clone();
            exec.join_tview_with(t, &mv_own);
            ctx.join_tview_with(t, &mv_other);
        }
        let own = exec.tview(t).clone();
        let other = ctx.tview(t).clone();
        exec.set_mview(new, own, other);
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const D: Loc = Loc(0); // client data variable
    const F: Loc = Loc(1); // client flag variable
    const T1: Tid = Tid(0);
    const T2: Tid = Tid(1);

    fn mp_state() -> Combined {
        // Client: d = 0, f = 0; empty library.
        Combined::new(&[InitLoc::Var(Val::Int(0)), InitLoc::Var(Val::Int(0))], &[], 2)
    }

    #[test]
    fn init_mviews_span_both_components() {
        let s = Combined::new(&[InitLoc::Var(Val::Int(0))], &[InitLoc::Var(Val::Int(1))], 2);
        assert_eq!(s.client().mview_other(OpId(0)).len(), 1);
        assert_eq!(s.lib().mview_other(OpId(0)).len(), 1);
        s.check_invariants();
    }

    #[test]
    fn read_sees_initial_value() {
        let s = mp_state();
        let choices = s.read_choices(Comp::Client, T1, D);
        assert_eq!(choices.len(), 1);
        assert_eq!(choices[0].val, Val::Int(0));
    }

    /// The message-passing litmus test at the memory level: with a relaxed
    /// flag write, the reader can see the flag yet read the stale data value.
    #[test]
    fn mp_relaxed_allows_stale_read() {
        let s = mp_state();
        // T1: d := 5; f :=(relaxed) 1
        let s = s.apply_write(Comp::Client, T1, D, Val::Int(5), false, OpId(0));
        let s = s.apply_write(Comp::Client, T1, F, Val::Int(1), false, OpId(1));
        // T2 reads f = 1 (relaxed), then d: both 0 and 5 must be observable.
        let f_new = *s.client().mo(F).last().unwrap();
        let s = s.apply_read(Comp::Client, T2, F, false, f_new);
        let vals: Vec<Val> =
            s.read_choices(Comp::Client, T2, D).iter().map(|c| c.val).collect();
        assert!(vals.contains(&Val::Int(0)), "stale read must be possible (relaxed)");
        assert!(vals.contains(&Val::Int(5)));
    }

    /// With release/acquire, seeing the flag forces seeing the data.
    #[test]
    fn mp_release_acquire_forbids_stale_read() {
        let s = mp_state();
        let s = s.apply_write(Comp::Client, T1, D, Val::Int(5), false, OpId(0));
        let s = s.apply_write(Comp::Client, T1, F, Val::Int(1), true, OpId(1));
        let f_new = *s.client().mo(F).last().unwrap();
        let s = s.apply_read(Comp::Client, T2, F, true, f_new);
        let vals: Vec<Val> =
            s.read_choices(Comp::Client, T2, D).iter().map(|c| c.val).collect();
        assert_eq!(vals, vec![Val::Int(5)], "after synchronisation only d=5 is observable");
    }

    #[test]
    fn update_covers_predecessor() {
        let s = mp_state();
        let preds = s.update_preds(Comp::Client, T1, D, Some(Val::Int(0)));
        assert_eq!(preds, vec![OpId(0)]);
        let s = s.apply_update(Comp::Client, T1, D, Val::Int(1), OpId(0));
        assert!(s.client().is_covered(OpId(0)));
        // No write/update may now use the covered op as predecessor.
        assert!(s.update_preds(Comp::Client, T2, D, Some(Val::Int(0))).is_empty());
        s.check_invariants();
    }

    #[test]
    fn cas_expect_filters_preds() {
        let s = mp_state();
        assert!(s.update_preds(Comp::Client, T1, D, Some(Val::Int(7))).is_empty());
        assert_eq!(s.update_preds(Comp::Client, T1, D, None).len(), 1);
    }

    #[test]
    fn update_synchronises_with_releasing_pred() {
        // T1 writes d=5 then releases f=1; T2 CASes f 1->2: must then see d=5 only.
        let s = mp_state();
        let s = s.apply_write(Comp::Client, T1, D, Val::Int(5), false, OpId(0));
        let s = s.apply_write(Comp::Client, T1, F, Val::Int(1), true, OpId(1));
        let f_new = *s.client().mo(F).last().unwrap();
        let s = s.apply_update(Comp::Client, T2, F, Val::Int(2), f_new);
        let vals: Vec<Val> =
            s.read_choices(Comp::Client, T2, D).iter().map(|c| c.val).collect();
        assert_eq!(vals, vec![Val::Int(5)]);
    }

    #[test]
    fn writes_by_other_threads_stay_observable_until_read() {
        let s = mp_state();
        let s = s.apply_write(Comp::Client, T1, D, Val::Int(5), false, OpId(0));
        // T2 never read d: still sees init and the new write.
        assert_eq!(s.read_choices(Comp::Client, T2, D).len(), 2);
        // T1 wrote it: sees only its own write.
        assert_eq!(s.read_choices(Comp::Client, T1, D).len(), 1);
    }
}
