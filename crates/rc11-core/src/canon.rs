//! Canonical renumbering of operation ids.
//!
//! Operation ids are assigned in *insertion* order, so two interleavings
//! that produce the same memory state (same per-location histories, views
//! and covers) can still differ in raw ids. Canonicalisation renumbers ops
//! of both components by `(location, modification-order position)` — the
//! only ordering that is part of the state's meaning — so structurally equal
//! states become representationally equal. The explorer dedups visited
//! states on canonical forms; without this, every interleaving would look
//! fresh and exploration would never converge (ablation A1 in DESIGN.md).

use crate::combined::Combined;
use crate::ids::{Loc, OpId};
use crate::state::CState;
use crate::view::View;

/// Build the canonical permutation for one component: `perm[old] = new`,
/// numbering ops by location then modification-order position.
fn perm_of(st: &CState) -> Vec<OpId> {
    let mut perm = vec![OpId(0); st.n_ops()];
    let mut next = 0u32;
    for li in 0..st.n_locs() {
        for &w in st.mo(Loc(li as u16)) {
            perm[w.idx()] = OpId(next);
            next += 1;
        }
    }
    debug_assert_eq!(next as usize, st.n_ops());
    perm
}

/// Rebuild a component state with ids renumbered by `perm` (own ids) and
/// `perm_other` (ids appearing in cross-component view halves).
fn renumber(st: &CState, perm: &[OpId], perm_other: &[OpId]) -> CState {
    let (ops, mo, tview, mview_own, mview_other, cvd) = st.raw_parts();
    let n = ops.len();

    let mut new_ops = ops.to_vec();
    let mut new_cvd = vec![false; n];
    let mut new_mview_own: Vec<Option<View>> = vec![None; n];
    let mut new_mview_other: Vec<Option<View>> = vec![None; n];
    for old in 0..n {
        let new = perm[old].idx();
        new_ops[new] = ops[old];
        new_cvd[new] = cvd[old];
        let mut own = mview_own[old].clone();
        own.remap(perm);
        new_mview_own[new] = Some(own);
        let mut other = mview_other[old].clone();
        other.remap(perm_other);
        new_mview_other[new] = Some(other);
    }

    let new_mo: Vec<Vec<OpId>> = mo
        .iter()
        .map(|locs| locs.iter().map(|w| perm[w.idx()]).collect())
        .collect();

    let new_tview: Vec<View> = tview
        .iter()
        .map(|v| {
            let mut v = v.clone();
            v.remap(perm);
            v
        })
        .collect();

    CState::from_raw_parts(
        st.comp,
        new_ops,
        new_mo,
        new_tview,
        new_mview_own.into_iter().map(|v| v.unwrap()).collect(),
        new_mview_other.into_iter().map(|v| v.unwrap()).collect(),
        new_cvd,
    )
}

impl Combined {
    /// The canonical representative of this state: ids renumbered by
    /// `(location, mo-position)` in both components, cross-references
    /// remapped consistently. Idempotent; structurally-equal states have
    /// equal canonical forms (tested by property tests).
    #[must_use]
    pub fn canonical(&self) -> Combined {
        let pc = perm_of(self.client());
        let pl = perm_of(self.lib());
        let client = renumber(self.client(), &pc, &pl);
        let lib = renumber(self.lib(), &pl, &pc);
        Combined::from_parts(client, lib)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Comp, Tid};
    use crate::state::InitLoc;
    use crate::val::Val;

    const X: Loc = Loc(0);
    const Y: Loc = Loc(1);

    fn base() -> Combined {
        Combined::new(&[InitLoc::Var(Val::Int(0)), InitLoc::Var(Val::Int(0))], &[], 2)
    }

    /// Independent writes to different variables commute up to ids; the
    /// canonical forms must coincide.
    #[test]
    fn interleaving_order_is_cancelled() {
        let s = base();
        let a = s
            .apply_write(Comp::Client, Tid(0), X, Val::Int(1), false, OpId(0))
            .apply_write(Comp::Client, Tid(1), Y, Val::Int(2), false, OpId(1));
        let b = s
            .apply_write(Comp::Client, Tid(1), Y, Val::Int(2), false, OpId(1))
            .apply_write(Comp::Client, Tid(0), X, Val::Int(1), false, OpId(0));
        assert_ne!(a, b, "raw ids differ between interleavings");
        assert_eq!(a.canonical(), b.canonical(), "canonical forms coincide");
    }

    #[test]
    fn canonical_is_idempotent() {
        let s = base()
            .apply_write(Comp::Client, Tid(0), X, Val::Int(1), true, OpId(0))
            .apply_update(Comp::Client, Tid(1), X, Val::Int(2), OpId(0));
        let c1 = s.canonical();
        let c2 = c1.canonical();
        assert_eq!(c1, c2);
        c1.check_invariants();
    }

    #[test]
    fn canonical_preserves_observable_structure() {
        let s = base().apply_write(Comp::Client, Tid(0), X, Val::Int(7), true, OpId(0));
        let c = s.canonical();
        // Same number of ops per location, same values in mo order.
        let vals = |st: &Combined| -> Vec<Val> {
            st.client().mo(X).iter().map(|&w| st.client().op(w).act.wrval()).collect()
        };
        assert_eq!(vals(&s), vals(&c));
        // Same observable values for each thread.
        for t in [Tid(0), Tid(1)] {
            let obs = |st: &Combined| -> Vec<Val> {
                st.read_choices(Comp::Client, t, X).iter().map(|c| c.val).collect()
            };
            assert_eq!(obs(&s), obs(&c));
        }
    }

    /// Differing *orders on the same variable* must NOT be identified.
    #[test]
    fn same_var_orders_stay_distinct() {
        let s = base();
        // T0 writes 1 then T1 writes 2 after it vs. the coherence-reversed
        // placement (T1's write placed before T0's).
        let a = {
            let s = s.apply_write(Comp::Client, Tid(0), X, Val::Int(1), false, OpId(0));
            let w1 = *s.client().mo(X).last().unwrap();
            s.apply_write(Comp::Client, Tid(1), X, Val::Int(2), false, w1)
        };
        let b = {
            let s = s.apply_write(Comp::Client, Tid(0), X, Val::Int(1), false, OpId(0));
            // T1 places its write directly after the initialisation.
            s.apply_write(Comp::Client, Tid(1), X, Val::Int(2), false, OpId(0))
        };
        assert_ne!(a.canonical(), b.canonical());
    }
}
