//! Canonical renumbering of operation ids — and the zero-rebuild canonical
//! walk behind fingerprint deduplication.
//!
//! Operation ids are assigned in *insertion* order, so two interleavings
//! that produce the same memory state (same per-location histories, views
//! and covers) can still differ in raw ids. Canonicalisation renumbers ops
//! of both components by `(location, modification-order position)` — the
//! only ordering that is part of the state's meaning — so structurally equal
//! states become representationally equal. The explorer dedups visited
//! states on canonical forms; without this, every interleaving would look
//! fresh and exploration would never converge (ablation A1 in DESIGN.md).
//!
//! Materialising the canonical form ([`Combined::canonical`]) clones every
//! op record, `mo` vector and view — far too expensive to pay once per
//! generated successor. This module therefore also provides the
//! **zero-rebuild canonical walk**: given the canonical permutations
//! ([`Combined::canonical_perms`]), [`Combined::hash_canonical_with`]
//! streams the canonical serialisation of a state into any
//! [`std::hash::Hasher`] without constructing it, and
//! [`Combined::canonical_eq_with`] compares a state against an
//! already-canonical representative entry by entry. Both walk ops in
//! `(location, mo-position)` order per component — exactly the canonical id
//! order — remapping view entries through the permutations on the fly. The
//! exploration engines (rc11-check) key their visited structures on the
//! resulting 128-bit fingerprints and fall back to `canonical_eq` inside a
//! fingerprint bucket, so deduplication decisions are bit-identical to
//! materialised-canonical dedup (ablation A4 in DESIGN.md).

use crate::combined::Combined;
use crate::ids::{Loc, OpId, Tid};
use crate::state::{CState, OpRecord};
use crate::view::View;
use std::hash::{Hash, Hasher};

/// The inverse of a thread permutation `sigma[old] = new`: `inv[new] = old`.
fn invert_tperm(sigma: &[u8]) -> Vec<u8> {
    let mut inv = vec![0u8; sigma.len()];
    for (old, &new) in sigma.iter().enumerate() {
        inv[new as usize] = old as u8;
    }
    inv
}

/// Build the canonical permutation for one component: `perm[old] = new`,
/// numbering ops by location then modification-order position.
fn perm_of(st: &CState) -> Vec<OpId> {
    let mut perm = vec![OpId(0); st.n_ops()];
    let mut next = 0u32;
    for li in 0..st.n_locs() {
        for &w in st.mo(Loc(li as u16)) {
            perm[w.idx()] = OpId(next);
            next += 1;
        }
    }
    debug_assert_eq!(next as usize, st.n_ops());
    perm
}

/// Rebuild a component state with ids renumbered by `perm` (own ids) and
/// `perm_other` (ids appearing in cross-component view halves), and —
/// when `tperm` is given — thread ids permuted by `tperm[old] = new`.
/// Initialisation operations (modification-order position 0 on every
/// location) belong to no thread and keep their dummy `Tid(0)`.
fn renumber(st: &CState, perm: &[OpId], perm_other: &[OpId], tperm: Option<&[u8]>) -> CState {
    let (ops, mo, tview, mview_own, mview_other, cvd) = st.raw_parts();
    let n = ops.len();

    // Which ops are initialisation ops: exactly the mo-position-0 entry of
    // every location (inserts always land at rank ≥ 1).
    let mut is_init = vec![false; n];
    for locs in mo {
        is_init[locs[0].idx()] = true;
    }

    let mut new_ops = ops.to_vec();
    let mut new_cvd = vec![false; n];
    let mut new_mview_own: Vec<Option<View>> = vec![None; n];
    let mut new_mview_other: Vec<Option<View>> = vec![None; n];
    for old in 0..n {
        let new = perm[old].idx();
        let mut rec = ops[old];
        if let Some(sigma) = tperm {
            if !is_init[old] {
                rec.tid = Tid(sigma[rec.tid.idx()]);
            }
        }
        new_ops[new] = rec;
        new_cvd[new] = cvd[old];
        let mut own = mview_own[old].clone();
        own.remap(perm);
        new_mview_own[new] = Some(own);
        let mut other = mview_other[old].clone();
        other.remap(perm_other);
        new_mview_other[new] = Some(other);
    }

    let new_mo: Vec<Vec<OpId>> = mo
        .iter()
        .map(|locs| locs.iter().map(|w| perm[w.idx()]).collect())
        .collect();

    let mut new_tview: Vec<View> = tview
        .iter()
        .map(|v| {
            let mut v = v.clone();
            v.remap(perm);
            v
        })
        .collect();
    if let Some(sigma) = tperm {
        let remapped = new_tview;
        new_tview = vec![View::from_entries(Vec::new()); remapped.len()];
        for (old_t, v) in remapped.into_iter().enumerate() {
            new_tview[sigma[old_t] as usize] = v;
        }
    }

    CState::from_raw_parts(
        st.comp,
        new_ops,
        new_mo,
        new_tview,
        new_mview_own.into_iter().map(|v| v.unwrap()).collect(),
        new_mview_other.into_iter().map(|v| v.unwrap()).collect(),
        new_cvd,
    )
}

/// The canonical permutations of a [`Combined`] state: `perm[old] = new`
/// for each component, numbering ops by `(location, mo-position)`.
///
/// Computing the permutations is the cheap part of canonicalisation (two
/// dense passes, no view cloning); they are reused across the fingerprint
/// walk, the canonical-equality walk and — when a state turns out to be
/// novel — the single materialising [`Combined::canonical_with`] call.
#[derive(Debug, Clone)]
pub struct CanonPerms {
    /// Client-component permutation (`perm[old] = new`).
    pub client: Vec<OpId>,
    /// Library-component permutation (`perm[old] = new`).
    pub lib: Vec<OpId>,
    /// Optional thread permutation (`threads[old tid] = new tid`) applied on
    /// top of the op renumbering — the symmetry-reduction hook (ablation A6).
    /// `None` means the identity. The op permutations commute with any
    /// thread permutation because [`perm_of`] orders ops purely by
    /// `(location, mo-position)`, which thread renaming leaves untouched.
    pub threads: Option<Vec<u8>>,
}

/// Stream one component's canonical serialisation into `h`: framing
/// (loc/thread/op counts and per-location `mo` lengths — which fully
/// determine the canonical `mo` vectors, since canonical ids are
/// consecutive in `(location, mo-position)` order), then every op record,
/// covered flag and modification-view pair in canonical id order with view
/// entries remapped on the fly, then the remapped thread views.
fn hash_component<H: Hasher>(
    st: &CState,
    perm: &[OpId],
    perm_other: &[OpId],
    tperm: Option<&[u8]>,
    h: &mut H,
) {
    let (ops, mo, tview, mview_own, mview_other, cvd) = st.raw_parts();
    h.write_usize(mo.len());
    h.write_usize(tview.len());
    h.write_usize(ops.len());
    for locs in mo {
        h.write_usize(locs.len());
    }
    for locs in mo {
        for (pos, &w) in locs.iter().enumerate() {
            let old = w.idx();
            // mo-position 0 is the location's initialisation op, which
            // belongs to no thread — its dummy tid stays fixed under any
            // thread permutation.
            match tperm {
                Some(sigma) if pos > 0 => {
                    let rec = ops[old];
                    OpRecord { tid: Tid(sigma[rec.tid.idx()]), ..rec }.hash(h);
                }
                _ => ops[old].hash(h),
            }
            h.write_u8(cvd[old] as u8);
            mview_own[old].hash_remapped(perm, h);
            mview_other[old].hash_remapped(perm_other, h);
        }
    }
    match tperm {
        Some(sigma) => {
            // Thread views in *canonical* slot order: new slot `j` holds the
            // view of the old thread `inv[j]`.
            let inv = invert_tperm(sigma);
            for &old_t in &inv {
                tview[old_t as usize].hash_remapped(perm, h);
            }
        }
        None => {
            for tv in tview {
                tv.hash_remapped(perm, h);
            }
        }
    }
}

/// True iff renumbering `st` through `perm`/`perm_other` would yield
/// exactly `canon` — which must already be in canonical form (its `mo`
/// vectors consecutive in `(location, mo-position)` order, as produced by
/// [`Combined::canonical`]). Walks without materialising anything.
fn component_canonical_eq(
    st: &CState,
    perm: &[OpId],
    perm_other: &[OpId],
    tperm: Option<&[u8]>,
    canon: &CState,
) -> bool {
    let (ops, mo, tview, mview_own, mview_other, cvd) = st.raw_parts();
    let (cops, cmo, ctview, cmview_own, cmview_other, ccvd) = canon.raw_parts();
    if ops.len() != cops.len() || mo.len() != cmo.len() || tview.len() != ctview.len() {
        return false;
    }
    let mut new_id = 0usize;
    for (locs, clocs) in mo.iter().zip(cmo) {
        if locs.len() != clocs.len() {
            return false;
        }
        for (pos, &w) in locs.iter().enumerate() {
            let old = w.idx();
            let rec = match tperm {
                // Init ops (mo-position 0) belong to no thread; see
                // `hash_component`.
                Some(sigma) if pos > 0 => {
                    OpRecord { tid: Tid(sigma[ops[old].tid.idx()]), ..ops[old] }
                }
                _ => ops[old],
            };
            if rec != cops[new_id]
                || cvd[old] != ccvd[new_id]
                || !mview_own[old].eq_remapped(perm, &cmview_own[new_id])
                || !mview_other[old].eq_remapped(perm_other, &cmview_other[new_id])
            {
                return false;
            }
            new_id += 1;
        }
    }
    match tperm {
        Some(sigma) => {
            let inv = invert_tperm(sigma);
            inv.iter()
                .zip(ctview)
                .all(|(&old_t, ctv)| tview[old_t as usize].eq_remapped(perm, ctv))
        }
        None => tview.iter().zip(ctview).all(|(tv, ctv)| tv.eq_remapped(perm, ctv)),
    }
}

impl Combined {
    /// The canonical permutations of both components (see [`CanonPerms`]),
    /// with the identity thread permutation.
    #[must_use]
    pub fn canonical_perms(&self) -> CanonPerms {
        CanonPerms { client: perm_of(self.client()), lib: perm_of(self.lib()), threads: None }
    }

    /// The canonical representative of this state: ids renumbered by
    /// `(location, mo-position)` in both components, cross-references
    /// remapped consistently. Idempotent; structurally-equal states have
    /// equal canonical forms (tested by property tests).
    #[must_use]
    pub fn canonical(&self) -> Combined {
        self.canonical_with(&self.canonical_perms())
    }

    /// [`Combined::canonical`] with precomputed permutations — lets a
    /// caller that already fingerprinted a state (and found it novel)
    /// materialise the canonical form without recomputing the permutations.
    #[must_use]
    pub fn canonical_with(&self, perms: &CanonPerms) -> Combined {
        let tperm = perms.threads.as_deref();
        let client = renumber(self.client(), &perms.client, &perms.lib, tperm);
        let lib = renumber(self.lib(), &perms.lib, &perms.client, tperm);
        Combined::from_parts(client, lib)
    }

    /// Rebuild this state with thread ids permuted by `sigma[old] = new`
    /// (op ids untouched): per-op `tid`s renamed (initialisation ops keep
    /// their dummy tid) and thread viewfronts moved to their new slots.
    /// Only sound as a state-space symmetry when `sigma` is a program
    /// automorphism — the detection side lives in `rc11-analyze`.
    #[must_use]
    pub fn permute_threads(&self, sigma: &[u8]) -> Combined {
        let identity = |st: &CState| (0..st.n_ops() as u32).map(OpId).collect::<Vec<_>>();
        let cid = identity(self.client());
        let lid = identity(self.lib());
        let client = renumber(self.client(), &cid, &lid, Some(sigma));
        let lib = renumber(self.lib(), &lid, &cid, Some(sigma));
        Combined::from_parts(client, lib)
    }

    /// Stream this state's *canonical* serialisation into `h` without
    /// materialising the canonical form. Two states feed identical byte
    /// streams into `h` iff their canonical forms are equal, so a
    /// wide-enough hash of this walk is a canonical fingerprint (the
    /// 128-bit instantiation lives in `rc11_check::fxhash`).
    pub fn hash_canonical_with<H: Hasher>(&self, perms: &CanonPerms, h: &mut H) {
        let tperm = perms.threads.as_deref();
        hash_component(self.client(), &perms.client, &perms.lib, tperm, h);
        hash_component(self.lib(), &perms.lib, &perms.client, tperm, h);
    }

    /// [`Combined::hash_canonical_with`], computing the permutations
    /// internally.
    pub fn hash_canonical<H: Hasher>(&self, h: &mut H) {
        self.hash_canonical_with(&self.canonical_perms(), h);
    }

    /// True iff `self.canonical() == *canon`, decided by a zero-rebuild
    /// walk. `canon` **must already be canonical** (as stored in the
    /// engines' interned state arenas); this is the collision-bucket
    /// confirmation step of fingerprint deduplication.
    #[must_use]
    pub fn canonical_eq_with(&self, perms: &CanonPerms, canon: &Combined) -> bool {
        let tperm = perms.threads.as_deref();
        component_canonical_eq(self.client(), &perms.client, &perms.lib, tperm, canon.client())
            && component_canonical_eq(self.lib(), &perms.lib, &perms.client, tperm, canon.lib())
    }

    /// [`Combined::canonical_eq_with`], computing the permutations
    /// internally.
    #[must_use]
    pub fn canonical_eq(&self, canon: &Combined) -> bool {
        self.canonical_eq_with(&self.canonical_perms(), canon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Comp, Tid};
    use crate::state::InitLoc;
    use crate::val::Val;

    const X: Loc = Loc(0);
    const Y: Loc = Loc(1);

    fn base() -> Combined {
        Combined::new(&[InitLoc::Var(Val::Int(0)), InitLoc::Var(Val::Int(0))], &[], 2)
    }

    /// Independent writes to different variables commute up to ids; the
    /// canonical forms must coincide.
    #[test]
    fn interleaving_order_is_cancelled() {
        let s = base();
        let a = s
            .apply_write(Comp::Client, Tid(0), X, Val::Int(1), false, OpId(0))
            .apply_write(Comp::Client, Tid(1), Y, Val::Int(2), false, OpId(1));
        let b = s
            .apply_write(Comp::Client, Tid(1), Y, Val::Int(2), false, OpId(1))
            .apply_write(Comp::Client, Tid(0), X, Val::Int(1), false, OpId(0));
        assert_ne!(a, b, "raw ids differ between interleavings");
        assert_eq!(a.canonical(), b.canonical(), "canonical forms coincide");
    }

    #[test]
    fn canonical_is_idempotent() {
        let s = base()
            .apply_write(Comp::Client, Tid(0), X, Val::Int(1), true, OpId(0))
            .apply_update(Comp::Client, Tid(1), X, Val::Int(2), OpId(0));
        let c1 = s.canonical();
        let c2 = c1.canonical();
        assert_eq!(c1, c2);
        c1.check_invariants();
    }

    #[test]
    fn canonical_preserves_observable_structure() {
        let s = base().apply_write(Comp::Client, Tid(0), X, Val::Int(7), true, OpId(0));
        let c = s.canonical();
        // Same number of ops per location, same values in mo order.
        let vals = |st: &Combined| -> Vec<Val> {
            st.client().mo(X).iter().map(|&w| st.client().op(w).act.wrval()).collect()
        };
        assert_eq!(vals(&s), vals(&c));
        // Same observable values for each thread.
        for t in [Tid(0), Tid(1)] {
            let obs = |st: &Combined| -> Vec<Val> {
                st.read_choices(Comp::Client, t, X).iter().map(|c| c.val).collect()
            };
            assert_eq!(obs(&s), obs(&c));
        }
    }

    /// A 64-bit instantiation of the canonical walk, for tests only (the
    /// engines use the 128-bit `Fx128Hasher` in rc11-check).
    fn walk_hash(s: &Combined) -> u64 {
        use std::hash::Hasher;
        let mut h = std::collections::hash_map::DefaultHasher::new();
        s.hash_canonical(&mut h);
        h.finish()
    }

    /// The zero-rebuild walk agrees with materialised canonicalisation:
    /// equal canonical forms ⟺ equal walk hashes, and `canonical_eq`
    /// decides exactly `self.canonical() == canon`.
    #[test]
    fn walk_agrees_with_materialised_canonicalisation() {
        let s = base();
        let a = s
            .apply_write(Comp::Client, Tid(0), X, Val::Int(1), false, OpId(0))
            .apply_write(Comp::Client, Tid(1), Y, Val::Int(2), true, OpId(1));
        let b = s
            .apply_write(Comp::Client, Tid(1), Y, Val::Int(2), true, OpId(1))
            .apply_write(Comp::Client, Tid(0), X, Val::Int(1), false, OpId(0));
        let c = s.apply_write(Comp::Client, Tid(0), X, Val::Int(3), false, OpId(0));

        assert_eq!(a.canonical(), b.canonical());
        assert_eq!(walk_hash(&a), walk_hash(&b), "equal canonical forms, equal walk");
        assert_ne!(walk_hash(&a), walk_hash(&c), "distinct canonical forms, distinct walk");

        assert!(a.canonical_eq(&b.canonical()));
        assert!(b.canonical_eq(&a.canonical()));
        assert!(!c.canonical_eq(&a.canonical()));
        assert!(!a.canonical_eq(&c.canonical()));
    }

    /// The walk hash is stable under canonicalisation (the canonical form's
    /// permutations are the identity), and `canonical_with` reusing
    /// precomputed permutations equals `canonical`.
    #[test]
    fn walk_is_stable_under_canonicalisation() {
        let s = base()
            .apply_write(Comp::Client, Tid(0), X, Val::Int(1), true, OpId(0))
            .apply_update(Comp::Client, Tid(1), X, Val::Int(2), OpId(0))
            .apply_read(Comp::Client, Tid(0), Y, true, OpId(1));
        let canon = s.canonical();
        assert_eq!(walk_hash(&s), walk_hash(&canon));
        assert!(s.canonical_eq(&canon));
        assert!(canon.canonical_eq(&canon));

        let perms = s.canonical_perms();
        assert_eq!(s.canonical_with(&perms), canon);
    }

    /// Covered flags are part of the canonical identity: states differing
    /// *only* in `cvd` must neither walk-hash equal nor canonical-eq.
    #[test]
    fn walk_distinguishes_covered_flags() {
        let s = base().apply_write(Comp::Client, Tid(0), X, Val::Int(1), true, OpId(0));
        let mut covered = s.clone();
        covered.comp_mut(Comp::Client).cover(OpId(0));
        assert_ne!(walk_hash(&s), walk_hash(&covered));
        assert!(!s.canonical_eq(&covered.canonical()));
        assert!(!covered.canonical_eq(&s.canonical()));
    }

    /// Differing *orders on the same variable* must NOT be identified.
    #[test]
    fn same_var_orders_stay_distinct() {
        let s = base();
        // T0 writes 1 then T1 writes 2 after it vs. the coherence-reversed
        // placement (T1's write placed before T0's).
        let a = {
            let s = s.apply_write(Comp::Client, Tid(0), X, Val::Int(1), false, OpId(0));
            let w1 = *s.client().mo(X).last().unwrap();
            s.apply_write(Comp::Client, Tid(1), X, Val::Int(2), false, w1)
        };
        let b = {
            let s = s.apply_write(Comp::Client, Tid(0), X, Val::Int(1), false, OpId(0));
            // T1 places its write directly after the initialisation.
            s.apply_write(Comp::Client, Tid(1), X, Val::Int(2), false, OpId(0))
        };
        assert_ne!(a.canonical(), b.canonical());
    }
}
