//! Exact rational timestamps for the *literal* engine.
//!
//! Figure 5 draws timestamps from `Q`: a fresh write receives a timestamp
//! `q'` with `fresh(q, q') = q < q' ∧ ∀w' ∈ ops. q < tst(w') ⇒ q' < tst(w')`,
//! i.e. strictly between its predecessor and the next existing timestamp.
//! The literal engine realises this with normalised `i64/u64` rationals and
//! midpoint insertion; the fast engine (`state` module) replaces rationals
//! with dense per-location ranks and is cross-validated against this one.

use std::cmp::Ordering;
use std::fmt;

/// An exact rational timestamp, kept normalised (`gcd(|num|, den) = 1`,
/// `den > 0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ts {
    num: i64,
    den: u64,
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Ts {
    /// The initial timestamp `0` given to initialising writes.
    pub const ZERO: Ts = Ts { num: 0, den: 1 };

    /// An integer timestamp.
    pub fn int(n: i64) -> Ts {
        Ts { num: n, den: 1 }
    }

    /// A normalised rational `num/den`. Panics if `den == 0`.
    pub fn new(num: i64, den: u64) -> Ts {
        assert!(den != 0, "timestamp denominator must be nonzero");
        let g = gcd(num.unsigned_abs(), den);
        if g <= 1 {
            return Ts { num, den };
        }
        Ts { num: num / g as i64, den: den / g }
    }

    /// The midpoint `(self + other) / 2` — the canonical fresh timestamp
    /// strictly between two distinct timestamps.
    pub fn midpoint(self, other: Ts) -> Ts {
        // (a/b + c/d) / 2 = (a*d + c*b) / (2*b*d)
        let num = self.num as i128 * other.den as i128 + other.num as i128 * self.den as i128;
        let den = 2i128 * self.den as i128 * other.den as i128;
        debug_assert!(num.abs() < i64::MAX as i128 && den < u64::MAX as i128,
            "timestamp arithmetic overflow; histories this deep should use the fast engine");
        Ts::new(num as i64, den as u64)
    }

    /// `self + 1` — the canonical fresh timestamp after a maximal one.
    pub fn succ(self) -> Ts {
        Ts { num: self.num + self.den as i64, den: self.den }
    }

    /// Numerator (normalised).
    pub fn num(self) -> i64 {
        self.num
    }

    /// Denominator (normalised, positive).
    pub fn den(self) -> u64 {
        self.den
    }
}

impl PartialOrd for Ts {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ts {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b <=> c/d  ⟺  a*d <=> c*b   (b, d > 0)
        let lhs = self.num as i128 * other.den as i128;
        let rhs = other.num as i128 * self.den as i128;
        lhs.cmp(&rhs)
    }
}

impl fmt::Display for Ts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalisation() {
        assert_eq!(Ts::new(2, 4), Ts::new(1, 2));
        assert_eq!(Ts::new(-2, 4), Ts::new(-1, 2));
        assert_eq!(Ts::new(0, 7), Ts::ZERO);
    }

    #[test]
    fn ordering_cross_multiplies() {
        assert!(Ts::new(1, 3) < Ts::new(1, 2));
        assert!(Ts::new(-1, 2) < Ts::ZERO);
        assert!(Ts::int(2) > Ts::new(3, 2));
    }

    #[test]
    fn midpoint_is_strictly_between() {
        let a = Ts::int(0);
        let b = Ts::int(1);
        let m = a.midpoint(b);
        assert!(a < m && m < b);
        let m2 = a.midpoint(m);
        assert!(a < m2 && m2 < m);
    }

    #[test]
    fn succ_is_strictly_larger() {
        let a = Ts::new(5, 3);
        assert!(a < a.succ());
        assert_eq!(Ts::int(1).succ(), Ts::int(2));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Ts::int(3).to_string(), "3");
        assert_eq!(Ts::new(1, 2).to_string(), "1/2");
    }
}
