//! Fast component states: the C11 state of Section 3.3 with dense
//! per-location timestamp *ranks* instead of rationals.
//!
//! A component state holds exactly the four pieces of Figure 5's state:
//!
//! * `ops` — the modifying operations executed so far (writes, updates,
//!   abstract method calls);
//! * `tview_t` — per-thread viewfronts over this component's locations;
//! * `mview_w` — per-operation viewfronts spanning **both** components (the
//!   paper: "the modification view function may map to operations across the
//!   system");
//! * `cvd` — the covered operations (those immediately before an update in
//!   modification order, which later writes must not intervene after).
//!
//! Timestamps: each location carries a modification-order vector `mo`; the
//! timestamp of an operation is its position (*rank*) in its location's
//! vector. Fresh-timestamp insertion "immediately after `(w, q)`" (Figure 5's
//! `fresh`) becomes vector insertion at `rank(w) + 1`. The `lit` module
//! implements the same rules with literal rational timestamps; the two are
//! cross-validated in tests and benchmarked against each other.

use crate::action::{MethodOp, OpAction};
use crate::ids::{Comp, Loc, OpId, Tid};
use crate::val::Val;
use crate::view::View;

/// One recorded operation: which location, which thread, what action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpRecord {
    /// Location (variable or object) the operation modifies.
    pub loc: Loc,
    /// The executing thread.
    pub tid: Tid,
    /// The action payload.
    pub act: OpAction,
}

/// How to initialise one location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitLoc {
    /// A shared variable with initial value `v` (an initialising write of
    /// timestamp 0, per Section 3.3's `Initialisation`).
    Var(Val),
    /// An abstract object (an `init_0` operation of timestamp 0, Section 4).
    Obj,
}

/// A component state (`γ` or `β`) of the fast engine.
///
/// Invariants (checked by [`CState::check_invariants`] in tests):
/// * `ops`, `rank`, `cvd`, `mview_own`, `mview_other` are parallel vectors;
/// * every location's `mo` vector permutes exactly the ops on that location,
///   and `rank[w]` is `w`'s position in it;
/// * every view entry for location `x` is an operation on `x`;
/// * thread views only move forward over time (monotonicity — enforced by
///   the transition rules, asserted in property tests).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CState {
    /// Which component this is (`γ` = client, `β` = library).
    pub comp: Comp,
    ops: Vec<OpRecord>,
    /// Per-location modification order (timestamp order), oldest first.
    mo: Vec<Vec<OpId>>,
    /// Per-op position in its location's `mo` vector.
    rank: Vec<u32>,
    /// Per-thread viewfront over this component's locations.
    tview: Vec<View>,
    /// Per-op viewfront over *this* component's locations.
    mview_own: Vec<View>,
    /// Per-op viewfront over the *other* component's locations (entries are
    /// op ids in the other component's state).
    mview_other: Vec<View>,
    /// Per-op covered flag (`cvd`).
    cvd: Vec<bool>,
}

impl CState {
    /// Initialise a component: one operation of timestamp 0 per location
    /// (Section 3.3 `Initialisation`). The cross-component halves of the
    /// initial `mview`s are installed by [`crate::combined::Combined::new`],
    /// which sees both components.
    pub fn init(comp: Comp, inits: &[InitLoc], n_threads: usize) -> CState {
        let n_locs = inits.len();
        let mut ops = Vec::with_capacity(n_locs);
        let mut mo = Vec::with_capacity(n_locs);
        let mut rank = Vec::with_capacity(n_locs);
        for (i, init) in inits.iter().enumerate() {
            let loc = Loc(i as u16);
            let id = OpId(i as u32);
            let act = match *init {
                InitLoc::Var(v) => OpAction::Write { v, rel: false },
                InitLoc::Obj => OpAction::Method(MethodOp::Init),
            };
            // Initialising writes belong to no particular thread; use T0.
            ops.push(OpRecord { loc, tid: Tid(0), act });
            mo.push(vec![id]);
            rank.push(0);
        }
        let init_view = View::from_entries((0..n_locs as u32).map(OpId).collect());
        let tview = vec![init_view.clone(); n_threads];
        let mview_own = vec![init_view; n_locs];
        // Placeholder: fixed up by Combined::new once the other component
        // exists. Empty views are never read before that.
        let mview_other = vec![View::from_entries(Vec::new()); n_locs];
        CState {
            comp,
            ops,
            mo,
            rank,
            tview,
            mview_own,
            mview_other,
            cvd: vec![false; n_locs],
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Number of recorded operations.
    #[inline]
    pub fn n_ops(&self) -> usize {
        self.ops.len()
    }

    /// Number of locations.
    #[inline]
    pub fn n_locs(&self) -> usize {
        self.mo.len()
    }

    /// Number of threads.
    #[inline]
    pub fn n_threads(&self) -> usize {
        self.tview.len()
    }

    /// Approximate heap footprint of this component state in bytes — the
    /// per-state cost an interned arena pays to hold it. Used by the
    /// exploration engines' memory budget (`StopReason::MemBudget` in
    /// rc11-check); an estimate, not an allocator-exact measurement.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        let views: usize = self
            .tview
            .iter()
            .chain(self.mview_own.iter())
            .chain(self.mview_other.iter())
            .map(|v| size_of::<crate::View>() + v.len() * size_of::<OpId>())
            .sum();
        size_of::<CState>()
            + self.ops.len() * size_of::<OpRecord>()
            + self
                .mo
                .iter()
                .map(|m| size_of::<Vec<OpId>>() + m.len() * size_of::<OpId>())
                .sum::<usize>()
            + self.rank.len() * size_of::<u32>()
            + views
            + self.cvd.len()
    }

    /// The record of operation `w`.
    #[inline]
    pub fn op(&self, w: OpId) -> &OpRecord {
        &self.ops[w.idx()]
    }

    /// The timestamp rank of `w` within its location's modification order.
    #[inline]
    pub fn rank_of(&self, w: OpId) -> u32 {
        self.rank[w.idx()]
    }

    /// `cvd` membership: is `w` covered?
    #[inline]
    pub fn is_covered(&self, w: OpId) -> bool {
        self.cvd[w.idx()]
    }

    /// Mark `w` covered (used by updates and by object semantics such as the
    /// Figure-6 `Acquire`, which covers the release it observed).
    #[inline]
    pub fn cover(&mut self, w: OpId) {
        self.cvd[w.idx()] = true;
    }

    /// The modification order of `loc`, oldest first.
    #[inline]
    pub fn mo(&self, loc: Loc) -> &[OpId] {
        &self.mo[loc.idx()]
    }

    /// The operation with the maximal timestamp on `loc` — the paper's
    /// `maxTS(o, σ)` witness (Figure 6 requires lock operations to observe
    /// it).
    #[inline]
    pub fn max_op(&self, loc: Loc) -> OpId {
        *self.mo[loc.idx()].last().expect("every location is initialised")
    }

    /// Thread `t`'s viewfront.
    #[inline]
    pub fn tview(&self, t: Tid) -> &View {
        &self.tview[t.idx()]
    }

    /// Mutable thread viewfront (object semantics update it directly).
    #[inline]
    pub fn tview_mut(&mut self, t: Tid) -> &mut View {
        &mut self.tview[t.idx()]
    }

    /// The own-component half of `w`'s modification view.
    #[inline]
    pub fn mview_own(&self, w: OpId) -> &View {
        &self.mview_own[w.idx()]
    }

    /// The cross-component half of `w`'s modification view (entries refer to
    /// the *other* component's operations).
    #[inline]
    pub fn mview_other(&self, w: OpId) -> &View {
        &self.mview_other[w.idx()]
    }

    /// Overwrite both halves of `w`'s modification view.
    pub fn set_mview(&mut self, w: OpId, own: View, other: View) {
        self.mview_own[w.idx()] = own;
        self.mview_other[w.idx()] = other;
    }

    /// A rank-lookup closure for [`View::join_in_place`].
    #[inline]
    pub fn ranker(&self) -> impl Fn(OpId) -> u32 + '_ {
        move |w| self.rank[w.idx()]
    }

    /// `tview_t := tview_t ⊗ v` — join a view into thread `t`'s viewfront
    /// using this component's timestamp ranks.
    #[inline]
    pub fn join_tview_with(&mut self, t: Tid, v: &View) {
        let rank = &self.rank;
        self.tview[t.idx()].join_in_place(v, |w| rank[w.idx()]);
    }

    // ------------------------------------------------------------------
    // Observability (Section 3.3)
    // ------------------------------------------------------------------

    /// `Obs(t, x)` — the operations on `x` observable to `t`: those whose
    /// timestamp is at least the timestamp of `tview_t(x)`.
    pub fn obs(&self, t: Tid, loc: Loc) -> &[OpId] {
        let front = self.tview[t.idx()].get(loc);
        let from = self.rank[front.idx()] as usize;
        &self.mo[loc.idx()][from..]
    }

    /// `Obs(t, x) \ cvd` — observable and not covered: the legal predecessors
    /// for a new write or update by `t` (Figure 5 Write/Update premises).
    pub fn obs_uncovered<'a>(&'a self, t: Tid, loc: Loc) -> impl Iterator<Item = OpId> + 'a {
        self.obs(t, loc).iter().copied().filter(move |w| !self.cvd[w.idx()])
    }

    // ------------------------------------------------------------------
    // History mutation (used by the transition rules and object semantics)
    // ------------------------------------------------------------------

    /// Append a new operation *immediately after* `after` in its location's
    /// modification order — the fast-engine realisation of Figure 5's
    /// `fresh(q, q')`. Returns the new id.
    ///
    /// The new operation's `mview` halves are installed as placeholders
    /// (copies of the executing thread's current views are expected to be
    /// set immediately afterwards via [`CState::set_mview`]).
    pub fn insert_after(&mut self, after: OpId, rec: OpRecord) -> OpId {
        debug_assert_eq!(self.op(after).loc, rec.loc, "predecessor on a different location");
        let id = OpId(self.ops.len() as u32);
        let loc = rec.loc;
        let pos = self.rank[after.idx()] as usize + 1;
        self.ops.push(rec);
        self.cvd.push(false);
        self.rank.push(pos as u32);
        let mo = &mut self.mo[loc.idx()];
        mo.insert(pos, id);
        for &w in &mo[pos + 1..] {
            self.rank[w.idx()] += 1;
        }
        // Placeholder views; callers overwrite via set_mview.
        self.mview_own.push(View::from_entries(Vec::new()));
        self.mview_other.push(View::from_entries(Vec::new()));
        id
    }

    /// Append a new operation with the *maximal* timestamp on its location —
    /// the Figure-6 discipline for lock operations ("each new lock operation
    /// must have a larger timestamp than all existing operations").
    pub fn insert_at_max(&mut self, rec: OpRecord) -> OpId {
        let last = self.max_op(rec.loc);
        self.insert_after(last, rec)
    }

    /// Internal consistency check, used by tests and `debug_assert`s.
    pub fn check_invariants(&self) {
        let n = self.ops.len();
        assert_eq!(self.rank.len(), n);
        assert_eq!(self.cvd.len(), n);
        assert_eq!(self.mview_own.len(), n);
        assert_eq!(self.mview_other.len(), n);
        let mut seen = vec![false; n];
        for (li, mo) in self.mo.iter().enumerate() {
            for (pos, &w) in mo.iter().enumerate() {
                assert!(!seen[w.idx()], "op {w} appears twice in mo");
                seen[w.idx()] = true;
                assert_eq!(self.ops[w.idx()].loc.idx(), li, "op {w} in wrong mo vector");
                assert_eq!(self.rank[w.idx()] as usize, pos, "rank out of sync for {w}");
            }
        }
        assert!(seen.iter().all(|&s| s), "op missing from its mo vector");
        for tv in &self.tview {
            assert_eq!(tv.len(), self.mo.len());
            for (li, w) in tv.iter() {
                assert_eq!(self.ops[w.idx()].loc.idx(), li, "tview entry on wrong location");
            }
        }
    }

    // ------------------------------------------------------------------
    // Canonicalisation support (see `canon` module)
    // ------------------------------------------------------------------

    /// Destructure into raw parts for canonical renumbering.
    #[allow(clippy::type_complexity)]
    pub(crate) fn raw_parts(
        &self,
    ) -> (&[OpRecord], &[Vec<OpId>], &[View], &[View], &[View], &[bool]) {
        (&self.ops, &self.mo, &self.tview, &self.mview_own, &self.mview_other, &self.cvd)
    }

    /// Rebuild from canonically-renumbered parts. `rank` is recomputed.
    pub(crate) fn from_raw_parts(
        comp: Comp,
        ops: Vec<OpRecord>,
        mo: Vec<Vec<OpId>>,
        tview: Vec<View>,
        mview_own: Vec<View>,
        mview_other: Vec<View>,
        cvd: Vec<bool>,
    ) -> CState {
        let mut rank = vec![0u32; ops.len()];
        for locs in &mo {
            for (pos, &w) in locs.iter().enumerate() {
                rank[w.idx()] = pos as u32;
            }
        }
        CState { comp, ops, mo, rank, tview, mview_own, mview_other, cvd }
    }

    /// All operations on `loc` whose recorded action is a method operation,
    /// in timestamp order — used by object semantics and object assertions.
    pub fn method_ops<'a>(&'a self, loc: Loc) -> impl Iterator<Item = (OpId, MethodOp)> + 'a {
        self.mo(loc).iter().filter_map(move |&w| self.op(w).act.method().map(|m| (w, m)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_var_state() -> CState {
        CState::init(Comp::Client, &[InitLoc::Var(Val::Int(0)), InitLoc::Var(Val::Int(0))], 2)
    }

    #[test]
    fn init_shape() {
        let st = two_var_state();
        st.check_invariants();
        assert_eq!(st.n_ops(), 2);
        assert_eq!(st.n_locs(), 2);
        assert_eq!(st.max_op(Loc(0)), OpId(0));
        assert_eq!(st.max_op(Loc(1)), OpId(1));
        assert_eq!(st.tview(Tid(0)).get(Loc(0)), OpId(0));
        assert!(!st.is_covered(OpId(0)));
    }

    #[test]
    fn obs_initially_sees_init_only() {
        let st = two_var_state();
        assert_eq!(st.obs(Tid(0), Loc(0)), &[OpId(0)]);
        assert_eq!(st.obs(Tid(1), Loc(1)), &[OpId(1)]);
    }

    #[test]
    fn insert_after_places_immediately_after() {
        let mut st = two_var_state();
        let w1 = st.insert_after(
            OpId(0),
            OpRecord { loc: Loc(0), tid: Tid(0), act: OpAction::Write { v: Val::Int(1), rel: false } },
        );
        let w2 = st.insert_after(
            OpId(0),
            OpRecord { loc: Loc(0), tid: Tid(1), act: OpAction::Write { v: Val::Int(2), rel: false } },
        );
        // w2 inserted after init but before w1: mo = [init, w2, w1].
        assert_eq!(st.mo(Loc(0)), &[OpId(0), w2, w1]);
        assert_eq!(st.rank_of(w2), 1);
        assert_eq!(st.rank_of(w1), 2);
        st.check_invariants();
    }

    #[test]
    fn insert_at_max_goes_last() {
        let mut st = two_var_state();
        let a = st.insert_at_max(OpRecord {
            loc: Loc(1),
            tid: Tid(0),
            act: OpAction::Write { v: Val::Int(1), rel: true },
        });
        let b = st.insert_at_max(OpRecord {
            loc: Loc(1),
            tid: Tid(1),
            act: OpAction::Write { v: Val::Int(2), rel: true },
        });
        assert_eq!(st.mo(Loc(1)), &[OpId(1), a, b]);
        assert_eq!(st.max_op(Loc(1)), b);
    }

    #[test]
    fn obs_respects_tview_front() {
        let mut st = two_var_state();
        let w1 = st.insert_at_max(OpRecord {
            loc: Loc(0),
            tid: Tid(0),
            act: OpAction::Write { v: Val::Int(1), rel: false },
        });
        // T0 moves its view to w1; T1 still sees both.
        st.tview_mut(Tid(0)).set(Loc(0), w1);
        assert_eq!(st.obs(Tid(0), Loc(0)), &[w1]);
        assert_eq!(st.obs(Tid(1), Loc(0)), &[OpId(0), w1]);
    }

    #[test]
    fn covered_ops_are_skipped_for_writes() {
        let mut st = two_var_state();
        st.cover(OpId(0));
        let preds: Vec<_> = st.obs_uncovered(Tid(0), Loc(0)).collect();
        assert!(preds.is_empty());
    }
}
