//! Viewfronts for the fast engine.
//!
//! A *view* maps every location of one component to an operation on that
//! location (Section 3.3). Views here are total — initialisation writes every
//! location exactly once, and every rule only ever moves views forward — so a
//! view is a dense vector with one [`OpId`] per location.
//!
//! The join `V1 ⊗ V2` keeps, per location, the later (higher-timestamp)
//! entry. Timestamps in the fast engine are per-location *ranks*, supplied by
//! the owning [`crate::state::CState`] via a rank lookup.

use crate::ids::{Loc, OpId};

/// A total viewfront: one operation per location of one component.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct View(Box<[OpId]>);

impl View {
    /// A view with every location at `op0` — only used transiently during
    /// initialisation before real entries are filled in.
    pub fn filled(n_locs: usize, op0: OpId) -> View {
        View(vec![op0; n_locs].into_boxed_slice())
    }

    /// Build a view from per-location entries.
    pub fn from_entries(entries: Vec<OpId>) -> View {
        View(entries.into_boxed_slice())
    }

    /// Number of locations.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True iff the component has no locations.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The view's entry for `loc` — the paper's `view(x)`.
    #[inline]
    pub fn get(&self, loc: Loc) -> OpId {
        self.0[loc.idx()]
    }

    /// Replace the entry for `loc` — the paper's `view[x := w]`.
    #[inline]
    pub fn set(&mut self, loc: Loc, op: OpId) {
        self.0[loc.idx()] = op;
    }

    /// Iterate `(loc index, entry)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, OpId)> + '_ {
        self.0.iter().copied().enumerate()
    }

    /// `self ⊗ other` in place: per location keep the entry whose timestamp
    /// (rank) is larger. `rank` must order operations *on the same location*;
    /// entries at the same location always satisfy this.
    ///
    /// This is the view-combination operator of Section 3.3:
    /// `V1 ⊗ V2 = λx. if tst(V2(x)) ≤ tst(V1(x)) then V1(x) else V2(x)`.
    #[inline]
    pub fn join_in_place(&mut self, other: &View, rank: impl Fn(OpId) -> u32) {
        debug_assert_eq!(self.0.len(), other.0.len(), "views over different components");
        for (mine, theirs) in self.0.iter_mut().zip(other.0.iter()) {
            if rank(*theirs) > rank(*mine) {
                *mine = *theirs;
            }
        }
    }

    /// Remap every entry through an id permutation (canonicalisation).
    pub fn remap(&mut self, perm: &[OpId]) {
        for e in self.0.iter_mut() {
            *e = perm[e.idx()];
        }
    }

    /// Feed the permutation-remapped entries into `h` without materialising
    /// the remapped view — the per-view step of the zero-rebuild canonical
    /// fingerprint (DESIGN.md ablation A4).
    #[inline]
    pub fn hash_remapped<H: std::hash::Hasher>(&self, perm: &[OpId], h: &mut H) {
        for e in self.0.iter() {
            h.write_u32(perm[e.idx()].0);
        }
    }

    /// True iff remapping `self` through `perm` would yield exactly `other`,
    /// without materialising the remapped view — the per-view step of
    /// zero-rebuild canonical equality confirmation.
    #[inline]
    pub fn eq_remapped(&self, perm: &[OpId], other: &View) -> bool {
        self.0.len() == other.0.len()
            && self.0.iter().zip(other.0.iter()).all(|(e, o)| perm[e.idx()] == *o)
    }

    /// Raw slice access (read-only), for hashing and debugging.
    #[inline]
    pub fn as_slice(&self) -> &[OpId] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_round_trip() {
        let mut v = View::filled(3, OpId(0));
        v.set(Loc(1), OpId(5));
        assert_eq!(v.get(Loc(1)), OpId(5));
        assert_eq!(v.get(Loc(0)), OpId(0));
    }

    #[test]
    fn join_keeps_later_entries() {
        // rank = op id itself for this test.
        let rank = |op: OpId| op.0;
        let mut a = View::from_entries(vec![OpId(3), OpId(1)]);
        let b = View::from_entries(vec![OpId(2), OpId(4)]);
        a.join_in_place(&b, rank);
        assert_eq!(a.as_slice(), &[OpId(3), OpId(4)]);
    }

    #[test]
    fn join_is_idempotent_and_commutative_pointwise() {
        let rank = |op: OpId| op.0;
        let a = View::from_entries(vec![OpId(3), OpId(1), OpId(7)]);
        let b = View::from_entries(vec![OpId(2), OpId(4), OpId(7)]);
        let mut ab = a.clone();
        ab.join_in_place(&b, rank);
        let mut ba = b.clone();
        ba.join_in_place(&a, rank);
        assert_eq!(ab, ba);
        let mut aa = a.clone();
        aa.join_in_place(&a, rank);
        assert_eq!(aa, a);
    }

    #[test]
    fn remap_applies_permutation() {
        let mut v = View::from_entries(vec![OpId(0), OpId(2)]);
        let perm = [OpId(1), OpId(0), OpId(2)];
        v.remap(&perm);
        assert_eq!(v.as_slice(), &[OpId(1), OpId(2)]);
    }

    /// `hash_remapped` and `eq_remapped` agree with materialised remapping.
    #[test]
    fn remapped_hash_and_eq_match_materialised_remap() {
        use std::hash::Hasher;
        let v = View::from_entries(vec![OpId(0), OpId(2), OpId(1)]);
        let perm = [OpId(2), OpId(0), OpId(1)];
        let mut materialised = v.clone();
        materialised.remap(&perm);

        assert!(v.eq_remapped(&perm, &materialised));
        assert!(!v.eq_remapped(&perm, &v));

        // The streamed hash equals hashing the materialised entries the
        // same way (one write_u32 per entry).
        let hash_entries = |entries: &[OpId]| {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            for e in entries {
                h.write_u32(e.0);
            }
            h.finish()
        };
        let mut h = std::collections::hash_map::DefaultHasher::new();
        v.hash_remapped(&perm, &mut h);
        assert_eq!(h.finish(), hash_entries(materialised.as_slice()));
    }
}
