//! Identifier types shared across the workspace: threads, components,
//! locations and operation ids.
//!
//! The paper partitions global state into a **client** component `γ` and a
//! **library** component `β` (Section 3.2). Every location (shared variable
//! or abstract object) belongs to exactly one component, and each component
//! state tracks only its own locations.

use std::fmt;

/// A thread identifier. Threads are dense small integers `0..n_threads`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tid(pub u8);

impl Tid {
    /// Index form, for dense per-thread tables.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Tid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0 + 1)
    }
}

/// Which component a step executes in, or a location belongs to.
///
/// In the combined semantics of Section 3.2, a *client* step treats `γ` as
/// the executing state and `β` as the context; a *library* step swaps them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Comp {
    /// The client component (`γ`, locations in `GVar_C`).
    Client,
    /// The library component (`β`, locations in `GVar_L` plus objects).
    Lib,
}

impl Comp {
    /// Index form (`Client = 0`, `Lib = 1`), for two-element tables.
    #[inline]
    pub fn idx(self) -> usize {
        match self {
            Comp::Client => 0,
            Comp::Lib => 1,
        }
    }

    /// The other component — the *context* of a step executed in `self`.
    #[inline]
    pub fn other(self) -> Comp {
        match self {
            Comp::Client => Comp::Lib,
            Comp::Lib => Comp::Client,
        }
    }
}

impl fmt::Display for Comp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Comp::Client => write!(f, "C"),
            Comp::Lib => write!(f, "L"),
        }
    }
}

/// A location *within one component*: either a shared global variable or an
/// abstract object (the paper extends views from `GVar` to objects in
/// Section 4 — an object behaves as one more view-tracked location).
///
/// Locations are dense indices into the component's [`LocTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Loc(pub u16);

impl Loc {
    /// Index form, for dense per-location tables.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ℓ{}", self.0)
    }
}

/// What kind of entity a location is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LocKind {
    /// A plain shared variable (read/write/update accesses).
    Var,
    /// An abstract object (method-call operations; Section 4).
    Obj,
}

/// A stable identifier for an operation in a component's history.
///
/// Ids are assigned in insertion order and never change within a state; the
/// *timestamp order* of Figure 5 is represented separately, as the position
/// of the id in the per-location modification-order vector. Canonicalisation
/// (`canon` module) renumbers ids deterministically so that states reached by
/// different interleavings compare equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(pub u32);

impl OpId {
    /// Index form, for dense per-operation tables.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Per-component table of location names and kinds, fixed at initialisation.
///
/// Only used for construction-time layout and human-readable output — the
/// hot paths use raw [`Loc`] indices.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LocTable {
    names: Vec<String>,
    kinds: Vec<LocKind>,
}

impl LocTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a location; returns its dense index.
    pub fn add(&mut self, name: impl Into<String>, kind: LocKind) -> Loc {
        assert!(self.names.len() < u16::MAX as usize, "too many locations");
        let loc = Loc(self.names.len() as u16);
        self.names.push(name.into());
        self.kinds.push(kind);
        loc
    }

    /// Number of registered locations.
    #[inline]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True iff no locations are registered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The name of `loc` (for display and error messages).
    pub fn name(&self, loc: Loc) -> &str {
        &self.names[loc.idx()]
    }

    /// The kind of `loc`.
    pub fn kind(&self, loc: Loc) -> LocKind {
        self.kinds[loc.idx()]
    }

    /// Look a location up by name.
    pub fn lookup(&self, name: &str) -> Option<Loc> {
        self.names.iter().position(|n| n == name).map(|i| Loc(i as u16))
    }

    /// Iterate over all locations.
    pub fn iter(&self) -> impl Iterator<Item = Loc> + '_ {
        (0..self.names.len()).map(|i| Loc(i as u16))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comp_other_is_involutive() {
        assert_eq!(Comp::Client.other(), Comp::Lib);
        assert_eq!(Comp::Lib.other(), Comp::Client);
        assert_eq!(Comp::Client.other().other(), Comp::Client);
    }

    #[test]
    fn comp_indices_are_distinct() {
        assert_ne!(Comp::Client.idx(), Comp::Lib.idx());
    }

    #[test]
    fn loc_table_round_trip() {
        let mut t = LocTable::new();
        let d = t.add("d", LocKind::Var);
        let l = t.add("l", LocKind::Obj);
        assert_eq!(t.len(), 2);
        assert_eq!(t.name(d), "d");
        assert_eq!(t.kind(l), LocKind::Obj);
        assert_eq!(t.lookup("l"), Some(l));
        assert_eq!(t.lookup("nope"), None);
        assert_eq!(t.iter().count(), 2);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Tid(0).to_string(), "T1");
        assert_eq!(Loc(3).to_string(), "ℓ3");
        assert_eq!(OpId(7).to_string(), "#7");
    }
}
