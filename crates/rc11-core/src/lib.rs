//! # rc11-core — the RC11 RAR memory-model substrate
//!
//! Executable reproduction of the operational semantics of *Verifying
//! C11-Style Weak Memory Libraries* (Dalvandi & Dongol, PPoPP 2021),
//! Sections 3–4: timestamped component states, per-thread and per-write
//! viewfronts, covered operations, and the Figure-5 transition relation for
//! reads, writes and updates over client–library state pairs.
//!
//! Two engines implement the same semantics:
//!
//! * [`combined::Combined`] over [`state::CState`] — the **fast engine**:
//!   timestamps are dense per-location ranks, states canonicalise and hash,
//!   used by the model checker (rc11-check);
//! * [`lit`] — the **literal engine**: a line-by-line transcription of
//!   Figure 5 with exact rational timestamps ([`ts::Ts`]) and explicit
//!   operation/timestamp pairs, used as the auditable specification.
//!
//! The two are cross-validated by differential tests (`tests/` of this crate
//! and the workspace root) and benchmarked against each other (ablation A1).
//!
//! Abstract *objects* (Section 4) extend the same states: an object is one
//! more view-tracked location whose history records method operations
//! ([`action::MethodOp`]). Their transition rules live in `rc11-objects`,
//! built from the state-manipulation API exposed here ([`state::CState`]'s
//! `insert_at_max`, `cover`, `join_tview_with`, …).
//!
//! The [`footprint`] module is the *independence oracle* for partial-order
//! reduction (ablation A5): a conservative summary of what each transition
//! reads and writes ([`footprint::StepFootprint`]) and a
//! `may_conflict` predicate whose `false` answers certify that two steps by
//! different threads commute up to canonical equivalence.

#![warn(missing_docs)]

pub mod action;
pub mod canon;
pub mod combined;
pub mod footprint;
pub mod ids;
pub mod lit;
pub mod pretty;
pub mod state;
pub mod ts;
pub mod val;
pub mod view;

pub use action::{MethodOp, OpAction};
pub use canon::CanonPerms;
pub use combined::{Combined, ReadChoice};
pub use footprint::{Access, AccessKind, StepFootprint};
pub use ids::{Comp, Loc, LocKind, LocTable, OpId, Tid};
pub use state::{CState, InitLoc, OpRecord};
pub use ts::Ts;
pub use val::Val;
pub use view::View;
