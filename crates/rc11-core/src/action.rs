//! The operation alphabet stored in component histories.
//!
//! Figure 5 records *modifying* operations (`wr`, `wr^R`, `upd^RA`) in the
//! state component `ops`; Section 4 extends `ops` with abstract method-call
//! operations such as `l.acquire_n(t)`. Reads are never recorded.

use crate::ids::Tid;
use crate::val::Val;
use std::fmt;

/// An abstract method-call operation, as recorded in a component's `ops`.
///
/// This is the object "action alphabet" of Section 4. The paper works the
/// lock out in full (Figure 6); the stack is used illustratively in Figures
/// 1–3 and its semantics here follows the same design (see DESIGN.md §3).
/// Extension objects (atomic register, counter) reuse the same shapes.
///
/// The subscript `n` on lock operations is the paper's method-call index:
/// the number of lock operations executed so far, used in proofs to name
/// lock *versions* (`l.Acquire(v)` in Figure 7 binds `v = n`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MethodOp {
    /// `o.init_0` — object initialisation, timestamp 0.
    Init,
    /// `l.acquire_n(t)` — lock acquire number `n` by thread `t`.
    LockAcquire {
        /// Lock-operation index.
        n: u32,
        /// Acquiring thread (the lock owner while held).
        tid: Tid,
    },
    /// `l.release_n` — lock release number `n`.
    LockRelease {
        /// Lock-operation index.
        n: u32,
    },
    /// `s.push(v)` — stack push; `rel` marks the releasing variant `push^R`.
    Push {
        /// Pushed value.
        v: Val,
        /// Releasing annotation.
        rel: bool,
    },
    /// `s.pop(v)` — a pop that removed value `v`; `acq` marks `pop^A`.
    Pop {
        /// Popped value.
        v: Val,
        /// Acquiring annotation.
        acq: bool,
    },
    /// `reg.write(v)` — abstract atomic register write (extension object).
    RegWrite {
        /// Written value.
        v: Val,
        /// Releasing annotation.
        rel: bool,
    },
    /// `ctr.inc() = v` — abstract fetch-and-increment returning `v`
    /// (extension object).
    CtrInc {
        /// The pre-increment value returned.
        v: Val,
    },
    /// `q.enq(v)` — FIFO queue enqueue; `rel` marks `enq^R` (extension
    /// object, the paper's future-work direction).
    Enq {
        /// Enqueued value.
        v: Val,
        /// Releasing annotation.
        rel: bool,
    },
    /// `q.deq(v)` — a dequeue that removed value `v`; `acq` marks `deq^A`.
    Deq {
        /// Dequeued value.
        v: Val,
        /// Acquiring annotation.
        acq: bool,
    },
}

impl MethodOp {
    /// Whether a synchronising (acquiring) observation of this operation
    /// transfers the operation's recorded viewfront, release/acquire style.
    pub fn is_releasing(self) -> bool {
        match self {
            MethodOp::Init => false,
            MethodOp::LockAcquire { .. } => true,
            MethodOp::LockRelease { .. } => true,
            MethodOp::Push { rel, .. } => rel,
            MethodOp::Pop { acq, .. } => acq,
            MethodOp::RegWrite { rel, .. } => rel,
            MethodOp::CtrInc { .. } => true,
            MethodOp::Enq { rel, .. } => rel,
            MethodOp::Deq { acq, .. } => acq,
        }
    }

    /// The value this operation "wrote", where meaningful (`Push`/`RegWrite`
    /// carry a payload; lock operations carry none).
    pub fn written_val(self) -> Val {
        match self {
            MethodOp::Push { v, .. } | MethodOp::RegWrite { v, .. } => v,
            MethodOp::CtrInc { v } => v,
            MethodOp::Enq { v, .. } => v,
            _ => Val::Bot,
        }
    }

    /// The lock-operation index `n`, if this is a lock operation
    /// (`init` has index 0).
    pub fn lock_index(self) -> Option<u32> {
        match self {
            MethodOp::Init => Some(0),
            MethodOp::LockAcquire { n, .. } | MethodOp::LockRelease { n } => Some(n),
            _ => None,
        }
    }
}

impl fmt::Display for MethodOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MethodOp::Init => write!(f, "init_0"),
            MethodOp::LockAcquire { n, tid } => write!(f, "acquire_{n}({tid})"),
            MethodOp::LockRelease { n } => write!(f, "release_{n}"),
            MethodOp::Push { v, rel } => {
                write!(f, "push{}({v})", if *rel { "^R" } else { "" })
            }
            MethodOp::Pop { v, acq } => {
                write!(f, "pop{}({v})", if *acq { "^A" } else { "" })
            }
            MethodOp::RegWrite { v, rel } => {
                write!(f, "regwrite{}({v})", if *rel { "^R" } else { "" })
            }
            MethodOp::CtrInc { v } => write!(f, "inc()={v}"),
            MethodOp::Enq { v, rel } => {
                write!(f, "enq{}({v})", if *rel { "^R" } else { "" })
            }
            MethodOp::Deq { v, acq } => {
                write!(f, "deq{}({v})", if *acq { "^A" } else { "" })
            }
        }
    }
}

/// A modifying operation, as stored in `ops` (Figure 5 and Section 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpAction {
    /// `wr(x, v)` / `wr^R(x, v)` — a plain or releasing write.
    Write {
        /// The written value.
        v: Val,
        /// True for the releasing variant `wr^R`.
        rel: bool,
    },
    /// `upd^RA(x, v_read, v)` — an atomic update (CAS success / FAI); always
    /// both acquiring and releasing.
    Update {
        /// The value read by the update (equals `wrval` of the covered op).
        v_read: Val,
        /// The value written.
        v: Val,
    },
    /// An abstract method-call operation (Section 4).
    Method(MethodOp),
}

impl OpAction {
    /// `wrval(w)` — the value a read of this operation returns (Figure 5).
    #[inline]
    pub fn wrval(self) -> Val {
        match self {
            OpAction::Write { v, .. } => v,
            OpAction::Update { v, .. } => v,
            OpAction::Method(m) => m.written_val(),
        }
    }

    /// Membership in `W^R` — the releasing writes. A synchronising read
    /// (`rd^A` / `upd^RA`) of a releasing operation transfers its `mview`.
    #[inline]
    pub fn is_releasing(self) -> bool {
        match self {
            OpAction::Write { rel, .. } => rel,
            OpAction::Update { .. } => true,
            OpAction::Method(m) => m.is_releasing(),
        }
    }

    /// True iff this is an update (`upd^RA`).
    #[inline]
    pub fn is_update(self) -> bool {
        matches!(self, OpAction::Update { .. })
    }

    /// The method payload, if this is a method operation.
    #[inline]
    pub fn method(self) -> Option<MethodOp> {
        match self {
            OpAction::Method(m) => Some(m),
            _ => None,
        }
    }
}

impl fmt::Display for OpAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpAction::Write { v, rel } => {
                write!(f, "wr{}({v})", if *rel { "^R" } else { "" })
            }
            OpAction::Update { v_read, v } => write!(f, "upd^RA({v_read}→{v})"),
            OpAction::Method(m) => write!(f, "{m}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrval_of_write_and_update() {
        assert_eq!(OpAction::Write { v: Val::Int(5), rel: false }.wrval(), Val::Int(5));
        assert_eq!(
            OpAction::Update { v_read: Val::Int(1), v: Val::Int(2) }.wrval(),
            Val::Int(2)
        );
    }

    #[test]
    fn releasing_membership() {
        assert!(!OpAction::Write { v: Val::Int(0), rel: false }.is_releasing());
        assert!(OpAction::Write { v: Val::Int(0), rel: true }.is_releasing());
        assert!(OpAction::Update { v_read: Val::Bot, v: Val::Bot }.is_releasing());
    }

    #[test]
    fn method_ops_release_per_annotation() {
        assert!(OpAction::Method(MethodOp::Push { v: Val::Int(1), rel: true }).is_releasing());
        assert!(!OpAction::Method(MethodOp::Push { v: Val::Int(1), rel: false }).is_releasing());
        assert!(OpAction::Method(MethodOp::LockRelease { n: 2 }).is_releasing());
        assert!(!OpAction::Method(MethodOp::Init).is_releasing());
    }

    #[test]
    fn lock_indices() {
        assert_eq!(MethodOp::Init.lock_index(), Some(0));
        assert_eq!(MethodOp::LockAcquire { n: 3, tid: Tid(0) }.lock_index(), Some(3));
        assert_eq!(MethodOp::Push { v: Val::Int(1), rel: false }.lock_index(), None);
    }

    #[test]
    fn push_wrval_is_payload() {
        assert_eq!(
            OpAction::Method(MethodOp::Push { v: Val::Int(7), rel: true }).wrval(),
            Val::Int(7)
        );
    }
}
