//! The independence oracle behind partial-order reduction (ablation A5).
//!
//! Exhaustive exploration enumerates every interleaving, but most
//! interleavings differ only in the order of steps that *commute*: two
//! steps by different threads whose effects touch disjoint parts of the
//! combined state reach the same canonical configuration in either order.
//! The explorers' sleep-set pruning (`rc11_check::por`) skips such
//! redundant orders — but only where this module's conservative oracle
//! *proves* commutation.
//!
//! A [`StepFootprint`] summarises everything one transition may read or
//! write beyond its own thread's registers and program counter. The key
//! observation, checked against every transition rule in this crate and in
//! `rc11-objects`, is that a step by thread `t` mutates only
//!
//! * `t`'s viewfronts (in one or both components),
//! * one location's history: its `mo` vector, covered flags of operations
//!   on it, and the new operation's record and `mview`,
//!
//! and *reads* only that same location's history plus `t`'s views. Two
//! steps by different threads can therefore interfere only **through a
//! shared location**: [`StepFootprint::may_conflict`] returns `false`
//! exactly when the footprints name different `(component, location)`
//! pairs — or the same pair with both steps read-only — and in that case
//! the steps commute up to canonical equivalence (operation ids assigned
//! to freshly inserted operations depend on execution order, which
//! canonicalisation erases).
//!
//! The oracle is deliberately one-sided: `may_conflict == true` never
//! causes wrong answers, only missed reduction. Soundness of the `false`
//! answers is property-tested in `crates/rc11-core/tests/por_props.rs`,
//! which executes conflict-free pairs in both orders through [`Combined`]
//! and requires canonically-equal results *and* unchanged choice sets —
//! the two facts sleep-set pruning rests on (see DESIGN.md §A5).
//!
//! [`Combined`]: crate::combined::Combined

use crate::ids::{Comp, Loc, OpId, Tid};

/// What kind of access a step performs on its location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A read (`rd` / `rd^A`, or a read-only method such as the abstract
    /// register's `read`): observes the location's history, moves only the
    /// reader's views. `acq` marks the acquiring variant.
    Read {
        /// Acquiring annotation (`rd^A` / `read^A`).
        acq: bool,
    },
    /// A write (`wr` / `wr^R`): inserts one operation into the location's
    /// modification order. `rel` marks the releasing variant.
    Write {
        /// Releasing annotation (`wr^R`).
        rel: bool,
    },
    /// An atomic update (`upd^RA`, CAS/FAI): reads, inserts, and covers its
    /// predecessor. Always both acquiring and releasing.
    Update,
    /// An abstract method call that may modify the object's history
    /// (push/pop, enq/deq, lock acquire/release, counter inc, register
    /// write). `sync` marks the synchronising (`^R`/`^A`) variant; lock and
    /// counter operations always synchronise.
    Method {
        /// Synchronising annotation.
        sync: bool,
    },
}

impl AccessKind {
    /// May this access modify its location's history (`mo` order, covered
    /// flags, operation records)? Reads only ever move the executing
    /// thread's views.
    #[inline]
    pub fn writes(self) -> bool {
        !matches!(self, AccessKind::Read { .. })
    }
}

/// The shared-state access of one step: which component's location it
/// touches and how.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Access {
    /// The component whose history the step touches.
    pub comp: Comp,
    /// The location (variable or object) within that component.
    pub loc: Loc,
    /// How the location is accessed.
    pub kind: AccessKind,
    /// The operation this step covers, filled at footprint-extraction
    /// time whenever the identity is already determined by the current
    /// state: the unique uncovered predecessor of a `CAS` that can only
    /// succeed one way, the unique uncovered predecessor of an `FAI`, or
    /// the insert an ADT removal takes (a `pop` covers the stack's
    /// global top, a `deq` the queue's front — both functions of the
    /// state alone). Footprints whose step still has several possible
    /// predecessors, or none, leave this `None`.
    ///
    /// [`StepFootprint::may_conflict`] deliberately stays covers-blind:
    /// two removals covering *different* inserts still both append their
    /// own operation to the same location's `mo`, so refining the
    /// conflict test on distinct covers would be unsound. The field's
    /// consumer is the DPOR test battery (`tests/por_props.rs` at the
    /// workspace root), which replays explored traces and uses the
    /// covered identities to characterise which conflicts *actually*
    /// materialised on each edge — the dynamic half of A7's
    /// backtracking-superset obligation.
    pub covers: Option<OpId>,
}

/// The footprint of one transition: the executing thread plus its
/// shared-state access, if any. Steps that only touch thread-local state
/// (register assignments, jumps — including whole fused local chains) have
/// `access == None` and commute with every other thread's steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StepFootprint {
    /// The executing thread.
    pub tid: Tid,
    /// The shared-state access, or `None` for a purely thread-local step.
    pub access: Option<Access>,
}

impl StepFootprint {
    /// A footprint for a purely thread-local step of `tid`.
    #[inline]
    pub fn local(tid: Tid) -> StepFootprint {
        StepFootprint { tid, access: None }
    }

    /// A footprint for a step of `tid` accessing `loc` of `comp` as `kind`.
    #[inline]
    pub fn access(tid: Tid, comp: Comp, loc: Loc, kind: AccessKind) -> StepFootprint {
        StepFootprint { tid, access: Some(Access { comp, loc, kind, covers: None }) }
    }

    /// [`access`](StepFootprint::access) with a covered-operation identity,
    /// for steps whose cover is already determined by the current state
    /// (see [`Access::covers`]).
    #[inline]
    pub fn access_covering(
        tid: Tid,
        comp: Comp,
        loc: Loc,
        kind: AccessKind,
        covers: Option<OpId>,
    ) -> StepFootprint {
        StepFootprint { tid, access: Some(Access { comp, loc, kind, covers }) }
    }

    /// Conservative interference test: `false` guarantees the two steps
    /// commute (same canonical result in either order, and neither step
    /// changes the other's choice set); `true` makes no claim.
    ///
    /// Two steps may conflict iff they are by the same thread (a thread
    /// never commutes with itself: program order is real order), or they
    /// touch the same `(component, location)` and at least one of them may
    /// modify that location's history. Two reads of one location commute:
    /// each only advances its own thread's views, and an acquiring read's
    /// view join takes the *pre-existing* `mview` of the operation it reads
    /// from, which the other read cannot change.
    #[inline]
    pub fn may_conflict(&self, other: &StepFootprint) -> bool {
        if self.tid == other.tid {
            return true;
        }
        match (&self.access, &other.access) {
            (Some(a), Some(b)) => {
                a.comp == b.comp && a.loc == b.loc && (a.kind.writes() || b.kind.writes())
            }
            // A purely local step touches no shared state at all.
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: Tid = Tid(0);
    const T1: Tid = Tid(1);

    #[test]
    fn same_thread_always_conflicts() {
        let a = StepFootprint::local(T0);
        let b = StepFootprint::access(T0, Comp::Client, Loc(0), AccessKind::Read { acq: false });
        assert!(a.may_conflict(&b));
        assert!(a.may_conflict(&a));
    }

    #[test]
    fn local_steps_never_conflict_across_threads() {
        let a = StepFootprint::local(T0);
        let w = StepFootprint::access(T1, Comp::Client, Loc(0), AccessKind::Write { rel: true });
        assert!(!a.may_conflict(&w));
        assert!(!w.may_conflict(&a));
    }

    #[test]
    fn different_locations_commute() {
        let a = StepFootprint::access(T0, Comp::Client, Loc(0), AccessKind::Update);
        let b = StepFootprint::access(T1, Comp::Client, Loc(1), AccessKind::Update);
        assert!(!a.may_conflict(&b));
    }

    #[test]
    fn same_location_in_different_components_commutes() {
        // Loc(0) names different locations in the client and the library.
        let a = StepFootprint::access(T0, Comp::Client, Loc(0), AccessKind::Write { rel: false });
        let b = StepFootprint::access(T1, Comp::Lib, Loc(0), AccessKind::Method { sync: true });
        assert!(!a.may_conflict(&b));
    }

    #[test]
    fn reads_of_one_location_commute_writes_do_not() {
        let r0 = StepFootprint::access(T0, Comp::Client, Loc(0), AccessKind::Read { acq: true });
        let r1 = StepFootprint::access(T1, Comp::Client, Loc(0), AccessKind::Read { acq: false });
        assert!(!r0.may_conflict(&r1));
        let w1 = StepFootprint::access(T1, Comp::Client, Loc(0), AccessKind::Write { rel: false });
        assert!(r0.may_conflict(&w1));
        assert!(w1.may_conflict(&r0), "conflict is symmetric");
        let u0 = StepFootprint::access(T0, Comp::Client, Loc(0), AccessKind::Update);
        assert!(u0.may_conflict(&w1));
    }

    #[test]
    fn method_kinds_write() {
        assert!(AccessKind::Method { sync: false }.writes());
        assert!(AccessKind::Update.writes());
        assert!(AccessKind::Write { rel: true }.writes());
        assert!(!AccessKind::Read { acq: true }.writes());
    }
}
