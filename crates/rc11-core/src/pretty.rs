//! Human-readable rendering of combined states.
//!
//! Used by the examples and by counterexample reports: one line per
//! location showing the modification order with covered marks, and the
//! per-thread viewfront positions. Rendering is deliberately stable
//! (deterministic field order) so diffs between states read well.

use crate::combined::Combined;
use crate::ids::{Loc, LocTable, Tid};
use crate::state::CState;
use std::fmt::Write;

/// Renders states given the location names of both components.
pub struct StatePrinter<'a> {
    /// Client location names.
    pub client_locs: &'a LocTable,
    /// Library location names.
    pub lib_locs: &'a LocTable,
}

fn render_component(out: &mut String, st: &CState, locs: &LocTable, title: &str) {
    let _ = writeln!(out, "{title}");
    for loc in locs.iter() {
        let _ = write!(out, "  {:<8}", locs.name(loc));
        for (pos, &w) in st.mo(loc).iter().enumerate() {
            let rec = st.op(w);
            let cvd = if st.is_covered(w) { "†" } else { "" };
            let _ = write!(out, " {pos}·{}{cvd}", rec.act);
        }
        // Viewfronts: which position each thread observes from.
        let _ = write!(out, "   views:");
        for t in 0..st.n_threads() {
            let front = st.tview(Tid(t as u8)).get(loc);
            let _ = write!(out, " T{}→{}", t + 1, st.rank_of(front));
        }
        let _ = writeln!(out);
    }
}

impl<'a> StatePrinter<'a> {
    /// Render the full combined state.
    pub fn render(&self, mem: &Combined) -> String {
        let mut out = String::new();
        render_component(&mut out, mem.client(), self.client_locs, "γ (client)");
        render_component(&mut out, mem.lib(), self.lib_locs, "β (library)");
        out
    }

    /// Render one component's single location (compact, for traces).
    pub fn render_loc(&self, st: &CState, locs: &LocTable, loc: Loc) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}:", locs.name(loc));
        for &w in st.mo(loc) {
            let cvd = if st.is_covered(w) { "†" } else { "" };
            let _ = write!(out, " {}{cvd}", st.op(w).act);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Comp, LocKind};
    use crate::state::InitLoc;
    use crate::val::Val;

    fn tables() -> (LocTable, LocTable) {
        let mut c = LocTable::new();
        c.add("d", LocKind::Var);
        let mut l = LocTable::new();
        l.add("s", LocKind::Obj);
        (c, l)
    }

    #[test]
    fn renders_both_components_with_views() {
        let (ct, lt) = tables();
        let mem = Combined::new(&[InitLoc::Var(Val::Int(0))], &[InitLoc::Obj], 2);
        let p = StatePrinter { client_locs: &ct, lib_locs: &lt };
        let s = p.render(&mem);
        assert!(s.contains("γ (client)"));
        assert!(s.contains("β (library)"));
        assert!(s.contains("d"));
        assert!(s.contains("init_0"));
        assert!(s.contains("T1→0"));
        assert!(s.contains("T2→0"));
    }

    #[test]
    fn covered_ops_are_marked() {
        let (ct, lt) = tables();
        let mem = Combined::new(&[InitLoc::Var(Val::Int(0))], &[InitLoc::Obj], 2);
        let mem = mem.apply_update(Comp::Client, Tid(0), Loc(0), Val::Int(1), crate::OpId(0));
        let p = StatePrinter { client_locs: &ct, lib_locs: &lt };
        let s = p.render(&mem);
        assert!(s.contains('†'), "covered init must be marked: {s}");
        assert!(s.contains("upd^RA"));
    }

    #[test]
    fn render_loc_is_compact() {
        let (ct, lt) = tables();
        let mem = Combined::new(&[InitLoc::Var(Val::Int(0))], &[InitLoc::Obj], 1);
        let p = StatePrinter { client_locs: &ct, lib_locs: &lt };
        let line = p.render_loc(mem.client(), &ct, Loc(0));
        assert!(line.starts_with("d:"));
        assert!(!line.contains('\n'));
    }
}
