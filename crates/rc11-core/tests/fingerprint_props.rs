//! Property tests for the zero-rebuild canonical fingerprint (ablation A4):
//! on randomly generated transition scripts,
//!
//! `a.canonical() == b.canonical()  ⟺  fingerprint(a) == fingerprint(b)`,
//!
//! together with the supporting equalities the engines lean on —
//! fingerprint stability under materialised canonicalisation, and
//! `canonical_eq` deciding exactly materialised-canonical equality. The
//! `⟸` direction is a no-collision claim for the generated family (the
//! engines tolerate collisions via bucket confirmation; the differential
//! suite `tests/engine_agreement.rs` covers that fallback end to end).
//!
//! Two generators exercise both directions meaningfully:
//!
//! * *random scripts* — arbitrary write/read/update sequences, so almost
//!   all pairs have distinct canonical forms (`⟸` as non-collision);
//! * *commuted interleavings* — one script applied in order and with
//!   independent adjacent steps (different thread **and** different
//!   location) swapped, so canonical forms coincide by construction (`⟹`).

use proptest::prelude::*;
use rc11_check::CanonicalFingerprint;
use rc11_core::{Comp, Combined, InitLoc, Loc, Tid, Val};

const N_LOCS: usize = 2;
const N_THREADS: usize = 2;

/// One step of a transition script, with indices resolved against the
/// state at application time (so every generated script is applicable).
#[derive(Debug, Clone, Copy)]
enum RStep {
    Write { t: u8, loc: u8, val: u8, rel: bool, pred: u8 },
    Read { t: u8, loc: u8, acq: bool, choice: u8 },
    Update { t: u8, loc: u8, val: u8, pred: u8 },
}

impl RStep {
    fn tid(self) -> Tid {
        match self {
            RStep::Write { t, .. } | RStep::Read { t, .. } | RStep::Update { t, .. } => {
                Tid(t % N_THREADS as u8)
            }
        }
    }

    fn loc(self) -> Loc {
        match self {
            RStep::Write { loc, .. } | RStep::Read { loc, .. } | RStep::Update { loc, .. } => {
                Loc((loc % N_LOCS as u8) as u16)
            }
        }
    }
}

fn rstep() -> impl Strategy<Value = RStep> {
    prop_oneof![
        (0u8..2, 0u8..2, 1u8..4, any::<bool>(), 0u8..4)
            .prop_map(|(t, loc, val, rel, pred)| RStep::Write { t, loc, val, rel, pred }),
        (0u8..2, 0u8..2, any::<bool>(), 0u8..4)
            .prop_map(|(t, loc, acq, choice)| RStep::Read { t, loc, acq, choice }),
        (0u8..2, 0u8..2, 1u8..4, 0u8..4)
            .prop_map(|(t, loc, val, pred)| RStep::Update { t, loc, val, pred }),
    ]
}

fn initial() -> Combined {
    Combined::new(
        &[InitLoc::Var(Val::Int(0)), InitLoc::Var(Val::Int(0))],
        &[],
        N_THREADS,
    )
}

/// Apply one step, resolving the generated indices against the current
/// choice lists; inapplicable steps (no uncovered predecessor) are skipped.
fn apply(s: &Combined, step: RStep) -> Combined {
    let t = step.tid();
    let x = step.loc();
    match step {
        RStep::Write { val, rel, pred, .. } => {
            let preds = s.write_preds(Comp::Client, t, x);
            if preds.is_empty() {
                return s.clone();
            }
            let w = preds[pred as usize % preds.len()];
            s.apply_write(Comp::Client, t, x, Val::Int(val as i64), rel, w)
        }
        RStep::Read { acq, choice, .. } => {
            let choices = s.read_choices(Comp::Client, t, x);
            let c = choices[choice as usize % choices.len()];
            s.apply_read(Comp::Client, t, x, acq, c.from)
        }
        RStep::Update { val, pred, .. } => {
            let preds = s.update_preds(Comp::Client, t, x, None);
            if preds.is_empty() {
                return s.clone();
            }
            let w = preds[pred as usize % preds.len()];
            s.apply_update(Comp::Client, t, x, Val::Int(val as i64), w)
        }
    }
}

fn run(script: &[RStep]) -> Combined {
    script.iter().fold(initial(), |s, &st| apply(&s, st))
}

/// Swap adjacent steps when they are independent (different thread and
/// different location): a different interleaving of the same behaviour.
fn commute(script: &[RStep]) -> Vec<RStep> {
    let mut out = script.to_vec();
    let mut i = 0;
    while i + 1 < out.len() {
        if out[i].tid() != out[i + 1].tid() && out[i].loc() != out[i + 1].loc() {
            out.swap(i, i + 1);
            i += 2;
        } else {
            i += 1;
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The central biconditional on random pairs: equal canonical forms
    /// iff equal fingerprints — and `canonical_eq` decides it too.
    #[test]
    fn canonical_equality_iff_fingerprint_equality(
        a in prop::collection::vec(rstep(), 0..7),
        b in prop::collection::vec(rstep(), 0..7),
    ) {
        let (sa, sb) = (run(&a), run(&b));
        let canon_eq = sa.canonical() == sb.canonical();
        let fp_eq = sa.canonical_fingerprint() == sb.canonical_fingerprint();
        prop_assert_eq!(canon_eq, fp_eq, "canonical equality and fingerprint equality diverged");
        prop_assert_eq!(sa.canonical_eq(&sb.canonical()), canon_eq);
        prop_assert_eq!(sb.canonical_eq(&sa.canonical()), canon_eq);
    }

    /// Commuted interleavings of one script: canonical forms coincide, so
    /// fingerprints must too (the `⟹` direction on guaranteed-equal pairs).
    #[test]
    fn commuted_interleavings_fingerprint_equal(
        script in prop::collection::vec(rstep(), 0..8),
    ) {
        let a = run(&script);
        let b = run(&commute(&script));
        prop_assert_eq!(a.canonical(), b.canonical(), "commuted steps must not change the state");
        prop_assert_eq!(a.canonical_fingerprint(), b.canonical_fingerprint());
        prop_assert!(a.canonical_eq(&b.canonical()));
    }

    /// Stability: fingerprinting is invariant under materialised
    /// canonicalisation, `canonical_eq` accepts the state's own canonical
    /// form, and the permutation-reusing entry points agree with the
    /// self-contained ones.
    #[test]
    fn fingerprint_is_stable_under_canonicalisation(
        script in prop::collection::vec(rstep(), 0..8),
    ) {
        let s = run(&script);
        let canon = s.canonical();
        prop_assert_eq!(s.canonical_fingerprint(), canon.canonical_fingerprint());
        prop_assert!(s.canonical_eq(&canon));
        prop_assert!(canon.canonical_eq(&canon));

        let perms = s.canonical_perms();
        prop_assert_eq!(s.fingerprint_with(&perms), s.canonical_fingerprint());
        prop_assert!(s.canonical_eq_with(&perms, &canon));
        prop_assert_eq!(s.canonical_with(&perms), canon);
    }
}
