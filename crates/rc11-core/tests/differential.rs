//! Differential validation of the two semantics engines.
//!
//! The fast engine (dense ranks, `rc11_core::Combined`) and the literal
//! engine (rational timestamps, `rc11_core::lit`) are driven with the same
//! randomly generated instruction scripts; at every step both engines must
//! enumerate the *same* choice lists (values in timestamp order), and after
//! applying the same choice they must agree on every observable: the
//! per-thread observable value sequences, modification orders, and covered
//! flags, for every location of both components. Written values are drawn
//! from a counter so every operation is uniquely identified by its value —
//! agreement on values is agreement on operations.

use proptest::prelude::*;
use rc11_core::lit::{step as lit_step, LitCombined};
use rc11_core::{Combined, Comp, InitLoc, Loc, Tid, Val};

const N_THREADS: usize = 3;
const CLIENT_LOCS: usize = 2;
const LIB_LOCS: usize = 2;

fn inits(n: usize) -> Vec<InitLoc> {
    (0..n).map(|_| InitLoc::Var(Val::Int(0))).collect()
}

/// One decoded script instruction.
#[derive(Debug, Clone, Copy)]
struct Instr {
    kind: u8, // 0 rd, 1 rdA, 2 wr, 3 wrR, 4 cas, 5 fai
    comp: Comp,
    tid: Tid,
    loc: Loc,
    sel: u8,
}

fn decode(raw: (u8, u8, u8, u8, u8)) -> Instr {
    let comp = if raw.1.is_multiple_of(2) { Comp::Client } else { Comp::Lib };
    let n_locs = if comp == Comp::Client { CLIENT_LOCS } else { LIB_LOCS };
    Instr {
        kind: raw.0 % 6,
        comp,
        tid: Tid(raw.2 % N_THREADS as u8),
        loc: Loc((raw.3 as usize % n_locs) as u16),
        sel: raw.4,
    }
}

/// Observable summary of one engine state, for comparison.
#[derive(Debug, PartialEq, Eq)]
struct Summary {
    /// (comp, tid, loc) -> observable values in timestamp order.
    obs: Vec<Vec<Val>>,
    /// (comp, loc) -> (value, covered) in timestamp order.
    history: Vec<Vec<(Val, bool)>>,
}

fn summarize_fast(s: &Combined) -> Summary {
    let mut obs = Vec::new();
    let mut history = Vec::new();
    for comp in [Comp::Client, Comp::Lib] {
        let st = s.comp(comp);
        for t in 0..N_THREADS {
            for l in 0..st.n_locs() {
                obs.push(
                    st.obs(Tid(t as u8), Loc(l as u16))
                        .iter()
                        .map(|&w| st.op(w).act.wrval())
                        .collect(),
                );
            }
        }
        for l in 0..st.n_locs() {
            history.push(
                st.mo(Loc(l as u16))
                    .iter()
                    .map(|&w| (st.op(w).act.wrval(), st.is_covered(w)))
                    .collect(),
            );
        }
    }
    Summary { obs, history }
}

fn summarize_lit(s: &LitCombined) -> Summary {
    let mut obs = Vec::new();
    let mut history = Vec::new();
    for comp in [Comp::Client, Comp::Lib] {
        let st = s.comp(comp);
        let n_locs = if comp == Comp::Client { CLIENT_LOCS } else { LIB_LOCS };
        for t in 0..N_THREADS {
            for l in 0..n_locs {
                obs.push(
                    st.obs(Tid(t as u8), Loc(l as u16))
                        .iter()
                        .map(|w| w.0.wrval())
                        .collect(),
                );
            }
        }
        for l in 0..n_locs {
            let mut ops: Vec<_> =
                st.ops.iter().filter(|(a, _)| a.loc() == Loc(l as u16)).copied().collect();
            ops.sort_by_key(|a| a.1);
            history.push(
                ops.iter().map(|w| (w.0.wrval(), st.cvd.contains(w))).collect(),
            );
        }
    }
    Summary { obs, history }
}

/// Run one script through both engines in lock-step; panics on divergence.
fn run_script(script: &[(u8, u8, u8, u8, u8)]) {
    let mut fast = Combined::new(&inits(CLIENT_LOCS), &inits(LIB_LOCS), N_THREADS);
    let mut lit = LitCombined::new(&inits(CLIENT_LOCS), &inits(LIB_LOCS), N_THREADS);
    let mut counter = 100i64;

    for (step_no, &raw) in script.iter().enumerate() {
        let i = decode(raw);
        let (c, t, l) = (i.comp, i.tid, i.loc);
        match i.kind {
            0 | 1 => {
                let acq = i.kind == 1;
                let fc = fast.read_choices(c, t, l);
                let lc = lit_step::read_choices(&lit, c, t, l);
                assert_eq!(
                    fc.iter().map(|r| r.val).collect::<Vec<_>>(),
                    lc.iter().map(|w| w.0.wrval()).collect::<Vec<_>>(),
                    "read choice lists diverge at step {step_no}"
                );
                let k = i.sel as usize % fc.len();
                fast = fast.apply_read(c, t, l, acq, fc[k].from);
                lit = lit_step::apply_read(&lit, c, t, l, acq, lc[k]);
            }
            2 | 3 => {
                let rel = i.kind == 3;
                let fp = fast.write_preds(c, t, l);
                let lp = lit_step::write_choices(&lit, c, t, l);
                assert_eq!(
                    fp.iter().map(|&w| fast.wrval_of(c, w)).collect::<Vec<_>>(),
                    lp.iter().map(|w| w.0.wrval()).collect::<Vec<_>>(),
                    "write predecessor lists diverge at step {step_no}"
                );
                if fp.is_empty() {
                    continue; // everything covered: write disabled
                }
                counter += 1;
                let v = Val::Int(counter);
                let k = i.sel as usize % fp.len();
                fast = fast.apply_write(c, t, l, v, rel, fp[k]);
                lit = lit_step::apply_write(&lit, c, t, l, v, rel, lp[k]);
            }
            4 | 5 => {
                // CAS expects the current max value half the time; FAI takes
                // any uncovered predecessor.
                let expect = if i.kind == 4 {
                    let st = fast.comp(c);
                    Some(st.op(st.max_op(l)).act.wrval())
                } else {
                    None
                };
                let fp = fast.update_preds(c, t, l, expect);
                let lp = lit_step::update_choices(&lit, c, t, l, expect);
                assert_eq!(
                    fp.iter().map(|&w| fast.wrval_of(c, w)).collect::<Vec<_>>(),
                    lp.iter().map(|w| w.0.wrval()).collect::<Vec<_>>(),
                    "update predecessor lists diverge at step {step_no}"
                );
                if fp.is_empty() {
                    continue;
                }
                counter += 1;
                let v = Val::Int(counter);
                let k = i.sel as usize % fp.len();
                fast = fast.apply_update(c, t, l, v, fp[k]);
                lit = lit_step::apply_update(&lit, c, t, l, v, lp[k]);
            }
            _ => unreachable!(),
        }
        fast.check_invariants();
        assert_eq!(
            summarize_fast(&fast),
            summarize_lit(&lit),
            "observable summaries diverge after step {step_no} ({i:?})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The two engines agree on every observable along random executions.
    #[test]
    fn engines_agree_on_random_scripts(
        script in prop::collection::vec(
            (0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255), 0..48)
    ) {
        run_script(&script);
    }

    /// Canonicalisation never changes the observable summary.
    #[test]
    fn canonicalisation_preserves_observables(
        script in prop::collection::vec(
            (0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255), 0..32)
    ) {
        let mut fast = Combined::new(&inits(CLIENT_LOCS), &inits(LIB_LOCS), N_THREADS);
        let mut counter = 0i64;
        for &raw in &script {
            let i = decode(raw);
            let (c, t, l) = (i.comp, i.tid, i.loc);
            match i.kind {
                0 | 1 => {
                    let fc = fast.read_choices(c, t, l);
                    let k = i.sel as usize % fc.len();
                    fast = fast.apply_read(c, t, l, i.kind == 1, fc[k].from);
                }
                2 | 3 => {
                    let fp = fast.write_preds(c, t, l);
                    if fp.is_empty() { continue; }
                    counter += 1;
                    let k = i.sel as usize % fp.len();
                    fast = fast.apply_write(c, t, l, Val::Int(counter), i.kind == 3, fp[k]);
                }
                4 | 5 => {
                    let fp = fast.update_preds(c, t, l, None);
                    if fp.is_empty() { continue; }
                    counter += 1;
                    let k = i.sel as usize % fp.len();
                    fast = fast.apply_update(c, t, l, Val::Int(counter), fp[k]);
                }
                _ => unreachable!(),
            }
        }
        let canon = fast.canonical();
        canon.check_invariants();
        prop_assert_eq!(summarize_fast(&fast), summarize_fast(&canon));
        // Idempotence.
        prop_assert_eq!(canon.canonical(), canon);
    }
}

/// A deterministic regression script exercising cross-component
/// synchronisation (library release observed by client-side reader).
#[test]
fn cross_component_sync_regression() {
    // T0 writes client d=5 (relaxed), then lib flag=1 (releasing);
    // T1 acquires lib flag; must now definitely see d=5.
    let mut fast = Combined::new(&inits(CLIENT_LOCS), &inits(LIB_LOCS), N_THREADS);
    let mut lit = LitCombined::new(&inits(CLIENT_LOCS), &inits(LIB_LOCS), N_THREADS);
    let (d, f) = (Loc(0), Loc(0));
    let t0 = Tid(0);
    let t1 = Tid(1);

    let wp = fast.write_preds(Comp::Client, t0, d);
    let lp = lit_step::write_choices(&lit, Comp::Client, t0, d);
    fast = fast.apply_write(Comp::Client, t0, d, Val::Int(5), false, wp[0]);
    lit = lit_step::apply_write(&lit, Comp::Client, t0, d, Val::Int(5), false, lp[0]);

    let wp = fast.write_preds(Comp::Lib, t0, f);
    let lp = lit_step::write_choices(&lit, Comp::Lib, t0, f);
    fast = fast.apply_write(Comp::Lib, t0, f, Val::Int(1), true, wp[0]);
    lit = lit_step::apply_write(&lit, Comp::Lib, t0, f, Val::Int(1), true, lp[0]);

    // T1 acquiring-reads the library flag's new write (last choice).
    let rc = fast.read_choices(Comp::Lib, t1, f);
    let lc = lit_step::read_choices(&lit, Comp::Lib, t1, f);
    let k = rc.len() - 1;
    assert_eq!(rc[k].val, Val::Int(1));
    fast = fast.apply_read(Comp::Lib, t1, f, true, rc[k].from);
    lit = lit_step::apply_read(&lit, Comp::Lib, t1, f, true, lc[k]);

    // The *client* view of T1 must have synchronised: only d=5 observable.
    let vals: Vec<Val> = fast.read_choices(Comp::Client, t1, d).iter().map(|c| c.val).collect();
    assert_eq!(vals, vec![Val::Int(5)], "library release-acquire must publish client writes");
    assert_eq!(summarize_fast(&fast), summarize_lit(&lit));
}
