//! Property tests for the partial-order-reduction independence oracle
//! (ablation A5): on randomly generated reachable states, every pair of
//! primitive transitions whose [`StepFootprint`]s do **not** conflict must
//!
//! * reach **canonically equal** states when executed in either order
//!   (fresh operation ids depend on execution order; canonicalisation
//!   erases exactly that), and
//! * leave each other's *choice sets* untouched — the other thread sees
//!   the same read choices and the same uncovered predecessors before and
//!   after the step.
//!
//! Together these are the two facts sleep-set pruning rests on: a slept
//! thread's step can be replayed after the explored sibling with the same
//! alternatives and the same (canonical) results. The generators reuse the
//! random-script idiom of `fingerprint_props.rs` to reach non-trivial
//! states, including cross-component states with update-covered operations
//! and release/acquire view transfer. A negative control checks the oracle
//! is not vacuous: conflict-free cross-thread pairs do occur generously.

use proptest::prelude::*;
use rc11_core::{
    AccessKind, Combined, Comp, InitLoc, Loc, OpId, StepFootprint, Tid, Val,
};

const N_THREADS: usize = 3;

/// One step of a state-building script (indices resolved at application
/// time, so every generated script is applicable).
#[derive(Debug, Clone, Copy)]
enum RStep {
    Write { t: u8, comp: bool, loc: u8, val: u8, rel: bool, pred: u8 },
    Read { t: u8, comp: bool, loc: u8, acq: bool, choice: u8 },
    Update { t: u8, comp: bool, loc: u8, val: u8, pred: u8 },
}

fn rstep() -> impl Strategy<Value = RStep> {
    prop_oneof![
        (0u8..3, any::<bool>(), 0u8..2, 1u8..4, any::<bool>(), 0u8..4).prop_map(
            |(t, comp, loc, val, rel, pred)| RStep::Write { t, comp, loc, val, rel, pred }
        ),
        (0u8..3, any::<bool>(), 0u8..2, any::<bool>(), 0u8..4)
            .prop_map(|(t, comp, loc, acq, choice)| RStep::Read { t, comp, loc, acq, choice }),
        (0u8..3, any::<bool>(), 0u8..2, 1u8..4, 0u8..4)
            .prop_map(|(t, comp, loc, val, pred)| RStep::Update { t, comp, loc, val, pred }),
    ]
}

fn initial() -> Combined {
    Combined::new(
        &[InitLoc::Var(Val::Int(0)), InitLoc::Var(Val::Int(0))],
        &[InitLoc::Var(Val::Int(0)), InitLoc::Var(Val::Int(0))],
        N_THREADS,
    )
}

fn comp_of(b: bool) -> Comp {
    if b {
        Comp::Lib
    } else {
        Comp::Client
    }
}

/// Apply one script step, skipping inapplicable ones.
fn apply(s: &Combined, step: RStep) -> Combined {
    match step {
        RStep::Write { t, comp, loc, val, rel, pred } => {
            let (c, t, x) = (comp_of(comp), Tid(t % N_THREADS as u8), Loc((loc % 2) as u16));
            let preds = s.write_preds(c, t, x);
            if preds.is_empty() {
                return s.clone();
            }
            let w = preds[pred as usize % preds.len()];
            s.apply_write(c, t, x, Val::Int(val as i64), rel, w)
        }
        RStep::Read { t, comp, loc, acq, choice } => {
            let (c, t, x) = (comp_of(comp), Tid(t % N_THREADS as u8), Loc((loc % 2) as u16));
            let choices = s.read_choices(c, t, x);
            let ch = choices[choice as usize % choices.len()];
            s.apply_read(c, t, x, acq, ch.from)
        }
        RStep::Update { t, comp, loc, val, pred } => {
            let (c, t, x) = (comp_of(comp), Tid(t % N_THREADS as u8), Loc((loc % 2) as u16));
            let preds = s.update_preds(c, t, x, None);
            if preds.is_empty() {
                return s.clone();
            }
            let w = preds[pred as usize % preds.len()];
            s.apply_update(c, t, x, Val::Int(val as i64), w)
        }
    }
}

fn run(script: &[RStep]) -> Combined {
    script.iter().fold(initial(), |s, &st| apply(&s, st))
}

/// One fully resolved primitive transition: a specific choice of a
/// Figure-5 rule, applicable at the state it was enumerated from. The
/// resolved choice (`OpId` of a pre-existing operation) stays valid after
/// an independent step by another thread: operation ids are append-only.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Prim {
    Write { c: Comp, t: Tid, x: Loc, v: Val, rel: bool, after: OpId },
    Read { c: Comp, t: Tid, x: Loc, acq: bool, from: OpId },
    Update { c: Comp, t: Tid, x: Loc, v: Val, after: OpId },
}

impl Prim {
    fn footprint(self) -> StepFootprint {
        match self {
            Prim::Write { c, t, x, rel, .. } => {
                StepFootprint::access(t, c, x, AccessKind::Write { rel })
            }
            Prim::Read { c, t, x, acq, .. } => {
                StepFootprint::access(t, c, x, AccessKind::Read { acq })
            }
            Prim::Update { c, t, x, after, .. } => {
                let mut fp = StepFootprint::access(t, c, x, AccessKind::Update);
                fp.access.as_mut().unwrap().covers = Some(after);
                fp
            }
        }
    }

    fn apply(self, s: &Combined) -> Combined {
        match self {
            Prim::Write { c, t, x, v, rel, after } => s.apply_write(c, t, x, v, rel, after),
            Prim::Read { c, t, x, acq, from } => s.apply_read(c, t, x, acq, from),
            Prim::Update { c, t, x, v, after } => s.apply_update(c, t, x, v, after),
        }
    }

    /// Still applicable at `s`? (An independent step must never disable
    /// this one — asserted, not assumed, by the properties below.)
    fn enabled(self, s: &Combined) -> bool {
        match self {
            Prim::Write { c, t, x, after, .. } => s.write_preds(c, t, x).contains(&after),
            Prim::Read { c, t, x, from, .. } => {
                s.read_choices(c, t, x).iter().any(|ch| ch.from == from)
            }
            Prim::Update { c, t, x, after, .. } => {
                s.update_preds(c, t, x, None).contains(&after)
            }
        }
    }
}

/// Every resolved primitive transition of thread `t` at `s`, over both
/// components and all locations.
fn prims_of(s: &Combined, t: Tid) -> Vec<Prim> {
    let mut out = Vec::new();
    for c in [Comp::Client, Comp::Lib] {
        for l in 0..s.comp(c).n_locs() {
            let x = Loc(l as u16);
            for after in s.write_preds(c, t, x) {
                for rel in [false, true] {
                    out.push(Prim::Write { c, t, x, v: Val::Int(7), rel, after });
                }
            }
            for ch in s.read_choices(c, t, x) {
                for acq in [false, true] {
                    out.push(Prim::Read { c, t, x, acq, from: ch.from });
                }
            }
            for after in s.update_preds(c, t, x, None) {
                out.push(Prim::Update { c, t, x, v: Val::Int(9), after });
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The oracle's soundness contract: for every cross-thread pair of
    /// resolved transitions whose footprints do not conflict, both orders
    /// stay enabled and reach canonically equal states.
    #[test]
    fn conflict_free_pairs_commute_canonically(
        script in prop::collection::vec(rstep(), 0..8),
    ) {
        let s = run(&script);
        let mut checked = 0usize;
        'outer: for ta in 0..N_THREADS {
            for tb in 0..N_THREADS {
                if ta == tb {
                    continue;
                }
                for a in prims_of(&s, Tid(ta as u8)) {
                    for b in prims_of(&s, Tid(tb as u8)) {
                        if a.footprint().may_conflict(&b.footprint()) {
                            continue;
                        }
                        let sa = a.apply(&s);
                        let sb = b.apply(&s);
                        prop_assert!(
                            b.enabled(&sa),
                            "{b:?} disabled by independent {a:?}"
                        );
                        prop_assert!(
                            a.enabled(&sb),
                            "{a:?} disabled by independent {b:?}"
                        );
                        let sab = b.apply(&sa);
                        let sba = a.apply(&sb);
                        prop_assert!(
                            sab.canonical_eq(&sba.canonical()),
                            "orders diverge: {a:?} then {b:?} vs the reverse"
                        );
                        checked += 1;
                        // Bound the quadratic blow-up per generated state.
                        if checked > 400 {
                            break 'outer;
                        }
                    }
                }
            }
        }
    }

    /// The choice-set half of independence: an independent step leaves the
    /// other thread's *entire* fan-out untouched — same read choices, same
    /// write and update predecessors (as resolved transition sets). This is
    /// what lets sleep sets treat "thread `u`'s step" as one unit: after an
    /// independent sibling executes, `u` still has exactly the same
    /// alternatives.
    #[test]
    fn independent_steps_preserve_choice_sets(
        script in prop::collection::vec(rstep(), 0..8),
    ) {
        let s = run(&script);
        let mut checked = 0usize;
        'outer: for ta in 0..N_THREADS {
            for tb in 0..N_THREADS {
                if ta == tb {
                    continue;
                }
                let tb_tid = Tid(tb as u8);
                let before = prims_of(&s, tb_tid);
                for a in prims_of(&s, Tid(ta as u8)) {
                    let fa = a.footprint();
                    // Thread-level check: only when `a` is independent of
                    // *everything* thread `tb` can do here (the sleep-set
                    // granularity), `tb`'s fan-out must be unchanged.
                    if before.iter().any(|b| fa.may_conflict(&b.footprint())) {
                        continue;
                    }
                    let sa = a.apply(&s);
                    let after = prims_of(&sa, tb_tid);
                    prop_assert_eq!(
                        &before, &after,
                        "{:?} changed thread {}'s fan-out", a, tb
                    );
                    checked += 1;
                    if checked > 200 {
                        break 'outer;
                    }
                }
            }
        }
    }

    /// Negative control: the oracle must not be vacuous. On states with at
    /// least two locations touched, conflict-free cross-thread pairs exist
    /// (different locations always commute), and pairs writing one location
    /// always conflict.
    #[test]
    fn oracle_is_not_vacuous(script in prop::collection::vec(rstep(), 4..10)) {
        let s = run(&script);
        let a = prims_of(&s, Tid(0));
        let b = prims_of(&s, Tid(1));
        let free = a
            .iter()
            .flat_map(|x| b.iter().map(move |y| (x, y)))
            .filter(|(x, y)| !x.footprint().may_conflict(&y.footprint()))
            .count();
        prop_assert!(free > 0, "no commuting pair found on a 4-location state");
        // Same-location writes by different threads always conflict.
        for x in &a {
            for y in &b {
                if let (Prim::Write { c: ca, x: xa, .. }, Prim::Write { c: cb, x: xb, .. }) =
                    (x, y)
                {
                    if ca == cb && xa == xb {
                        prop_assert!(x.footprint().may_conflict(&y.footprint()));
                    }
                }
            }
        }
    }
}
