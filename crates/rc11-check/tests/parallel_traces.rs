//! Regression: the parallel engine's counterexample traces are *valid* —
//! every recorded step is a real transition of the semantics, the trace
//! starts at the initial configuration and ends at the violating one.
//!
//! Two scenarios with known defects:
//!
//! * a program with a **known deadlock** (a thread re-acquiring a held
//!   lock after publishing a write), where the deadlocked configuration
//!   itself is flagged by the check callback;
//! * a program with a **known invariant violation** in the style of the
//!   outline checks ("`x` never holds 2" over a thread writing 1 then 2,
//!   with an interfering second thread), checked through
//!   [`Engine::check_invariant`].
//!
//! Each violation's trace is replayed step by step through `successors`.

use rc11_check::{choose_engine, par_explore, Engine, EngineReport, ExploreOptions, Violation};
use rc11_lang::builder::*;
use rc11_lang::cfg::CfgProgram;
use rc11_lang::machine::{successors, Config, NoObjects, ObjectSemantics, StepOptions};
use rc11_lang::{compile, Reg};
use rc11_objects::AbstractObjects;

/// Replay `v`'s trace: every step must be a transition the semantics
/// really offers from the previous configuration, and the walk must end at
/// the violating configuration.
fn assert_trace_replays(
    prog: &CfgProgram,
    objs: &(dyn ObjectSemantics + Sync),
    step: StepOptions,
    v: &Violation,
) {
    let trace = v.trace.as_ref().expect("violation must carry a trace");
    let mut cur = Config::initial(prog).canonical();
    for (i, (tid, next)) in trace.iter().enumerate() {
        let succs = successors(prog, objs, &cur, step);
        assert!(
            succs.iter().any(|(t, s)| t == tid && s.canonical() == *next),
            "step {i} by {tid:?} is not a real transition of the program"
        );
        cur = next.clone();
    }
    assert_eq!(cur, v.config, "trace must end at the violating configuration");
}

/// A two-thread program where thread 1 writes data, releases, then
/// re-acquires the lock it still holds on a second pass — guaranteeing a
/// reachable deadlocked configuration — while thread 2 reads the data.
fn deadlock_prog() -> CfgProgram {
    let mut p = ProgramBuilder::new("deadlock-mp");
    let x = p.client_var("x", 0);
    let l = p.lock("l");
    let t1 = ThreadBuilder::new();
    // acquire; x := 1; acquire (blocks forever: double acquire).
    p.add_thread(t1, seq([acquire(l), wr(x, 1), acquire(l)]));
    let mut t2 = ThreadBuilder::new();
    let r = t2.reg("r");
    p.add_thread(t2, seq([rd(r, x)]));
    compile(&p.build())
}

#[test]
fn parallel_deadlock_configuration_has_replayable_trace() {
    let prog = deadlock_prog();
    let opts = ExploreOptions::default();
    // Flag exactly the stuck configurations: no successors, not terminated.
    let check = |cfg: &Config, out: &mut Vec<String>| {
        let stuck = successors(&prog, &AbstractObjects, cfg, opts.step).is_empty()
            && !cfg.terminated(&prog);
        if stuck {
            out.push("deadlock".to_string());
        }
    };
    let seq: EngineReport = Engine::Sequential.explore_with(&prog, &AbstractObjects, &opts, check);
    assert!(!seq.deadlocked.is_empty(), "the double acquire must deadlock");
    assert_eq!(seq.violations.len(), seq.deadlocked.len());

    let par = par_explore(&prog, &AbstractObjects, &opts, 4, check);
    assert_eq!(par.deadlocked.len(), seq.deadlocked.len());
    assert_eq!(par.violations.len(), seq.violations.len());
    for v in &par.violations {
        let trace = v.trace.as_ref().expect("parallel engine records traces by default");
        assert!(!trace.is_empty(), "the deadlock is not the initial configuration");
        assert_trace_replays(&prog, &AbstractObjects, opts.step, v);
    }
}

#[test]
fn parallel_invariant_violation_has_replayable_trace() {
    // Thread 1 writes x := 1 then x := 2; thread 2 writes y concurrently so
    // the violating configurations sit mid-graph, not only at terminals.
    let mut p = ProgramBuilder::new("bad-invariant");
    let x = p.client_var("x", 0);
    let y = p.client_var("y", 0);
    let t1 = ThreadBuilder::new();
    p.add_thread(t1, seq([wr(x, 1), wr(x, 2)]));
    let t2 = ThreadBuilder::new();
    p.add_thread(t2, seq([wr(y, 7)]));
    let prog = compile(&p.build());

    // "No thread can ever observe x = 2" — violated after the second write.
    let pred = rc11_assert::dsl::pnot(rc11_assert::dsl::pobs(0, x, 2));
    let opts = ExploreOptions::default();

    let seq = Engine::Sequential.check_invariant(&prog, &NoObjects, &opts, &pred);
    assert!(!seq.violations.is_empty(), "the invariant is genuinely violated");

    let par = choose_engine(4).check_invariant(&prog, &NoObjects, &opts, &pred);
    assert_eq!(par.violations.len(), seq.violations.len(), "same violating states");
    for v in &par.violations {
        let trace = v.trace.as_ref().expect("parallel engine records traces by default");
        assert!(!trace.is_empty(), "the violation needs at least the two writes");
        assert_trace_replays(&prog, &NoObjects, opts.step, v);
    }
}

/// The `record_traces` knob: off means `trace: None` from both engines.
#[test]
fn traces_are_omitted_when_disabled() {
    let prog = deadlock_prog();
    let opts = ExploreOptions { record_traces: false, ..Default::default() };
    let check = |cfg: &Config, out: &mut Vec<String>| {
        if cfg.pcs.iter().all(|&pc| pc > 0) {
            out.push("all threads moved".to_string());
        }
    };
    for engine in [Engine::Sequential, Engine::Parallel { workers: 2 }] {
        let report = engine.explore_with(&prog, &AbstractObjects, &opts, check);
        assert!(!report.violations.is_empty(), "{engine:?}");
        assert!(report.violations.iter().all(|v| v.trace.is_none()), "{engine:?}");
    }
}

/// Sanity for the helper itself: a Reg read in the deadlock program's
/// thread 2 stays observable through replayed traces (the trace carries
/// full configurations, not just pcs).
#[test]
fn replayed_traces_carry_full_configurations() {
    let prog = deadlock_prog();
    let opts = ExploreOptions::default();
    let check = |cfg: &Config, out: &mut Vec<String>| {
        if cfg.reg(1, Reg(0)) == rc11_core::Val::Int(1) {
            out.push("t2 observed the published write".to_string());
        }
    };
    let par = par_explore(&prog, &AbstractObjects, &opts, 4, check);
    assert!(!par.violations.is_empty(), "t2 can read x = 1 after the publish");
    for v in &par.violations {
        assert_trace_replays(&prog, &AbstractObjects, opts.step, v);
        // The final configuration of the trace shows the read's effect.
        assert_eq!(v.config.reg(1, Reg(0)), rc11_core::Val::Int(1));
    }
}
