//! Property tests for the sharded visited structures behind the parallel
//! engine.
//!
//! Three guarantees under test, over generated (including adversarial)
//! inputs:
//!
//! 1. **Exactly-one-winner** — for any interleaved concurrent insert
//!    sequence, each distinct value/key is reported new by exactly one
//!    caller (the double-checked write-lock re-validation);
//! 2. **Exact quiescent size** — after all inserters join, `len()` equals
//!    the number of distinct values inserted (the racy-snapshot semantics
//!    collapse to exactness at quiescence);
//! 3. **Non-degenerate shard occupancy** — adversarial key patterns
//!    (stride-aligned, low-entropy) still spread across shards through the
//!    avalanche-mixed shard index, instead of piling into the few shards a
//!    fixed bit-window index (the old `(h >> 7) & mask`) would select.

use proptest::prelude::*;
use rc11_check::parallel::{ShardedMap, ShardedSet};
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Interleave each thread differently over the shared value list so the
/// threads collide on the same values at the same time.
fn thread_order(values: &[u64], t: usize) -> Vec<u64> {
    let mut v: Vec<u64> = values.to_vec();
    let n = v.len().max(1);
    match t % 3 {
        0 => {}
        1 => v.reverse(),
        _ => v.rotate_left(t % n),
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any interleaved concurrent insert sequence elects exactly one winner
    /// per distinct value, and the quiescent `len()` is exact.
    #[test]
    fn set_concurrent_inserts_have_exactly_one_winner(
        values in prop::collection::vec(0u64..4_096, 1..400),
        threads in 2usize..7,
        shard_bits in 0u32..7,
    ) {
        let distinct: HashSet<u64> = values.iter().copied().collect();
        let set: ShardedSet<u64> = ShardedSet::new(shard_bits);
        let wins = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for t in 0..threads {
                let (set, wins, order) = (&set, &wins, thread_order(&values, t));
                scope.spawn(move || {
                    for v in order {
                        if set.insert(v) {
                            wins.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        prop_assert_eq!(wins.into_inner(), distinct.len(), "one winner per distinct value");
        prop_assert_eq!(set.len(), distinct.len(), "quiescent len() is exact");
        prop_assert_eq!(set.is_empty(), distinct.is_empty());
        let occupancy = set.shard_occupancy();
        prop_assert_eq!(occupancy.iter().sum::<usize>(), distinct.len());
    }

    /// Same law for the map, plus first-writer-wins on the value: the value
    /// stored for each key is the one supplied by the winning thread.
    #[test]
    fn map_concurrent_inserts_have_exactly_one_winner(
        keys in prop::collection::vec(0u64..2_048, 1..300),
        threads in 2usize..6,
        shard_bits in 0u32..6,
    ) {
        let distinct: HashSet<u64> = keys.iter().copied().collect();
        let map: ShardedMap<u64, usize> = ShardedMap::new(shard_bits);
        let wins = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for t in 0..threads {
                let (map, wins, order) = (&map, &wins, thread_order(&keys, t));
                scope.spawn(move || {
                    for k in order {
                        if map.insert(k, t) {
                            wins.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        prop_assert_eq!(wins.into_inner(), distinct.len(), "one winner per distinct key");
        prop_assert_eq!(map.len(), distinct.len(), "quiescent len() is exact");
        for k in &distinct {
            let owner = map.get_cloned(k).expect("inserted key present");
            prop_assert!(owner < threads, "stored value came from a real inserter");
        }
    }

    /// Batched insertion obeys the same exactly-one-winner law when racing
    /// threads insert overlapping batches.
    #[test]
    fn map_concurrent_batch_inserts_have_exactly_one_winner(
        keys in prop::collection::vec(0u64..1_024, 1..200),
        threads in 2usize..6,
        batch in 1usize..48,
    ) {
        let distinct: HashSet<u64> = keys.iter().copied().collect();
        let map: ShardedMap<u64, usize> = ShardedMap::new(4);
        let wins = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for t in 0..threads {
                let (map, wins, order) = (&map, &wins, thread_order(&keys, t));
                scope.spawn(move || {
                    for chunk in order.chunks(batch) {
                        let items: Vec<(u64, usize)> =
                            chunk.iter().map(|&k| (k, t)).collect();
                        wins.fetch_add(map.insert_batch(items).len(), Ordering::Relaxed);
                    }
                });
            }
        });
        prop_assert_eq!(wins.into_inner(), distinct.len(), "one winner per distinct key");
        prop_assert_eq!(map.len(), distinct.len());
    }

    /// Stride-aligned keys (constant low bits — the classic failure mode of
    /// masking a weak hash) populate every shard once there are an order of
    /// magnitude more keys than shards.
    #[test]
    fn stride_aligned_keys_populate_every_shard(
        stride_log in 0u32..16,
        base in 0u64..1_024,
        shard_bits in 1u32..6,
    ) {
        let shards = 1usize << shard_bits;
        let n_keys = (shards * 64) as u64;
        let set: ShardedSet<u64> = ShardedSet::new(shard_bits);
        for i in 0..n_keys {
            set.insert(base + (i << stride_log));
        }
        let occupancy = set.shard_occupancy();
        prop_assert_eq!(occupancy.len(), shards);
        prop_assert_eq!(occupancy.iter().sum::<usize>(), n_keys as usize);
        let empty = occupancy.iter().filter(|&&n| n == 0).count();
        prop_assert_eq!(empty, 0, "no empty shard for stride 2^{}: {:?}", stride_log, occupancy);
        let max = *occupancy.iter().max().expect("non-empty");
        prop_assert!(
            max <= (n_keys as usize) * 3 / 4,
            "no shard may hold over three quarters of the keys: {:?}",
            occupancy
        );
    }

    /// Low-entropy keys that differ only in a narrow high bit-window (so a
    /// fixed `(h >> 7)`-style index over a weak hash degenerates) still
    /// spread: occupancy is non-degenerate for every window position.
    #[test]
    fn narrow_bit_window_keys_populate_every_shard(
        window_shift in 0u32..56,
    ) {
        let set: ShardedSet<u64> = ShardedSet::new(4);
        // 256 distinct values confined to one byte at an arbitrary shift.
        for v in 0u64..256 {
            set.insert(v << window_shift);
        }
        let occupancy = set.shard_occupancy();
        prop_assert_eq!(occupancy.iter().sum::<usize>(), 256);
        let empty = occupancy.iter().filter(|&&n| n == 0).count();
        prop_assert_eq!(
            empty, 0,
            "no empty shard for window shift {}: {:?}", window_shift, occupancy
        );
    }
}
