//! A minimal JSON value type, parser and writer for the `rc11 serve`
//! wire protocol.
//!
//! The daemon speaks JSON-lines over TCP: one request object per line in,
//! one response object per line out. The offline dependency set has no
//! serde, so the (small, stable) subset of JSON the protocol needs is
//! implemented here: objects, arrays, strings with the standard escapes,
//! 64-bit integers, floats, booleans and null. Integers are kept distinct
//! from floats ([`Json::Int`] vs [`Json::Float`]) so state/transition
//! counts round-trip exactly — a count squeezed through an `f64` would
//! silently lose precision past 2⁵³, and "bit-identical reports" is the
//! contract the daemon's differential battery enforces.
//!
//! The writer emits object keys in insertion order and escapes every
//! control character, `"` and `\`; the parser accepts arbitrary key order
//! and the full escape set including `\uXXXX` (surrogate pairs left as-is:
//! the protocol never emits them, and unpaired surrogates are replaced).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fraction or exponent, kept exact.
    Int(i64),
    /// A number with fraction or exponent.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order (duplicate keys: last wins on
    /// lookup, both are preserved by the writer — the protocol never
    /// emits duplicates).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (last occurrence wins).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The float payload (integers widen), if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialise to a single line (no trailing newline).
    pub fn to_string_line(&self) -> String {
        let mut out = String::new();
        write_json(self, &mut out);
        out
    }
}

fn write_json(v: &Json, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Json::Float(x) => {
            if x.is_finite() {
                // `{:?}` keeps a fractional point (`1.0`, not `1`), so the
                // value re-parses as a float.
                let _ = write!(out, "{x:?}");
            } else {
                // JSON has no NaN/Inf; the protocol treats them as absent.
                out.push_str("null");
            }
        }
        Json::Str(s) => write_escaped(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json(item, out);
            }
            out.push(']');
        }
        Json::Obj(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_json(val, out);
            }
            out.push('}');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse error: a message and the byte offset it was detected at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parse one JSON value; trailing (non-whitespace) input is an error.
pub fn parse_json(src: &str) -> Result<Json, JsonError> {
    let mut p = Parser { src: src.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.src.len() {
        return Err(p.err("trailing input after the value"));
    }
    Ok(v)
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError { msg: msg.into(), at: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.src[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Json::Arr(items));
            }
            self.expect(b',')?;
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Json::Obj(fields));
            }
            self.expect(b',')?;
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.src.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = &self.src[self.pos + 1..self.pos + 5];
                            let hex = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one whole UTF-8 scalar (input is &str, so
                    // boundaries are valid).
                    let rest = &self.src[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err(format!("bad number `{text}`")))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| self.err(format!("bad number `{text}`")))
        }
    }
}

/// Shorthand for building an object.
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_protocol_shapes() {
        let v = obj(vec![
            ("cmd", Json::Str("check".into())),
            ("source", Json::Str("litmus \"x\"\nvar x = 0\n".into())),
            ("workers", Json::Int(4)),
            ("pass", Json::Bool(true)),
            ("observed", Json::Arr(vec![Json::Arr(vec![Json::Int(0), Json::Int(1)])])),
            ("rate", Json::Float(0.5)),
            ("missing", Json::Null),
        ]);
        let line = v.to_string_line();
        assert_eq!(parse_json(&line).unwrap(), v);
    }

    #[test]
    fn integers_stay_exact() {
        let n = i64::MAX - 7;
        let line = Json::Int(n).to_string_line();
        assert_eq!(parse_json(&line).unwrap().as_i64(), Some(n));
    }

    #[test]
    fn escapes_round_trip() {
        let s = "quote \" backslash \\ newline \n tab \t nul \u{0} unicode é";
        let line = Json::Str(s.into()).to_string_line();
        assert_eq!(parse_json(&line).unwrap().as_str(), Some(s));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "\"open", "{\"a\" 1}", "1 2", "truth", "nul"] {
            assert!(parse_json(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn lookup_and_accessors() {
        let v = parse_json(r#"{"a": 1, "b": "two", "c": [true], "a": 3}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_i64), Some(3), "last key wins");
        assert_eq!(v.get("b").and_then(Json::as_str), Some("two"));
        assert_eq!(v.get("c").and_then(Json::as_arr).map(<[Json]>::len), Some(1));
        assert_eq!(v.get("d"), None);
    }
}
