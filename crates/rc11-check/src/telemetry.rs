//! Telemetry wire encoding and run-trace export (DESIGN.md §9).
//!
//! Three layers live here, all built on the daemon's [`crate::wire`]
//! JSON so every byte that leaves the process re-parses through one
//! code path:
//!
//! * [`snapshot_json`]/[`snapshot_from_json`] — the
//!   [`TelemetrySnapshot`] wire form. Counter and phase keys are the
//!   stable snake_case names from [`Counter::name`]/[`Phase::name`];
//!   unknown keys are ignored on read so old readers survive new
//!   counters.
//! * [`TraceWriter`] — the `rc11 run --trace FILE.jsonl` stream: one
//!   JSON object per line, every line carrying `"event"` (kind) and
//!   `"ms"` (elapsed milliseconds since the writer was created,
//!   clamped monotone non-decreasing). Event kinds: `run-start`,
//!   `heartbeat`, `file`, `note`, `stop`.
//! * [`read_trace`] — the `rc11 trace-report` side: strict per-line
//!   validation (parses through [`crate::wire::parse_json`], required
//!   keys present, timestamps monotone) plus aggregation into a
//!   [`TraceStats`] with per-phase and per-reduction attribution.

use crate::request::CheckResponse;
use crate::wire::{obj, parse_json, Json};
use rc11_telemetry::{Counter, Phase, TelemetrySnapshot};
use std::collections::BTreeMap;
use std::io::{self, Write};
use std::time::Instant;

fn int(n: u64) -> Json {
    Json::Int(i64::try_from(n).unwrap_or(i64::MAX))
}

/// Encode a snapshot as a JSON object. Every counter and phase is
/// present (zeros included) so the schema is fixed per build.
pub fn snapshot_json(snap: &TelemetrySnapshot) -> Json {
    let counters =
        Json::Obj(Counter::ALL.iter().map(|&c| (c.name().to_string(), int(snap.get(c)))).collect());
    let phases =
        Json::Obj(Phase::ALL.iter().map(|&p| (p.name().to_string(), int(snap.phase(p)))).collect());
    obj(vec![
        ("counters", counters),
        ("phases_ns", phases),
        ("worker_expansions", Json::Arr(snap.worker_expansions.iter().map(|&n| int(n)).collect())),
        ("shard_occupancy", Json::Arr(snap.shard_occupancy.iter().map(|&n| int(n)).collect())),
        ("frontier_depth", int(snap.frontier_depth)),
        ("frontier_peak", int(snap.frontier_peak)),
        ("served_from_cache", Json::Bool(snap.served_from_cache)),
    ])
}

fn u64_field(v: &Json, key: &str) -> u64 {
    v.get(key).and_then(Json::as_i64).map(|n| n.max(0) as u64).unwrap_or(0)
}

fn u64_arr(v: &Json, key: &str) -> Vec<u64> {
    v.get(key)
        .and_then(Json::as_arr)
        .map(|items| items.iter().map(|j| j.as_i64().map(|n| n.max(0) as u64).unwrap_or(0)).collect())
        .unwrap_or_default()
}

/// Decode a snapshot produced by [`snapshot_json`]. Missing counters or
/// phases read as zero; unknown keys are skipped. `None` only when the
/// value is not an object.
pub fn snapshot_from_json(v: &Json) -> Option<TelemetrySnapshot> {
    if !matches!(v, Json::Obj(_)) {
        return None;
    }
    let mut snap = TelemetrySnapshot::default();
    if let Some(Json::Obj(fields)) = v.get("counters") {
        for (k, val) in fields {
            if let (Some(c), Some(n)) = (Counter::from_name(k), val.as_i64()) {
                snap.counters[c as usize] = n.max(0) as u64;
            }
        }
    }
    if let Some(Json::Obj(fields)) = v.get("phases_ns") {
        for (k, val) in fields {
            if let (Some(p), Some(n)) = (Phase::from_name(k), val.as_i64()) {
                snap.phase_nanos[p as usize] = n.max(0) as u64;
            }
        }
    }
    snap.worker_expansions = u64_arr(v, "worker_expansions");
    snap.shard_occupancy = u64_arr(v, "shard_occupancy");
    snap.frontier_depth = u64_field(v, "frontier_depth");
    snap.frontier_peak = u64_field(v, "frontier_peak");
    snap.served_from_cache = v.get("served_from_cache").and_then(Json::as_bool).unwrap_or(false);
    Some(snap)
}

/// Streaming JSONL trace writer. Each event is one line, flushed
/// immediately so a killed run leaves a readable prefix. Timestamps are
/// elapsed milliseconds since construction and never go backwards.
pub struct TraceWriter<W: Write> {
    out: W,
    start: Instant,
    last_ms: u64,
    lines: u64,
}

impl<W: Write> TraceWriter<W> {
    /// A writer clocking from "now". Emits nothing until the first event.
    pub fn new(out: W) -> TraceWriter<W> {
        TraceWriter { out, start: Instant::now(), last_ms: 0, lines: 0 }
    }

    /// Lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Release the underlying writer (every event is already flushed).
    pub fn into_inner(self) -> W {
        self.out
    }

    fn now_ms(&mut self) -> u64 {
        let ms = self.start.elapsed().as_millis() as u64;
        self.last_ms = self.last_ms.max(ms);
        self.last_ms
    }

    /// Emit one event line. `"event"` and `"ms"` are prepended; the
    /// caller's fields follow in order.
    pub fn event(&mut self, kind: &str, fields: Vec<(String, Json)>) -> io::Result<()> {
        let ms = self.now_ms();
        let mut all = vec![("event".to_string(), Json::Str(kind.to_string())), ("ms".to_string(), int(ms))];
        all.extend(fields);
        let line = Json::Obj(all).to_string_line();
        self.out.write_all(line.as_bytes())?;
        self.out.write_all(b"\n")?;
        self.out.flush()?;
        self.lines += 1;
        Ok(())
    }

    /// The opening `run-start` event.
    pub fn run_start(&mut self, files: usize, workers: usize, options: Json) -> io::Result<()> {
        self.event(
            "run-start",
            vec![
                ("files".to_string(), int(files as u64)),
                ("workers".to_string(), int(workers as u64)),
                ("options".to_string(), options),
            ],
        )
    }

    /// A periodic `heartbeat` carrying the cumulative snapshot and the
    /// derived rates the progress line shows.
    pub fn heartbeat(
        &mut self,
        snap: &TelemetrySnapshot,
        states_per_sec: f64,
        files_done: usize,
        files_total: usize,
    ) -> io::Result<()> {
        self.event(
            "heartbeat",
            vec![
                ("states".to_string(), int(snap.get(Counter::States))),
                ("transitions".to_string(), int(snap.get(Counter::Transitions))),
                ("states_per_sec".to_string(), Json::Float(states_per_sec)),
                ("frontier_depth".to_string(), int(snap.frontier_depth)),
                ("files_done".to_string(), int(files_done as u64)),
                ("files_total".to_string(), int(files_total as u64)),
                ("snapshot".to_string(), snapshot_json(snap)),
            ],
        )
    }

    /// A per-file `file` verdict row.
    pub fn file_verdict(&mut self, resp: &CheckResponse) -> io::Result<()> {
        let mut fields = vec![
            ("name".to_string(), Json::Str(resp.name.clone())),
            ("pass".to_string(), Json::Bool(resp.pass)),
            ("served".to_string(), Json::Str(resp.served.as_str().to_string())),
            ("states".to_string(), int(resp.states as u64)),
            ("transitions".to_string(), int(resp.transitions as u64)),
            ("stop".to_string(), Json::Str(format!("{:?}", resp.stop))),
            ("wall_ms".to_string(), Json::Float(resp.wall.as_secs_f64() * 1e3)),
        ];
        if let Some(snap) = &resp.telemetry {
            fields.push(("telemetry".to_string(), snapshot_json(snap)));
        }
        self.event("file", fields)
    }

    /// A free-text `note` event.
    pub fn note(&mut self, text: &str) -> io::Result<()> {
        self.event("note", vec![("text".to_string(), Json::Str(text.to_string()))])
    }

    /// The closing `stop` event.
    pub fn stop(&mut self, files: usize, passed: usize, failed: usize) -> io::Result<()> {
        self.event(
            "stop",
            vec![
                ("files".to_string(), int(files as u64)),
                ("passed".to_string(), int(passed as u64)),
                ("failed".to_string(), int(failed as u64)),
            ],
        )
    }
}

/// Aggregated view of one trace file, as `rc11 trace-report` prints it.
#[derive(Debug, Clone, Default)]
pub struct TraceStats {
    /// Total event lines.
    pub lines: u64,
    /// Event count per kind, alphabetical.
    pub events_by_kind: BTreeMap<String, u64>,
    /// `file` events seen.
    pub files: u64,
    /// `file` events with `"pass": true`.
    pub passed: u64,
    /// `file` events served from either cache tier.
    pub cache_hits: u64,
    /// Summed states over `file` events.
    pub states: u64,
    /// Summed transitions over `file` events.
    pub transitions: u64,
    /// Summed wall milliseconds over `file` events.
    pub wall_ms: f64,
    /// Summed per-file telemetry counters (zero where no file carried a
    /// snapshot).
    pub counters: [u64; Counter::COUNT],
    /// Summed per-file phase nanoseconds.
    pub phase_nanos: [u64; Phase::COUNT],
    /// `file` events that carried a telemetry snapshot.
    pub files_with_telemetry: u64,
    /// Timestamp of the last event, milliseconds.
    pub last_ms: u64,
}

impl TraceStats {
    /// One summed counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// One summed phase, nanoseconds.
    pub fn phase(&self, p: Phase) -> u64 {
        self.phase_nanos[p as usize]
    }
}

/// Parse and validate a trace file's text, producing [`TraceStats`].
///
/// Validation is strict — this doubles as the CI schema check: every
/// non-empty line must parse as a JSON object with a string `"event"`
/// and an integer `"ms"`, timestamps must be monotone non-decreasing,
/// and kind-specific required keys must be present (`file` needs
/// `name`/`pass`, `run-start` needs `files`, `stop` needs `files`).
pub fn read_trace(src: &str) -> Result<TraceStats, String> {
    let mut stats = TraceStats::default();
    let mut prev_ms = 0u64;
    for (i, line) in src.lines().enumerate() {
        let lineno = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let v = parse_json(line).map_err(|e| format!("line {lineno}: {e}"))?;
        let kind = v
            .get("event")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {lineno}: missing string `event`"))?
            .to_string();
        let ms = v
            .get("ms")
            .and_then(Json::as_i64)
            .ok_or_else(|| format!("line {lineno}: missing integer `ms`"))?;
        let ms = u64::try_from(ms).map_err(|_| format!("line {lineno}: negative `ms`"))?;
        if ms < prev_ms {
            return Err(format!("line {lineno}: timestamp {ms}ms went backwards (prev {prev_ms}ms)"));
        }
        prev_ms = ms;
        stats.last_ms = ms;
        stats.lines += 1;
        *stats.events_by_kind.entry(kind.clone()).or_insert(0) += 1;
        match kind.as_str() {
            "run-start" | "stop"
                if v.get("files").and_then(Json::as_i64).is_none() =>
            {
                return Err(format!("line {lineno}: `{kind}` missing integer `files`"));
            }
            "run-start" | "stop" => {}
            "file" => {
                if v.get("name").and_then(Json::as_str).is_none() {
                    return Err(format!("line {lineno}: `file` missing string `name`"));
                }
                let pass = v
                    .get("pass")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| format!("line {lineno}: `file` missing bool `pass`"))?;
                stats.files += 1;
                if pass {
                    stats.passed += 1;
                }
                if v.get("served").and_then(Json::as_str).map(|s| s != "explored").unwrap_or(false) {
                    stats.cache_hits += 1;
                }
                stats.states += u64_field(&v, "states");
                stats.transitions += u64_field(&v, "transitions");
                stats.wall_ms += v.get("wall_ms").and_then(Json::as_f64).unwrap_or(0.0);
                if let Some(snap) = v.get("telemetry").and_then(snapshot_from_json) {
                    stats.files_with_telemetry += 1;
                    for c in Counter::ALL {
                        stats.counters[c as usize] += snap.get(c);
                    }
                    for p in Phase::ALL {
                        stats.phase_nanos[p as usize] += snap.phase(p);
                    }
                }
            }
            // `heartbeat` snapshots are cumulative, not per-file — they
            // are validated (event/ms) but deliberately not summed.
            _ => {}
        }
    }
    if stats.lines == 0 {
        return Err("trace is empty".to_string());
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{CheckParams, CheckService};
    use rc11_telemetry::Telemetry;
    use std::sync::Arc;

    fn sample_snapshot() -> TelemetrySnapshot {
        let t = Telemetry::new();
        t.add(Counter::States, 41);
        t.incr(Counter::States);
        t.add(Counter::Transitions, 99);
        t.add_expansions(0, 30);
        t.add_expansions(3, 12);
        t.add_phase_nanos(Phase::Explore, 1_234_567);
        t.frontier_add(7);
        t.record_shard_occupancy(&[5, 0, 9]);
        t.snapshot()
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let snap = sample_snapshot();
        let line = snapshot_json(&snap).to_string_line();
        let back = snapshot_from_json(&parse_json(&line).unwrap()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn served_from_cache_survives_the_wire() {
        let snap = TelemetrySnapshot { served_from_cache: true, ..Default::default() };
        let back = snapshot_from_json(&snapshot_json(&snap)).unwrap();
        assert!(back.served_from_cache);
    }

    #[test]
    fn unknown_counters_are_ignored_not_fatal() {
        let v = parse_json(
            r#"{"counters":{"states":5,"counter_from_the_future":7},"phases_ns":{"explore":10}}"#,
        )
        .unwrap();
        let snap = snapshot_from_json(&v).unwrap();
        assert_eq!(snap.get(Counter::States), 5);
        assert_eq!(snap.phase(Phase::Explore), 10);
    }

    const MP: &str = r#"
litmus "mp-ra"
var x = 0
var y = 0
thread T1 { x = 1; y =rel 1; }
thread T2 { r1 =acq y; r2 = x; }
observe T2.r1 T2.r2
expected { (0, 0) (0, 1) (1, 1) }
"#;

    #[test]
    fn trace_writes_then_reads_with_attribution() {
        let tel = Arc::new(Telemetry::new());
        let service = CheckService::new();
        let params = CheckParams { telemetry: Some(tel.clone()), ..CheckParams::default() };
        let resp = service.check_source(MP, &params).unwrap();
        assert!(resp.telemetry.is_some(), "sink attached, snapshot expected");

        let mut buf = Vec::new();
        {
            let mut w = TraceWriter::new(&mut buf);
            w.run_start(1, 1, obj(vec![("fingerprint", Json::Bool(true))])).unwrap();
            w.heartbeat(&tel.snapshot(), 1234.5, 0, 1).unwrap();
            w.file_verdict(&resp).unwrap();
            w.note("corpus pass complete").unwrap();
            w.stop(1, 1, 0).unwrap();
        }
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 5);

        let stats = read_trace(&text).unwrap();
        assert_eq!(stats.lines, 5);
        assert_eq!(stats.files, 1);
        assert_eq!(stats.passed, 1);
        assert_eq!(stats.files_with_telemetry, 1);
        assert_eq!(stats.counter(Counter::States), resp.states as u64);
        assert!(stats.phase(Phase::Explore) > 0, "explore phase attributed");
        assert_eq!(stats.events_by_kind.get("heartbeat"), Some(&1));
    }

    #[test]
    fn read_trace_rejects_schema_violations() {
        assert!(read_trace("").unwrap_err().contains("empty"));
        assert!(read_trace("not json\n").unwrap_err().contains("line 1"));
        assert!(read_trace("{\"ms\":1}\n").unwrap_err().contains("event"));
        assert!(read_trace("{\"event\":\"note\"}\n").unwrap_err().contains("ms"));
        let backwards = "{\"event\":\"note\",\"ms\":5}\n{\"event\":\"note\",\"ms\":4}\n";
        assert!(read_trace(backwards).unwrap_err().contains("backwards"));
        let bad_file = "{\"event\":\"file\",\"ms\":1,\"name\":\"x\"}\n";
        assert!(read_trace(bad_file).unwrap_err().contains("pass"));
    }

    #[test]
    fn trace_timestamps_never_regress() {
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf);
        for i in 0..20 {
            w.note(&format!("n{i}")).unwrap();
        }
        let _ = w.into_inner();
        let text = String::from_utf8(buf).unwrap();
        read_trace(&text).unwrap();
    }
}
