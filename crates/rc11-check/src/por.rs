//! Sleep-set partial-order reduction (ablation A5).
//!
//! Both exploration engines enumerate, at every configuration, one step per
//! thread per nondeterministic choice. When two threads' next steps are
//! *independent* — [`rc11_core::StepFootprint::may_conflict`] returns
//! `false` — executing them in either order reaches the same canonical
//! configuration, so the classical search expands both orders only for one
//! of them to be deduplicated a step later. Sleep sets prune the redundant
//! order before its successors are ever generated.
//!
//! ## The algorithm
//!
//! Exploration work items carry two thread masks next to the configuration:
//! the **sleep set** `Z` the item arrived with, and the **mask** `M` of
//! threads to expand. Expanding an item processes the threads of `M` in
//! ascending order; the successor reached over an edge by thread `t`
//! inherits the sleep set
//!
//! ```text
//! Z' = { u ∈ Z ∪ { t' ∈ M : t' < t } : ¬may_conflict(fp(u), fp(t)) }
//! ```
//!
//! — threads already covered from the same configuration (earlier siblings
//! in `M`, ordered asymmetrically so two siblings never sleep each other)
//! or slept on arrival, kept only while their next step is provably
//! independent of the edge taken. Footprints are per-thread summaries of
//! the *next instruction* ([`rc11_lang::machine::thread_footprint`]), so
//! one footprint vector per expanded configuration suffices, and a slept
//! thread's footprint cannot change while it sleeps (the thread does not
//! move).
//!
//! ## Sleep sets and state dedup: the wake-up rule
//!
//! Skipping an already-visited successor is only sound if it was visited
//! with a sleep set **no larger** than the one the new edge would hand it
//! (a larger stored sleep means some thread was never expanded there).
//! Each interned state therefore stores the mask of threads expansion work
//! has been queued for (`explored`, the complement-union of every arriving
//! sleep set). A duplicate hit arriving with sleep `Z'` computes
//! `missing = ¬Z' ∖ explored`; if non-empty, the threads in `missing` are
//! *woken*: `explored` grows by `missing` and a partial re-expansion item
//! `(state, missing, Z')` is queued — Godefroid's classical state-matching
//! rule, with the stored sleep set represented by its complement. Woken
//! children inherit sleeps from the arriving `Z'` only (never from
//! siblings explored by earlier visits — inheriting those would let two
//! visits sleep each other's threads symmetrically and lose states).
//!
//! With this rule, sleep sets prune **transitions only, never states**:
//! every configuration reachable in the full graph is still interned, so
//! terminal sets, deadlock sets and violation sets are bit-identical to
//! the unreduced search, and only `transitions` shrinks. The differential
//! suites (`tests/engine_agreement.rs`, `tests/corpus.rs`,
//! `rc11_check::fuzz`'s POR lane) hold both engines to exactly that.
//!
//! ## Terminal classification under pruning
//!
//! A configuration with no successors must be classified terminated or
//! deadlocked exactly once. Under pruning, "the expanded threads produced
//! nothing" does not imply "no successors exist" — the slept threads might
//! have some (a *fully slept* configuration, every outgoing edge covered
//! by a commuted sibling elsewhere). First-visit expansions that come up
//! empty therefore probe the remaining threads' successors
//! ([`has_any_successor`]) and classify the state only if the full
//! fan-out is empty; wake-up re-expansions never classify. Probe
//! successors are discarded and **not** counted as transitions — a later
//! wake-up would re-generate and re-count them, breaking the
//! `reduced ≤ full` transition invariant the differentials assert.
//!
//! The outline checker does **not** run with POR: its Owicki–Gries
//! classification quantifies over *all* incoming edges of every state
//! (interference vs inherited is an edge property), and sleep sets prune
//! exactly edges. `check_outline_with` clears the flag.

use rc11_core::StepFootprint;
use rc11_lang::cfg::CfgProgram;
use rc11_lang::machine::{
    thread_footprint, thread_successors, Config, ObjectSemantics, StepOptions,
};

/// A set of threads as a bitmask. Thread counts in this workspace are tiny
/// (the machine caps `Tid` at `u8`); 64 bits is a hard ceiling enforced at
/// mask construction.
pub(crate) type ThreadMask = u64;

/// The mask holding every thread of the program. Only the POR path calls
/// this — the unreduced search iterates threads by index — so the 64-bit
/// ceiling constrains reduced exploration only.
#[inline]
pub(crate) fn full_mask(n_threads: usize) -> ThreadMask {
    assert!(
        n_threads <= 64,
        "partial-order reduction caps programs at 64 threads \
         (explore with `por: false` for more)"
    );
    if n_threads == 64 {
        !0
    } else {
        (1u64 << n_threads) - 1
    }
}

/// Per-thread footprints of every thread's next step at `cfg` — the
/// eagerly-extracted oracle [`child_sleep`] quantifies over. The engines
/// run [`child_sleep_static`] instead (same answers, fewer extractions);
/// the pair survives as the specification the unit tests hold it to.
#[cfg(test)]
pub(crate) fn footprints(prog: &CfgProgram, cfg: &Config) -> Vec<StepFootprint> {
    (0..prog.n_threads()).map(|t| thread_footprint(prog, cfg, t)).collect()
}

/// Per-configuration footprint cache filled on demand: threads whose
/// independence the static may-conflict matrix already decides never have
/// their dynamic footprint extracted at all. One cache per expanded
/// configuration (a slept thread's footprint cannot change while it
/// sleeps, so per-thread memoisation within one configuration is sound).
pub(crate) struct LazyFootprints {
    slots: Vec<Option<StepFootprint>>,
}

impl LazyFootprints {
    pub(crate) fn new(n_threads: usize) -> LazyFootprints {
        LazyFootprints { slots: vec![None; n_threads] }
    }

    #[inline]
    fn get(&mut self, prog: &CfgProgram, cfg: &Config, t: usize) -> StepFootprint {
        *self.slots[t].get_or_insert_with(|| thread_footprint(prog, cfg, t))
    }
}

/// [`child_sleep`] with the static pre-filter in front: candidates the
/// static may-conflict matrix proves independent of *any* step of `t`
/// (`static_indep[t]`, from [`rc11_analyze::ConflictMatrix`]) are kept
/// asleep without extracting a single dynamic footprint; only the
/// remainder pays the per-pair [`rc11_core::StepFootprint::may_conflict`]
/// check. Static independence implies dynamic independence (the static
/// footprint over-approximates every step the thread can ever take), so
/// the result is bit-identical to the purely dynamic [`child_sleep`].
#[inline]
pub(crate) fn child_sleep_static(
    prog: &CfgProgram,
    cfg: &Config,
    fps: &mut LazyFootprints,
    static_indep: &[u64],
    candidates: ThreadMask,
    t: usize,
) -> ThreadMask {
    let cand = candidates & !(1u64 << t);
    let mut keep = static_indep[t] & cand;
    let mut m = cand & !keep;
    if m != 0 {
        let ft = fps.get(prog, cfg, t);
        while m != 0 {
            let u = m.trailing_zeros() as usize;
            m &= m - 1;
            if !fps.get(prog, cfg, u).may_conflict(&ft) {
                keep |= 1u64 << u;
            }
        }
    }
    keep
}

/// The terminal-classification probe shared by both engines: does any
/// thread in `mask` have a successor at `cfg`? Probe successors are
/// discarded and must **not** be counted as transitions (a later wake-up
/// of those threads would re-generate and re-count them, breaking the
/// `reduced ≤ full` invariant) — which is why this returns only a bool.
pub(crate) fn has_any_successor(
    prog: &CfgProgram,
    objs: &dyn ObjectSemantics,
    cfg: &Config,
    mask: ThreadMask,
    step: StepOptions,
) -> bool {
    let mut m = mask;
    while m != 0 {
        let t = m.trailing_zeros() as usize;
        m &= m - 1;
        if !thread_successors(prog, objs, cfg, t, step).is_empty() {
            return true;
        }
    }
    false
}

/// The sleep set a successor inherits over an edge by thread `t`:
/// `candidates` (the arriving sleep set ∪ the earlier-expanded siblings)
/// filtered to the threads whose next step is independent of `t`'s.
/// The eager-footprint specification of [`child_sleep_static`], kept for
/// the unit tests that compare the two.
#[cfg(test)]
#[inline]
pub(crate) fn child_sleep(
    fps: &[StepFootprint],
    candidates: ThreadMask,
    t: usize,
) -> ThreadMask {
    let ft = &fps[t];
    let mut keep = 0u64;
    let mut m = candidates & !(1u64 << t);
    while m != 0 {
        let u = m.trailing_zeros() as usize;
        m &= m - 1;
        if !fps[u].may_conflict(ft) {
            keep |= 1u64 << u;
        }
    }
    keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc11_core::{AccessKind, Comp, Loc, Tid};

    #[test]
    fn full_mask_shapes() {
        assert_eq!(full_mask(1), 0b1);
        assert_eq!(full_mask(3), 0b111);
        assert_eq!(full_mask(64), !0);
    }

    #[test]
    fn child_sleep_keeps_independent_candidates_only() {
        // t0 writes x, t1 writes y, t2 writes x: after t0's edge, t1 stays
        // asleep (independent), t2 wakes (same location).
        let fps = vec![
            StepFootprint::access(Tid(0), Comp::Client, Loc(0), AccessKind::Write { rel: false }),
            StepFootprint::access(Tid(1), Comp::Client, Loc(1), AccessKind::Write { rel: false }),
            StepFootprint::access(Tid(2), Comp::Client, Loc(0), AccessKind::Write { rel: false }),
        ];
        assert_eq!(child_sleep(&fps, 0b110, 0), 0b010);
        // The executing thread is never kept, even if listed.
        assert_eq!(child_sleep(&fps, 0b111, 0), 0b010);
        // Nothing to keep from an empty candidate set.
        assert_eq!(child_sleep(&fps, 0, 1), 0);
    }

    /// The statically pre-filtered sleep computation agrees bit-for-bit
    /// with the eager dynamic oracle on every reachable configuration of a
    /// mixed program (two threads on disjoint locations — statically
    /// independent — plus two racing on a shared one).
    #[test]
    fn static_prefilter_matches_dynamic_oracle() {
        use rc11_lang::builder::*;
        use rc11_lang::machine::{successors, NoObjects};
        let mut p = ProgramBuilder::new("mixed");
        let a = p.client_var("a", 0);
        let b = p.client_var("b", 0);
        let x = p.client_var("x", 0);
        p.add_thread(ThreadBuilder::new(), seq([wr(a, 1), wr(a, 2)]));
        p.add_thread(ThreadBuilder::new(), seq([wr(b, 1)]));
        p.add_thread(ThreadBuilder::new(), seq([wr(x, 1)]));
        let mut t3 = ThreadBuilder::new();
        let r = t3.reg("r");
        p.add_thread(t3, seq([rd(r, x)]));
        let prog = rc11_lang::compile(&p.build());
        let cm = rc11_analyze::conflict_matrix(&prog);
        let n = prog.n_threads();

        let mut frontier = vec![Config::initial(&prog).canonical()];
        let mut seen = vec![frontier[0].clone()];
        while let Some(cfg) = frontier.pop() {
            let eager = footprints(&prog, &cfg);
            let mut lazy = LazyFootprints::new(n);
            for t in 0..n {
                for cand in [0u64, 0b1010, 0b0111, full_mask(n)] {
                    assert_eq!(
                        child_sleep_static(&prog, &cfg, &mut lazy, cm.static_indep(), cand, t),
                        child_sleep(&eager, cand, t),
                        "thread {t}, candidates {cand:#b}"
                    );
                }
            }
            for (_, s) in successors(&prog, &NoObjects, &cfg, StepOptions::default()) {
                let c = s.canonical();
                if !seen.contains(&c) {
                    seen.push(c.clone());
                    frontier.push(c);
                }
            }
        }
        assert!(seen.len() > 4, "walked a non-trivial space");
    }
}
