//! The proof-outline checker (Section 5.2–5.3).
//!
//! Validates a [`ProofOutline`] over the *entire* reachable configuration
//! space: the invariant at every configuration, each statement's
//! precondition whenever the owning thread sits at that statement's label,
//! and the postcondition at full termination. This is the model-checking
//! counterpart of the paper's Isabelle lemmas ("the proof outline in
//! Figure 7 is valid", Lemma 4).
//!
//! Violations are classified Owicki–Gries style **per edge**: for every
//! transition `c —t→ c'` and every annotation violated at `c'`,
//!
//! * if `t` owns the annotation, its own step broke it — *local
//!   correctness* failed;
//! * if another thread moved and the annotation *held* at `c` (with the
//!   owner already sitting at the labelled point), that step interfered —
//!   *interference freedom* failed;
//! * if the annotation was already false at `c`, the violation is
//!   *inherited* (first cause reported upstream);
//! * violations of the initial configuration are *initial*.
//!
//! One violation is reported per `(annotation, configuration)` pair with
//! the strongest classification observed across incoming edges
//! (interference > local > inherited > initial).

use crate::engine::{Engine, ExploreOptions, Note, StopReason};
use crate::explore::{Probe, VisitedIndex};
use crate::fxhash::FxHashMap;
use crate::parallel::par_walk;
use parking_lot::Mutex;
use rc11_assert::{EvalCtx, Pred, ProofOutline};
use rc11_core::Tid;
use rc11_lang::cfg::CfgProgram;
use rc11_lang::machine::{successors, Config, ObjectSemantics};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Owicki–Gries classification of a violated annotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OgClass {
    /// Violated already at the initial configuration.
    Initial,
    /// Already violated before the incoming step (first cause upstream).
    Inherited,
    /// The owning thread's own step broke it (local correctness).
    Local,
    /// Another thread's step broke a holding annotation (interference
    /// freedom).
    Interference,
}

/// Which annotation was violated.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum OutlineKind {
    /// The global invariant.
    Invariant,
    /// The precondition of `(thread, label)`.
    Pre(usize, u32),
    /// The postcondition.
    Post,
}

/// One outline violation.
#[derive(Debug, Clone)]
pub struct OutlineViolation {
    /// Which annotation failed.
    pub kind: OutlineKind,
    /// Strongest OG classification observed (diagnostic).
    pub class: OgClass,
    /// A thread whose step produced the violating configuration (for the
    /// strongest classification).
    pub mover: Option<Tid>,
    /// The violating configuration.
    pub config: Config,
}

/// Result of an outline check.
#[derive(Debug, Clone, Default)]
pub struct OutlineReport {
    /// Distinct canonical configurations visited.
    pub states: usize,
    /// Transitions generated.
    pub transitions: usize,
    /// Number of assertion evaluations performed.
    pub checks: usize,
    /// Terminated terminal configurations.
    pub terminated: usize,
    /// Deadlocked terminal configurations.
    pub deadlocked: usize,
    /// All violations found (one per annotation × configuration).
    pub violations: Vec<OutlineViolation>,
    /// Why the check stopped (`Complete` = the full reachable space was
    /// classified; anything else = a sound prefix).
    pub stop: StopReason,
    /// Structured degradation/fault warnings (see
    /// [`crate::engine::EngineReport::notes`]).
    pub notes: Vec<Note>,
}

impl OutlineReport {
    /// Outline valid: explored everything, no violations.
    pub fn valid(&self) -> bool {
        self.violations.is_empty() && self.stop.is_complete()
    }

    /// True iff any budget/cap/fault cut the check short.
    pub fn truncated(&self) -> bool {
        !self.stop.is_complete()
    }
}

/// The annotation evaluator: immutable per-check data shared by both
/// engines (and across the parallel engine's workers — everything here is
/// `Sync`).
struct Annots<'a> {
    prog: &'a CfgProgram,
    outline: &'a ProofOutline,
    /// Per thread: pc → label whose region starts at that pc.
    label_starts: Vec<FxHashMap<u32, u32>>,
}

impl<'a> Annots<'a> {
    fn new(prog: &'a CfgProgram, outline: &'a ProofOutline) -> Annots<'a> {
        assert_eq!(outline.pre.len(), prog.n_threads(), "outline thread count mismatch");
        let label_starts: Vec<FxHashMap<u32, u32>> = prog
            .threads
            .iter()
            .map(|th| th.labels.iter().map(|(&k, &pc)| (pc, k)).collect())
            .collect();
        Annots { prog, outline, label_starts }
    }

    /// All annotations violated at `cfg` (`(kind, owner)` pairs) and the
    /// number of assertion evaluations performed.
    fn failures(&self, cfg: &Config) -> (Vec<(OutlineKind, Option<usize>)>, usize) {
        let ctx = EvalCtx { prog: self.prog, cfg };
        let mut out = Vec::new();
        let mut checks = 1;
        if !self.outline.invariant.eval(ctx) {
            out.push((OutlineKind::Invariant, None));
        }
        for (t, anns) in self.outline.pre.iter().enumerate() {
            if let Some(&k) = self.label_starts[t].get(&cfg.pcs[t]) {
                if let Some(p) = anns.get(&k) {
                    checks += 1;
                    if !p.eval(ctx) {
                        out.push((OutlineKind::Pre(t, k), Some(t)));
                    }
                }
            }
        }
        if cfg.terminated(self.prog) {
            checks += 1;
            if !self.outline.post.eval(ctx) {
                out.push((OutlineKind::Post, None));
            }
        }
        (out, checks)
    }

    /// Did this annotation hold at `parent` (owner already at the point)?
    fn held_at(&self, kind: &OutlineKind, parent: &Config) -> bool {
        let ctx = EvalCtx { prog: self.prog, cfg: parent };
        match kind {
            OutlineKind::Invariant => self.outline.invariant.eval(ctx),
            OutlineKind::Pre(t, k) => {
                self.label_starts[*t].get(&parent.pcs[*t]) == Some(k)
                    && self.outline.pre[*t][k].eval(ctx)
            }
            OutlineKind::Post => !parent.terminated(self.prog),
        }
    }

    /// Owicki–Gries classification of a failed annotation on the edge
    /// `parent —tid→ (violating config)`.
    fn classify(
        &self,
        kind: &OutlineKind,
        owner: Option<usize>,
        tid: Tid,
        parent: &Config,
    ) -> OgClass {
        if owner == Some(tid.idx()) {
            OgClass::Local
        } else if self.held_at(kind, parent) {
            if owner.is_none() {
                OgClass::Local // invariant/post: broken by this mover
            } else {
                OgClass::Interference
            }
        } else {
            OgClass::Inherited
        }
    }
}

/// Violation collection with per-(annotation, configuration) dedup keeping
/// the strongest classification. The parallel engine wraps this in a mutex;
/// the final content is order-independent (max over all incoming edges), so
/// both engines converge to the same (kind, config) → class map.
#[derive(Default)]
struct Recorder {
    /// Dedup: (annotation, configuration) → index into `violations`.
    seen: FxHashMap<(OutlineKind, Config), usize>,
    violations: Vec<OutlineViolation>,
}

impl Recorder {
    fn record(&mut self, kind: OutlineKind, cfg: &Config, class: OgClass, mover: Option<Tid>) {
        match self.seen.entry((kind.clone(), cfg.clone())) {
            std::collections::hash_map::Entry::Occupied(e) => {
                let v = &mut self.violations[*e.get()];
                if class > v.class {
                    v.class = class;
                    v.mover = mover;
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(self.violations.len());
                self.violations.push(OutlineViolation {
                    kind,
                    class,
                    mover,
                    config: cfg.clone(),
                });
            }
        }
    }
}

/// Check `outline` against the full reachable space of `prog` with the
/// sequential reference engine. See [`check_outline_with`] to pick the
/// engine explicitly.
pub fn check_outline(
    prog: &CfgProgram,
    objs: &dyn ObjectSemantics,
    outline: &ProofOutline,
    opts: &ExploreOptions,
) -> OutlineReport {
    seq_check_outline(prog, objs, outline, opts)
}

/// Check `outline` against the full reachable space of `prog` under the
/// given [`Engine`]. Both engines classify every edge of the reachable
/// graph and agree on states, transitions, checks, terminal counts and the
/// (kind, configuration) → strongest-class violation map; only `mover`
/// tie-breaks and violation order may differ in the parallel engine.
///
/// [`ExploreOptions::por`] is ignored (cleared) here: Owicki–Gries
/// classification is a property of *edges* — interference vs inherited
/// depends on which thread moved into the violating configuration over
/// which incoming edge — and sleep-set reduction prunes exactly edges
/// (never states). An outline checked under POR could report a weaker
/// classification or miss an interference edge entirely, so the checker
/// always explores the unreduced graph.
pub fn check_outline_with(
    prog: &CfgProgram,
    objs: &(dyn ObjectSemantics + Sync),
    outline: &ProofOutline,
    opts: &ExploreOptions,
    engine: &Engine,
) -> OutlineReport {
    let opts = ExploreOptions { por: false, symmetry: false, ..opts.clone() };
    match engine {
        Engine::Sequential => seq_check_outline(prog, objs, outline, &opts),
        Engine::Parallel { workers } => par_check_outline(prog, objs, outline, &opts, *workers),
    }
}

/// Annotation evaluation is invariant under canonical renumbering: every
/// predicate compares op ids only *within* one state (view entries against
/// `maxTS`, membership in `Obs`), never across states, and everything else
/// it reads (pcs, locals, wrvals, covered flags, method payloads) is
/// untouched by renumbering. Both outline paths rely on this to evaluate
/// annotations on **raw** successors and canonicalise only the (rare)
/// failing ones for the recorder's dedup key; this debug check guards the
/// reliance wherever a failing edge is canonicalised anyway.
fn debug_assert_failures_invariant(
    annots: &Annots<'_>,
    fails: &[(OutlineKind, Option<usize>)],
    canon: &Config,
) {
    debug_assert_eq!(
        annots.failures(canon).0,
        fails,
        "annotation evaluation must be canonicalisation-invariant"
    );
}

fn seq_check_outline(
    prog: &CfgProgram,
    objs: &dyn ObjectSemantics,
    outline: &ProofOutline,
    opts: &ExploreOptions,
) -> OutlineReport {
    let annots = Annots::new(prog, outline);
    let mut recorder = Recorder::default();
    let mut report = OutlineReport::default();
    let deadline = opts.budget.deadline.map(|d| Instant::now() + d);
    let mut mem_bytes: usize = 0;

    // The interned canonical configurations; frontier entries index it.
    // Deduplication reuses the explorer's two-mode visited index
    // (`crate::explore::VisitedIndex`) over this arena.
    let mut arena: Vec<Config> = Vec::new();
    let mut index = VisitedIndex::new(opts.fingerprint, opts.telemetry.clone());

    let init = Config::initial(prog).canonical();
    let (fails, checks) = annots.failures(&init);
    report.checks += checks;
    for (kind, _) in fails {
        recorder.record(kind, &init, OgClass::Initial, None);
    }
    mem_bytes += init.approx_bytes();
    let probe = index.probe(&init, None, |id| &arena[id as usize]);
    arena.push(index.commit(probe, &init, None, 0).0);
    let mut frontier: Vec<u32> = vec![0];

    while let Some(id) = frontier.pop() {
        // Budget and cancellation gates, between work items — identical to
        // the explorer's (`crate::explore`): any trip stops on a clean
        // boundary with a sound prefix report.
        if opts.cancel.is_cancelled() {
            report.stop.bump(StopReason::Cancelled);
            break;
        }
        if deadline.is_some_and(|dl| Instant::now() >= dl) {
            report.stop.bump(StopReason::Deadline);
            break;
        }
        if opts.budget.max_transitions.is_some_and(|cap| report.transitions >= cap) {
            report.stop.bump(StopReason::TransitionCap);
            break;
        }
        if opts.budget.max_mem_bytes.is_some_and(|cap| mem_bytes >= cap) {
            report.stop.bump(StopReason::MemBudget);
            break;
        }
        let cfg = arena[id as usize].clone();
        let succs = successors(prog, objs, &cfg, opts.step);
        report.transitions += succs.len();
        if succs.is_empty() {
            if cfg.terminated(prog) {
                report.terminated += 1;
            } else {
                report.deadlocked += 1;
            }
            continue;
        }
        for (tid, succ) in succs {
            // Classify per edge, visited or not — on the raw successor
            // (evaluation is canonicalisation-invariant, see
            // `debug_assert_failures_invariant`).
            let (fails, checks) = annots.failures(&succ);
            report.checks += checks;
            let probe = match index.probe(&succ, None, |id| &arena[id as usize]) {
                Probe::Dup(..) => {
                    if !fails.is_empty() {
                        // Rare: a failing duplicate edge still needs the
                        // canonical form as the recorder's dedup key.
                        let canon = succ.canonical();
                        debug_assert_failures_invariant(&annots, &fails, &canon);
                        for (kind, owner) in fails {
                            let class = annots.classify(&kind, owner, tid, &cfg);
                            recorder.record(kind, &canon, class, Some(tid));
                        }
                    }
                    continue;
                }
                novel => novel,
            };
            if arena.len() >= opts.max_states {
                report.stop.bump(StopReason::StateCap);
                if !fails.is_empty() {
                    let canon = succ.canonical();
                    debug_assert_failures_invariant(&annots, &fails, &canon);
                    for (kind, owner) in fails {
                        let class = annots.classify(&kind, owner, tid, &cfg);
                        recorder.record(kind, &canon, class, Some(tid));
                    }
                }
                continue;
            }
            let new_id = arena.len() as u32;
            arena.push(index.commit(probe, &succ, None, new_id).0);
            mem_bytes += arena[new_id as usize].approx_bytes();
            if !fails.is_empty() {
                let canon = &arena[new_id as usize];
                debug_assert_failures_invariant(&annots, &fails, canon);
                for (kind, owner) in fails {
                    let class = annots.classify(&kind, owner, tid, &cfg);
                    recorder.record(kind, canon, class, Some(tid));
                }
            }
            frontier.push(new_id);
        }
    }
    // A cancellation that raced the final items must still be reported: a
    // cancelled check never claims `Complete`.
    if opts.cancel.is_cancelled() {
        report.stop.bump(StopReason::Cancelled);
    }
    report.states = arena.len();
    report.violations = recorder.violations;
    report
}

/// The parallel outline checker: the shared batched work-stealing walk of
/// [`crate::parallel`] (`par_walk`), with every generated edge classified
/// Owicki–Gries style. Annotation evaluation (the expensive part) happens
/// outside any lock; only violation recording serialises through a mutex.
fn par_check_outline(
    prog: &CfgProgram,
    objs: &(dyn ObjectSemantics + Sync),
    outline: &ProofOutline,
    opts: &ExploreOptions,
    n_workers: usize,
) -> OutlineReport {
    let annots = Annots::new(prog, outline);
    let recorder: Mutex<Recorder> = Mutex::new(Recorder::default());
    let checks = AtomicUsize::new(0);

    // The walk's `on_novel` fires for the initial configuration too, but
    // initial failures are classified `Initial` (no incoming edge), which
    // only the initial configuration gets — so handle it here and let
    // `on_edge` cover everything else.
    let init = Config::initial(prog).canonical();
    let (fails, n) = annots.failures(&init);
    checks.fetch_add(n, Ordering::Relaxed);
    for (kind, _) in fails {
        recorder.lock().record(kind, &init, OgClass::Initial, None);
    }

    let (_visited, stats) = par_walk(
        prog,
        objs,
        opts,
        n_workers,
        (),
        |_, _| (),
        |parent: &Config, tid, succ: &Config| {
            // Classify per edge, visited or not — on the raw successor
            // (evaluation is canonicalisation-invariant, see
            // `debug_assert_failures_invariant`), so clean edges — the
            // overwhelmingly common case — never materialise a canonical
            // form here. Only failing edges canonicalise, because the
            // recorder dedups on canonical identity.
            let (fails, n) = annots.failures(succ);
            checks.fetch_add(n, Ordering::Relaxed);
            if !fails.is_empty() {
                let canon = succ.canonical();
                debug_assert_failures_invariant(&annots, &fails, &canon);
                let mut rec = recorder.lock();
                for (kind, owner) in fails {
                    let class = annots.classify(&kind, owner, tid, parent);
                    rec.record(kind, &canon, class, Some(tid));
                }
            }
        },
        |_, _| {},
    );

    OutlineReport {
        states: stats.states,
        transitions: stats.transitions,
        checks: checks.into_inner(),
        terminated: stats.terminated.len(),
        deadlocked: stats.deadlocked.len(),
        violations: recorder.into_inner().violations,
        stop: stats.stop,
        notes: stats.notes,
    }
}

/// Convenience: check a single predicate as an invariant, returning outline
/// machinery reports.
pub fn check_global_invariant(
    prog: &CfgProgram,
    objs: &dyn ObjectSemantics,
    pred: Pred,
    opts: &ExploreOptions,
) -> OutlineReport {
    let outline = ProofOutline::new("invariant", prog.n_threads()).invariant(pred);
    check_outline(prog, objs, &outline, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc11_assert::dsl::*;
    use rc11_lang::builder::*;
    use rc11_lang::compile;
    use rc11_lang::machine::NoObjects;

    /// A two-statement proof outline over sequential code, in the style of
    /// Figure 3's thread 1.
    #[test]
    fn valid_outline_passes() {
        let mut p = ProgramBuilder::new("seq");
        let d = p.client_var("d", 0);
        let tb = ThreadBuilder::new();
        p.add_thread(tb, seq([lab(1, wr(d, 5)), lab(2, wr(d, 7))]));
        let prog = compile(&p.build());
        let outline = ProofOutline::new("seq", 1)
            .pre(0, 1, dobs(0, d, 0))
            .pre(0, 2, dobs(0, d, 5))
            .post(dobs(0, d, 7));
        let report = check_outline(&prog, &NoObjects, &outline, &ExploreOptions::default());
        assert!(report.valid(), "violations: {:?}", report.violations);
        assert_eq!(report.terminated, 1);
    }

    #[test]
    fn local_correctness_failure_is_classified() {
        let mut p = ProgramBuilder::new("seq");
        let d = p.client_var("d", 0);
        let tb = ThreadBuilder::new();
        p.add_thread(tb, seq([lab(1, wr(d, 5)), lab(2, wr(d, 7))]));
        let prog = compile(&p.build());
        // Wrong: claims d = 9 before statement 2.
        let outline = ProofOutline::new("seq", 1).pre(0, 2, dobs(0, d, 9));
        let report = check_outline(&prog, &NoObjects, &outline, &ExploreOptions::default());
        assert!(!report.valid());
        assert!(matches!(report.violations[0].kind, OutlineKind::Pre(0, 2)));
        assert_eq!(report.violations[0].class, OgClass::Local);
    }

    #[test]
    fn interference_failure_is_classified() {
        let mut p = ProgramBuilder::new("interf");
        let d = p.client_var("d", 0);
        let tb = ThreadBuilder::new();
        p.add_thread(tb, seq([lab(1, wr(d, 1)), lab(2, wr(d, 2))]));
        let tb2 = ThreadBuilder::new();
        p.add_thread(tb2, seq([lab(3, wr(d, 9))]));
        let prog = compile(&p.build());
        // Thread 1's statement-2 precondition ignores thread 2's write: the
        // claim "9 is not observable" is interfered with.
        let outline = ProofOutline::new("interf", 2).pre(0, 2, pnot(pobs(0, d, 9)));
        let report = check_outline(&prog, &NoObjects, &outline, &ExploreOptions::default());
        assert!(!report.valid());
        assert!(
            report.violations.iter().any(|v| v.class == OgClass::Interference),
            "thread 2's write into thread 1's annotation point must be flagged as interference, got {:?}",
            report.violations.iter().map(|v| v.class).collect::<Vec<_>>()
        );
    }

    #[test]
    fn initial_failure_is_classified() {
        let mut p = ProgramBuilder::new("init");
        let d = p.client_var("d", 0);
        let tb = ThreadBuilder::new();
        p.add_thread(tb, seq([lab(1, wr(d, 1))]));
        let prog = compile(&p.build());
        let outline = ProofOutline::new("init", 1).pre(0, 1, dobs(0, d, 42));
        let report = check_outline(&prog, &NoObjects, &outline, &ExploreOptions::default());
        assert_eq!(report.violations[0].class, OgClass::Initial);
    }

    #[test]
    fn postcondition_checked_at_termination_only() {
        let mut p = ProgramBuilder::new("post");
        let d = p.client_var("d", 0);
        let tb = ThreadBuilder::new();
        p.add_thread(tb, seq([wr(d, 5)]));
        let prog = compile(&p.build());
        let ok = check_outline(
            &prog,
            &NoObjects,
            &ProofOutline::new("p", 1).post(dobs(0, d, 5)),
            &ExploreOptions::default(),
        );
        assert!(ok.valid());
        let bad = check_outline(
            &prog,
            &NoObjects,
            &ProofOutline::new("p", 1).post(dobs(0, d, 0)),
            &ExploreOptions::default(),
        );
        assert!(matches!(bad.violations[0].kind, OutlineKind::Post));
    }

    #[test]
    fn inherited_violations_do_not_mask_first_cause() {
        let mut p = ProgramBuilder::new("chain");
        let d = p.client_var("d", 0);
        let tb = ThreadBuilder::new();
        // Label 1 covers two statements; the annotation goes false at the
        // first write and stays false through the second.
        p.add_thread(tb, seq([lab(1, seq([wr(d, 1), wr(d, 2)]))]));
        let tb2 = ThreadBuilder::new();
        p.add_thread(tb2, seq([wr(d, 5)]));
        let prog = compile(&p.build());
        let outline = ProofOutline::new("chain", 2)
            .invariant(pnot(pobs(1, d, 2)));
        let report = check_outline(&prog, &NoObjects, &outline, &ExploreOptions::default());
        assert!(!report.valid());
        // The strongest classification anywhere should be Local (thread 1's
        // own second write), with downstream configs possibly Inherited.
        assert!(report.violations.iter().any(|v| v.class >= OgClass::Local));
    }
}
