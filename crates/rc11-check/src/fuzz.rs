//! The generative differential-fuzz harness.
//!
//! For each generated program ([`crate::gen`]) the harness decides the same
//! reachability question many ways and requires every answer to agree with
//! the sequential, materialised-canonical-dedup oracle:
//!
//! * sequential with fingerprint dedup on (ablation A4's fast path);
//! * the parallel engine at each configured worker count, fingerprint on
//!   *and* off;
//! * the `.litmus` printer/parser round-trip: printing the program as text
//!   and re-parsing it must preserve the outcome set (pinning the text
//!   front-end to the builder);
//! * the partial-order-reduction lane ([`DiffOptions::por`]): sleep-set
//!   pruning must preserve states, terminal/deadlock counts and the
//!   outcome set while generating no more transitions, under both engines
//!   and both dedup modes;
//! * the thread-symmetry lane ([`DiffOptions::symmetry`]): symmetry
//!   reduction may only shrink state/transition counts and must preserve
//!   the terminal/deadlock counts and the outcome set exactly, under both
//!   engines, both dedup modes, and composed with POR (the generator's
//!   thread-cloning mode makes programs with real symmetry to reduce);
//! * the persistent-set DPOR lane ([`DiffOptions::dpor`]): persistent
//!   sets may shed both states and transitions (unlike sleep sets, which
//!   preserve states), so the lane holds DPOR to the A7 contract — state
//!   and transition counts bounded above by the unreduced oracle,
//!   terminal/deadlock counts and the outcome set preserved exactly —
//!   under both engines, both dedup modes, and composed with symmetry;
//! * the request-path/cache parity lane ([`DiffOptions::request`]): the
//!   shared [`crate::request::CheckService`] pipeline must reproduce the
//!   oracle's report field-for-field on a cold check, and a warm
//!   re-check of the same program must be a cache hit with equal fields;
//! * sampler soundness: every [`crate::random::random_walk`] terminal
//!   outcome must lie inside the exhaustive outcome set (a sample outside
//!   it would be a transition the exhaustive engines missed, or a walk
//!   through a transition that should not exist).
//!
//! Any disagreement is shrunk ([`crate::gen::shrink`]) to a minimal failing
//! program and reported with its `.litmus` source, so the repro drops
//! straight into `corpus/` and `rc11 run`.

use crate::cache::VerdictCache;
use crate::chaos::{ChaosState, FaultPlan};
use crate::checkpoint::CheckpointOpts;
use crate::engine::{Engine, EngineReport, ExploreOptions};
use crate::gen::{generate, shrink, GProg, GenOptions};
use crate::random::sample_terminals;
use crate::request::{CheckParams, CheckService, Served};
use rc11_core::Val;
use rc11_lang::compile;
use rc11_lang::machine::NoObjects;
use std::collections::BTreeSet;

/// Differential-check configuration.
#[derive(Debug, Clone)]
pub struct DiffOptions {
    /// Parallel worker counts to cross-check (each runs fingerprint on and
    /// off).
    pub workers: Vec<usize>,
    /// State cap per exploration; a generated program that exceeds it is
    /// skipped (counted, not failed).
    pub max_states: usize,
    /// Random walks per program for the sampler-soundness check (0
    /// disables).
    pub samples: usize,
    /// Step budget per walk.
    pub sample_steps: usize,
    /// Also round-trip each program through the `.litmus` printer/parser
    /// and require outcome-set equality.
    pub round_trip: bool,
    /// Add the partial-order-reduction parity lane: re-explore the program
    /// with [`ExploreOptions::por`] on — sequentially in both dedup modes
    /// and in parallel at every configured worker count — and require the
    /// state count, terminal/deadlock counts and outcome set to match the
    /// unreduced oracle exactly, with no more transitions generated.
    /// Default off (mirroring `ExploreOptions::por`); the fixed-seed
    /// `cargo test` lane, the `#[ignore]`d sweep and `rc11 fuzz --por`
    /// turn it on.
    pub por: bool,
    /// Add the thread-symmetry parity lane: re-explore with
    /// [`ExploreOptions::symmetry`] on — sequentially in both dedup modes,
    /// in parallel at every configured worker count, and once more with
    /// POR stacked on top — and require the terminal/deadlock counts and
    /// the outcome set to match the unreduced oracle exactly, with no more
    /// states or transitions than it. Default off (mirroring
    /// `ExploreOptions::symmetry`); the fixed-seed `cargo test` lane, the
    /// `#[ignore]`d sweep and `rc11 fuzz --symmetry` turn it on. Pairs
    /// with [`crate::gen::GenOptions::clone_threads`], which makes
    /// generated programs actually have symmetric threads to reduce.
    pub symmetry: bool,
    /// Add the persistent-set DPOR parity lane: re-explore with
    /// [`ExploreOptions::dpor`] on — sequentially in both dedup modes, in
    /// parallel at every configured worker count, and once more composed
    /// with symmetry — and require the terminal/deadlock counts and the
    /// outcome set to match the unreduced oracle exactly, with no more
    /// states or transitions than it (persistent sets skip whole threads,
    /// so unlike the sleep-set lane the *state* count may legitimately
    /// shrink). Default off (mirroring [`ExploreOptions::dpor`]); the
    /// fixed-seed `cargo test` lane, the `#[ignore]`d sweep and
    /// `rc11 fuzz --dpor` turn it on.
    pub dpor: bool,
    /// Add the chaos-resilience lane: re-run each program under seeded
    /// fault schedules ([`crate::chaos::FaultPlan::from_seed`]) — worker
    /// panics and stalls in the parallel engine, checkpoint-write failures
    /// in the sequential checkpointer — and require every faulted report
    /// to be either equal to the unfaulted oracle's (counts, terminal/
    /// deadlock tallies and outcome set) or explicitly non-`Complete` with
    /// results that stay a sound lower bound. Never silently wrong.
    /// Default off; the fixed-seed `cargo test` lane and `rc11 fuzz
    /// --chaos` turn it on.
    pub chaos: bool,
    /// Add the request-path/cache parity lane: run the program once
    /// through a fresh [`crate::request::CheckService`] (the shared
    /// parse → canonicalise → fingerprint → cache-probe → explore
    /// pipeline behind `rc11 run` and the daemon) and require the cold
    /// response to match the oracle field-for-field, then re-check the
    /// identical program and require a memory-cache hit whose fields are
    /// equal to the cold run's. Default on — the lane costs one extra
    /// sequential exploration.
    pub request: bool,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            workers: vec![2, 4],
            max_states: 1 << 18,
            samples: 24,
            sample_steps: 4096,
            round_trip: true,
            por: false,
            symmetry: false,
            dpor: false,
            chaos: false,
            request: true,
        }
    }
}

/// The verdict for one generated program.
#[derive(Debug, Clone)]
pub enum DiffVerdict {
    /// All engines, modes, the round-trip and the sampler agreed.
    Pass {
        /// Distinct states the oracle explored.
        states: usize,
        /// Distinct terminal outcome tuples.
        outcomes: usize,
    },
    /// The oracle hit the state cap; nothing was compared.
    Skipped,
    /// Some check disagreed with the oracle.
    Fail(String),
}

/// The exact terminal outcome set: the observation tuple (all data
/// registers of all threads) of every terminated configuration.
fn outcome_set(g: &GProg, report: &EngineReport) -> BTreeSet<Vec<Val>> {
    let obs = g.observe();
    report
        .terminated
        .iter()
        .map(|c| obs.iter().map(|&(t, r)| c.reg(t, r)).collect())
        .collect()
}

fn compare(
    what: &str,
    g: &GProg,
    oracle: &EngineReport,
    oracle_outcomes: &BTreeSet<Vec<Val>>,
    got: &EngineReport,
) -> Result<(), String> {
    if got.stop != oracle.stop {
        return Err(format!("{what}: stop {} vs oracle {}", got.stop, oracle.stop));
    }
    if got.states != oracle.states {
        return Err(format!("{what}: states {} vs oracle {}", got.states, oracle.states));
    }
    if got.transitions != oracle.transitions {
        return Err(format!(
            "{what}: transitions {} vs oracle {}",
            got.transitions, oracle.transitions
        ));
    }
    if got.terminated.len() != oracle.terminated.len() {
        return Err(format!(
            "{what}: terminal configurations {} vs oracle {}",
            got.terminated.len(),
            oracle.terminated.len()
        ));
    }
    if got.deadlocked.len() != oracle.deadlocked.len() {
        return Err(format!(
            "{what}: deadlocked configurations {} vs oracle {}",
            got.deadlocked.len(),
            oracle.deadlocked.len()
        ));
    }
    let got_outcomes = outcome_set(g, got);
    if &got_outcomes != oracle_outcomes {
        let missing: Vec<_> = oracle_outcomes.difference(&got_outcomes).collect();
        let extra: Vec<_> = got_outcomes.difference(oracle_outcomes).collect();
        return Err(format!(
            "{what}: outcome sets diverge (missing {missing:?}, extra {extra:?})"
        ));
    }
    Ok(())
}

/// The POR-lane comparison: sleep-set reduction prunes transitions only,
/// so everything except the transition count must match the unreduced
/// oracle exactly, and the transition count must not grow.
fn compare_por(
    what: &str,
    g: &GProg,
    oracle: &EngineReport,
    oracle_outcomes: &BTreeSet<Vec<Val>>,
    got: &EngineReport,
) -> Result<(), String> {
    if got.stop != oracle.stop {
        return Err(format!("{what}: stop {} vs oracle {}", got.stop, oracle.stop));
    }
    if got.states != oracle.states {
        return Err(format!("{what}: POR lost states ({} vs oracle {})", got.states, oracle.states));
    }
    if got.transitions > oracle.transitions {
        return Err(format!(
            "{what}: POR generated more transitions ({} vs oracle {})",
            got.transitions, oracle.transitions
        ));
    }
    if got.terminated.len() != oracle.terminated.len() {
        return Err(format!(
            "{what}: terminal configurations {} vs oracle {}",
            got.terminated.len(),
            oracle.terminated.len()
        ));
    }
    if got.deadlocked.len() != oracle.deadlocked.len() {
        return Err(format!(
            "{what}: deadlocked configurations {} vs oracle {}",
            got.deadlocked.len(),
            oracle.deadlocked.len()
        ));
    }
    let got_outcomes = outcome_set(g, got);
    if &got_outcomes != oracle_outcomes {
        let missing: Vec<_> = oracle_outcomes.difference(&got_outcomes).collect();
        let extra: Vec<_> = got_outcomes.difference(oracle_outcomes).collect();
        return Err(format!(
            "{what}: POR outcome sets diverge (missing {missing:?}, extra {extra:?})"
        ));
    }
    Ok(())
}

/// The symmetry-lane comparison: symmetry reduction identifies states (up
/// to the orbit size) and with them the transitions out of the identified
/// copies, so both counts may only shrink — while the terminal/deadlock
/// sets are orbit-expanded back out and the outcome set must match the
/// unreduced oracle exactly.
fn compare_sym(
    what: &str,
    g: &GProg,
    oracle: &EngineReport,
    oracle_outcomes: &BTreeSet<Vec<Val>>,
    got: &EngineReport,
) -> Result<(), String> {
    if got.stop != oracle.stop {
        return Err(format!("{what}: stop {} vs oracle {}", got.stop, oracle.stop));
    }
    if got.states > oracle.states {
        return Err(format!(
            "{what}: symmetry grew the state count ({} vs oracle {})",
            got.states, oracle.states
        ));
    }
    if got.transitions > oracle.transitions {
        return Err(format!(
            "{what}: symmetry generated more transitions ({} vs oracle {})",
            got.transitions, oracle.transitions
        ));
    }
    if got.terminated.len() != oracle.terminated.len() {
        return Err(format!(
            "{what}: terminal configurations {} vs oracle {} (orbit expansion broken?)",
            got.terminated.len(),
            oracle.terminated.len()
        ));
    }
    if got.deadlocked.len() != oracle.deadlocked.len() {
        return Err(format!(
            "{what}: deadlocked configurations {} vs oracle {}",
            got.deadlocked.len(),
            oracle.deadlocked.len()
        ));
    }
    let got_outcomes = outcome_set(g, got);
    if &got_outcomes != oracle_outcomes {
        let missing: Vec<_> = oracle_outcomes.difference(&got_outcomes).collect();
        let extra: Vec<_> = got_outcomes.difference(oracle_outcomes).collect();
        return Err(format!(
            "{what}: symmetry outcome sets diverge (missing {missing:?}, extra {extra:?})"
        ));
    }
    Ok(())
}

/// The DPOR-lane comparison: persistent sets postpone whole threads, so
/// both the state and transition counts may shrink (reduced states are
/// genuinely never visited, unlike the sleep-set lane where every state
/// survives) — while terminal/deadlock counts and the outcome set must
/// match the unreduced oracle exactly.
fn compare_dpor(
    what: &str,
    g: &GProg,
    oracle: &EngineReport,
    oracle_outcomes: &BTreeSet<Vec<Val>>,
    got: &EngineReport,
) -> Result<(), String> {
    if got.stop != oracle.stop {
        return Err(format!("{what}: stop {} vs oracle {}", got.stop, oracle.stop));
    }
    if got.states > oracle.states {
        return Err(format!(
            "{what}: DPOR grew the state count ({} vs oracle {})",
            got.states, oracle.states
        ));
    }
    if got.transitions > oracle.transitions {
        return Err(format!(
            "{what}: DPOR generated more transitions ({} vs oracle {})",
            got.transitions, oracle.transitions
        ));
    }
    if got.terminated.len() != oracle.terminated.len() {
        return Err(format!(
            "{what}: terminal configurations {} vs oracle {} (a persistent set \
             postponed a thread it should not have)",
            got.terminated.len(),
            oracle.terminated.len()
        ));
    }
    if got.deadlocked.len() != oracle.deadlocked.len() {
        return Err(format!(
            "{what}: deadlocked configurations {} vs oracle {}",
            got.deadlocked.len(),
            oracle.deadlocked.len()
        ));
    }
    let got_outcomes = outcome_set(g, got);
    if &got_outcomes != oracle_outcomes {
        let missing: Vec<_> = oracle_outcomes.difference(&got_outcomes).collect();
        let extra: Vec<_> = got_outcomes.difference(oracle_outcomes).collect();
        return Err(format!(
            "{what}: DPOR outcome sets diverge (missing {missing:?}, extra {extra:?})"
        ));
    }
    Ok(())
}

/// Run every differential check on one generated program.
pub fn diff_one(g: &GProg, seed: u64, opts: &DiffOptions) -> DiffVerdict {
    let prog = compile(&g.to_program("fuzz"));
    let base = ExploreOptions {
        record_traces: false,
        max_states: opts.max_states,
        ..Default::default()
    };
    let exact = ExploreOptions { fingerprint: false, ..base.clone() };
    let fp = ExploreOptions { fingerprint: true, ..base };

    // The oracle: sequential, materialised-canonical dedup.
    let oracle = Engine::Sequential.explore(&prog, &NoObjects, &exact);
    if oracle.truncated() {
        return DiffVerdict::Skipped;
    }
    let oracle_outcomes = outcome_set(g, &oracle);

    match (|| -> Result<(), String> {
        // Fingerprint on/off parity, sequentially.
        let seq_fp = Engine::Sequential.explore(&prog, &NoObjects, &fp);
        compare("sequential fingerprint", g, &oracle, &oracle_outcomes, &seq_fp)?;

        // Sequential vs parallel, in both dedup modes.
        for &w in &opts.workers {
            for (mode, o) in [("fp", &fp), ("exact", &exact)] {
                let par = Engine::Parallel { workers: w }.explore(&prog, &NoObjects, o);
                compare(
                    &format!("parallel[{w} workers, {mode}]"),
                    g,
                    &oracle,
                    &oracle_outcomes,
                    &par,
                )?;
            }
        }

        // Printer/parser round-trip preserves the outcome set. The printed
        // form initialises registers with explicit assignments (the text
        // syntax has no register declarations), which interleaves as one
        // extra local stage per thread — the reparsed state space is a
        // small constant factor larger than the oracle's, so it gets
        // head-room on the cap; only the outcome sets are compared.
        if opts.round_trip {
            let src = g.to_litmus_source("fuzz-rt", "", &oracle_outcomes);
            let parsed = rc11_lang::parse::parse_litmus(&src)
                .map_err(|e| format!("round-trip: printed source fails to parse: {e}"))?;
            let rt_prog = compile(&parsed.prog);
            let rt_opts =
                ExploreOptions { max_states: opts.max_states.saturating_mul(16), ..exact.clone() };
            let rt = Engine::Sequential.explore(&rt_prog, &NoObjects, &rt_opts);
            if rt.truncated() {
                return Err("round-trip: reparsed program truncated".into());
            }
            let rt_outcomes: BTreeSet<Vec<Val>> = rt
                .terminated
                .iter()
                .map(|c| parsed.observe.iter().map(|&(t, r)| c.reg(t, r)).collect())
                .collect();
            if rt_outcomes != oracle_outcomes {
                return Err(format!(
                    "round-trip: outcome sets diverge (builder {} vs reparsed {})",
                    oracle_outcomes.len(),
                    rt_outcomes.len()
                ));
            }
        }

        // POR parity: sleep-set reduction must preserve the whole report
        // shape except the transition count — sequentially in both dedup
        // modes and in parallel at every worker count.
        if opts.por {
            for (mode, o) in [("fp", &fp), ("exact", &exact)] {
                let por_opts = ExploreOptions { por: true, ..o.clone() };
                let seq = Engine::Sequential.explore(&prog, &NoObjects, &por_opts);
                compare_por(
                    &format!("por[seq, {mode}]"),
                    g,
                    &oracle,
                    &oracle_outcomes,
                    &seq,
                )?;
            }
            let por_fp = ExploreOptions { por: true, ..fp.clone() };
            for &w in &opts.workers {
                let par = Engine::Parallel { workers: w }.explore(&prog, &NoObjects, &por_fp);
                compare_por(
                    &format!("por[{w} workers, fp]"),
                    g,
                    &oracle,
                    &oracle_outcomes,
                    &par,
                )?;
            }
        }

        // Symmetry parity: thread-symmetry reduction may only shrink the
        // state/transition counts while reproducing the exact terminal,
        // deadlock and outcome picture — sequentially in both dedup modes,
        // in parallel at every worker count, and composed with POR.
        if opts.symmetry {
            for (mode, o) in [("fp", &fp), ("exact", &exact)] {
                let sym_opts = ExploreOptions { symmetry: true, ..o.clone() };
                let seq = Engine::Sequential.explore(&prog, &NoObjects, &sym_opts);
                compare_sym(&format!("sym[seq, {mode}]"), g, &oracle, &oracle_outcomes, &seq)?;
            }
            let sym_por = ExploreOptions { symmetry: true, por: true, ..fp.clone() };
            let seq = Engine::Sequential.explore(&prog, &NoObjects, &sym_por);
            compare_sym("sym+por[seq, fp]", g, &oracle, &oracle_outcomes, &seq)?;
            let sym_fp = ExploreOptions { symmetry: true, ..fp.clone() };
            for &w in &opts.workers {
                let par = Engine::Parallel { workers: w }.explore(&prog, &NoObjects, &sym_fp);
                compare_sym(&format!("sym[{w} workers, fp]"), g, &oracle, &oracle_outcomes, &par)?;
                let par = Engine::Parallel { workers: w }.explore(&prog, &NoObjects, &sym_por);
                compare_sym(
                    &format!("sym+por[{w} workers, fp]"),
                    g,
                    &oracle,
                    &oracle_outcomes,
                    &par,
                )?;
            }
        }

        // DPOR parity: persistent-set reduction may shed states and
        // transitions but must reproduce the exact terminal, deadlock and
        // outcome picture — sequentially in both dedup modes, in parallel
        // at every worker count, and composed with symmetry.
        if opts.dpor {
            for (mode, o) in [("fp", &fp), ("exact", &exact)] {
                let dpor_opts = ExploreOptions { dpor: true, ..o.clone() };
                let seq = Engine::Sequential.explore(&prog, &NoObjects, &dpor_opts);
                compare_dpor(&format!("dpor[seq, {mode}]"), g, &oracle, &oracle_outcomes, &seq)?;
            }
            let dpor_sym = ExploreOptions { dpor: true, symmetry: true, ..fp.clone() };
            let seq = Engine::Sequential.explore(&prog, &NoObjects, &dpor_sym);
            compare_dpor("dpor+sym[seq, fp]", g, &oracle, &oracle_outcomes, &seq)?;
            let dpor_fp = ExploreOptions { dpor: true, ..fp.clone() };
            for &w in &opts.workers {
                let par = Engine::Parallel { workers: w }.explore(&prog, &NoObjects, &dpor_fp);
                compare_dpor(
                    &format!("dpor[{w} workers, fp]"),
                    g,
                    &oracle,
                    &oracle_outcomes,
                    &par,
                )?;
                let par = Engine::Parallel { workers: w }.explore(&prog, &NoObjects, &dpor_sym);
                compare_dpor(
                    &format!("dpor+sym[{w} workers, fp]"),
                    g,
                    &oracle,
                    &oracle_outcomes,
                    &par,
                )?;
            }
        }

        // Chaos resilience: under any seeded fault schedule the report is
        // either equal to the unfaulted oracle's or explicitly
        // non-`Complete` with sound (lower-bound) results — never silently
        // wrong. Fault plans derive from the per-program seed, so every
        // failure replays.
        if opts.chaos {
            let w = opts.workers.first().copied().unwrap_or(2).max(2);
            for salt in [0u64, 0xDEAD_BEEF] {
                let fault_seed = seed ^ salt;
                let plan = FaultPlan::from_seed(fault_seed);
                // Parallel engine: worker panics and injector stalls.
                let chaos_opts =
                    ExploreOptions { chaos: Some(ChaosState::new(plan)), ..fp.clone() };
                let got =
                    Engine::Parallel { workers: w }.explore(&prog, &NoObjects, &chaos_opts);
                let what = format!("chaos[par, seed {fault_seed:#x}, plan {plan:?}]");
                if got.stop.is_complete() {
                    // The faults never fired (or were harmless stalls):
                    // the report must match the oracle like any other
                    // parallel run (the oracle is `Complete` here — a
                    // truncated oracle bailed out above).
                    compare(&what, g, &oracle, &oracle_outcomes, &got)?;
                } else {
                    // Explicitly degraded: still a sound lower bound.
                    if got.states > oracle.states
                        || got.terminated.len() > oracle.terminated.len()
                        || got.deadlocked.len() > oracle.deadlocked.len()
                    {
                        return Err(format!(
                            "{what}: degraded run overcounts (states {} vs {}, terminals \
                             {} vs {}, deadlocks {} vs {})",
                            got.states,
                            oracle.states,
                            got.terminated.len(),
                            oracle.terminated.len(),
                            got.deadlocked.len(),
                            oracle.deadlocked.len()
                        ));
                    }
                    let got_outcomes = outcome_set(g, &got);
                    if !got_outcomes.is_subset(&oracle_outcomes) {
                        let extra: Vec<_> =
                            got_outcomes.difference(&oracle_outcomes).collect();
                        return Err(format!(
                            "{what}: degraded run invented outcomes {extra:?}"
                        ));
                    }
                }
                // Sequential engine with checkpointing: an injected
                // checkpoint-write failure must never corrupt the run —
                // the report stays bit-identical to the oracle's, modulo
                // the CheckpointError note.
                let dir = std::env::temp_dir().join(format!(
                    "rc11-chaos-{}-{fault_seed:x}",
                    std::process::id()
                ));
                // Scale the cadence so each run writes a handful of
                // checkpoints (every save rewrites the whole O(n) log —
                // a fixed small cadence would be quadratic I/O on big
                // programs) while still reaching the injected Kth-write
                // failure.
                let every = (oracle.states / 3).max(1);
                let ck_opts = ExploreOptions {
                    chaos: Some(ChaosState::new(FaultPlan {
                        checkpoint_fail_at: Some(1 + fault_seed % 3),
                        ..FaultPlan::none()
                    })),
                    checkpoint: Some(CheckpointOpts { dir: dir.clone(), every }),
                    ..exact.clone()
                };
                let seq = Engine::Sequential.explore(&prog, &NoObjects, &ck_opts);
                let _ = std::fs::remove_dir_all(&dir);
                if !seq.same_results(&oracle) {
                    return Err(format!(
                        "chaos[seq-ckpt, seed {fault_seed:#x}]: a failed checkpoint write \
                         changed the report (states {} vs {}, stop {} vs {})",
                        seq.states, oracle.states, seq.stop, oracle.stop
                    ));
                }
            }
        }

        // Request-path/cache parity: the shared CheckService pipeline
        // (behind `rc11 run` and the daemon) must reproduce the oracle
        // field-for-field on a cold check, and a warm re-check of the
        // identical program must be a memory-cache hit with equal fields.
        if opts.request {
            let program = g.to_program("fuzz");
            let observe = g.observe();
            let service = CheckService::with_cache(VerdictCache::new(4));
            let params = CheckParams {
                max_states: opts.max_states,
                fingerprint: false,
                ..CheckParams::default()
            };
            let cold =
                service.check_parts("fuzz", &program, &observe, &oracle_outcomes, &params);
            if cold.served != Served::Explored {
                return Err(format!("request: cold check served {:?}", cold.served));
            }
            if cold.stop != oracle.stop {
                return Err(format!("request: stop {} vs oracle {}", cold.stop, oracle.stop));
            }
            if cold.states != oracle.states || cold.transitions != oracle.transitions {
                return Err(format!(
                    "request: counts {}/{} vs oracle {}/{}",
                    cold.states, cold.transitions, oracle.states, oracle.transitions
                ));
            }
            if cold.observed != oracle_outcomes {
                return Err("request: observed set diverges from the oracle".into());
            }
            if cold.deadlocks != oracle.deadlocked.len() {
                return Err(format!(
                    "request: deadlocks {} vs oracle {}",
                    cold.deadlocks,
                    oracle.deadlocked.len()
                ));
            }
            if cold.pass != oracle.deadlocked.is_empty() {
                return Err(format!(
                    "request: pass {} disagrees with expected-set construction",
                    cold.pass
                ));
            }
            let warm =
                service.check_parts("fuzz", &program, &observe, &oracle_outcomes, &params);
            if warm.served != Served::MemCache {
                return Err(format!("request: warm check served {:?}, not the cache", warm.served));
            }
            if warm.fingerprint != cold.fingerprint
                || warm.pass != cold.pass
                || warm.observed != cold.observed
                || warm.states != cold.states
                || warm.transitions != cold.transitions
                || warm.deadlocks != cold.deadlocks
                || warm.stop != cold.stop
            {
                return Err("request: cached response diverges from the cold run".into());
            }
        }

        // Sampler soundness: random walks only ever land inside the
        // exhaustive outcome set. Generated programs always terminate, so
        // a sampling failure is itself a bug.
        if opts.samples > 0 {
            let samples =
                sample_terminals(&prog, &NoObjects, opts.samples, opts.sample_steps, seed)
                    .map_err(|e| format!("sampler: generated program should terminate: {e}"))?;
            let obs = g.observe();
            for cfg in &samples {
                let tuple: Vec<Val> = obs.iter().map(|&(t, r)| cfg.reg(t, r)).collect();
                if !oracle_outcomes.contains(&tuple) {
                    return Err(format!(
                        "sampler: walked to outcome {tuple:?} outside the exhaustive set"
                    ));
                }
            }
        }
        Ok(())
    })() {
        Ok(()) => DiffVerdict::Pass {
            states: oracle.states,
            outcomes: oracle_outcomes.len(),
        },
        Err(e) => DiffVerdict::Fail(e),
    }
}

/// A shrunk fuzz counterexample.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// Iteration (0-based) at which the failure was found.
    pub iter: usize,
    /// The per-program seed that produced it.
    pub seed: u64,
    /// The first check that disagreed, on the *shrunk* program.
    pub what: String,
    /// The shrunk program.
    pub shrunk: GProg,
    /// The shrunk program as replayable `.litmus` source (expected set =
    /// the oracle's observed outcomes).
    pub source: String,
}

/// Aggregate results of a fuzz run.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Programs generated.
    pub iters: usize,
    /// Programs where every check agreed.
    pub passed: usize,
    /// Programs skipped because the oracle hit the state cap.
    pub skipped: usize,
    /// Total states explored by the oracle across passing programs.
    pub total_states: usize,
    /// The first failure, shrunk — `None` on a clean run.
    pub failure: Option<FuzzFailure>,
}

impl FuzzReport {
    /// True iff no differential check failed.
    pub fn ok(&self) -> bool {
        self.failure.is_none()
    }
}

/// Generate and differentially check `iters` programs from `seed`,
/// stopping (after shrinking) at the first failure. `progress` is called
/// after every program with the running report.
pub fn fuzz(
    seed: u64,
    iters: usize,
    gen_opts: &GenOptions,
    diff_opts: &DiffOptions,
    mut progress: impl FnMut(&FuzzReport),
) -> FuzzReport {
    let mut report = FuzzReport::default();
    for i in 0..iters {
        // Decorrelate program seeds while keeping them reproducible.
        let prog_seed = seed.wrapping_add((i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let g = generate(prog_seed, gen_opts);
        report.iters += 1;
        match diff_one(&g, prog_seed, diff_opts) {
            DiffVerdict::Pass { states, .. } => {
                report.passed += 1;
                report.total_states += states;
            }
            DiffVerdict::Skipped => report.skipped += 1,
            DiffVerdict::Fail(_) => {
                let fails = |cand: &GProg| {
                    matches!(diff_one(cand, prog_seed, diff_opts), DiffVerdict::Fail(_))
                };
                let shrunk = shrink(&g, fails);
                let what = match diff_one(&shrunk, prog_seed, diff_opts) {
                    DiffVerdict::Fail(e) => e,
                    other => format!("unstable failure after shrinking: {other:?}"),
                };
                // Recover the oracle's outcome set for the repro source.
                let prog = compile(&shrunk.to_program("fuzz"));
                let oracle = Engine::Sequential.explore(
                    &prog,
                    &NoObjects,
                    &ExploreOptions {
                        record_traces: false,
                        max_states: diff_opts.max_states,
                        fingerprint: false,
                        ..Default::default()
                    },
                );
                let outcomes = outcome_set(&shrunk, &oracle);
                let source = shrunk.to_litmus_source(
                    &format!("fuzz-fail-{prog_seed}"),
                    &format!("shrunk fuzz counterexample: {what}"),
                    &outcomes,
                );
                report.failure =
                    Some(FuzzFailure { iter: i, seed: prog_seed, what, shrunk, source });
                progress(&report);
                return report;
            }
        }
        progress(&report);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_short_fixed_seed_fuzz_run_is_clean() {
        let gen_opts = GenOptions { max_stmts: 3, clone_threads: true, ..Default::default() };
        let diff_opts = DiffOptions {
            workers: vec![2],
            samples: 8,
            por: true,
            symmetry: true,
            dpor: true,
            chaos: true,
            ..Default::default()
        };
        let report = fuzz(0xC0FFEE, 10, &gen_opts, &diff_opts, |_| {});
        assert_eq!(report.iters, 10);
        assert!(
            report.ok(),
            "differential failure: {}",
            report.failure.as_ref().map(|f| f.source.as_str()).unwrap_or("")
        );
        assert!(report.passed + report.skipped == 10);
        assert!(report.passed > 0, "at least some programs must be checkable");
    }

    #[test]
    fn observation_uses_all_data_registers() {
        let g = generate(7, &GenOptions::default());
        let obs = g.observe();
        assert_eq!(obs.len(), g.threads.len() * crate::gen::DATA_REGS as usize);
    }
}
