//! Seeded deterministic fault injection for the resilience harness.
//!
//! Faults are **data**: a [`FaultPlan`] names the fault points (worker
//! panic at the Nth expansion, injector stall at the Nth expansion,
//! checkpoint-write failure at the Kth write) and a seed derives a plan
//! reproducibly, so every chaos failure replays from its seed — the
//! pattern of the deterministic coordination tests this module is modelled
//! on. A [`ChaosState`] threads the plan through an exploration via
//! [`ExploreOptions::chaos`](crate::engine::ExploreOptions::chaos):
//!
//! * the **parallel** engine calls [`ChaosState::on_expansion`] once per
//!   work item, so `worker_panic_at`/`stall_at` fire inside a worker (and
//!   are contained by the worker's `catch_unwind` harness);
//! * the **sequential** explorer calls the same hook once per popped
//!   frontier node; it has no per-worker containment, so an injected panic
//!   unwinds out of `explore` and is caught by the shared request path
//!   ([`CheckService`](crate::request::CheckService)), which reports it as
//!   a `WorkerFault` stop with the panic message in the note detail;
//! * the **sequential** checkpointer calls
//!   [`ChaosState::should_fail_checkpoint`] before each write, so
//!   `checkpoint_fail_at` simulates a failed save without touching disk.
//!
//! The contract the chaos differential (`fuzz --chaos`,
//! `tests/resilience.rs`) enforces: under *any* fault schedule the report
//! is either bit-identical to the unfaulted oracle's or carries an
//! explicitly non-`Complete` [`StopReason`](crate::engine::StopReason) —
//! never silently wrong.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A deterministic fault schedule. All counters are 1-based: a
/// `worker_panic_at` of `Some(3)` panics whichever worker processes the
/// third expansion (the count is deterministic; under parallel scheduling
/// the *identity* of the expanded state is not, which the differential
/// contract tolerates by construction).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Panic the expanding worker at this (1-based) global expansion.
    pub worker_panic_at: Option<u64>,
    /// Stall the expanding worker (simulated injector stall) at this
    /// expansion — surfaces termination-detection races.
    pub stall_at: Option<u64>,
    /// Fail the Kth (1-based) checkpoint write.
    pub checkpoint_fail_at: Option<u64>,
}

impl FaultPlan {
    /// The empty plan: no faults.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// True iff the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        *self == FaultPlan::default()
    }

    /// Derive a fault schedule from a seed (splitmix64). Always injects at
    /// least one fault; the fault points land early (within the first few
    /// dozen expansions / first few writes) so small fuzz programs hit
    /// them.
    pub fn from_seed(seed: u64) -> FaultPlan {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let kinds = next();
        let mut plan = FaultPlan {
            worker_panic_at: (kinds & 1 != 0).then(|| 1 + next() % 48),
            stall_at: (kinds & 2 != 0).then(|| 1 + next() % 48),
            checkpoint_fail_at: (kinds & 4 != 0).then(|| 1 + next() % 4),
        };
        if plan.is_empty() {
            plan.worker_panic_at = Some(1 + next() % 48);
        }
        plan
    }
}

/// The live counters a [`FaultPlan`] runs on. Shared via `Arc` between
/// the caller and every engine worker; all methods are lock-free on the
/// hot path (one `fetch_add` per expansion).
pub struct ChaosState {
    plan: FaultPlan,
    expansions: AtomicU64,
    ckpt_writes: AtomicU64,
    injected: Mutex<Vec<String>>,
}

impl std::fmt::Debug for ChaosState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosState")
            .field("plan", &self.plan)
            .field("expansions", &self.expansions)
            .field("ckpt_writes", &self.ckpt_writes)
            .finish_non_exhaustive()
    }
}

impl ChaosState {
    /// Wrap a plan for threading through
    /// [`ExploreOptions::chaos`](crate::engine::ExploreOptions::chaos).
    pub fn new(plan: FaultPlan) -> Arc<ChaosState> {
        Arc::new(ChaosState {
            plan,
            expansions: AtomicU64::new(0),
            ckpt_writes: AtomicU64::new(0),
            injected: Mutex::new(Vec::new()),
        })
    }

    /// The plan this state runs.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// Called by both engines once per expanded work item. Fires
    /// `stall_at` (a short sleep, surfacing termination-detection races)
    /// and `worker_panic_at` (a real `panic!` — contained by the worker
    /// harness in the parallel engine, and by the request path's
    /// `catch_unwind` for the sequential one) when their counts come up.
    pub fn on_expansion(&self) {
        let n = self.expansions.fetch_add(1, Ordering::Relaxed) + 1;
        if self.plan.stall_at == Some(n) {
            self.injected.lock().push(format!("stall at expansion {n}"));
            std::thread::sleep(Duration::from_millis(2));
        }
        if self.plan.worker_panic_at == Some(n) {
            self.injected.lock().push(format!("worker panic at expansion {n}"));
            panic!("chaos: injected worker panic at expansion {n}");
        }
    }

    /// Called by the sequential checkpointer before each write; `true`
    /// means "simulate a failed write" (the checkpointer then records a
    /// `Note::CheckpointError` and continues without saving).
    pub fn should_fail_checkpoint(&self) -> bool {
        let k = self.ckpt_writes.fetch_add(1, Ordering::Relaxed) + 1;
        if self.plan.checkpoint_fail_at == Some(k) {
            self.injected.lock().push(format!("checkpoint write {k} failed"));
            return true;
        }
        false
    }

    /// The faults actually injected so far (for assertions and debugging).
    pub fn injected(&self) -> Vec<String> {
        self.injected.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic_and_nonempty() {
        for seed in 0..64u64 {
            let a = FaultPlan::from_seed(seed);
            let b = FaultPlan::from_seed(seed);
            assert_eq!(a, b, "seed {seed} must derive one plan");
            assert!(!a.is_empty(), "seed {seed} must inject something");
        }
    }

    #[test]
    fn expansion_counter_fires_the_named_point() {
        let st = ChaosState::new(FaultPlan { stall_at: Some(2), ..FaultPlan::none() });
        st.on_expansion();
        assert!(st.injected().is_empty());
        st.on_expansion();
        assert_eq!(st.injected().len(), 1);
        st.on_expansion();
        assert_eq!(st.injected().len(), 1, "fires exactly once");
    }

    #[test]
    fn checkpoint_failures_fire_once() {
        let st = ChaosState::new(FaultPlan {
            checkpoint_fail_at: Some(1),
            ..FaultPlan::none()
        });
        assert!(st.should_fail_checkpoint());
        assert!(!st.should_fail_checkpoint());
    }
}
