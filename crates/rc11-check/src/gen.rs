//! Seeded random litmus-program generation with deletion-based shrinking.
//!
//! The generator produces well-formed, always-terminating 2–4-thread
//! programs over the full statement alphabet — relaxed/release writes,
//! relaxed/acquire reads, `CAS`/`FAI`, local assignments, `if`/`else`,
//! bounded `while` and `do … until` loops — as a small first-order tree
//! ([`GProg`]) that can be lowered to a [`Program`] (via the builder) *and*
//! printed as `.litmus` surface syntax, so every counterexample the
//! differential harness ([`crate::fuzz`]) finds is reportable as a file the
//! `rc11` CLI can replay. Shrinking is deletion-based: greedily remove
//! whole statements (subtrees) and threads while the failure persists.
//!
//! Well-formedness invariants, maintained by construction and preserved by
//! deletion:
//!
//! * every loop is bounded by a dedicated counter register, so every
//!   generated program terminates in every interleaving;
//! * shared variables only ever hold integers, and arithmetic only touches
//!   registers that are statically integer-typed on every path (`CAS`
//!   writes booleans into its result register, so result registers are
//!   tracked through branch joins);
//! * guards use only `==`/`!=` against constants, which are total on all
//!   value types.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rc11_lang::builder::*;
use rc11_lang::{Com, Program, Reg};
use rc11_core::Val;

/// Data registers per thread (assignment targets; all observed).
pub const DATA_REGS: u16 = 3;

/// Knobs for the generator.
#[derive(Debug, Clone)]
pub struct GenOptions {
    /// Minimum number of threads (inclusive).
    pub min_threads: usize,
    /// Maximum number of threads (inclusive).
    pub max_threads: usize,
    /// Maximum number of shared variables (at least 1).
    pub max_vars: u16,
    /// Maximum top-level statements per thread.
    pub max_stmts: usize,
    /// Maximum loop/branch nesting depth.
    pub max_depth: usize,
    /// Maximum bounded-loop iteration count.
    pub max_loop_iters: u8,
    /// With ~1/3 probability per program, clone one generated thread body
    /// into every thread slot, yielding a fully thread-symmetric program.
    /// Off, independently drawn bodies almost never coincide, so the
    /// symmetry-reduction differential lane would only ever exercise its
    /// trivial fast path; on, a third of the corpus has real orbits to
    /// reduce. Default off (the historical generator distribution).
    pub clone_threads: bool,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions {
            min_threads: 2,
            max_threads: 4,
            max_vars: 3,
            max_stmts: 4,
            max_depth: 2,
            max_loop_iters: 2,
            clone_threads: false,
        }
    }
}

/// The right-hand side of a local assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GRhs {
    /// A constant.
    Const(i64),
    /// `src + k`, where `src` is statically integer-typed.
    AddConst(u16, i64),
}

/// One generated statement. Loops carry their bound and dedicated counter
/// register so the tree is self-contained and deletion-safe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GStmt {
    /// `x := v` (optionally releasing).
    Write {
        /// Variable index.
        var: u16,
        /// Written constant.
        val: i64,
        /// Release annotation.
        rel: bool,
    },
    /// `r ← x` (optionally acquiring).
    Read {
        /// Destination data register.
        reg: u16,
        /// Variable index.
        var: u16,
        /// Acquire annotation.
        acq: bool,
    },
    /// `r ← CAS(x, expect, new)`.
    Cas {
        /// Destination data register (receives a boolean).
        reg: u16,
        /// Variable index.
        var: u16,
        /// Expected value.
        expect: i64,
        /// Replacement value.
        new: i64,
    },
    /// `r ← FAI(x)`.
    Fai {
        /// Destination data register (receives the old integer).
        reg: u16,
        /// Variable index.
        var: u16,
    },
    /// `r := rhs`.
    Assign {
        /// Destination data register.
        reg: u16,
        /// Right-hand side.
        rhs: GRhs,
    },
    /// `if (r ⋈ k) { then } else { else }` with `⋈ ∈ {==, !=}`.
    If {
        /// Scrutinised data register.
        reg: u16,
        /// Compared constant.
        k: i64,
        /// Use `!=` instead of `==`.
        ne: bool,
        /// Then-branch.
        then_: Vec<GStmt>,
        /// Else-branch.
        else_: Vec<GStmt>,
    },
    /// `ctr := n; while (0 < ctr) { body; ctr := ctr - 1 }`.
    While {
        /// Counter register (index ≥ [`DATA_REGS`], per nesting depth).
        ctr: u16,
        /// Iteration bound.
        n: u8,
        /// Loop body.
        body: Vec<GStmt>,
    },
    /// `ctr := n; do { body; ctr := ctr - 1 } until (ctr <= 0)`.
    DoUntil {
        /// Counter register (index ≥ [`DATA_REGS`], per nesting depth).
        ctr: u16,
        /// Iteration bound (executes `max(n, 1)` times).
        n: u8,
        /// Loop body.
        body: Vec<GStmt>,
    },
}

/// A generated program: thread bodies over `n_vars` shared variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GProg {
    /// Number of shared variables (`x0 … x{n-1}`, all initialised to 0).
    pub n_vars: u16,
    /// Loop-counter registers per thread (fixed by the generation depth).
    pub n_loop_regs: u16,
    /// One statement list per thread.
    pub threads: Vec<Vec<GStmt>>,
}

// ---------------------------------------------------------------------
// Generation
// ---------------------------------------------------------------------

/// Conservative static type of a data register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ty {
    Int,
    Bool,
    Mixed,
}

fn join(a: Ty, b: Ty) -> Ty {
    if a == b {
        a
    } else {
        Ty::Mixed
    }
}

struct Gen<'a> {
    rng: &'a mut StdRng,
    opts: &'a GenOptions,
    n_vars: u16,
}

impl Gen<'_> {
    fn int(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.rng.gen_range(0..(hi - lo + 1) as u64)) as i64
    }

    fn var(&mut self) -> u16 {
        self.rng.gen_range(0..self.n_vars as u64) as u16
    }

    fn reg(&mut self) -> u16 {
        self.rng.gen_range(0..DATA_REGS as u64) as u16
    }

    fn flip(&mut self) -> bool {
        self.rng.gen_range(0..2u64) == 1
    }

    /// Generate one statement at the given nesting depth, updating `types`.
    fn stmt(&mut self, depth: usize, types: &mut [Ty]) -> GStmt {
        // Weighted alphabet: shared accesses dominate, control flow only
        // below the depth limit.
        let max = if depth < self.opts.max_depth { 10 } else { 7 };
        match self.rng.gen_range(0..max as u64) {
            0 | 1 => GStmt::Write { var: self.var(), val: self.int(1, 3), rel: self.flip() },
            2 | 3 => {
                let reg = self.reg();
                types[reg as usize] = Ty::Int;
                GStmt::Read { reg, var: self.var(), acq: self.flip() }
            }
            4 => {
                let reg = self.reg();
                types[reg as usize] = Ty::Bool;
                GStmt::Cas { reg, var: self.var(), expect: self.int(0, 2), new: self.int(1, 3) }
            }
            5 => {
                let reg = self.reg();
                types[reg as usize] = Ty::Int;
                GStmt::Fai { reg, var: self.var() }
            }
            6 => {
                let reg = self.reg();
                // Arithmetic only over registers that are Int on all paths.
                let int_srcs: Vec<u16> =
                    (0..DATA_REGS).filter(|&r| types[r as usize] == Ty::Int).collect();
                let rhs = if !int_srcs.is_empty() && self.flip() {
                    let src = int_srcs[self.rng.gen_range(0..int_srcs.len())];
                    GRhs::AddConst(src, self.int(-1, 2))
                } else {
                    GRhs::Const(self.int(0, 3))
                };
                types[reg as usize] = Ty::Int;
                GStmt::Assign { reg, rhs }
            }
            7 => {
                let reg = self.reg();
                let k = self.int(0, 2);
                let ne = self.flip();
                let mut then_ty = types.to_vec();
                let mut else_ty = types.to_vec();
                let then_ = self.stmts(depth + 1, &mut then_ty, 2);
                let else_ =
                    if self.flip() { self.stmts(depth + 1, &mut else_ty, 2) } else { Vec::new() };
                for (t, (a, b)) in types.iter_mut().zip(then_ty.into_iter().zip(else_ty)) {
                    *t = join(*t, join(a, b));
                }
                GStmt::If { reg, k, ne, then_, else_ }
            }
            8 => {
                let ctr = DATA_REGS + depth as u16;
                let n = 1 + (self.rng.gen_range(0..self.opts.max_loop_iters as u64)) as u8;
                let mut body = self.stmts(depth + 1, types, 2);
                repair_loop_body(&mut body);
                GStmt::While { ctr, n, body }
            }
            _ => {
                let ctr = DATA_REGS + depth as u16;
                let n = 1 + (self.rng.gen_range(0..self.opts.max_loop_iters as u64)) as u8;
                let mut body = self.stmts(depth + 1, types, 2);
                repair_loop_body(&mut body);
                GStmt::DoUntil { ctr, n, body }
            }
        }
    }

    fn stmts(&mut self, depth: usize, types: &mut [Ty], max: usize) -> Vec<GStmt> {
        let n = 1 + self.rng.gen_range(0..max as u64) as usize;
        (0..n).map(|_| self.stmt(depth, types)).collect()
    }
}

/// Cross-iteration typing repair for loop bodies. The per-statement type
/// lattice is *linear*: it sees one pass through the body. But a loop body
/// re-enters, so an `r0 := r1 + k` generated while `r1` was still integer
/// is unsound if any statement of the same body (including nested
/// containers) later CASes into `r1` — on the second iteration the
/// arithmetic would read a boolean. The repair is conservative: collect
/// every CAS target anywhere in the body, and demote any arithmetic over
/// those registers to its constant (CAS is the only producer of
/// non-integer register values).
fn repair_loop_body(body: &mut [GStmt]) {
    fn cas_targets(stmts: &[GStmt], out: &mut Vec<u16>) {
        for s in stmts {
            match s {
                GStmt::Cas { reg, .. } => out.push(*reg),
                GStmt::If { then_, else_, .. } => {
                    cas_targets(then_, out);
                    cas_targets(else_, out);
                }
                GStmt::While { body, .. } | GStmt::DoUntil { body, .. } => cas_targets(body, out),
                _ => {}
            }
        }
    }
    fn demote(stmts: &mut [GStmt], banned: &[u16]) {
        for s in stmts {
            match s {
                GStmt::Assign { rhs, .. } => {
                    if let GRhs::AddConst(src, k) = rhs {
                        if banned.contains(src) {
                            *rhs = GRhs::Const(*k);
                        }
                    }
                }
                GStmt::If { then_, else_, .. } => {
                    demote(then_, banned);
                    demote(else_, banned);
                }
                GStmt::While { body, .. } | GStmt::DoUntil { body, .. } => demote(body, banned),
                _ => {}
            }
        }
    }
    let mut banned = Vec::new();
    cas_targets(body, &mut banned);
    if !banned.is_empty() {
        demote(body, &banned);
    }
}

/// Generate one random program from the given seed.
pub fn generate(seed: u64, opts: &GenOptions) -> GProg {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_threads = opts.min_threads
        + rng.gen_range(0..(opts.max_threads - opts.min_threads + 1) as u64) as usize;
    let n_vars = 1 + rng.gen_range(0..opts.max_vars as u64) as u16;
    let mut g = Gen { rng: &mut rng, opts, n_vars };
    let mut threads: Vec<Vec<GStmt>> = (0..n_threads)
        .map(|_| {
            let mut types = vec![Ty::Int; DATA_REGS as usize];
            let n = 1 + g.rng.gen_range(0..g.opts.max_stmts as u64) as usize;
            (0..n).map(|_| g.stmt(0, &mut types)).collect()
        })
        .collect();
    // Thread-cloning mode: sometimes collapse the program to copies of one
    // body, so the symmetry-reduction lane sees non-trivial orbits. Every
    // draw above still happens first — seeds stay comparable across modes.
    if opts.clone_threads && rng.gen_range(0..3u64) == 0 {
        let donor = rng.gen_range(0..n_threads as u64) as usize;
        let body = threads[donor].clone();
        for t in &mut threads {
            t.clone_from(&body);
        }
    }
    GProg { n_vars, n_loop_regs: opts.max_depth as u16, threads }
}

// ---------------------------------------------------------------------
// Lowering to Program and printing to .litmus
// ---------------------------------------------------------------------

impl GProg {
    /// Every thread's observed data registers, in `observe` order:
    /// `(thread, register)` for each thread × data register.
    pub fn observe(&self) -> Vec<(usize, Reg)> {
        (0..self.threads.len())
            .flat_map(|t| (0..DATA_REGS).map(move |r| (t, Reg(r))))
            .collect()
    }

    /// Lower to a [`Program`] through the builder (the same pipeline every
    /// other litmus program takes).
    pub fn to_program(&self, name: &str) -> Program {
        let mut p = ProgramBuilder::new(name);
        let vars: Vec<_> =
            (0..self.n_vars).map(|i| p.client_var(&format!("x{i}"), 0)).collect();
        for stmts in &self.threads {
            let mut tb = ThreadBuilder::new();
            let mut regs: Vec<Reg> = (0..DATA_REGS)
                .map(|i| tb.reg_init(&format!("r{i}"), Val::Int(0)))
                .collect();
            for i in 0..self.n_loop_regs {
                regs.push(tb.reg_init(&format!("c{i}"), Val::Int(0)));
            }
            let body = seq(stmts.iter().map(|s| lower_stmt(s, &vars, &regs)));
            p.add_thread(tb, body);
        }
        p.build()
    }

    /// Print as `.litmus` surface syntax with the given exact expected
    /// outcome set (normally the sequential oracle's observed set), so a
    /// failing program is replayable via `rc11 run`.
    pub fn to_litmus_source(
        &self,
        name: &str,
        about: &str,
        expected: &std::collections::BTreeSet<Vec<Val>>,
    ) -> String {
        // The lexer's string literals have no escape mechanism, so quotes
        // and newlines (which reach us through ParseError-derived failure
        // descriptions) must be sanitised or the repro would not re-parse.
        let quote = |s: &str| s.replace(['"', '\n'], " ");
        let mut s = String::new();
        s.push_str(&format!("litmus \"{}\"\n", quote(name)));
        if !about.is_empty() {
            s.push_str(&format!("about \"{}\"\n", quote(about)));
        }
        for i in 0..self.n_vars {
            s.push_str(&format!("var x{i} = 0\n"));
        }
        for (t, stmts) in self.threads.iter().enumerate() {
            s.push_str(&format!("\nthread T{} {{\n", t + 1));
            // Registers must be assigned before use under the text syntax
            // (the builder path pre-initialises them to 0 instead).
            let init: String =
                (0..DATA_REGS).map(|r| format!("r{r} = 0; ")).collect();
            s.push_str(&format!("  {}\n", init.trim_end()));
            for st in stmts {
                print_stmt(st, 1, &mut s);
            }
            s.push_str("}\n");
        }
        s.push_str("\nobserve");
        for (t, r) in self.observe() {
            s.push_str(&format!(" T{}.r{}", t + 1, r.0));
        }
        s.push_str("\nexpected {\n");
        for tuple in expected {
            let vals: Vec<String> =
                tuple.iter().map(rc11_lang::parse::val_literal).collect();
            s.push_str(&format!("  ({})\n", vals.join(", ")));
        }
        s.push_str("}\n");
        s
    }

    /// Total number of statements (pre-order, counting subtree nodes).
    pub fn len(&self) -> usize {
        fn count(stmts: &[GStmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    GStmt::If { then_, else_, .. } => 1 + count(then_) + count(else_),
                    GStmt::While { body, .. } | GStmt::DoUntil { body, .. } => 1 + count(body),
                    _ => 1,
                })
                .sum()
        }
        self.threads.iter().map(|t| count(t)).sum()
    }

    /// True iff there are no statements at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Remove the `idx`-th statement in global pre-order (whole subtree).
    /// Returns `None` if `idx` is out of range.
    #[must_use]
    pub fn remove_stmt(&self, idx: usize) -> Option<GProg> {
        fn rm(stmts: &mut Vec<GStmt>, idx: &mut usize) -> bool {
            let mut i = 0;
            while i < stmts.len() {
                if *idx == 0 {
                    stmts.remove(i);
                    return true;
                }
                *idx -= 1;
                let hit = match &mut stmts[i] {
                    GStmt::If { then_, else_, .. } => rm(then_, idx) || rm(else_, idx),
                    GStmt::While { body, .. } | GStmt::DoUntil { body, .. } => rm(body, idx),
                    _ => false,
                };
                if hit {
                    return true;
                }
                i += 1;
            }
            false
        }
        let mut out = self.clone();
        let mut idx = idx;
        for t in &mut out.threads {
            if rm(t, &mut idx) {
                return Some(out);
            }
        }
        None
    }

    /// Replace the `idx`-th statement (global pre-order) by its children:
    /// an `if` becomes `then; else`, a loop becomes its body run once.
    /// Returns `None` if `idx` is out of range or not a container.
    #[must_use]
    pub fn unwrap_stmt(&self, idx: usize) -> Option<GProg> {
        fn unwrap(stmts: &mut Vec<GStmt>, idx: &mut usize) -> Option<bool> {
            let mut i = 0;
            while i < stmts.len() {
                if *idx == 0 {
                    let children = match stmts.remove(i) {
                        GStmt::If { then_, else_, .. } => {
                            let mut c = then_;
                            c.extend(else_);
                            c
                        }
                        GStmt::While { body, .. } | GStmt::DoUntil { body, .. } => body,
                        other => {
                            // Not a container: put it back, report no-op.
                            stmts.insert(i, other);
                            return Some(false);
                        }
                    };
                    stmts.splice(i..i, children);
                    return Some(true);
                }
                *idx -= 1;
                let hit = match &mut stmts[i] {
                    GStmt::If { then_, else_, .. } => {
                        unwrap(then_, idx).or_else(|| unwrap(else_, idx))
                    }
                    GStmt::While { body, .. } | GStmt::DoUntil { body, .. } => unwrap(body, idx),
                    _ => None,
                };
                if let Some(h) = hit {
                    return Some(h);
                }
                i += 1;
            }
            None
        }
        let mut out = self.clone();
        let mut idx = idx;
        for t in &mut out.threads {
            match unwrap(t, &mut idx) {
                Some(true) => return Some(out),
                Some(false) => return None,
                None => continue,
            }
        }
        None
    }

    /// Remove a whole thread. Returns `None` when only one thread is left.
    #[must_use]
    pub fn remove_thread(&self, t: usize) -> Option<GProg> {
        if self.threads.len() <= 1 || t >= self.threads.len() {
            return None;
        }
        let mut out = self.clone();
        out.threads.remove(t);
        Some(out)
    }
}

fn lower_stmt(s: &GStmt, vars: &[rc11_lang::VarRef], regs: &[Reg]) -> Com {
    match s {
        GStmt::Write { var, val, rel } => {
            let v = vars[*var as usize];
            if *rel {
                wr_rel(v, *val)
            } else {
                wr(v, *val)
            }
        }
        GStmt::Read { reg, var, acq } => {
            let v = vars[*var as usize];
            if *acq {
                rd_acq(regs[*reg as usize], v)
            } else {
                rd(regs[*reg as usize], v)
            }
        }
        GStmt::Cas { reg, var, expect, new } => {
            cas(regs[*reg as usize], vars[*var as usize], *expect, *new)
        }
        GStmt::Fai { reg, var } => fai(regs[*reg as usize], vars[*var as usize]),
        GStmt::Assign { reg, rhs } => match rhs {
            GRhs::Const(k) => assign(regs[*reg as usize], *k),
            GRhs::AddConst(src, k) => {
                assign(regs[*reg as usize], add(regs[*src as usize], *k))
            }
        },
        GStmt::If { reg, k, ne: is_ne, then_, else_ } => {
            let r = regs[*reg as usize];
            let cond = if *is_ne { ne(r, *k) } else { eq(r, *k) };
            if_else(
                cond,
                seq(then_.iter().map(|s| lower_stmt(s, vars, regs))),
                seq(else_.iter().map(|s| lower_stmt(s, vars, regs))),
            )
        }
        GStmt::While { ctr, n, body } => {
            let c = regs[*ctr as usize];
            assign(c, *n as i64).then(while_do(
                lt(0, c),
                seq(body.iter().map(|s| lower_stmt(s, vars, regs)))
                    .then(assign(c, sub(c, 1))),
            ))
        }
        GStmt::DoUntil { ctr, n, body } => {
            let c = regs[*ctr as usize];
            assign(c, *n as i64).then(do_until(
                seq(body.iter().map(|s| lower_stmt(s, vars, regs)))
                    .then(assign(c, sub(c, 1))),
                le(c, 0),
            ))
        }
    }
}

fn print_stmt(s: &GStmt, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match s {
        GStmt::Write { var, val, rel } => {
            let ann = if *rel { "=rel" } else { "=" };
            out.push_str(&format!("{pad}x{var} {ann} {val};\n"));
        }
        GStmt::Read { reg, var, acq } => {
            let ann = if *acq { "=acq" } else { "=" };
            out.push_str(&format!("{pad}r{reg} {ann} x{var};\n"));
        }
        GStmt::Cas { reg, var, expect, new } => {
            out.push_str(&format!("{pad}r{reg} = cas(x{var}, {expect}, {new});\n"));
        }
        GStmt::Fai { reg, var } => {
            out.push_str(&format!("{pad}r{reg} = fai(x{var});\n"));
        }
        GStmt::Assign { reg, rhs } => match rhs {
            GRhs::Const(k) => out.push_str(&format!("{pad}r{reg} = {k};\n")),
            GRhs::AddConst(src, k) => {
                if *k < 0 {
                    out.push_str(&format!("{pad}r{reg} = r{src} - {};\n", -k))
                } else {
                    out.push_str(&format!("{pad}r{reg} = r{src} + {k};\n"))
                }
            }
        },
        GStmt::If { reg, k, ne, then_, else_ } => {
            let op = if *ne { "!=" } else { "==" };
            out.push_str(&format!("{pad}if (r{reg} {op} {k}) {{\n"));
            for st in then_ {
                print_stmt(st, indent + 1, out);
            }
            if else_.is_empty() {
                out.push_str(&format!("{pad}}}\n"));
            } else {
                out.push_str(&format!("{pad}}} else {{\n"));
                for st in else_ {
                    print_stmt(st, indent + 1, out);
                }
                out.push_str(&format!("{pad}}}\n"));
            }
        }
        GStmt::While { ctr, n, body } => {
            out.push_str(&format!("{pad}c{} = {n};\n", ctr - DATA_REGS));
            out.push_str(&format!("{pad}while (0 < c{}) {{\n", ctr - DATA_REGS));
            for st in body {
                print_stmt(st, indent + 1, out);
            }
            out.push_str(&format!("{pad}  c{0} = c{0} - 1;\n", ctr - DATA_REGS));
            out.push_str(&format!("{pad}}}\n"));
        }
        GStmt::DoUntil { ctr, n, body } => {
            out.push_str(&format!("{pad}c{} = {n};\n", ctr - DATA_REGS));
            out.push_str(&format!("{pad}do {{\n"));
            for st in body {
                print_stmt(st, indent + 1, out);
            }
            out.push_str(&format!("{pad}  c{0} = c{0} - 1;\n", ctr - DATA_REGS));
            out.push_str(&format!("{pad}}} until (c{} <= 0);\n", ctr - DATA_REGS));
        }
    }
}

// ---------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------

/// Greedy deletion-based shrinking: while the failure persists, try
/// removing whole threads, then single statements (subtrees), then
/// unwrapping containers (deleting an `if`/loop but keeping its children),
/// restarting after every successful reduction until a fixpoint. `fails`
/// must be deterministic; the returned program still fails it.
pub fn shrink(prog: &GProg, fails: impl Fn(&GProg) -> bool) -> GProg {
    debug_assert!(fails(prog), "shrink must start from a failing program");
    let mut cur = prog.clone();
    'outer: loop {
        for t in (0..cur.threads.len()).rev() {
            if let Some(cand) = cur.remove_thread(t) {
                if fails(&cand) {
                    cur = cand;
                    continue 'outer;
                }
            }
        }
        for i in (0..cur.len()).rev() {
            if let Some(cand) = cur.remove_stmt(i) {
                if fails(&cand) {
                    cur = cand;
                    continue 'outer;
                }
            }
            if let Some(cand) = cur.unwrap_stmt(i) {
                if fails(&cand) {
                    cur = cand;
                    continue 'outer;
                }
            }
        }
        return cur;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc11_lang::compile;
    use rc11_lang::machine::NoObjects;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let opts = GenOptions::default();
        let a = generate(42, &opts);
        let b = generate(42, &opts);
        assert_eq!(a, b);
        let c = generate(43, &opts);
        assert_ne!(a, c, "different seeds should give different programs");
    }

    #[test]
    fn generated_programs_are_valid_and_bounded() {
        let opts = GenOptions::default();
        for seed in 0..40 {
            let g = generate(seed, &opts);
            assert!(g.threads.len() >= opts.min_threads);
            assert!(g.threads.len() <= opts.max_threads);
            // `to_program` panics on invalid programs (builder validation).
            let p = g.to_program(&format!("gen-{seed}"));
            assert_eq!(p.n_threads(), g.threads.len());
        }
    }

    #[test]
    fn generated_programs_terminate_under_exploration() {
        let opts = GenOptions::default();
        for seed in 0..10 {
            let g = generate(seed, &opts);
            let prog = compile(&g.to_program("term"));
            let report = crate::Engine::Sequential.explore(
                &prog,
                &NoObjects,
                &crate::ExploreOptions { record_traces: false, ..Default::default() },
            );
            assert!(!report.truncated(), "seed {seed}: truncated");
            assert!(report.deadlocked.is_empty(), "seed {seed}: deadlocked");
            assert!(!report.terminated.is_empty(), "seed {seed}: no terminal state");
        }
    }

    #[test]
    fn remove_stmt_removes_exactly_one_subtree() {
        let g = GProg {
            n_vars: 1,
            n_loop_regs: 2,
            threads: vec![
                vec![
                    GStmt::Write { var: 0, val: 1, rel: false },
                    GStmt::If {
                        reg: 0,
                        k: 0,
                        ne: false,
                        then_: vec![GStmt::Fai { reg: 1, var: 0 }],
                        else_: vec![],
                    },
                ],
                vec![GStmt::Read { reg: 0, var: 0, acq: true }],
            ],
        };
        assert_eq!(g.len(), 4);
        // Index 2 is the Fai inside the If (pre-order).
        let removed = g.remove_stmt(2).unwrap();
        assert_eq!(removed.len(), 3);
        match &removed.threads[0][1] {
            GStmt::If { then_, .. } => assert!(then_.is_empty()),
            other => panic!("expected the If to survive, got {other:?}"),
        }
        assert!(g.remove_stmt(4).is_none());
    }

    #[test]
    fn shrink_reaches_a_minimal_failing_program() {
        // Synthetic failure: "contains a release write AND an acquire read".
        let fails = |g: &GProg| {
            fn scan(stmts: &[GStmt], rel: &mut bool, acq: &mut bool) {
                for s in stmts {
                    match s {
                        GStmt::Write { rel: true, .. } => *rel = true,
                        GStmt::Read { acq: true, .. } => *acq = true,
                        GStmt::If { then_, else_, .. } => {
                            scan(then_, rel, acq);
                            scan(else_, rel, acq);
                        }
                        GStmt::While { body, .. } | GStmt::DoUntil { body, .. } => {
                            scan(body, rel, acq)
                        }
                        _ => {}
                    }
                }
            }
            let (mut rel, mut acq) = (false, false);
            for t in &g.threads {
                scan(t, &mut rel, &mut acq);
            }
            rel && acq
        };
        // Find a seed whose program fails the predicate.
        let opts = GenOptions::default();
        let g = (0..200)
            .map(|s| generate(s, &opts))
            .find(|g| fails(g))
            .expect("some generated program has both annotations");
        let small = shrink(&g, fails);
        assert!(fails(&small));
        assert_eq!(
            small.len(),
            2,
            "minimal witness is exactly one release write + one acquire read: {small:?}"
        );
    }

    #[test]
    fn loop_bodies_never_mix_arithmetic_with_cas_poisoned_registers() {
        // Regression: the 500-program fuzz sweep generated a loop body
        // whose arithmetic read a register a later body statement CASed
        // into — well-typed on iteration 1, boolean on iteration 2. The
        // generator's repair pass must leave no such body behind.
        fn check_body(stmts: &[GStmt]) {
            let mut banned = Vec::new();
            fn cas_targets(stmts: &[GStmt], out: &mut Vec<u16>) {
                for s in stmts {
                    match s {
                        GStmt::Cas { reg, .. } => out.push(*reg),
                        GStmt::If { then_, else_, .. } => {
                            cas_targets(then_, out);
                            cas_targets(else_, out);
                        }
                        GStmt::While { body, .. } | GStmt::DoUntil { body, .. } => {
                            cas_targets(body, out)
                        }
                        _ => {}
                    }
                }
            }
            cas_targets(stmts, &mut banned);
            fn assert_clean(stmts: &[GStmt], banned: &[u16]) {
                for s in stmts {
                    match s {
                        GStmt::Assign { rhs: GRhs::AddConst(src, _), .. } => assert!(
                            !banned.contains(src),
                            "loop body mixes arithmetic over r{src} with a CAS into it"
                        ),
                        GStmt::If { then_, else_, .. } => {
                            assert_clean(then_, banned);
                            assert_clean(else_, banned);
                        }
                        GStmt::While { body, .. } | GStmt::DoUntil { body, .. } => {
                            assert_clean(body, banned)
                        }
                        _ => {}
                    }
                }
            }
            assert_clean(stmts, &banned);
        }
        fn walk(stmts: &[GStmt]) {
            for s in stmts {
                match s {
                    GStmt::If { then_, else_, .. } => {
                        walk(then_);
                        walk(else_);
                    }
                    GStmt::While { body, .. } | GStmt::DoUntil { body, .. } => {
                        check_body(body);
                        walk(body);
                    }
                    _ => {}
                }
            }
        }
        let opts = GenOptions::default();
        for seed in 0..400 {
            for t in &generate(seed, &opts).threads {
                walk(t);
            }
        }
    }

    #[test]
    fn printed_source_parses_back_to_an_equivalent_program() {
        use std::collections::BTreeSet;
        let opts = GenOptions::default();
        for seed in [1u64, 7, 23] {
            let g = generate(seed, &opts);
            let src = g.to_litmus_source("roundtrip", "", &BTreeSet::new());
            let parsed = rc11_lang::parse::parse_litmus(&src)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
            assert_eq!(parsed.prog.n_threads(), g.threads.len());
            assert_eq!(parsed.observe.len(), g.observe().len());
        }
    }
}
