//! The high-throughput parallel exploration engine.
//!
//! Work-stealing exhaustive search over crossbeam's `Injector`, rebuilt
//! around batching, fingerprint-keyed deduplication and full counterexample
//! traces:
//!
//! * **Keep-local batched work distribution** — each worker drains a
//!   private LIFO backlog and feeds novel successors straight back into
//!   it; the shared injector only sees [`FLUSH_BATCH`]-sized overflow
//!   chunks (exported past [`KEEP_LOCAL`] or when the injector runs dry),
//!   so steal traffic and queue-lock contention scale with the *shared*
//!   frontier, not the state count.
//! * **Sleep-set partial-order reduction** — with
//!   [`ExploreOptions::por`], work items carry sleep-set/expansion masks
//!   and the visited stores keep each state's `explored` mask for the
//!   wake-up rule (see `crate::por`); POR prunes transitions only, never
//!   states, so reports stay differential-tested-identical.
//! * **Persistent-set DPOR** — with [`ExploreOptions::dpor`], each
//!   state's expansion proposal further shrinks to its persistent set
//!   ([`rc11_analyze::persistent`], ablation A7), items carry the true
//!   arriving sleep set (no longer the proposal's complement — postponed
//!   outside-persistent threads stay wakeable), and blocked persistent
//!   sets re-submit through the store's wake-up rule (the retry rule in
//!   `crate::explore`'s docs). Terminal/deadlock/violation multisets stay
//!   oracle-identical; state and transition counts become upper-bounded
//!   rather than pinned — arrival order decides which duplicate wakes
//!   which mask.
//! * **Fingerprint-keyed interned visited store** — the visited structure
//!   is a [`ShardedFpMap`] keyed by zero-rebuild 128-bit canonical
//!   fingerprints ([`crate::fxhash::Fp128`]): duplicate successors (the
//!   vast majority) cost one hash walk plus a `canonical_eq` confirmation
//!   walk instead of a full canonical rebuild plus a key clone, and each
//!   canonical configuration is interned exactly once. The legacy
//!   materialised-canonical [`ShardedMap`] path remains selectable with
//!   [`ExploreOptions::fingerprint`]` = false` (ablation A4).
//! * **Batched, double-checked shard insertion** — all successors of one
//!   expansion are grouped by shard (parking_lot RwLock shards) and
//!   inserted with one read-lock filter pass plus one write-lock pass per
//!   touched shard, re-checking membership under the write lock so racing
//!   workers agree on exactly one winner per state; only confirmed-novel
//!   states are materialised to canonical form, outside any lock.
//! * **Mixed shard indexing** — shard selection feeds the key's hash
//!   through an avalanche mixer ([`spread`]) instead of using a fixed bit
//!   window, so stride-aligned or low-entropy key patterns still populate
//!   every shard (property-tested in `tests/sharded_props.rs`).
//! * **Counterexample traces** — the visited store keeps
//!   `(parent configuration, moving thread)` first-discovery parent
//!   pointers next to each interned state (when
//!   [`ExploreOptions::record_traces`] is set), so parallel violations
//!   reconstruct full replayable traces after the workers join, exactly
//!   like the sequential explorer's. (Discovery order is a race in the
//!   parallel engine and a stack discipline in the sequential one, so
//!   traces are *valid* paths from the initial configuration, not shortest
//!   ones — in either engine.)
//!
//! Engine selection is [`crate::engine::choose_engine`]; the sequential
//! explorer remains the reference oracle, and `tests/engine_agreement.rs`
//! (workspace root) proves state/transition/terminal/violation parity on
//! the full litmus gallery and the outline programs at 1/2/4/8 workers.
//! This is ablation A3 of DESIGN.md: the benches sweep worker counts to
//! show exploration scaling.

use crate::engine::{EngineReport, ExploreOptions, Note, StopReason, Violation};
use crate::fxhash::{CanonicalFingerprint, Fp128, FxBuildHasher, FxHashMap, FxHashSet};
use crate::por::{self, ThreadMask};
use crate::sym;
use crossbeam::deque::{Injector, Steal};
use parking_lot::{Mutex, RwLock};
use rc11_analyze::SymmetrySpec;
use rc11_core::{CanonPerms, Tid};
use rc11_lang::cfg::CfgProgram;
use rc11_lang::machine::{thread_successors, Config, ObjectSemantics};
use rc11_telemetry::{Counter, Telemetry};
use std::hash::{BuildHasher, Hash};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Novel states a worker buffers locally before a chunk becomes eligible
/// for sharing through the injector.
pub const FLUSH_BATCH: usize = 64;

/// Work-item backlog a worker keeps to itself. Novel states first feed the
/// worker's own LIFO backlog — the hot path never touches the shared
/// injector — and only the *oldest* `FLUSH_BATCH` items are shared when
/// the backlog outgrows this bound, or when the injector runs dry while
/// other workers are starving. Sharing the oldest (breadth) end keeps the
/// worker on its cache-warm depth-first tail while exporting the wide
/// frontier other workers can fan out on.
pub const KEEP_LOCAL: usize = 2 * FLUSH_BATCH;

/// Avalanche-mix a hash into a shard index base: xor-fold and multiply so
/// every input bit influences the low bits the mask keeps. Keys whose
/// hashes differ only in high bits (stride-aligned patterns, low-entropy
/// hash functions) still spread across shards.
#[inline]
fn spread(h: u64) -> usize {
    let h = h ^ (h >> 33);
    let h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    (h ^ (h >> 33)) as usize
}

/// A concurrent set sharded by hash, for visited-state deduplication.
///
/// `insert` is linearisable per value: the membership test is re-validated
/// under the shard's write lock (double-checked locking), so for any value
/// inserted concurrently by many threads exactly one caller observes
/// `true`. [`len`](ShardedSet::len) and [`is_empty`](ShardedSet::is_empty)
/// are **racy snapshots**: they lock the shards one at a time, so under
/// concurrent insertion they return a value between the set's size when the
/// call started and its size when the call finished — exact only at
/// quiescence (e.g. after workers join).
pub struct ShardedSet<T> {
    shards: Vec<RwLock<FxHashSet<T>>>,
    hasher: FxBuildHasher,
    mask: usize,
}

impl<T: Hash + Eq> ShardedSet<T> {
    /// A set with `2^shard_bits` shards.
    pub fn new(shard_bits: u32) -> ShardedSet<T> {
        let n = 1usize << shard_bits;
        ShardedSet {
            shards: (0..n).map(|_| RwLock::new(FxHashSet::default())).collect(),
            hasher: FxBuildHasher::default(),
            mask: n - 1,
        }
    }

    #[inline]
    fn shard_of(&self, v: &T) -> usize {
        spread(self.hasher.hash_one(v)) & self.mask
    }

    /// Insert; returns true iff the value was new. A read-lock fast path
    /// rejects known values; the slow path re-validates membership under
    /// the write lock, so concurrent inserters of the same value elect
    /// exactly one winner.
    pub fn insert(&self, v: T) -> bool {
        let shard = &self.shards[self.shard_of(&v)];
        if shard.read().contains(&v) {
            return false;
        }
        shard.write().insert(v)
    }

    /// Total elements across shards — a racy snapshot (see the type docs);
    /// exact when no insert is in flight.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True iff no elements — racy under concurrent insertion, like
    /// [`len`](ShardedSet::len).
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// Per-shard element counts (racy snapshot), for occupancy diagnostics
    /// and the shard-distribution property tests.
    pub fn shard_occupancy(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.read().len()).collect()
    }
}

/// A concurrent map sharded by key hash. The parallel engine stores visited
/// configurations here, each mapped to its first-discovery parent pointer
/// (`(parent configuration, moving thread)`), from which counterexample
/// traces are reconstructed after the workers join.
///
/// Same concurrency contract as [`ShardedSet`]: inserts are double-checked
/// under the shard write lock (exactly one winner per key, first value
/// wins), while [`len`](ShardedMap::len)/[`is_empty`](ShardedMap::is_empty)
/// are racy snapshots, exact only at quiescence.
pub struct ShardedMap<K, V> {
    shards: Vec<RwLock<FxHashMap<K, V>>>,
    hasher: FxBuildHasher,
    mask: usize,
}

impl<K: Hash + Eq, V> ShardedMap<K, V> {
    /// A map with `2^shard_bits` shards.
    pub fn new(shard_bits: u32) -> ShardedMap<K, V> {
        let n = 1usize << shard_bits;
        ShardedMap {
            shards: (0..n).map(|_| RwLock::new(FxHashMap::default())).collect(),
            hasher: FxBuildHasher::default(),
            mask: n - 1,
        }
    }

    #[inline]
    fn shard_of(&self, k: &K) -> usize {
        spread(self.hasher.hash_one(k)) & self.mask
    }

    /// Insert `k → v` if `k` is absent; returns true iff it was. Membership
    /// is re-validated under the write lock, so racing inserters of one key
    /// elect exactly one winner and the winner's value is kept.
    pub fn insert(&self, k: K, v: V) -> bool {
        let shard = &self.shards[self.shard_of(&k)];
        if shard.read().contains_key(&k) {
            return false;
        }
        match shard.write().entry(k) {
            std::collections::hash_map::Entry::Occupied(_) => false,
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(v);
                true
            }
        }
    }

    /// Batched insert: the items are grouped by shard so each touched shard
    /// is locked once for a read-phase membership filter and (only if some
    /// item survived) once for the write-phase insert, which re-checks
    /// membership before committing. Returns the keys that were newly
    /// inserted, in shard-grouped order; for duplicate keys within one
    /// batch the first occurrence wins.
    pub fn insert_batch(&self, items: Vec<(K, V)>) -> Vec<K>
    where
        K: Clone,
    {
        let mut tagged: Vec<(usize, Option<(K, V)>)> =
            items.into_iter().map(|kv| (self.shard_of(&kv.0), Some(kv))).collect();
        tagged.sort_by_key(|t| t.0);
        let mut novel = Vec::new();
        let mut i = 0;
        while i < tagged.len() {
            let s = tagged[i].0;
            let mut j = i;
            while j < tagged.len() && tagged[j].0 == s {
                j += 1;
            }
            let shard = &self.shards[s];
            {
                let rd = shard.read();
                for t in &mut tagged[i..j] {
                    if rd.contains_key(&t.1.as_ref().expect("unconsumed item").0) {
                        t.1 = None;
                    }
                }
            }
            if tagged[i..j].iter().any(|t| t.1.is_some()) {
                let mut wr = shard.write();
                for t in &mut tagged[i..j] {
                    if let Some((k, v)) = t.1.take() {
                        if !wr.contains_key(&k) {
                            wr.insert(k.clone(), v);
                            novel.push(k);
                        }
                    }
                }
            }
            i = j;
        }
        novel
    }

    /// The value for `k`, cloned out from under the shard read lock.
    pub fn get_cloned(&self, k: &K) -> Option<V>
    where
        V: Clone,
    {
        self.shards[self.shard_of(k)].read().get(k).cloned()
    }

    /// True iff `k` is present.
    pub fn contains_key(&self, k: &K) -> bool {
        self.shards[self.shard_of(k)].read().contains_key(k)
    }

    /// Total entries across shards — a racy snapshot (see the type docs);
    /// exact when no insert is in flight.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True iff no entries — racy under concurrent insertion, like
    /// [`len`](ShardedMap::len).
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// Per-shard entry counts (racy snapshot), for occupancy diagnostics
    /// and the shard-distribution property tests.
    pub fn shard_occupancy(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.read().len()).collect()
    }
}

/// One interned state in a [`ShardedFpMap`]: the canonical configuration
/// (stored exactly once across the engine) and the caller's value.
struct FpEntry<V> {
    cfg: Config,
    val: V,
}

/// One shard of a [`ShardedFpMap`]: the fingerprint → interned-state map,
/// plus an overflow list for genuine 128-bit collisions (distinct
/// canonical states sharing a fingerprint). Every overflow fingerprint is
/// also present in `map`, so a missing `map` entry proves absence.
struct FpShard<V> {
    map: FxHashMap<Fp128, FpEntry<V>>,
    overflow: Vec<(Fp128, FpEntry<V>)>,
}

impl<V> Default for FpShard<V> {
    fn default() -> FpShard<V> {
        FpShard { map: FxHashMap::default(), overflow: Vec::new() }
    }
}

impl<V> FpShard<V> {
    /// Is a state with fingerprint `fp` whose canonical form matches
    /// `is_cfg` present? `is_cfg` is handed the interned representative so
    /// the caller chooses the cheapest equality check it can (zero-rebuild
    /// `canonical_eq` for raw probes, plain `==` for canonical ones).
    fn contains(&self, fp: Fp128, is_cfg: impl FnMut(&Config) -> bool) -> bool {
        self.entry(fp, is_cfg).is_some()
    }

    /// The interned entry for `fp` whose canonical form matches `is_cfg`.
    fn entry(&self, fp: Fp128, mut is_cfg: impl FnMut(&Config) -> bool) -> Option<&FpEntry<V>> {
        let e = self.map.get(&fp)?;
        if is_cfg(&e.cfg) {
            return Some(e);
        }
        self.overflow.iter().find(|(ofp, oe)| *ofp == fp && is_cfg(&oe.cfg)).map(|(_, oe)| oe)
    }
}

/// The fingerprint-keyed equivalent of [`ShardedMap`], specialised to the
/// engines' visited structure: keys are [`Fp128`] canonical fingerprints,
/// and each entry **interns** its canonical [`Config`] exactly once (the
/// confirmation representative and, for the engine, the trace endpoint)
/// next to the caller's value. Same sharding (avalanche-mixed index),
/// locking (read-filter pass + double-checked write pass) and batching
/// discipline as [`ShardedMap`]; same racy-snapshot contract for `len`.
pub struct ShardedFpMap<V> {
    shards: Vec<RwLock<FpShard<V>>>,
    mask: usize,
}

impl<V> ShardedFpMap<V> {
    /// A map with `2^shard_bits` shards.
    pub fn new(shard_bits: u32) -> ShardedFpMap<V> {
        let n = 1usize << shard_bits;
        ShardedFpMap {
            shards: (0..n).map(|_| RwLock::new(FpShard::default())).collect(),
            mask: n - 1,
        }
    }

    #[inline]
    fn shard_of(&self, fp: Fp128) -> usize {
        spread(fp.lo ^ fp.hi) & self.mask
    }

    /// Insert the (already canonical) initial configuration.
    fn insert_init(&self, fp: Fp128, cfg: Config, val: V) {
        let mut shard = self.shards[self.shard_of(fp)].write();
        shard.map.insert(fp, FpEntry { cfg, val });
    }

    /// True iff a state canonically equal to the **raw** configuration
    /// `succ` is interned; decided by fingerprint lookup plus a
    /// zero-rebuild confirmation walk, never by materialising.
    pub fn contains_state(&self, succ: &Config) -> bool {
        let perms = succ.canonical_perms();
        let fp = succ.fingerprint_with(&perms);
        self.shards[self.shard_of(fp)]
            .read()
            .contains(fp, |cfg| succ.canonical_eq_with(&perms, cfg))
    }

    /// [`contains_state`](ShardedFpMap::contains_state) with an optional
    /// thread-symmetry spec: membership is then decided up to the symmetry
    /// group, matching the keys `insert_batch_por_sym` stores under.
    pub(crate) fn contains_state_sym(
        &self,
        succ: &Config,
        symm: Option<&SymmetrySpec>,
    ) -> bool {
        let Some(spec) = symm else { return self.contains_state(succ) };
        let perms = sym::sym_perms(spec, succ);
        let fp = sym::fingerprint_sym(succ, &perms, spec);
        self.shards[self.shard_of(fp)]
            .read()
            .contains(fp, |cfg| succ.canonical_eq_sym(&perms, spec.maps(), cfg))
    }

    /// The value interned for the **canonical** configuration `canon`,
    /// cloned out from under the shard read lock.
    pub fn get_cloned(&self, canon: &Config) -> Option<V>
    where
        V: Clone,
    {
        let fp = canon.canonical_fingerprint();
        self.shards[self.shard_of(fp)]
            .read()
            .entry(fp, |cfg| cfg == canon)
            .map(|e| e.val.clone())
    }

    /// Total interned states — a racy snapshot like
    /// [`ShardedMap::len`]; exact at quiescence.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| {
            let s = s.read();
            s.map.len() + s.overflow.len()
        }).sum()
    }

    /// True iff no states are interned — racy like
    /// [`ShardedFpMap::len`].
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| {
            let s = s.read();
            s.map.is_empty() && s.overflow.is_empty()
        })
    }

    /// Per-shard interned-state counts (map + overflow; racy snapshot),
    /// for occupancy diagnostics — exact at quiescence, like
    /// [`ShardedFpMap::len`].
    pub fn shard_occupancy(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| {
                let s = s.read();
                s.map.len() + s.overflow.len()
            })
            .collect()
    }
}

/// A store value together with the state's `explored` thread mask — the
/// complement-union of every sleep set the state has been reached with
/// (see `crate::por`). Mask updates happen under the owning shard's write
/// lock, so the "exactly one winner" insert contract extends to "exactly
/// one waker per missing thread".
#[derive(Clone)]
pub(crate) struct Masked<V> {
    val: V,
    explored: ThreadMask,
}

/// A successor queued for POR-aware insertion: the raw configuration, the
/// caller's value, the *explored-mask proposal* — the threads the arrival
/// wants queued for expansion (`full` when POR is off, which makes
/// wake-ups impossible; the persistent set minus the sleep set under
/// dpor) — and the sleep set the successor inherits over this edge. The
/// sleep travels separately because under dpor it is **not** the
/// proposal's complement: threads outside the persistent set are merely
/// postponed (wakeable by later arrivals), not slept.
type PorItem<V> = (Config, V, ThreadMask, ThreadMask);

/// A novel insertion: the interned canonical configuration, its stored
/// explored mask (= the proposal that won) and the winning arrival's
/// sleep set.
type PorNovel = (Config, ThreadMask, ThreadMask);

/// A wake-up: an already-interned state (canonical), the threads newly
/// added to its explored mask, and the arriving sleep set the
/// re-expansion inherits.
type PorWoken = (Config, ThreadMask, ThreadMask);

/// Generic-key counterparts of [`PorNovel`]/[`PorWoken`] for the
/// materialised-canonical store.
type PorNovelK<K> = (K, ThreadMask, ThreadMask);
type PorWokenK<K> = (K, ThreadMask, ThreadMask);

impl<V> ShardedFpMap<Masked<V>> {
    /// Batched insert of raw successors (the engines' hot path, POR-aware
    /// — the single implementation both modes share; a full-mask proposal
    /// makes wake-ups impossible and reduces this to plain insertion).
    /// Items are fingerprinted (one zero-rebuild walk each), grouped by
    /// shard, and filtered with one read-lock pass per touched shard
    /// confirming fingerprint hits via `canonical_eq`; only the survivors
    /// — novel states and wake-up candidates — are then materialised to
    /// canonical form (outside any lock, reusing the probe's permutations)
    /// and committed with a double-checked write pass. Duplicate hits
    /// whose stored explored mask misses threads of the incoming proposal
    /// are *woken*: the mask grows under the write lock and the state is
    /// returned for partial re-expansion. The read-phase drop is sound
    /// because explored masks only ever grow: a duplicate fully absorbed
    /// under the read lock stays absorbed.
    #[cfg(test)]
    pub(crate) fn insert_batch_por(
        &self,
        items: Vec<PorItem<V>>,
    ) -> (Vec<PorNovel>, Vec<PorWoken>) {
        self.insert_batch_por_sym(items, None, false, None)
    }

    /// [`insert_batch_por`](ShardedFpMap::insert_batch_por) with an
    /// optional thread-symmetry spec: items are then keyed by their
    /// symmetry-canonical form (one interned representative per orbit),
    /// and — when `remap_masks` is set, i.e. under POR — each explored
    /// proposal is transported through the item's group permutation `σ`
    /// (bit `t` → bit `σ[t]`) so stored masks always live in the
    /// representative's thread numbering. `remap_masks` must be false
    /// without POR: full masks carry bits `≥ n_threads` that `σ` cannot
    /// index.
    pub(crate) fn insert_batch_por_sym(
        &self,
        items: Vec<PorItem<V>>,
        symm: Option<&SymmetrySpec>,
        remap_masks: bool,
        tel: Option<&Telemetry>,
    ) -> (Vec<PorNovel>, Vec<PorWoken>) {
        // Tally a duplicate hit (and a symmetry-orbit fold when the match
        // went through a non-identity group permutation).
        let count_dup = |sigma: &Option<Vec<u8>>| {
            if let Some(t) = tel {
                t.incr(Counter::DupHits);
                if sigma.as_deref().is_some_and(|s| !sym::is_identity(s)) {
                    t.incr(Counter::SymmetryFolds);
                }
            }
        };
        struct Item<V> {
            shard: usize,
            fp: Fp128,
            perms: CanonPerms,
            raw: Config,
            proposal: ThreadMask,
            sleep: ThreadMask,
            /// `None` once dropped as an absorbed duplicate (or consumed).
            val: Option<V>,
        }
        let mut tagged: Vec<Item<V>> = items
            .into_iter()
            .map(|(raw, val, mut proposal, mut sleep)| {
                let mut perms = raw.canonical_perms();
                let fp = match symm {
                    Some(spec) => {
                        perms.threads = spec.choose(&raw, &perms);
                        if remap_masks {
                            if let Some(sg) = &perms.threads {
                                proposal = sym::remap_mask(proposal, sg);
                                sleep = sym::remap_mask(sleep, sg);
                            }
                        }
                        sym::fingerprint_sym(&raw, &perms, spec)
                    }
                    None => raw.fingerprint_with(&perms),
                };
                Item { shard: self.shard_of(fp), fp, perms, raw, proposal, sleep, val: Some(val) }
            })
            .collect();
        tagged.sort_by_key(|t| t.shard);
        let mut novel = Vec::new();
        let mut woken = Vec::new();
        let mut i = 0;
        while i < tagged.len() {
            let s = tagged[i].shard;
            let mut j = i;
            while j < tagged.len() && tagged[j].shard == s {
                j += 1;
            }
            let shard = &self.shards[s];
            {
                let rd = shard.read();
                for t in &mut tagged[i..j] {
                    if let Some(e) = rd.entry(t.fp, |cfg| match symm {
                        Some(spec) => t.raw.canonical_eq_sym(&t.perms, spec.maps(), cfg),
                        None => t.raw.canonical_eq_with(&t.perms, cfg),
                    }) {
                        if t.proposal & !e.val.explored == 0 {
                            count_dup(&t.perms.threads);
                            t.val = None; // known state, nothing to wake
                        }
                    }
                }
            }
            if tagged[i..j].iter().any(|t| t.val.is_some()) {
                // Materialise survivors outside the locks: novel states pay
                // their one canonicalisation here; wake-up duplicates are
                // rare enough that re-materialising them is cheaper than
                // cloning interned representatives under the read lock.
                let canons: Vec<Option<Config>> = tagged[i..j]
                    .iter()
                    .map(|t| {
                        t.val.is_some().then(|| match symm {
                            Some(spec) => t.raw.canonical_sym(&t.perms, spec.maps()),
                            None => t.raw.canonical_with(&t.perms),
                        })
                    })
                    .collect();
                let mut wr = shard.write();
                let FpShard { map, overflow } = &mut *wr;
                for (t, canon) in tagged[i..j].iter_mut().zip(canons) {
                    let Some(canon) = canon else { continue };
                    let val = t.val.take().expect("survivor carries its value");
                    // Double-check under the write lock (racing workers,
                    // or an earlier duplicate in this very batch).
                    match map.entry(t.fp) {
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(FpEntry {
                                cfg: canon.clone(),
                                val: Masked { val, explored: t.proposal },
                            });
                            novel.push((canon, t.proposal, t.sleep));
                        }
                        std::collections::hash_map::Entry::Occupied(mut e) => {
                            let entry = if e.get().cfg == canon {
                                Some(e.get_mut())
                            } else {
                                overflow
                                    .iter_mut()
                                    .find(|(ofp, oe)| *ofp == t.fp && oe.cfg == canon)
                                    .map(|(_, oe)| oe)
                            };
                            match entry {
                                Some(oe) => {
                                    // Lost the insert race (or a same-batch
                                    // twin won): apply the wake-up rule.
                                    count_dup(&t.perms.threads);
                                    let missing = t.proposal & !oe.val.explored;
                                    if missing != 0 {
                                        oe.val.explored |= missing;
                                        woken.push((canon, missing, t.sleep));
                                    }
                                }
                                None => {
                                    // A true 128-bit collision: intern
                                    // alongside.
                                    if let Some(tl) = tel {
                                        tl.incr(Counter::FpCollisions);
                                    }
                                    overflow.push((
                                        t.fp,
                                        FpEntry {
                                            cfg: canon.clone(),
                                            val: Masked { val, explored: t.proposal },
                                        },
                                    ));
                                    novel.push((canon, t.proposal, t.sleep));
                                }
                            }
                        }
                    }
                }
            }
            i = j;
        }
        (novel, woken)
    }
}

impl<K: Hash + Eq + Clone, V> ShardedMap<K, Masked<V>> {
    /// The materialised-canonical-key counterpart of
    /// [`ShardedFpMap::insert_batch_por`]: same read-filter plus
    /// double-checked write pass as [`ShardedMap::insert_batch`], with
    /// duplicate hits applying the POR wake-up rule under the write lock.
    /// This — not the plain `insert_batch` — is the exact-mode engine
    /// path.
    pub(crate) fn insert_batch_por(
        &self,
        items: Vec<(K, V, ThreadMask, ThreadMask)>,
        tel: Option<&Telemetry>,
    ) -> (Vec<PorNovelK<K>>, Vec<PorWokenK<K>>) {
        struct Item<K, V> {
            shard: usize,
            /// `None` once dropped as an absorbed duplicate (or consumed).
            kv: Option<(K, V)>,
            proposal: ThreadMask,
            sleep: ThreadMask,
        }
        let mut tagged: Vec<Item<K, V>> = items
            .into_iter()
            .map(|(k, v, proposal, sleep)| Item {
                shard: self.shard_of(&k),
                kv: Some((k, v)),
                proposal,
                sleep,
            })
            .collect();
        tagged.sort_by_key(|t| t.shard);
        let mut novel = Vec::new();
        let mut woken = Vec::new();
        let mut i = 0;
        while i < tagged.len() {
            let s = tagged[i].shard;
            let mut j = i;
            while j < tagged.len() && tagged[j].shard == s {
                j += 1;
            }
            let shard = &self.shards[s];
            {
                let rd = shard.read();
                for t in &mut tagged[i..j] {
                    let k = &t.kv.as_ref().expect("unconsumed item").0;
                    if let Some(e) = rd.get(k) {
                        if t.proposal & !e.explored == 0 {
                            if let Some(tl) = tel {
                                tl.incr(Counter::DupHits);
                            }
                            t.kv = None; // absorbed: masks only grow
                        }
                    }
                }
            }
            if tagged[i..j].iter().any(|t| t.kv.is_some()) {
                let mut wr = shard.write();
                for t in &mut tagged[i..j] {
                    if let Some((k, v)) = t.kv.take() {
                        match wr.entry(k) {
                            std::collections::hash_map::Entry::Occupied(mut e) => {
                                if let Some(tl) = tel {
                                    tl.incr(Counter::DupHits);
                                }
                                let missing = t.proposal & !e.get().explored;
                                if missing != 0 {
                                    e.get_mut().explored |= missing;
                                    woken.push((e.key().clone(), missing, t.sleep));
                                }
                            }
                            std::collections::hash_map::Entry::Vacant(e) => {
                                novel.push((e.key().clone(), t.proposal, t.sleep));
                                e.insert(Masked { val: v, explored: t.proposal });
                            }
                        }
                    }
                }
            }
            i = j;
        }
        (novel, woken)
    }
}

/// A visited entry's parent pointer: `None` for the initial configuration.
type Parent = Option<(Config, Tid)>;

/// The visited structure behind [`par_walk`], chosen by
/// [`ExploreOptions::fingerprint`]: the fingerprint-keyed interned store
/// (default) or the legacy map keyed by materialised canonical
/// configurations (ablation A4's baseline). Both intern each canonical
/// configuration exactly once — with its `explored` thread mask for the
/// POR wake-up rule — and agree on every membership decision.
pub(crate) struct VisitedStore<V> {
    mode: StoreMode<V>,
    /// Telemetry sink injected at construction, so dedup events (dup
    /// hits, symmetry folds, confirmed collisions) are tallied inside the
    /// batched insert paths without widening every signature.
    tel: Option<Arc<Telemetry>>,
}

enum StoreMode<V> {
    Fp(ShardedFpMap<Masked<V>>),
    Exact(ShardedMap<Config, Masked<V>>),
}

impl<V: Clone> VisitedStore<V> {
    fn new(fingerprint: bool, shard_bits: u32, tel: Option<Arc<Telemetry>>) -> VisitedStore<V> {
        let mode = if fingerprint {
            StoreMode::Fp(ShardedFpMap::new(shard_bits))
        } else {
            StoreMode::Exact(ShardedMap::new(shard_bits))
        };
        VisitedStore { mode, tel }
    }

    fn insert_init(&self, canon: Config, val: V, explored: ThreadMask) {
        let val = Masked { val, explored };
        match &self.mode {
            StoreMode::Fp(m) => m.insert_init(canon.canonical_fingerprint(), canon, val),
            StoreMode::Exact(m) => {
                m.insert(canon, val);
            }
        }
    }

    /// Membership of a raw successor (used only on the rare cap-hit path),
    /// decided up to the symmetry group when a spec is active.
    fn contains_state(&self, succ: &Config, symm: Option<&SymmetrySpec>) -> bool {
        match &self.mode {
            StoreMode::Fp(m) => m.contains_state_sym(succ, symm),
            StoreMode::Exact(m) => {
                let canon = match symm {
                    Some(spec) => {
                        let perms = sym::sym_perms(spec, succ);
                        succ.canonical_sym(&perms, spec.maps())
                    }
                    None => succ.canonical(),
                };
                m.contains_key(&canon)
            }
        }
    }

    /// Batched insert of raw successors with the POR wake-up rule; returns
    /// the novel canonical configurations with their stored explored masks
    /// plus any woken duplicates (see [`ShardedFpMap::insert_batch_por`]).
    /// With a symmetry spec, keys are symmetry-canonical (one interned
    /// representative per orbit) and — under POR (`remap_masks`) — mask
    /// proposals are transported into representative numbering. The exact
    /// backend materialises every successor first — that is precisely the
    /// per-successor rebuild the fingerprint path eliminates.
    fn insert_batch(
        &self,
        items: Vec<PorItem<V>>,
        symm: Option<&SymmetrySpec>,
        remap_masks: bool,
    ) -> (Vec<PorNovel>, Vec<PorWoken>) {
        let tel = self.tel.as_deref();
        match &self.mode {
            StoreMode::Fp(m) => m.insert_batch_por_sym(items, symm, remap_masks, tel),
            StoreMode::Exact(m) => m.insert_batch_por(
                items
                    .into_iter()
                    .map(|(raw, v, p, slp)| match symm {
                        Some(spec) => {
                            let perms = sym::sym_perms(spec, &raw);
                            let (p, slp) = match (&perms.threads, remap_masks) {
                                (Some(sg), true) => {
                                    (sym::remap_mask(p, sg), sym::remap_mask(slp, sg))
                                }
                                _ => (p, slp),
                            };
                            (raw.canonical_sym(&perms, spec.maps()), v, p, slp)
                        }
                        None => (raw.canonical(), v, p, slp),
                    })
                    .collect(),
                tel,
            ),
        }
    }

    fn get_cloned(&self, canon: &Config) -> Option<V> {
        match &self.mode {
            StoreMode::Fp(m) => m.get_cloned(canon).map(|m| m.val),
            StoreMode::Exact(m) => m.get_cloned(canon).map(|m| m.val),
        }
    }

    fn len(&self) -> usize {
        match &self.mode {
            StoreMode::Fp(m) => m.len(),
            StoreMode::Exact(m) => m.len(),
        }
    }

    /// Per-shard interned-state counts (exact at quiescence).
    fn shard_occupancy(&self) -> Vec<usize> {
        match &self.mode {
            StoreMode::Fp(m) => m.shard_occupancy(),
            StoreMode::Exact(m) => m.shard_occupancy(),
        }
    }
}

/// Rebuild the step sequence from the initial configuration to `last` by
/// walking the parent-pointer store (quiescent after the workers join).
fn reconstruct_trace(
    visited: &VisitedStore<Parent>,
    last: &Config,
) -> Vec<(Tid, Config)> {
    let mut rev: Vec<(Tid, Config)> = Vec::new();
    let mut cur = last.clone();
    while let Some(Some((parent, tid))) = visited.get_cloned(&cur) {
        rev.push((tid, cur));
        cur = parent;
    }
    rev.reverse();
    rev
}

/// Statistics a [`par_walk`] hands back alongside the visited map.
pub(crate) struct WalkStats {
    /// Distinct canonical configurations counted (clamped to
    /// `max_states` when the cap was hit, matching the sequential oracle).
    pub states: usize,
    /// Transitions generated.
    pub transitions: usize,
    /// Terminal configurations where every thread halted.
    pub terminated: Vec<Config>,
    /// Terminal configurations with a blocked thread.
    pub deadlocked: Vec<Config>,
    /// Why the walk stopped (`Complete` = exhausted the space; anything
    /// else = sound lower bound). Budget trips, cancellation, the state
    /// cap and contained worker faults all land here, max-combined.
    pub stop: StopReason,
    /// Structured degradation/fault warnings (POR/DPOR/symmetry caps,
    /// contained worker panics).
    pub notes: Vec<Note>,
}

/// One unit of parallel work: a canonical configuration, the mask of
/// threads to expand, the sleep set the state was reached with, and
/// whether this is the state's first visit (only first visits may classify
/// terminals — see `crate::por`). Without POR, every item is
/// `(cfg, full, ∅, true)`.
struct WorkItem {
    cfg: Config,
    mask: ThreadMask,
    sleep: ThreadMask,
    first: bool,
}

/// The shared batched work-stealing walk both parallel checkers run on:
/// expands every reached canonical configuration exactly once (plus POR
/// wake-up re-expansions of newly woken threads) and drives three
/// callbacks —
///
/// * `edge_value(parent, tid)` — the value stored in the visited store for
///   a successor first discovered over that edge (the engine stores parent
///   pointers here, the outline checker `()`);
/// * `on_edge(parent, tid, successor)` — every generated edge, visited or
///   not (annotation classification). The successor is handed **raw**
///   (non-canonical): the fingerprint path never materialises canonical
///   forms for duplicate successors, so callers that need the canonical
///   form (the outline checker) canonicalise themselves;
/// * `on_novel(config, buf)` — each canonical configuration exactly once,
///   at first discovery (property checks), with a reusable worker-local
///   string buffer so violation-free configurations allocate nothing;
///   also called for the initial configuration before the workers start.
///
/// **Scheduling**: each worker drains a private LIFO backlog before
/// touching the shared injector; novel successors feed that backlog
/// directly, and only the oldest chunk is exported when the backlog
/// outgrows [`KEEP_LOCAL`] or when the injector runs dry with other
/// workers around. The injector therefore sees traffic proportional to
/// the *shared* frontier, not to the state count — single-worker runs
/// never re-queue through it at all.
///
/// The state cap is enforced against a racy running counter, so the store
/// may transiently overshoot `opts.max_states`; the returned
/// [`WalkStats`] reconciles that to the sequential oracle's verdict
/// (truncated, `states == max_states`) whenever the cap was exceeded, so
/// cap-hitting runs agree across engines.
#[allow(clippy::too_many_arguments)]
pub(crate) fn par_walk<V, FV, FE, FN>(
    prog: &CfgProgram,
    objs: &(dyn ObjectSemantics + Sync),
    opts: &ExploreOptions,
    n_workers: usize,
    init_value: V,
    edge_value: FV,
    on_edge: FE,
    on_novel: FN,
) -> (VisitedStore<V>, WalkStats)
where
    V: Clone + Send + Sync,
    FV: Fn(&Config, Tid) -> V + Sync,
    FE: Fn(&Config, Tid, &Config) + Sync,
    FN: Fn(&Config, &mut Vec<String>) + Sync,
{
    let tel = opts.telemetry.clone();
    let visited: VisitedStore<V> = VisitedStore::new(opts.fingerprint, 6, tel.clone());
    let injector: Injector<Vec<WorkItem>> = Injector::new();
    // Worker indices for the per-worker expansion slots: handed out
    // first-come by the spawned threads themselves, so the spawn loop
    // needs no per-iteration captures.
    let worker_ids = AtomicUsize::new(0);
    // Chunks pushed to the injector but not yet fully processed (a stolen
    // chunk stays counted until its worker has drained the whole backlog
    // it spawned); all-workers-idle is `pending == 0` + empty injector.
    let pending = AtomicUsize::new(0);
    let n_states = AtomicUsize::new(0);
    let transitions = AtomicUsize::new(0);
    let truncated = AtomicBool::new(false);
    // The shared stop reason, max-combined across workers (the lattice
    // order is the numeric order of `StopReason::as_u8`). Non-zero also
    // doubles as the workers' "wind down" flag: once any worker trips a
    // budget or faults, everyone drains without expanding further.
    let stop = AtomicU8::new(StopReason::Complete.as_u8());
    // Approximate arena bytes, grown per novel interned state.
    let mem_bytes = AtomicUsize::new(0);
    // Stringified panic payloads of contained worker faults.
    let faults: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let deadline = opts.budget.deadline.map(|d| Instant::now() + d);
    let terminated: Mutex<Vec<Config>> = Mutex::new(Vec::new());
    let deadlocked: Mutex<Vec<Config>> = Mutex::new(Vec::new());
    let n_threads = prog.n_threads();
    let mut notes: Vec<Note> = Vec::new();
    // Thread masks only exist on the POR path, which caps programs at 64
    // bits; larger programs fall back to the unreduced search (which
    // iterates threads by index and supports any count `Tid` can name),
    // surfaced as a structured note.
    let mut por = opts.por || opts.dpor;
    if por && n_threads > 64 {
        por = false;
        notes.push(Note::PorThreadCap { threads: n_threads });
        if let Some(t) = &tel {
            t.incr(Counter::CapDegradations);
        }
    }
    let full = if por { por::full_mask(n_threads) } else { !0 };
    let (spec, capped_orbit) = sym::active_spec(prog, opts.symmetry);
    if let Some(orbit) = capped_orbit {
        notes.push(Note::SymmetryOrbitCap { orbit });
        if let Some(t) = &tel {
            t.incr(Counter::CapDegradations);
        }
    }
    let symm = spec.as_ref();
    let statics = por.then(|| rc11_analyze::conflict_matrix(prog));
    // Persistent-set machinery (A7): `None` unless dpor is on *and* the
    // program fits the 128-location future-footprint capacity — otherwise
    // degrade to sleep-sets-only, which is sound (and noted).
    let pers = (por && opts.dpor).then(|| rc11_analyze::future_footprints(prog)).flatten();
    if por && opts.dpor && pers.is_none() {
        notes.push(Note::DporLocationCap);
        if let Some(t) = &tel {
            t.incr(Counter::CapDegradations);
        }
    }
    let n_workers = n_workers.max(1);

    let init = Config::initial(prog).canonical();
    let mut init_buf = Vec::new();
    on_novel(&init, &mut init_buf);
    debug_assert!(init_buf.is_empty(), "on_novel must drain its buffer");
    // Retry re-submissions go through `insert_batch`, which needs a value
    // for the (impossible) novel case; any placeholder does, the duplicate
    // path discards it.
    let retry_val = init_value.clone();
    let init_prop = pers.as_ref().map_or(full, |p| p.persistent_mask(&init.pcs));
    mem_bytes.store(init.approx_bytes(), Ordering::SeqCst);
    visited.insert_init(init.clone(), init_value, init_prop);
    n_states.store(1, Ordering::SeqCst);
    pending.store(1, Ordering::SeqCst);
    if let Some(t) = &tel {
        t.incr(Counter::States);
        t.frontier_add(1);
    }
    injector.push(vec![WorkItem { cfg: init, mask: init_prop, sleep: 0, first: true }]);

    crossbeam::scope(|scope| {
        for _ in 0..n_workers {
            scope.spawn(|_| {
                let w = worker_ids.fetch_add(1, Ordering::Relaxed);
                let mut local: Vec<WorkItem> = Vec::new();
                let mut buf: Vec<String> = Vec::new();
                loop {
                    match injector.steal() {
                        Steal::Success(chunk) => {
                            local.extend(chunk);
                            // The whole drain runs under `catch_unwind`:
                            // a panicking worker (a bug in a callback, or
                            // an injected chaos fault) is contained — its
                            // surviving backlog goes back through the
                            // injector for the other workers, the fault is
                            // recorded, and the walk degrades instead of
                            // tearing down the process. `local`/`buf` are
                            // owned outside the closure so they survive
                            // the unwind; the shared stores are lock-based
                            // (parking_lot: no poisoning) and every
                            // partial update they may have seen is a sound
                            // prefix — `StopReason::WorkerFault` keeps the
                            // run from claiming completeness.
                            let drained = catch_unwind(AssertUnwindSafe(|| {
                            while let Some(item) = local.pop() {
                                // Budget and cancellation gates, between
                                // work items (mirroring the sequential
                                // explorer's loop-head gates). All four
                                // read *shared* state (the token, the
                                // clock, the global counters), so every
                                // worker trips on its own next item —
                                // backlogs are dropped and the remaining
                                // injector chunks are stolen and discarded,
                                // draining the pending count to zero. A
                                // recorded `WorkerFault` deliberately does
                                // NOT trip this gate: survivors keep
                                // exploring degraded.
                                let tripped = if opts.cancel.is_cancelled() {
                                    Some(StopReason::Cancelled)
                                } else if deadline.is_some_and(|dl| Instant::now() >= dl) {
                                    Some(StopReason::Deadline)
                                } else if opts.budget.max_transitions.is_some_and(|cap| {
                                    transitions.load(Ordering::Relaxed) >= cap
                                }) {
                                    Some(StopReason::TransitionCap)
                                } else if opts.budget.max_mem_bytes.is_some_and(|cap| {
                                    mem_bytes.load(Ordering::Relaxed) >= cap
                                }) {
                                    Some(StopReason::MemBudget)
                                } else {
                                    None
                                };
                                if let Some(reason) = tripped {
                                    stop.fetch_max(reason.as_u8(), Ordering::Relaxed);
                                    if let Some(t) = &tel {
                                        t.frontier_sub(1 + local.len() as u64);
                                    }
                                    local.clear();
                                    break;
                                }
                                // Deterministic chaos fault point: may
                                // stall or panic (contained above).
                                if let Some(chaos) = &opts.chaos {
                                    chaos.on_expansion();
                                }
                                if let Some(t) = &tel {
                                    t.add_expansions(w, 1);
                                    t.frontier_sub(1);
                                }
                                let WorkItem { cfg, mask, sleep, first } = item;
                                let mut fps =
                                    por.then(|| por::LazyFootprints::new(n_threads));
                                let mut items: Vec<PorItem<V>> = Vec::new();
                                let mut any_succ = false;
                                let mut earlier: ThreadMask = 0;
                                for t in 0..n_threads {
                                    if por && mask & (1u64 << t) == 0 {
                                        continue;
                                    }
                                    let succs =
                                        thread_successors(prog, objs, &cfg, t, opts.step);
                                    transitions.fetch_add(succs.len(), Ordering::Relaxed);
                                    if let Some(tl) = &tel {
                                        tl.add(Counter::Transitions, succs.len() as u64);
                                    }
                                    any_succ |= !succs.is_empty();
                                    let child_sleep = match (&mut fps, &statics) {
                                        (Some(fps), Some(cm)) => {
                                            let cs = por::child_sleep_static(
                                                prog,
                                                &cfg,
                                                fps,
                                                cm.static_indep(),
                                                sleep | earlier,
                                                t,
                                            );
                                            earlier |= 1u64 << t;
                                            cs
                                        }
                                        _ => 0,
                                    };
                                    let tid = Tid(t as u8);
                                    for succ in succs {
                                        // Every edge, visited or not, raw.
                                        on_edge(&cfg, tid, &succ);
                                        let v = edge_value(&cfg, tid);
                                        // The successor's persistent set
                                        // (full without dpor): a pure
                                        // function of the program counters,
                                        // computed on the raw successor and
                                        // transported through σ by the
                                        // store (symmetric threads have
                                        // equal future footprints).
                                        let pmask = pers
                                            .as_ref()
                                            .map_or(full, |p| p.persistent_mask(&succ.pcs));
                                        if por {
                                            if let Some(tl) = &tel {
                                                // Reduction attribution per
                                                // successor (zero when the
                                                // reduction is off) — same
                                                // sites as the sequential
                                                // engine's.
                                                tl.add(
                                                    Counter::SleepSetPrunes,
                                                    (pmask & child_sleep).count_ones()
                                                        as u64,
                                                );
                                                tl.add(
                                                    Counter::PersistentSheds,
                                                    (full & !pmask).count_ones() as u64,
                                                );
                                            }
                                        }
                                        items.push((
                                            succ,
                                            v,
                                            pmask & !child_sleep,
                                            child_sleep,
                                        ));
                                    }
                                }
                                if !any_succ {
                                    if first
                                        // Only a first visit may classify,
                                        // and only after probing the
                                        // arrived-asleep threads (a fully
                                        // slept state is not terminal; the
                                        // probe stays out of the transition
                                        // count — see `por::has_any_successor`).
                                        && !por::has_any_successor(
                                            prog,
                                            objs,
                                            &cfg,
                                            full & !mask,
                                            opts.step,
                                        )
                                    {
                                        if cfg.terminated(prog) {
                                            terminated.lock().push(cfg);
                                        } else {
                                            deadlocked.lock().push(cfg);
                                        }
                                    } else if pers.is_some() {
                                        // Retry rule (dpor): every expanded
                                        // thread was blocked — a persistent
                                        // member stuck on a lock acquire,
                                        // say — but the state is not
                                        // terminal. Persistence cannot
                                        // promise an outside thread will
                                        // unblock a member, so grow the
                                        // expansion to every non-slept
                                        // thread with a real successor.
                                        // The re-submission goes through
                                        // the store's wake-up rule, which
                                        // computes the not-yet-explored
                                        // remainder under the shard lock —
                                        // racing retries of one state
                                        // dedup to a single re-expansion.
                                        let rest = full & !mask & !sleep;
                                        if rest != 0
                                            && por::has_any_successor(
                                                prog, objs, &cfg, rest, opts.step,
                                            )
                                        {
                                            let (_, woken) = visited.insert_batch(
                                                vec![(
                                                    cfg,
                                                    retry_val.clone(),
                                                    mask | rest,
                                                    sleep,
                                                )],
                                                symm,
                                                por,
                                            );
                                            for (canon, missing, slp) in woken {
                                                if let Some(t) = &tel {
                                                    t.frontier_add(1);
                                                }
                                                local.push(WorkItem {
                                                    cfg: canon,
                                                    mask: missing,
                                                    sleep: slp,
                                                    first: false,
                                                });
                                            }
                                        }
                                    }
                                    continue;
                                }
                                if n_states.load(Ordering::Relaxed) >= opts.max_states {
                                    // Cap hit: keep draining the queue (so
                                    // every queued state is still expanded
                                    // and classified) but drop novel
                                    // successors, marking truncation only
                                    // if one actually existed — mirroring
                                    // the sequential explorers.
                                    if items
                                        .iter()
                                        .any(|(succ, ..)| !visited.contains_state(succ, symm))
                                    {
                                        truncated.store(true, Ordering::Relaxed);
                                    }
                                    continue;
                                }
                                let (novel, woken) = visited.insert_batch(items, symm, por);
                                let n_queued = novel.len() + woken.len();
                                for (canon, explored, slp) in novel {
                                    n_states.fetch_add(1, Ordering::Relaxed);
                                    mem_bytes
                                        .fetch_add(canon.approx_bytes(), Ordering::Relaxed);
                                    if let Some(t) = &tel {
                                        t.incr(Counter::States);
                                    }
                                    on_novel(&canon, &mut buf);
                                    debug_assert!(
                                        buf.is_empty(),
                                        "on_novel must drain its buffer"
                                    );
                                    local.push(WorkItem {
                                        cfg: canon,
                                        mask: explored,
                                        sleep: slp,
                                        first: true,
                                    });
                                }
                                for (canon, missing, slp) in woken {
                                    local.push(WorkItem {
                                        cfg: canon,
                                        mask: missing,
                                        sleep: slp,
                                        first: false,
                                    });
                                }
                                if let Some(t) = &tel {
                                    t.frontier_add(n_queued as u64);
                                }
                                // Share the oldest chunk when the backlog
                                // outgrows the keep-local bound, or as soon
                                // as the injector runs dry while other
                                // workers could be starving. A lone worker
                                // never exports: there is nobody to share
                                // with, and the round-trip is pure cost.
                                if n_workers > 1
                                    && (local.len() > KEEP_LOCAL
                                        || (local.len() > FLUSH_BATCH
                                            && injector.is_empty()))
                                {
                                    let shared: Vec<WorkItem> =
                                        local.drain(..FLUSH_BATCH).collect();
                                    pending.fetch_add(1, Ordering::SeqCst);
                                    if let Some(t) = &tel {
                                        t.incr(Counter::InjectorFlushes);
                                    }
                                    injector.push(shared);
                                } else if n_queued > 0 {
                                    // This expansion's new work stayed on
                                    // the private backlog — the keep-local
                                    // scheduling win the telemetry
                                    // attributes.
                                    if let Some(t) = &tel {
                                        t.add(
                                            Counter::KeepLocalRetained,
                                            n_queued as u64,
                                        );
                                    }
                                }
                            }
                            }));
                            match drained {
                                Ok(()) => {
                                    pending.fetch_sub(1, Ordering::SeqCst);
                                }
                                Err(payload) => {
                                    // Contained fault: hand the surviving
                                    // backlog to the other workers (the +1
                                    // lands *before* our own -1 so the
                                    // pending count never transiently hits
                                    // zero and ends the walk early), record
                                    // the fault, and retire this worker.
                                    // The in-flight item itself is lost —
                                    // sound, because `WorkerFault` keeps
                                    // the report from claiming `Complete`.
                                    buf.clear();
                                    if !local.is_empty() {
                                        pending.fetch_add(1, Ordering::SeqCst);
                                        injector.push(std::mem::take(&mut local));
                                    }
                                    pending.fetch_sub(1, Ordering::SeqCst);
                                    stop.fetch_max(
                                        StopReason::WorkerFault.as_u8(),
                                        Ordering::Relaxed,
                                    );
                                    let message = payload
                                        .downcast_ref::<&str>()
                                        .map(|s| s.to_string())
                                        .or_else(|| payload.downcast_ref::<String>().cloned())
                                        .unwrap_or_else(|| "worker panicked".to_string());
                                    faults.lock().push(message);
                                    return;
                                }
                            }
                        }
                        Steal::Retry => {}
                        Steal::Empty => {
                            if pending.load(Ordering::SeqCst) == 0 {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                }
            });
        }
    })
    .expect("uncontained worker panic escaped catch_unwind");

    // Reconcile the racy cap: when workers overshot `max_states`, report
    // the sequential oracle's verdict — `StateCap`, with `states` clamped
    // to the cap (still a valid lower bound on the reachable space).
    let mut states = visited.len();
    let mut final_stop = StopReason::from_u8(stop.into_inner());
    if truncated.into_inner() || states > opts.max_states {
        final_stop.bump(StopReason::StateCap);
        states = states.min(opts.max_states);
    }
    // A cancellation that raced the final items must still be reported: a
    // cancelled run never claims `Complete`.
    if opts.cancel.is_cancelled() {
        final_stop.bump(StopReason::Cancelled);
    }
    for message in faults.into_inner() {
        final_stop.bump(StopReason::WorkerFault);
        let note = Note::WorkerFault { message };
        if !notes.contains(&note) {
            notes.push(note);
        }
    }

    if let Some(t) = &tel {
        // The store is quiescent after the join: record the exact
        // per-shard occupancy histogram and zero the (now empty) frontier
        // gauge — the drain paths above keep it balanced, but clamping
        // here makes end-of-run snapshots exact regardless of races.
        t.record_shard_occupancy(&visited.shard_occupancy());
        t.frontier_set(0);
    }

    let stats = WalkStats {
        states,
        transitions: transitions.into_inner(),
        terminated: terminated.into_inner(),
        deadlocked: deadlocked.into_inner(),
        stop: final_stop,
        notes,
    };
    (visited, stats)
}

/// Exhaustive parallel reachability with a property callback. Semantically
/// identical to [`crate::explore::Explorer::explore_with`]: same state,
/// transition and terminal counts and the same violation set — including
/// counterexample traces when [`ExploreOptions::record_traces`] is set
/// (the differential suite enforces this). Prefer going through
/// [`crate::engine::Engine`] / [`crate::engine::choose_engine`].
pub fn par_explore(
    prog: &CfgProgram,
    objs: &(dyn ObjectSemantics + Sync),
    opts: &ExploreOptions,
    n_workers: usize,
    check: impl Fn(&Config, &mut Vec<String>) + Sync,
) -> EngineReport {
    // Same detection `par_walk` runs (it is deterministic and cheap):
    // under symmetry reduction the check callback must additionally see
    // every non-representative orbit member, and terminal sets must be
    // orbit-expanded back to the unreduced search's. The cap note is
    // `par_walk`'s to report.
    let (spec, _) = sym::active_spec(prog, opts.symmetry);

    // Violations as (what, config, orbit origin); traces are attached
    // after the join, once the parent-pointer store is quiescent. For an
    // orbit-member violation the origin carries the interned
    // representative (where the parent-pointer walk must start) and the
    // group permutation `π` mapping the representative chain onto the
    // member's.
    type Origin = Option<(Config, Vec<u8>)>;
    let run_start = Instant::now();
    // Telemetry rides as a delta: snapshot the (possibly shared,
    // cumulative) sink at entry and attach only this run's contribution.
    let tel0 = opts.telemetry.as_ref().map(|t| t.snapshot());
    let found: Mutex<Vec<(String, Config, Origin)>> = Mutex::new(Vec::new());

    let (visited, mut stats) = par_walk(
        prog,
        objs,
        opts,
        n_workers,
        None,
        |parent, tid| opts.record_traces.then(|| (parent.clone(), tid)),
        |_, _, _| {},
        |canon, buf| {
            check(canon, buf);
            if !buf.is_empty() {
                let mut f = found.lock();
                for what in buf.drain(..) {
                    f.push((what, canon.clone(), None));
                }
            }
            if let Some(spec) = &spec {
                for (pi, member) in sym::orbit_members(spec, canon) {
                    check(&member, buf);
                    if !buf.is_empty() {
                        let mut f = found.lock();
                        for what in buf.drain(..) {
                            f.push((what, member.clone(), Some((canon.clone(), pi.clone()))));
                        }
                    }
                }
            }
        },
    );

    if let Some(spec) = &spec {
        sym::expand_terminals(spec, &mut stats.terminated);
        sym::expand_terminals(spec, &mut stats.deadlocked);
    }

    let violations = found
        .into_inner()
        .into_iter()
        .map(|(what, config, origin)| {
            let trace = opts.record_traces.then(|| match (&origin, &spec) {
                // A member violation: walk the representative chain, then
                // permute it onto the member's orbit copy (ending at the
                // violating configuration because the original ended at
                // its representative).
                (Some((rep, pi)), Some(spec)) => {
                    sym::permute_trace(spec, pi, reconstruct_trace(&visited, rep))
                }
                _ => reconstruct_trace(&visited, &config),
            });
            Violation { what, config, trace }
        })
        .collect();

    EngineReport {
        states: stats.states,
        transitions: stats.transitions,
        terminated: stats.terminated,
        deadlocked: stats.deadlocked,
        violations,
        stop: stats.stop,
        notes: stats.notes,
        wall: run_start.elapsed(),
        telemetry: match (&opts.telemetry, &tel0) {
            (Some(t), Some(t0)) => Some(t.snapshot().delta(t0)),
            _ => None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::Explorer;
    use rc11_lang::builder::*;
    use rc11_lang::compile;
    use rc11_lang::machine::NoObjects;
    use rc11_objects::AbstractObjects;

    fn sb_prog() -> rc11_lang::CfgProgram {
        let mut p = ProgramBuilder::new("sb");
        let x = p.client_var("x", 0);
        let y = p.client_var("y", 0);
        let mut t1 = ThreadBuilder::new();
        let r1 = t1.reg("r1");
        p.add_thread(t1, seq([wr_rel(x, 1), rd_acq(r1, y)]));
        let mut t2 = ThreadBuilder::new();
        let r2 = t2.reg("r2");
        p.add_thread(t2, seq([wr_rel(y, 1), rd_acq(r2, x)]));
        compile(&p.build())
    }

    #[test]
    fn parallel_matches_sequential_state_count() {
        let prog = sb_prog();
        let seq_report = Explorer::new(&prog, &NoObjects).explore();
        for workers in [1, 2, 4] {
            for fingerprint in [true, false] {
                let opts = ExploreOptions { fingerprint, ..Default::default() };
                let par_report = par_explore(&prog, &NoObjects, &opts, workers, |_, _| {});
                assert_eq!(
                    par_report.states, seq_report.states,
                    "workers = {workers}, fingerprint = {fingerprint}"
                );
                assert_eq!(par_report.terminated.len(), seq_report.terminated.len());
                assert_eq!(par_report.transitions, seq_report.transitions);
            }
        }
    }

    #[test]
    fn parallel_lock_program_agrees() {
        let mut p = ProgramBuilder::new("lock2");
        let x = p.client_var("x", 0);
        let l = p.lock("l");
        for _ in 0..2 {
            let mut tb = ThreadBuilder::new();
            let r = tb.reg("r");
            p.add_thread(tb, seq([acquire(l), rd(r, x), wr(x, add(r, 1)), release(l)]));
        }
        let prog = compile(&p.build());
        let seq_report = Explorer::new(&prog, &AbstractObjects).explore();
        let par_report =
            par_explore(&prog, &AbstractObjects, &ExploreOptions::default(), 4, |_, _| {});
        assert_eq!(par_report.states, seq_report.states);
    }

    #[test]
    fn parallel_finds_violations_with_traces() {
        let prog = sb_prog();
        // "r1 and r2 never both 0" is false under RA — the parallel checker
        // must find it and hand back a replayable trace.
        let report = par_explore(
            &prog,
            &NoObjects,
            &ExploreOptions::default(),
            4,
            |cfg: &Config, out: &mut Vec<String>| {
                if cfg.terminated(&prog)
                    && cfg.reg(0, rc11_lang::Reg(0)) == rc11_core::Val::Int(0)
                    && cfg.reg(1, rc11_lang::Reg(0)) == rc11_core::Val::Int(0)
                {
                    out.push("both zero".into());
                }
            },
        );
        assert!(!report.violations.is_empty(), "SB weak outcome must be reachable");
        for v in &report.violations {
            let trace = v.trace.as_ref().expect("parallel violations carry traces");
            assert!(!trace.is_empty(), "terminal violation needs at least one step");
            assert_eq!(&trace.last().unwrap().1, &v.config, "trace ends at the violation");
        }
    }

    #[test]
    fn traces_disabled_when_not_recording() {
        let prog = sb_prog();
        let opts = ExploreOptions { record_traces: false, ..Default::default() };
        let report =
            par_explore(&prog, &NoObjects, &opts, 2, |cfg: &Config, out: &mut Vec<String>| {
            if cfg.terminated(&prog) {
                out.push("terminal".into());
            }
        });
        assert!(!report.violations.is_empty());
        assert!(report.violations.iter().all(|v| v.trace.is_none()));
    }

    #[test]
    fn truncation_is_reported() {
        let prog = sb_prog();
        let opts = ExploreOptions { max_states: 3, ..Default::default() };
        let report = par_explore(&prog, &NoObjects, &opts, 2, |_, _| {});
        assert!(report.truncated());
        assert_eq!(report.stop, crate::engine::StopReason::StateCap);
        assert!(!report.ok());
    }

    /// The fingerprint store dedups representationally distinct raw forms
    /// of the same canonical state, interns the canonical form once, and
    /// serves value lookups by canonical configuration.
    #[test]
    fn sharded_fp_map_interns_by_canonical_identity() {
        let prog = sb_prog();
        let init = Config::initial(&prog).canonical();
        let succs =
            rc11_lang::machine::successors(&prog, &NoObjects, &init, Default::default());
        assert!(!succs.is_empty());
        let raw = succs[0].1.clone();
        let canon = raw.canonical();
        assert_ne!(raw, canon, "raw successor ids differ from canonical ids");

        let m: ShardedFpMap<Masked<u32>> = ShardedFpMap::new(3);
        // Same state under two representations in one batch: one winner
        // (the full-mask proposal makes wake-ups impossible, mirroring a
        // non-POR engine run).
        let (novel, woken) =
            m.insert_batch_por(vec![(raw.clone(), 1, !0, 0), (canon.clone(), 2, !0, 0)]);
        assert_eq!(novel, vec![(canon.clone(), !0, 0)]);
        assert!(woken.is_empty());
        assert_eq!(m.len(), 1);
        // Across batches: both representations are already known.
        let (novel, woken) =
            m.insert_batch_por(vec![(canon.clone(), 3, !0, 0), (raw.clone(), 4, !0, 0)]);
        assert!(novel.is_empty() && woken.is_empty());
        assert!(m.contains_state(&raw));
        assert!(m.contains_state(&canon));
        assert!(!m.contains_state(&init));
        assert_eq!(m.get_cloned(&canon).map(|v| v.val), Some(1), "first occurrence wins");
        assert!(m.get_cloned(&init).is_none());
        assert!(!m.is_empty());
    }

    /// The POR wake-up rule at the store level: a duplicate arriving with
    /// an explored-mask proposal exceeding the stored mask grows the mask
    /// under the write lock and reports the missing threads exactly once;
    /// absorbed duplicates report nothing.
    #[test]
    fn sharded_fp_map_wakes_underexplored_duplicates() {
        let prog = sb_prog();
        let init = Config::initial(&prog).canonical();
        let succs =
            rc11_lang::machine::successors(&prog, &NoObjects, &init, Default::default());
        let raw = succs[0].1.clone();
        let canon = raw.canonical();

        let m: ShardedFpMap<Masked<u32>> = ShardedFpMap::new(3);
        // First arrival: threads {0} explored, thread 1 slept.
        let (novel, woken) = m.insert_batch_por(vec![(raw.clone(), 1, 0b01, 0b10)]);
        assert_eq!(novel, vec![(canon.clone(), 0b01, 0b10)]);
        assert!(woken.is_empty());
        // A smaller-or-equal proposal is absorbed silently.
        let (novel, woken) = m.insert_batch_por(vec![(canon.clone(), 2, 0b01, 0b10)]);
        assert!(novel.is_empty() && woken.is_empty());
        // A larger proposal wakes exactly the missing thread, handing the
        // re-expansion the *arriving* sleep set…
        let (novel, woken) = m.insert_batch_por(vec![(raw.clone(), 3, 0b11, 0)]);
        assert!(novel.is_empty());
        assert_eq!(woken, vec![(canon.clone(), 0b10, 0)]);
        // …and only once: the stored mask has grown.
        let (novel, woken) = m.insert_batch_por(vec![(canon, 4, 0b11, 0)]);
        assert!(novel.is_empty() && woken.is_empty());
    }

    #[test]
    fn sharded_set_dedups() {
        let s: ShardedSet<u64> = ShardedSet::new(4);
        assert!(s.insert(1));
        assert!(!s.insert(1));
        assert!(s.insert(2));
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    /// Racing inserts of the same values from many threads: each distinct
    /// value must be reported new by exactly one thread.
    #[test]
    fn sharded_set_concurrent_insert_unique_winner() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        const VALUES: u64 = 2_000;
        const THREADS: usize = 8;
        let s: ShardedSet<u64> = ShardedSet::new(4);
        let wins = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let (s, wins) = (&s, &wins);
                scope.spawn(move || {
                    // Interleave directions so threads collide on the same
                    // values at the same time instead of racing in lockstep.
                    for i in 0..VALUES {
                        let v = if t % 2 == 0 { i } else { VALUES - 1 - i };
                        if s.insert(v) {
                            wins.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(wins.into_inner(), VALUES as usize, "each value must have one winner");
        assert_eq!(s.len(), VALUES as usize);
    }

    /// The configured shard count is honored even for hash distributions
    /// that are unfriendly to power-of-two masking (stride-aligned keys):
    /// every shard must receive elements and the per-shard totals must sum
    /// to `len()`.
    #[test]
    fn sharded_set_spreads_awkward_distributions() {
        for shard_bits in [1u32, 3, 5] {
            let s: ShardedSet<u64> = ShardedSet::new(shard_bits);
            assert_eq!(s.shard_occupancy().len(), 1 << shard_bits);
            // Stride-128 keys: low bits constant, so a naive `hash & mask`
            // of an identity-style hash would land everything in one shard.
            for i in 0..4_096u64 {
                assert!(s.insert(i * 128));
            }
            let per_shard = s.shard_occupancy();
            assert_eq!(per_shard.iter().sum::<usize>(), 4_096);
            assert_eq!(s.len(), 4_096);
            let empty = per_shard.iter().filter(|&&n| n == 0).count();
            assert_eq!(
                empty, 0,
                "all {} shards should be populated, got counts {:?}",
                1 << shard_bits,
                per_shard
            );
        }
    }

    #[test]
    fn sharded_map_first_value_wins() {
        let m: ShardedMap<u64, &str> = ShardedMap::new(3);
        assert!(m.insert(7, "first"));
        assert!(!m.insert(7, "second"));
        assert_eq!(m.get_cloned(&7), Some("first"));
        assert_eq!(m.len(), 1);
        assert!(!m.is_empty());
    }

    #[test]
    fn sharded_map_batch_insert_dedups_within_and_across_batches() {
        let m: ShardedMap<u64, u64> = ShardedMap::new(4);
        // Duplicate key inside one batch: first occurrence wins.
        let novel = m.insert_batch(vec![(1, 10), (2, 20), (1, 11)]);
        let mut sorted = novel.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2]);
        assert_eq!(m.get_cloned(&1), Some(10));
        // Across batches: already-present keys are filtered.
        let novel = m.insert_batch(vec![(2, 21), (3, 30)]);
        assert_eq!(novel, vec![3]);
        assert_eq!(m.len(), 3);
    }
}
