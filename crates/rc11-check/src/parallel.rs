//! Parallel state-space exploration.
//!
//! Work-stealing BFS over crossbeam's `Injector`, with a sharded visited
//! set (parking_lot RwLock shards, FxHash sharding) so workers rarely
//! contend. Properties are checked by a `Sync` callback; violations carry
//! configurations but no traces (trace recording is inherently sequential —
//! use the sequential explorer to reproduce a violation with a trace).
//!
//! This is ablation A3 of DESIGN.md: the benches sweep worker counts to
//! show exploration scaling.

use crate::explore::{ExploreOptions, Report, Violation};
use crate::fxhash::{FxBuildHasher, FxHashSet};
use crossbeam::deque::{Injector, Steal};
use parking_lot::{Mutex, RwLock};
use rc11_lang::cfg::CfgProgram;
use rc11_lang::machine::{successors, Config, ObjectSemantics};
use std::hash::{BuildHasher, Hash};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// A concurrent set sharded by hash, for visited-state deduplication.
pub struct ShardedSet<T> {
    shards: Vec<RwLock<FxHashSet<T>>>,
    hasher: FxBuildHasher,
    mask: usize,
}

impl<T: Hash + Eq> ShardedSet<T> {
    /// A set with `2^shard_bits` shards.
    pub fn new(shard_bits: u32) -> ShardedSet<T> {
        let n = 1usize << shard_bits;
        ShardedSet {
            shards: (0..n).map(|_| RwLock::new(FxHashSet::default())).collect(),
            hasher: FxBuildHasher::default(),
            mask: n - 1,
        }
    }

    /// Insert; returns true iff the value was new.
    pub fn insert(&self, v: T) -> bool {
        let h = self.hasher.hash_one(&v) as usize;
        let shard = &self.shards[(h >> 7) & self.mask];
        {
            let read = shard.read();
            if read.contains(&v) {
                return false;
            }
        }
        shard.write().insert(v)
    }

    /// Total elements across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True iff no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Exhaustive parallel reachability with a property callback. Semantically
/// identical to [`crate::explore::Explorer::explore_with`] (same state
/// counts), traces excepted.
pub fn par_explore(
    prog: &CfgProgram,
    objs: &(dyn ObjectSemantics + Sync),
    opts: ExploreOptions,
    n_workers: usize,
    check: impl Fn(&Config) -> Vec<String> + Sync,
) -> Report {
    let visited: ShardedSet<Config> = ShardedSet::new(6);
    let injector: Injector<Config> = Injector::new();
    let in_flight = AtomicUsize::new(0);
    let transitions = AtomicUsize::new(0);
    let truncated = AtomicBool::new(false);
    let terminated: Mutex<Vec<Config>> = Mutex::new(Vec::new());
    let deadlocked: Mutex<Vec<Config>> = Mutex::new(Vec::new());
    let violations: Mutex<Vec<Violation>> = Mutex::new(Vec::new());

    let init = Config::initial(prog).canonical();
    for what in check(&init) {
        violations.lock().push(Violation { what, config: init.clone(), trace: None });
    }
    visited.insert(init.clone());
    in_flight.store(1, Ordering::SeqCst);
    injector.push(init);

    crossbeam::scope(|scope| {
        for _ in 0..n_workers.max(1) {
            scope.spawn(|_| loop {
                match injector.steal() {
                    Steal::Success(cfg) => {
                        let succs = successors(prog, objs, &cfg, opts.step);
                        transitions.fetch_add(succs.len(), Ordering::Relaxed);
                        if succs.is_empty() {
                            if cfg.terminated(prog) {
                                terminated.lock().push(cfg);
                            } else {
                                deadlocked.lock().push(cfg);
                            }
                        } else {
                            for (_tid, succ) in succs {
                                let canon = succ.canonical();
                                if visited.len() >= opts.max_states {
                                    truncated.store(true, Ordering::Relaxed);
                                    continue;
                                }
                                if visited.insert(canon.clone()) {
                                    for what in check(&canon) {
                                        violations.lock().push(Violation {
                                            what,
                                            config: canon.clone(),
                                            trace: None,
                                        });
                                    }
                                    in_flight.fetch_add(1, Ordering::SeqCst);
                                    injector.push(canon);
                                }
                            }
                        }
                        in_flight.fetch_sub(1, Ordering::SeqCst);
                    }
                    Steal::Retry => {}
                    Steal::Empty => {
                        if in_flight.load(Ordering::SeqCst) == 0 {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            });
        }
    })
    .expect("worker panicked");

    Report {
        states: visited.len(),
        transitions: transitions.into_inner(),
        terminated: terminated.into_inner(),
        deadlocked: deadlocked.into_inner(),
        violations: violations.into_inner(),
        truncated: truncated.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::Explorer;
    use rc11_lang::builder::*;
    use rc11_lang::compile;
    use rc11_lang::machine::NoObjects;
    use rc11_objects::AbstractObjects;

    fn sb_prog() -> rc11_lang::CfgProgram {
        let mut p = ProgramBuilder::new("sb");
        let x = p.client_var("x", 0);
        let y = p.client_var("y", 0);
        let mut t1 = ThreadBuilder::new();
        let r1 = t1.reg("r1");
        p.add_thread(t1, seq([wr_rel(x, 1), rd_acq(r1, y)]));
        let mut t2 = ThreadBuilder::new();
        let r2 = t2.reg("r2");
        p.add_thread(t2, seq([wr_rel(y, 1), rd_acq(r2, x)]));
        compile(&p.build())
    }

    #[test]
    fn parallel_matches_sequential_state_count() {
        let prog = sb_prog();
        let seq_report = Explorer::new(&prog, &NoObjects).explore();
        for workers in [1, 2, 4] {
            let par_report = par_explore(
                &prog,
                &NoObjects,
                ExploreOptions::default(),
                workers,
                |_| Vec::new(),
            );
            assert_eq!(par_report.states, seq_report.states, "workers = {workers}");
            assert_eq!(par_report.terminated.len(), seq_report.terminated.len());
            assert_eq!(par_report.transitions, seq_report.transitions);
        }
    }

    #[test]
    fn parallel_lock_program_agrees() {
        let mut p = ProgramBuilder::new("lock2");
        let x = p.client_var("x", 0);
        let l = p.lock("l");
        for _ in 0..2 {
            let mut tb = ThreadBuilder::new();
            let r = tb.reg("r");
            p.add_thread(tb, seq([acquire(l), rd(r, x), wr(x, add(r, 1)), release(l)]));
        }
        let prog = compile(&p.build());
        let seq_report = Explorer::new(&prog, &AbstractObjects).explore();
        let par_report =
            par_explore(&prog, &AbstractObjects, ExploreOptions::default(), 4, |_| Vec::new());
        assert_eq!(par_report.states, seq_report.states);
    }

    #[test]
    fn parallel_finds_violations() {
        let prog = sb_prog();
        // "r1 and r2 never both 0" is false under RA — the parallel checker
        // must find it.
        let report = par_explore(
            &prog,
            &NoObjects,
            ExploreOptions::default(),
            4,
            |cfg: &Config| {
                if cfg.terminated(&prog)
                    && cfg.reg(0, rc11_lang::Reg(0)) == rc11_core::Val::Int(0)
                    && cfg.reg(1, rc11_lang::Reg(0)) == rc11_core::Val::Int(0)
                {
                    vec!["both zero".into()]
                } else {
                    Vec::new()
                }
            },
        );
        assert!(!report.violations.is_empty(), "SB weak outcome must be reachable");
    }

    #[test]
    fn sharded_set_dedups() {
        let s: ShardedSet<u64> = ShardedSet::new(4);
        assert!(s.insert(1));
        assert!(!s.insert(1));
        assert!(s.insert(2));
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    /// Racing inserts of the same values from many threads: each distinct
    /// value must be reported new by exactly one thread.
    #[test]
    fn sharded_set_concurrent_insert_unique_winner() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        const VALUES: u64 = 2_000;
        const THREADS: usize = 8;
        let s: ShardedSet<u64> = ShardedSet::new(4);
        let wins = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let (s, wins) = (&s, &wins);
                scope.spawn(move || {
                    // Interleave directions so threads collide on the same
                    // values at the same time instead of racing in lockstep.
                    for i in 0..VALUES {
                        let v = if t % 2 == 0 { i } else { VALUES - 1 - i };
                        if s.insert(v) {
                            wins.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(wins.into_inner(), VALUES as usize, "each value must have one winner");
        assert_eq!(s.len(), VALUES as usize);
    }

    /// The configured shard count is honored even for hash distributions
    /// that are unfriendly to power-of-two masking (stride-aligned keys):
    /// every shard must receive elements and the per-shard totals must sum
    /// to `len()`.
    #[test]
    fn sharded_set_spreads_awkward_distributions() {
        for shard_bits in [1u32, 3, 5] {
            let s: ShardedSet<u64> = ShardedSet::new(shard_bits);
            assert_eq!(s.shards.len(), 1 << shard_bits);
            // Stride-128 keys: low bits constant, so a naive `hash & mask`
            // of an identity-style hash would land everything in one shard.
            for i in 0..4_096u64 {
                assert!(s.insert(i * 128));
            }
            let per_shard: Vec<usize> = s.shards.iter().map(|sh| sh.read().len()).collect();
            assert_eq!(per_shard.iter().sum::<usize>(), 4_096);
            assert_eq!(s.len(), 4_096);
            let empty = per_shard.iter().filter(|&&n| n == 0).count();
            assert_eq!(
                empty, 0,
                "all {} shards should be populated, got counts {:?}",
                1 << shard_bits,
                per_shard
            );
        }
    }
}
