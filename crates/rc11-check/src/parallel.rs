//! The high-throughput parallel exploration engine.
//!
//! Work-stealing exhaustive search over crossbeam's `Injector`, rebuilt
//! around three throughput and one capability upgrade over the original
//! ablation-A3 prototype:
//!
//! * **Batched work distribution** — workers accumulate novel states in a
//!   worker-local buffer and flush them to the shared injector in chunks
//!   ([`FLUSH_BATCH`]), so steal traffic and queue-lock contention scale
//!   with batches, not states.
//! * **Batched, double-checked shard insertion** — the visited structure is
//!   a [`ShardedMap`] (parking_lot RwLock shards); all successors of one
//!   expansion are grouped by shard and inserted with one read-lock filter
//!   pass plus one write-lock pass per touched shard, re-checking membership
//!   under the write lock so racing workers agree on exactly one winner per
//!   state.
//! * **Mixed shard indexing** — shard selection feeds the key's hash
//!   through an avalanche mixer ([`spread`]) instead of using a fixed bit
//!   window, so stride-aligned or low-entropy key patterns still populate
//!   every shard (property-tested in `tests/sharded_props.rs`).
//! * **Counterexample traces** — the visited map stores
//!   `Config → (parent configuration, moving thread)` first-discovery
//!   parent pointers (when [`ExploreOptions::record_traces`] is set), so
//!   parallel violations reconstruct full replayable traces after the
//!   workers join, exactly like the sequential explorer's. (Discovery
//!   order is a race in the parallel engine and a stack discipline in the
//!   sequential one, so traces are *valid* paths from the initial
//!   configuration, not shortest ones — in either engine.)
//!
//! Engine selection is [`crate::engine::choose_engine`]; the sequential
//! explorer remains the reference oracle, and `tests/engine_agreement.rs`
//! (workspace root) proves state/transition/terminal/violation parity on
//! the full litmus gallery and the outline programs at 1/2/4/8 workers.
//! This is ablation A3 of DESIGN.md: the benches sweep worker counts to
//! show exploration scaling.

use crate::engine::{EngineReport, ExploreOptions, Violation};
use crate::fxhash::{FxBuildHasher, FxHashMap, FxHashSet};
use crossbeam::deque::{Injector, Steal};
use parking_lot::{Mutex, RwLock};
use rc11_core::Tid;
use rc11_lang::cfg::CfgProgram;
use rc11_lang::machine::{successors, Config, ObjectSemantics};
use std::hash::{BuildHasher, Hash};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Novel states a worker buffers locally before flushing one chunk to the
/// shared injector.
pub const FLUSH_BATCH: usize = 32;

/// Avalanche-mix a hash into a shard index base: xor-fold and multiply so
/// every input bit influences the low bits the mask keeps. Keys whose
/// hashes differ only in high bits (stride-aligned patterns, low-entropy
/// hash functions) still spread across shards.
#[inline]
fn spread(h: u64) -> usize {
    let h = h ^ (h >> 33);
    let h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    (h ^ (h >> 33)) as usize
}

/// A concurrent set sharded by hash, for visited-state deduplication.
///
/// `insert` is linearisable per value: the membership test is re-validated
/// under the shard's write lock (double-checked locking), so for any value
/// inserted concurrently by many threads exactly one caller observes
/// `true`. [`len`](ShardedSet::len) and [`is_empty`](ShardedSet::is_empty)
/// are **racy snapshots**: they lock the shards one at a time, so under
/// concurrent insertion they return a value between the set's size when the
/// call started and its size when the call finished — exact only at
/// quiescence (e.g. after workers join).
pub struct ShardedSet<T> {
    shards: Vec<RwLock<FxHashSet<T>>>,
    hasher: FxBuildHasher,
    mask: usize,
}

impl<T: Hash + Eq> ShardedSet<T> {
    /// A set with `2^shard_bits` shards.
    pub fn new(shard_bits: u32) -> ShardedSet<T> {
        let n = 1usize << shard_bits;
        ShardedSet {
            shards: (0..n).map(|_| RwLock::new(FxHashSet::default())).collect(),
            hasher: FxBuildHasher::default(),
            mask: n - 1,
        }
    }

    #[inline]
    fn shard_of(&self, v: &T) -> usize {
        spread(self.hasher.hash_one(v)) & self.mask
    }

    /// Insert; returns true iff the value was new. A read-lock fast path
    /// rejects known values; the slow path re-validates membership under
    /// the write lock, so concurrent inserters of the same value elect
    /// exactly one winner.
    pub fn insert(&self, v: T) -> bool {
        let shard = &self.shards[self.shard_of(&v)];
        if shard.read().contains(&v) {
            return false;
        }
        shard.write().insert(v)
    }

    /// Total elements across shards — a racy snapshot (see the type docs);
    /// exact when no insert is in flight.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True iff no elements — racy under concurrent insertion, like
    /// [`len`](ShardedSet::len).
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// Per-shard element counts (racy snapshot), for occupancy diagnostics
    /// and the shard-distribution property tests.
    pub fn shard_occupancy(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.read().len()).collect()
    }
}

/// A concurrent map sharded by key hash. The parallel engine stores visited
/// configurations here, each mapped to its first-discovery parent pointer
/// (`(parent configuration, moving thread)`), from which counterexample
/// traces are reconstructed after the workers join.
///
/// Same concurrency contract as [`ShardedSet`]: inserts are double-checked
/// under the shard write lock (exactly one winner per key, first value
/// wins), while [`len`](ShardedMap::len)/[`is_empty`](ShardedMap::is_empty)
/// are racy snapshots, exact only at quiescence.
pub struct ShardedMap<K, V> {
    shards: Vec<RwLock<FxHashMap<K, V>>>,
    hasher: FxBuildHasher,
    mask: usize,
}

impl<K: Hash + Eq, V> ShardedMap<K, V> {
    /// A map with `2^shard_bits` shards.
    pub fn new(shard_bits: u32) -> ShardedMap<K, V> {
        let n = 1usize << shard_bits;
        ShardedMap {
            shards: (0..n).map(|_| RwLock::new(FxHashMap::default())).collect(),
            hasher: FxBuildHasher::default(),
            mask: n - 1,
        }
    }

    #[inline]
    fn shard_of(&self, k: &K) -> usize {
        spread(self.hasher.hash_one(k)) & self.mask
    }

    /// Insert `k → v` if `k` is absent; returns true iff it was. Membership
    /// is re-validated under the write lock, so racing inserters of one key
    /// elect exactly one winner and the winner's value is kept.
    pub fn insert(&self, k: K, v: V) -> bool {
        let shard = &self.shards[self.shard_of(&k)];
        if shard.read().contains_key(&k) {
            return false;
        }
        match shard.write().entry(k) {
            std::collections::hash_map::Entry::Occupied(_) => false,
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(v);
                true
            }
        }
    }

    /// Batched insert: the items are grouped by shard so each touched shard
    /// is locked once for a read-phase membership filter and (only if some
    /// item survived) once for the write-phase insert, which re-checks
    /// membership before committing. Returns the keys that were newly
    /// inserted, in shard-grouped order; for duplicate keys within one
    /// batch the first occurrence wins.
    pub fn insert_batch(&self, items: Vec<(K, V)>) -> Vec<K>
    where
        K: Clone,
    {
        let mut tagged: Vec<(usize, Option<(K, V)>)> =
            items.into_iter().map(|kv| (self.shard_of(&kv.0), Some(kv))).collect();
        tagged.sort_by_key(|t| t.0);
        let mut novel = Vec::new();
        let mut i = 0;
        while i < tagged.len() {
            let s = tagged[i].0;
            let mut j = i;
            while j < tagged.len() && tagged[j].0 == s {
                j += 1;
            }
            let shard = &self.shards[s];
            {
                let rd = shard.read();
                for t in &mut tagged[i..j] {
                    if rd.contains_key(&t.1.as_ref().expect("unconsumed item").0) {
                        t.1 = None;
                    }
                }
            }
            if tagged[i..j].iter().any(|t| t.1.is_some()) {
                let mut wr = shard.write();
                for t in &mut tagged[i..j] {
                    if let Some((k, v)) = t.1.take() {
                        if !wr.contains_key(&k) {
                            wr.insert(k.clone(), v);
                            novel.push(k);
                        }
                    }
                }
            }
            i = j;
        }
        novel
    }

    /// The value for `k`, cloned out from under the shard read lock.
    pub fn get_cloned(&self, k: &K) -> Option<V>
    where
        V: Clone,
    {
        self.shards[self.shard_of(k)].read().get(k).cloned()
    }

    /// True iff `k` is present.
    pub fn contains_key(&self, k: &K) -> bool {
        self.shards[self.shard_of(k)].read().contains_key(k)
    }

    /// Total entries across shards — a racy snapshot (see the type docs);
    /// exact when no insert is in flight.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True iff no entries — racy under concurrent insertion, like
    /// [`len`](ShardedMap::len).
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// Per-shard entry counts (racy snapshot), for occupancy diagnostics
    /// and the shard-distribution property tests.
    pub fn shard_occupancy(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.read().len()).collect()
    }
}

/// A visited entry's parent pointer: `None` for the initial configuration.
type Parent = Option<(Config, Tid)>;

/// Rebuild the step sequence from the initial configuration to `last` by
/// walking the parent-pointer map (quiescent after the workers join).
fn reconstruct_trace(
    visited: &ShardedMap<Config, Parent>,
    last: &Config,
) -> Vec<(Tid, Config)> {
    let mut rev: Vec<(Tid, Config)> = Vec::new();
    let mut cur = last.clone();
    while let Some(Some((parent, tid))) = visited.get_cloned(&cur) {
        rev.push((tid, cur));
        cur = parent;
    }
    rev.reverse();
    rev
}

/// Statistics a [`par_walk`] hands back alongside the visited map.
pub(crate) struct WalkStats {
    /// Distinct canonical configurations counted (clamped to
    /// `max_states` when the cap was hit, matching the sequential oracle).
    pub states: usize,
    /// Transitions generated.
    pub transitions: usize,
    /// Terminal configurations where every thread halted.
    pub terminated: Vec<Config>,
    /// Terminal configurations with a blocked thread.
    pub deadlocked: Vec<Config>,
    /// True iff the state cap cut the exploration short.
    pub truncated: bool,
}

/// The shared batched work-stealing walk both parallel checkers run on:
/// expands every reached canonical configuration exactly once and drives
/// three callbacks —
///
/// * `edge_value(parent, tid)` — the value stored in the visited map for a
///   successor first discovered over that edge (the engine stores parent
///   pointers here, the outline checker `()`);
/// * `on_edge(parent, tid, successor)` — every generated edge, visited or
///   not (annotation classification);
/// * `on_novel(config)` — each configuration exactly once, at first
///   discovery (property checks); also called for the initial
///   configuration before the workers start.
///
/// The state cap is enforced against a racy running counter, so the map
/// may transiently overshoot `opts.max_states`; the returned
/// [`WalkStats`] reconciles that to the sequential oracle's verdict
/// (truncated, `states == max_states`) whenever the cap was exceeded, so
/// cap-hitting runs agree across engines.
#[allow(clippy::too_many_arguments)]
pub(crate) fn par_walk<V, FV, FE, FN>(
    prog: &CfgProgram,
    objs: &(dyn ObjectSemantics + Sync),
    opts: ExploreOptions,
    n_workers: usize,
    init_value: V,
    edge_value: FV,
    on_edge: FE,
    on_novel: FN,
) -> (ShardedMap<Config, V>, WalkStats)
where
    V: Send + Sync,
    FV: Fn(&Config, Tid) -> V + Sync,
    FE: Fn(&Config, Tid, &Config) + Sync,
    FN: Fn(&Config) + Sync,
{
    let visited: ShardedMap<Config, V> = ShardedMap::new(6);
    let injector: Injector<Vec<Config>> = Injector::new();
    // Chunks pushed to the injector but not yet fully processed (a stolen
    // chunk stays counted until its worker has flushed every novel
    // successor); all-workers-idle is `pending == 0` + empty injector.
    let pending = AtomicUsize::new(0);
    let n_states = AtomicUsize::new(0);
    let transitions = AtomicUsize::new(0);
    let truncated = AtomicBool::new(false);
    let terminated: Mutex<Vec<Config>> = Mutex::new(Vec::new());
    let deadlocked: Mutex<Vec<Config>> = Mutex::new(Vec::new());

    let init = Config::initial(prog).canonical();
    on_novel(&init);
    visited.insert(init.clone(), init_value);
    n_states.store(1, Ordering::SeqCst);
    pending.store(1, Ordering::SeqCst);
    injector.push(vec![init]);

    crossbeam::scope(|scope| {
        for _ in 0..n_workers.max(1) {
            scope.spawn(|_| {
                let mut out: Vec<Config> = Vec::with_capacity(FLUSH_BATCH);
                loop {
                    match injector.steal() {
                        Steal::Success(chunk) => {
                            for cfg in chunk {
                                let succs = successors(prog, objs, &cfg, opts.step);
                                transitions.fetch_add(succs.len(), Ordering::Relaxed);
                                if succs.is_empty() {
                                    if cfg.terminated(prog) {
                                        terminated.lock().push(cfg);
                                    } else {
                                        deadlocked.lock().push(cfg);
                                    }
                                    continue;
                                }
                                let mut edges = Vec::with_capacity(succs.len());
                                for (tid, succ) in succs {
                                    let canon = succ.canonical();
                                    // Every edge, visited or not.
                                    on_edge(&cfg, tid, &canon);
                                    edges.push((tid, canon));
                                }
                                if n_states.load(Ordering::Relaxed) >= opts.max_states {
                                    // Cap hit: keep draining the queue (so
                                    // every queued state is still expanded
                                    // and classified) but drop novel
                                    // successors, marking truncation only
                                    // if one actually existed — mirroring
                                    // the sequential explorers.
                                    if edges
                                        .iter()
                                        .any(|(_, canon)| !visited.contains_key(canon))
                                    {
                                        truncated.store(true, Ordering::Relaxed);
                                    }
                                    continue;
                                }
                                let items: Vec<(Config, V)> = edges
                                    .into_iter()
                                    .map(|(tid, canon)| {
                                        let v = edge_value(&cfg, tid);
                                        (canon, v)
                                    })
                                    .collect();
                                for canon in visited.insert_batch(items) {
                                    n_states.fetch_add(1, Ordering::Relaxed);
                                    on_novel(&canon);
                                    out.push(canon);
                                    if out.len() >= FLUSH_BATCH {
                                        pending.fetch_add(1, Ordering::SeqCst);
                                        injector.push(std::mem::take(&mut out));
                                    }
                                }
                            }
                            if !out.is_empty() {
                                pending.fetch_add(1, Ordering::SeqCst);
                                injector.push(std::mem::take(&mut out));
                            }
                            pending.fetch_sub(1, Ordering::SeqCst);
                        }
                        Steal::Retry => {}
                        Steal::Empty => {
                            if pending.load(Ordering::SeqCst) == 0 {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                }
            });
        }
    })
    .expect("worker panicked");

    // Reconcile the racy cap: when workers overshot `max_states`, report
    // the sequential oracle's verdict — truncated, with `states` clamped
    // to the cap (still a valid lower bound on the reachable space).
    let mut states = visited.len();
    let mut was_truncated = truncated.into_inner();
    if states > opts.max_states {
        was_truncated = true;
        states = opts.max_states;
    }

    let stats = WalkStats {
        states,
        transitions: transitions.into_inner(),
        terminated: terminated.into_inner(),
        deadlocked: deadlocked.into_inner(),
        truncated: was_truncated,
    };
    (visited, stats)
}

/// Exhaustive parallel reachability with a property callback. Semantically
/// identical to [`crate::explore::Explorer::explore_with`]: same state,
/// transition and terminal counts and the same violation set — including
/// counterexample traces when [`ExploreOptions::record_traces`] is set
/// (the differential suite enforces this). Prefer going through
/// [`crate::engine::Engine`] / [`crate::engine::choose_engine`].
pub fn par_explore(
    prog: &CfgProgram,
    objs: &(dyn ObjectSemantics + Sync),
    opts: ExploreOptions,
    n_workers: usize,
    check: impl Fn(&Config) -> Vec<String> + Sync,
) -> EngineReport {
    // Violations as (what, config); traces are attached after the join,
    // once the parent-pointer map is quiescent.
    let found: Mutex<Vec<(String, Config)>> = Mutex::new(Vec::new());

    let (visited, stats) = par_walk(
        prog,
        objs,
        opts,
        n_workers,
        None,
        |parent, tid| opts.record_traces.then(|| (parent.clone(), tid)),
        |_, _, _| {},
        |canon| {
            for what in check(canon) {
                found.lock().push((what, canon.clone()));
            }
        },
    );

    let violations = found
        .into_inner()
        .into_iter()
        .map(|(what, config)| {
            let trace = opts.record_traces.then(|| reconstruct_trace(&visited, &config));
            Violation { what, config, trace }
        })
        .collect();

    EngineReport {
        states: stats.states,
        transitions: stats.transitions,
        terminated: stats.terminated,
        deadlocked: stats.deadlocked,
        violations,
        truncated: stats.truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::Explorer;
    use rc11_lang::builder::*;
    use rc11_lang::compile;
    use rc11_lang::machine::NoObjects;
    use rc11_objects::AbstractObjects;

    fn sb_prog() -> rc11_lang::CfgProgram {
        let mut p = ProgramBuilder::new("sb");
        let x = p.client_var("x", 0);
        let y = p.client_var("y", 0);
        let mut t1 = ThreadBuilder::new();
        let r1 = t1.reg("r1");
        p.add_thread(t1, seq([wr_rel(x, 1), rd_acq(r1, y)]));
        let mut t2 = ThreadBuilder::new();
        let r2 = t2.reg("r2");
        p.add_thread(t2, seq([wr_rel(y, 1), rd_acq(r2, x)]));
        compile(&p.build())
    }

    #[test]
    fn parallel_matches_sequential_state_count() {
        let prog = sb_prog();
        let seq_report = Explorer::new(&prog, &NoObjects).explore();
        for workers in [1, 2, 4] {
            let par_report = par_explore(
                &prog,
                &NoObjects,
                ExploreOptions::default(),
                workers,
                |_| Vec::new(),
            );
            assert_eq!(par_report.states, seq_report.states, "workers = {workers}");
            assert_eq!(par_report.terminated.len(), seq_report.terminated.len());
            assert_eq!(par_report.transitions, seq_report.transitions);
        }
    }

    #[test]
    fn parallel_lock_program_agrees() {
        let mut p = ProgramBuilder::new("lock2");
        let x = p.client_var("x", 0);
        let l = p.lock("l");
        for _ in 0..2 {
            let mut tb = ThreadBuilder::new();
            let r = tb.reg("r");
            p.add_thread(tb, seq([acquire(l), rd(r, x), wr(x, add(r, 1)), release(l)]));
        }
        let prog = compile(&p.build());
        let seq_report = Explorer::new(&prog, &AbstractObjects).explore();
        let par_report =
            par_explore(&prog, &AbstractObjects, ExploreOptions::default(), 4, |_| Vec::new());
        assert_eq!(par_report.states, seq_report.states);
    }

    #[test]
    fn parallel_finds_violations_with_traces() {
        let prog = sb_prog();
        // "r1 and r2 never both 0" is false under RA — the parallel checker
        // must find it and hand back a replayable trace.
        let report = par_explore(
            &prog,
            &NoObjects,
            ExploreOptions::default(),
            4,
            |cfg: &Config| {
                if cfg.terminated(&prog)
                    && cfg.reg(0, rc11_lang::Reg(0)) == rc11_core::Val::Int(0)
                    && cfg.reg(1, rc11_lang::Reg(0)) == rc11_core::Val::Int(0)
                {
                    vec!["both zero".into()]
                } else {
                    Vec::new()
                }
            },
        );
        assert!(!report.violations.is_empty(), "SB weak outcome must be reachable");
        for v in &report.violations {
            let trace = v.trace.as_ref().expect("parallel violations carry traces");
            assert!(!trace.is_empty(), "terminal violation needs at least one step");
            assert_eq!(&trace.last().unwrap().1, &v.config, "trace ends at the violation");
        }
    }

    #[test]
    fn traces_disabled_when_not_recording() {
        let prog = sb_prog();
        let opts = ExploreOptions { record_traces: false, ..Default::default() };
        let report = par_explore(&prog, &NoObjects, opts, 2, |cfg: &Config| {
            if cfg.terminated(&prog) {
                vec!["terminal".into()]
            } else {
                Vec::new()
            }
        });
        assert!(!report.violations.is_empty());
        assert!(report.violations.iter().all(|v| v.trace.is_none()));
    }

    #[test]
    fn truncation_is_reported() {
        let prog = sb_prog();
        let opts = ExploreOptions { max_states: 3, ..Default::default() };
        let report = par_explore(&prog, &NoObjects, opts, 2, |_| Vec::new());
        assert!(report.truncated);
        assert!(!report.ok());
    }

    #[test]
    fn sharded_set_dedups() {
        let s: ShardedSet<u64> = ShardedSet::new(4);
        assert!(s.insert(1));
        assert!(!s.insert(1));
        assert!(s.insert(2));
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    /// Racing inserts of the same values from many threads: each distinct
    /// value must be reported new by exactly one thread.
    #[test]
    fn sharded_set_concurrent_insert_unique_winner() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        const VALUES: u64 = 2_000;
        const THREADS: usize = 8;
        let s: ShardedSet<u64> = ShardedSet::new(4);
        let wins = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let (s, wins) = (&s, &wins);
                scope.spawn(move || {
                    // Interleave directions so threads collide on the same
                    // values at the same time instead of racing in lockstep.
                    for i in 0..VALUES {
                        let v = if t % 2 == 0 { i } else { VALUES - 1 - i };
                        if s.insert(v) {
                            wins.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(wins.into_inner(), VALUES as usize, "each value must have one winner");
        assert_eq!(s.len(), VALUES as usize);
    }

    /// The configured shard count is honored even for hash distributions
    /// that are unfriendly to power-of-two masking (stride-aligned keys):
    /// every shard must receive elements and the per-shard totals must sum
    /// to `len()`.
    #[test]
    fn sharded_set_spreads_awkward_distributions() {
        for shard_bits in [1u32, 3, 5] {
            let s: ShardedSet<u64> = ShardedSet::new(shard_bits);
            assert_eq!(s.shard_occupancy().len(), 1 << shard_bits);
            // Stride-128 keys: low bits constant, so a naive `hash & mask`
            // of an identity-style hash would land everything in one shard.
            for i in 0..4_096u64 {
                assert!(s.insert(i * 128));
            }
            let per_shard = s.shard_occupancy();
            assert_eq!(per_shard.iter().sum::<usize>(), 4_096);
            assert_eq!(s.len(), 4_096);
            let empty = per_shard.iter().filter(|&&n| n == 0).count();
            assert_eq!(
                empty, 0,
                "all {} shards should be populated, got counts {:?}",
                1 << shard_bits,
                per_shard
            );
        }
    }

    #[test]
    fn sharded_map_first_value_wins() {
        let m: ShardedMap<u64, &str> = ShardedMap::new(3);
        assert!(m.insert(7, "first"));
        assert!(!m.insert(7, "second"));
        assert_eq!(m.get_cloned(&7), Some("first"));
        assert_eq!(m.len(), 1);
        assert!(!m.is_empty());
    }

    #[test]
    fn sharded_map_batch_insert_dedups_within_and_across_batches() {
        let m: ShardedMap<u64, u64> = ShardedMap::new(4);
        // Duplicate key inside one batch: first occurrence wins.
        let novel = m.insert_batch(vec![(1, 10), (2, 20), (1, 11)]);
        let mut sorted = novel.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2]);
        assert_eq!(m.get_cloned(&1), Some(10));
        // Across batches: already-present keys are filtered.
        let novel = m.insert_batch(vec![(2, 21), (3, 30)]);
        assert_eq!(novel, vec![3]);
        assert_eq!(m.len(), 3);
    }
}
