//! Randomised execution sampling.
//!
//! Complements exhaustive exploration: uniform random walks over the
//! transition relation, used by the benches to report *outcome frequency*
//! (e.g. how often Figure 1's stale read actually shows up) and by the
//! fuzz-style differential tests. Sampling is reproducible via the seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rc11_lang::cfg::CfgProgram;
use rc11_lang::machine::{successors, Config, ObjectSemantics, StepOptions};
use std::fmt;

/// Sampling failed: the program (almost) never terminates within the step
/// budget, so no terminal sample set of the requested size exists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleError {
    /// Walks that hit `max_steps` without reaching a terminal state.
    pub failed_walks: usize,
    /// Terminal samples collected before giving up.
    pub collected: usize,
    /// The per-walk step budget that was exceeded.
    pub max_steps: usize,
}

impl fmt::Display for SampleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sampling gave up after {} non-terminating walks ({} terminal samples \
             collected, {} steps per walk)",
            self.failed_walks, self.collected, self.max_steps
        )
    }
}

impl std::error::Error for SampleError {}

/// One random walk: uniformly choose a successor until termination,
/// deadlock, or `max_steps`. Returns the final configuration and whether it
/// is terminal.
pub fn random_walk(
    prog: &CfgProgram,
    objs: &dyn ObjectSemantics,
    rng: &mut StdRng,
    max_steps: usize,
    step: StepOptions,
) -> (Config, bool) {
    let mut cfg = Config::initial(prog);
    for _ in 0..max_steps {
        let succs = successors(prog, objs, &cfg, step);
        if succs.is_empty() {
            return (cfg, true);
        }
        let k = rng.gen_range(0..succs.len());
        cfg = succs.into_iter().nth(k).unwrap().1;
    }
    (cfg, false)
}

/// Sample `n_walks` terminal configurations. Walks that hit `max_steps`
/// without terminating are discarded and retried; once the discard count
/// exceeds `10 × n_walks + 100` the program evidently (almost) never
/// terminates within the budget and a [`SampleError`] is returned instead
/// — callers that want the old fail-fast behaviour `.expect(…)` the result.
pub fn sample_terminals(
    prog: &CfgProgram,
    objs: &dyn ObjectSemantics,
    n_walks: usize,
    max_steps: usize,
    seed: u64,
) -> Result<Vec<Config>, SampleError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n_walks);
    let mut failures = 0usize;
    while out.len() < n_walks {
        let (cfg, terminal) = random_walk(prog, objs, &mut rng, max_steps, StepOptions::default());
        if terminal {
            out.push(cfg);
        } else {
            failures += 1;
            if failures >= n_walks * 10 + 100 {
                return Err(SampleError {
                    failed_walks: failures,
                    collected: out.len(),
                    max_steps,
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc11_lang::builder::*;
    use rc11_lang::compile;
    use rc11_lang::machine::NoObjects;
    use rc11_core::Val;

    #[test]
    fn sampling_is_reproducible() {
        let mut p = ProgramBuilder::new("mp");
        let d = p.client_var("d", 0);
        let f = p.client_var("f", 0);
        let t1 = ThreadBuilder::new();
        p.add_thread(t1, seq([wr(d, 5), wr(f, 1)]));
        let mut t2 = ThreadBuilder::new();
        let r1 = t2.reg("r1");
        let r2 = t2.reg("r2");
        p.add_thread(t2, seq([do_until(rd(r1, f), eq(r1, 1)), rd(r2, d)]));
        let prog = compile(&p.build());

        let a = sample_terminals(&prog, &NoObjects, 50, 500, 7).unwrap();
        let b = sample_terminals(&prog, &NoObjects, 50, 500, 7).unwrap();
        let regs = |v: &Vec<Config>| -> Vec<Val> { v.iter().map(|c| c.reg(1, Reg(1))).collect() };
        use rc11_lang::Reg;
        assert_eq!(regs(&a), regs(&b));
        // Both outcomes should appear in 50 relaxed-MP samples.
        let vals = regs(&a);
        assert!(vals.contains(&Val::Int(5)));
        assert!(vals.contains(&Val::Int(0)), "stale read should show up when sampling");
    }

    #[test]
    fn never_terminating_program_is_an_error_not_a_panic() {
        // T1 spins forever: do r ← x until r = 1, and nobody ever writes 1.
        let mut p = ProgramBuilder::new("spin-forever");
        let x = p.client_var("x", 0);
        let mut t1 = ThreadBuilder::new();
        let r = t1.reg("r");
        p.add_thread(t1, do_until(rd(r, x), eq(r, 1)));
        let prog = compile(&p.build());

        let err = sample_terminals(&prog, &NoObjects, 5, 50, 11)
            .expect_err("a never-terminating program cannot yield terminal samples");
        assert_eq!(err.collected, 0);
        assert_eq!(err.max_steps, 50);
        assert!(err.failed_walks >= 5 * 10 + 100);
        assert!(err.to_string().contains("non-terminating walks"));
    }
}
