//! An FxHash-style hasher for integer-heavy keys — and its 128-bit
//! extension behind canonical fingerprints.
//!
//! Canonical configurations hash on every exploration step; the perf-book
//! guide recommends an Fx-class hasher for such integer-keyed maps, and
//! `rustc-hash` is outside the offline dependency set, so the (tiny,
//! well-known) algorithm is implemented here: a rotate–xor–multiply over
//! native words.
//!
//! [`Fx128Hasher`] runs two independently seeded rotate–xor–multiply lanes
//! over the same word stream and finalises them with an avalanche mix into
//! a 128-bit [`Fp128`]. Both exploration engines key their visited
//! structures on the [`Fp128`] of a configuration's *canonical
//! serialisation* (the zero-rebuild walk of `rc11_core::canon`), via
//! [`CanonicalFingerprint::canonical_fingerprint`] — see DESIGN.md
//! ablation A4. Fingerprint equality is confirmed against the interned
//! canonical representative before a state is treated as visited, so a
//! 128-bit collision can cost a bucket walk but never an unsound verdict.

use rc11_core::{CanonPerms, Combined};
use rc11_lang::machine::Config;
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rotate–xor–multiply hasher.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Mix the length in first: the remainder below is zero-padded to a
        // full word, so within a single `write` call any zero-extended tail
        // would collide (e.g. raw write of [1,2,3] vs [1,2,3,0,0]). std's
        // derived Hash guards slices with a length prefix of its own, but
        // raw `Hasher::write` callers get no such protection.
        self.add_to_hash(bytes.len() as u64);
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// A 128-bit canonical fingerprint: the finalised output of
/// [`Fx128Hasher`]. The engines use it as the visited-map key in place of
/// a full canonical [`Config`] clone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fp128 {
    /// High 64 bits.
    pub hi: u64,
    /// Low 64 bits.
    pub lo: u64,
}

const SEED_HI: u64 = 0x9e_37_79_b9_7f_4a_7c_15;

/// SplitMix64's avalanche finaliser: every input bit influences every
/// output bit, so fingerprint bits are usable directly for sharding.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The 128-bit extension of [`FxHasher`]: two rotate–xor–multiply lanes
/// with distinct seeds, rotations and multipliers consume every written
/// word, then [`Fx128Hasher::finish128`] cross-mixes and avalanches them
/// into an [`Fp128`]. The lanes start at their (non-zero) seeds rather
/// than 0 so that all-zero word streams of different lengths still evolve
/// the state (0 is a fixed point of rotate–xor–multiply from a zero
/// state). Collisions require both independent lanes to collide
/// simultaneously, which at the state counts the explorer reaches (≤ the
/// `max_states` cap of 5·10⁶) has birthday probability ≈ 2⁻⁸⁴ — and are
/// survivable anyway: the engines confirm fingerprint hits against the
/// interned canonical representative.
#[derive(Debug, Clone, Copy)]
pub struct Fx128Hasher {
    lo: u64,
    hi: u64,
}

impl Default for Fx128Hasher {
    fn default() -> Fx128Hasher {
        Fx128Hasher { lo: SEED, hi: SEED_HI }
    }
}

impl Fx128Hasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.lo = (self.lo.rotate_left(5) ^ i).wrapping_mul(SEED);
        self.hi = (self.hi.rotate_left(23) ^ i).wrapping_mul(SEED_HI);
    }

    /// Finalise both lanes into the 128-bit fingerprint.
    #[inline]
    pub fn finish128(&self) -> Fp128 {
        Fp128 {
            lo: mix64(self.lo ^ self.hi.rotate_left(32)),
            hi: mix64(self.hi.wrapping_add(SEED) ^ self.lo.rotate_left(32)),
        }
    }
}

impl Hasher for Fx128Hasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Same length-prefix discipline as `FxHasher::write`: the tail is
        // zero-padded to a word, so the length mix keeps zero-extended
        // streams distinct.
        self.add_to_hash(bytes.len() as u64);
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    /// The low finalised lane; prefer [`Fx128Hasher::finish128`].
    #[inline]
    fn finish(&self) -> u64 {
        self.finish128().lo
    }
}

/// Canonical fingerprinting: the 128-bit hash of a state's canonical form,
/// computed by the zero-rebuild walk — no renumbered state, no view
/// clones, no allocation beyond the two permutation vectors.
///
/// Contract (property-tested in `crates/rc11-core/tests/
/// fingerprint_props.rs` and enforced end-to-end by the fingerprint-on/off
/// differential in `tests/engine_agreement.rs`):
/// `a.canonical() == b.canonical()` ⟺ `a.canonical_fingerprint() ==
/// b.canonical_fingerprint()`, up to 128-bit hash collisions — which the
/// engines survive by confirming hits with `canonical_eq`.
pub trait CanonicalFingerprint {
    /// The canonical fingerprint, with precomputed canonical permutations
    /// (shared with the equality walk and any later materialisation).
    fn fingerprint_with(&self, perms: &CanonPerms) -> Fp128;

    /// The canonical fingerprint, computing the permutations internally.
    fn canonical_fingerprint(&self) -> Fp128;
}

impl CanonicalFingerprint for Combined {
    fn fingerprint_with(&self, perms: &CanonPerms) -> Fp128 {
        let mut h = Fx128Hasher::default();
        self.hash_canonical_with(perms, &mut h);
        h.finish128()
    }

    fn canonical_fingerprint(&self) -> Fp128 {
        self.fingerprint_with(&self.canonical_perms())
    }
}

impl CanonicalFingerprint for Config {
    fn fingerprint_with(&self, perms: &CanonPerms) -> Fp128 {
        let mut h = Fx128Hasher::default();
        self.hash_canonical_with(perms, &mut h);
        h.finish128()
    }

    fn canonical_fingerprint(&self) -> Fp128 {
        self.fingerprint_with(&self.canonical_perms())
    }
}

/// The interned-arena state ids behind one fingerprint, as used by the
/// sequential explorer and outline checker. Almost always a single id; a
/// genuine 128-bit collision grows the bucket, and lookups confirm
/// canonical equality against each interned candidate before declaring a
/// state visited.
pub(crate) enum IdBucket {
    /// The common case: one state per fingerprint, no heap allocation.
    One(u32),
    /// A 128-bit collision: several interned states share the fingerprint.
    Many(Vec<u32>),
}

impl IdBucket {
    /// The ids in this bucket.
    pub(crate) fn ids(&self) -> &[u32] {
        match self {
            IdBucket::One(id) => std::slice::from_ref(id),
            IdBucket::Many(ids) => ids,
        }
    }

    /// Add an id (promotes to the heap-allocated form on first collision).
    pub(crate) fn push(&mut self, id: u32) {
        match self {
            IdBucket::One(first) => *self = IdBucket::Many(vec![*first, id]),
            IdBucket::Many(ids) => ids.push(id),
        }
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&[1u8, 0]), hash_of(&[0u8, 1]));
    }

    #[test]
    fn byte_tail_is_hashed() {
        // Differ only in the last (non-multiple-of-8) byte.
        let a: &[u8] = &[1, 2, 3, 4, 5, 6, 7, 8, 9];
        let b: &[u8] = &[1, 2, 3, 4, 5, 6, 7, 8, 10];
        assert_ne!(hash_of(&a), hash_of(&b));
    }

    /// Raw `write` of a slice vs the same slice zero-extended: the tail is
    /// zero-padded into a full word, so only the length mix separates them.
    #[test]
    fn zero_extended_tail_does_not_collide() {
        fn raw_write(bytes: &[u8]) -> u64 {
            let mut h = FxHasher::default();
            h.write(bytes);
            h.finish()
        }
        assert_ne!(raw_write(&[1, 2, 3]), raw_write(&[1, 2, 3, 0, 0]));
        assert_ne!(raw_write(&[1, 2, 3]), raw_write(&[1, 2, 3, 0, 0, 0, 0, 0]));
        assert_ne!(raw_write(&[]), raw_write(&[0]));
        assert_ne!(raw_write(&[0; 8]), raw_write(&[0; 16]));
        // Zero-extension past the word boundary must also stay distinct.
        let a = [9u8, 8, 7, 6, 5, 4, 3, 2, 1];
        let mut b = a.to_vec();
        b.extend_from_slice(&[0, 0, 0]);
        assert_ne!(raw_write(&a), raw_write(&b));
    }

    fn fp_of_words(words: &[u64]) -> Fp128 {
        let mut h = Fx128Hasher::default();
        for &w in words {
            h.write_u64(w);
        }
        h.finish128()
    }

    #[test]
    fn fp128_is_deterministic_and_sensitive() {
        assert_eq!(fp_of_words(&[1, 2, 3]), fp_of_words(&[1, 2, 3]));
        assert_ne!(fp_of_words(&[1, 2, 3]), fp_of_words(&[1, 2, 4]));
        assert_ne!(fp_of_words(&[1, 2, 3]), fp_of_words(&[3, 2, 1]));
        assert_ne!(fp_of_words(&[]), fp_of_words(&[0]));
    }

    /// The two lanes are independent: single-bit input flips change both
    /// halves of the fingerprint (no lane is a copy of the other).
    #[test]
    fn fp128_lanes_are_independent() {
        let base = fp_of_words(&[0xdead_beef, 42]);
        for bit in 0..64 {
            let flipped = fp_of_words(&[0xdead_beef ^ (1u64 << bit), 42]);
            assert_ne!(base.lo, flipped.lo, "bit {bit} must disturb the low lane");
            assert_ne!(base.hi, flipped.hi, "bit {bit} must disturb the high lane");
        }
        assert_ne!(base.lo, base.hi);
    }

    /// No 128-bit collisions across a large family of short word streams
    /// (a smoke bound, not a proof: 2×10⁵ streams pairwise distinct).
    #[test]
    fn fp128_has_no_collisions_on_small_streams() {
        let mut seen = FxHashSet::default();
        for a in 0..200u64 {
            for b in 0..200u64 {
                assert!(seen.insert(fp_of_words(&[a, b])), "collision at ({a}, {b})");
                assert!(seen.insert(fp_of_words(&[a.wrapping_mul(1 << 17), b, a])));
            }
        }
    }

    /// `canonical_fingerprint` respects canonicalisation end to end: equal
    /// canonical forms fingerprint equal, distinct ones distinct, and the
    /// fingerprint is stable under materialised canonicalisation.
    #[test]
    fn canonical_fingerprint_tracks_canonical_forms() {
        use rc11_core::{Comp, InitLoc, Loc, OpId, Tid, Val};
        let base = Combined::new(
            &[InitLoc::Var(Val::Int(0)), InitLoc::Var(Val::Int(0))],
            &[],
            2,
        );
        let a = base
            .apply_write(Comp::Client, Tid(0), Loc(0), Val::Int(1), false, OpId(0))
            .apply_write(Comp::Client, Tid(1), Loc(1), Val::Int(2), true, OpId(1));
        let b = base
            .apply_write(Comp::Client, Tid(1), Loc(1), Val::Int(2), true, OpId(1))
            .apply_write(Comp::Client, Tid(0), Loc(0), Val::Int(1), false, OpId(0));
        let c = base.apply_write(Comp::Client, Tid(0), Loc(0), Val::Int(9), false, OpId(0));

        assert_eq!(a.canonical(), b.canonical());
        assert_eq!(a.canonical_fingerprint(), b.canonical_fingerprint());
        assert_ne!(a.canonical_fingerprint(), c.canonical_fingerprint());
        assert_eq!(a.canonical_fingerprint(), a.canonical().canonical_fingerprint());
    }
}
