//! An FxHash-style hasher for integer-heavy keys.
//!
//! Canonical configurations hash on every exploration step; the perf-book
//! guide recommends an Fx-class hasher for such integer-keyed maps, and
//! `rustc-hash` is outside the offline dependency set, so the (tiny,
//! well-known) algorithm is implemented here: a rotate–xor–multiply over
//! native words.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rotate–xor–multiply hasher.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Mix the length in first: the remainder below is zero-padded to a
        // full word, so within a single `write` call any zero-extended tail
        // would collide (e.g. raw write of [1,2,3] vs [1,2,3,0,0]). std's
        // derived Hash guards slices with a length prefix of its own, but
        // raw `Hasher::write` callers get no such protection.
        self.add_to_hash(bytes.len() as u64);
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&[1u8, 0]), hash_of(&[0u8, 1]));
    }

    #[test]
    fn byte_tail_is_hashed() {
        // Differ only in the last (non-multiple-of-8) byte.
        let a: &[u8] = &[1, 2, 3, 4, 5, 6, 7, 8, 9];
        let b: &[u8] = &[1, 2, 3, 4, 5, 6, 7, 8, 10];
        assert_ne!(hash_of(&a), hash_of(&b));
    }

    /// Raw `write` of a slice vs the same slice zero-extended: the tail is
    /// zero-padded into a full word, so only the length mix separates them.
    #[test]
    fn zero_extended_tail_does_not_collide() {
        fn raw_write(bytes: &[u8]) -> u64 {
            let mut h = FxHasher::default();
            h.write(bytes);
            h.finish()
        }
        assert_ne!(raw_write(&[1, 2, 3]), raw_write(&[1, 2, 3, 0, 0]));
        assert_ne!(raw_write(&[1, 2, 3]), raw_write(&[1, 2, 3, 0, 0, 0, 0, 0]));
        assert_ne!(raw_write(&[]), raw_write(&[0]));
        assert_ne!(raw_write(&[0; 8]), raw_write(&[0; 16]));
        // Zero-extension past the word boundary must also stay distinct.
        let a = [9u8, 8, 7, 6, 5, 4, 3, 2, 1];
        let mut b = a.to_vec();
        b.extend_from_slice(&[0, 0, 0]);
        assert_ne!(raw_write(&a), raw_write(&b));
    }
}
