//! Thread-symmetry reduction support shared by both engines (ablation A6).
//!
//! Detection and the per-state canonical choice live in
//! [`rc11_analyze::symmetry`]; this module holds the engine-side glue:
//! the symmetry-aware fingerprint, the transport of POR thread masks into
//! representative numbering, and orbit expansion — the enumeration of a
//! representative's distinct non-representative orbit members, which the
//! engines use to run the check callback on *every* state of the orbit and
//! to expand terminal/deadlock sets back to the unreduced search's.
//!
//! ## Soundness (DESIGN.md, "A6 in detail")
//!
//! A detected group permutation `σ` is a program automorphism: applying it
//! to any configuration commutes with every transition, and it fixes the
//! initial configuration (symmetric threads start at pc 0 with register
//! files equal in representative numbering). Hence the orbit of every
//! reachable state is reachable, exploring one representative per orbit
//! covers the full space, and expanding each representative's orbit
//! recovers exactly the unreduced search's terminal, deadlock and
//! violation sets. Composition with sleep-set POR transports every thread
//! mask through the committing `σ` (bit `t` → bit `σ[t]`), so sleep sets
//! always live in the stored state's own thread numbering.

use crate::fxhash::{Fp128, Fx128Hasher, FxHashSet};
use crate::por::ThreadMask;
use rc11_analyze::{thread_symmetry, SymmetrySpec};
use rc11_core::{CanonPerms, Tid};
use rc11_lang::cfg::CfgProgram;
use rc11_lang::machine::Config;

/// The symmetry reduction to run with: a non-trivial spec when the option
/// is on and the program actually has symmetric threads, else `None` (the
/// engines then take their unchanged fast paths). The second component is
/// the orbit size detection gave up on when the `ORBIT_CAP` degraded the
/// spec to trivial — the engines surface it as a
/// [`Note::SymmetryOrbitCap`](crate::engine::Note::SymmetryOrbitCap).
pub(crate) fn active_spec(
    prog: &CfgProgram,
    symmetry: bool,
) -> (Option<SymmetrySpec>, Option<usize>) {
    if !symmetry {
        return (None, None);
    }
    let spec = thread_symmetry(prog);
    let capped = spec.capped_orbit();
    ((!spec.is_trivial()).then_some(spec), capped)
}

/// The canonical permutations of `succ` with the symmetry choice
/// installed in `perms.threads`.
pub(crate) fn sym_perms(spec: &SymmetrySpec, succ: &Config) -> CanonPerms {
    let mut perms = succ.canonical_perms();
    perms.threads = spec.choose(succ, &perms);
    perms
}

/// The symmetry-aware canonical fingerprint: hashes the canonical
/// serialisation of the thread-permuted configuration (byte-identical to
/// the plain fingerprint of `succ.permute_threads(σ).canonical()`).
pub(crate) fn fingerprint_sym(succ: &Config, perms: &CanonPerms, spec: &SymmetrySpec) -> Fp128 {
    let mut h = Fx128Hasher::default();
    succ.hash_canonical_sym(perms, spec.maps(), &mut h);
    h.finish128()
}

/// Transport a thread mask through `σ`: bit `t` of the input becomes bit
/// `σ[t]` of the output. Only meaningful under POR (masks then hold bits
/// `< n_threads` only, matching `σ`'s length).
pub(crate) fn remap_mask(mask: ThreadMask, sigma: &[u8]) -> ThreadMask {
    let mut out = 0u64;
    let mut m = mask;
    while m != 0 {
        let t = m.trailing_zeros() as usize;
        m &= m - 1;
        out |= 1u64 << sigma[t];
    }
    out
}

/// Is `sigma` the identity permutation?
pub(crate) fn is_identity(sigma: &[u8]) -> bool {
    sigma.iter().enumerate().all(|(i, &v)| v as usize == i)
}

/// The distinct orbit members of canonical state `canon` *other than*
/// `canon` itself, each paired with a group permutation producing it.
/// States fixed by a subgroup yield fewer members than `orbit_size() - 1`.
pub(crate) fn orbit_members(spec: &SymmetrySpec, canon: &Config) -> Vec<(Vec<u8>, Config)> {
    let mut seen: FxHashSet<Config> = FxHashSet::default();
    let mut out = Vec::new();
    for sigma in spec.group_perms() {
        if is_identity(&sigma) {
            continue;
        }
        let member = canon.permute_threads(&sigma, spec.maps()).canonical();
        if member == *canon || !seen.insert(member.clone()) {
            continue;
        }
        out.push((sigma, member));
    }
    out
}

/// Expand a terminal/deadlock set in place: append every distinct
/// non-representative orbit member of each entry. Distinct representatives
/// have disjoint orbits, so no cross-entry dedup is needed and the result
/// equals the unreduced search's set.
pub(crate) fn expand_terminals(spec: &SymmetrySpec, cfgs: &mut Vec<Config>) {
    let mut extra = Vec::new();
    for c in cfgs.iter() {
        for (_, m) in orbit_members(spec, c) {
            extra.push(m);
        }
    }
    cfgs.extend(extra);
}

/// Permute a reconstructed trace by the group permutation `pi`: movers map
/// through `pi`, configurations are thread-permuted and re-canonicalised.
/// Used by the parallel engine to attach traces to non-representative
/// orbit-member violations — the permuted trace ends at the violating
/// member because the original ended at its representative.
pub(crate) fn permute_trace(
    spec: &SymmetrySpec,
    pi: &[u8],
    trace: Vec<(Tid, Config)>,
) -> Vec<(Tid, Config)> {
    trace
        .into_iter()
        .map(|(t, cfg)| {
            (Tid(pi[t.idx()]), cfg.permute_threads(pi, spec.maps()).canonical())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc11_lang::{compile, parse_litmus};

    fn spec_of(src: &str) -> (CfgProgram, SymmetrySpec) {
        let prog = compile(&parse_litmus(src).unwrap().prog);
        let spec = thread_symmetry(&prog);
        (prog, spec)
    }

    #[test]
    fn mask_remap_transports_bits() {
        assert_eq!(remap_mask(0b001, &[2, 0, 1]), 0b100);
        assert_eq!(remap_mask(0b011, &[2, 0, 1]), 0b101);
        assert_eq!(remap_mask(0b111, &[2, 0, 1]), 0b111);
        assert_eq!(remap_mask(0, &[1, 0]), 0);
    }

    #[test]
    fn orbit_members_cover_the_symmetric_successors() {
        let (prog, spec) = spec_of(
            r#"
            litmus "pair"
            var x = 0
            thread A { r = fai(x); }
            thread B { s = fai(x); }
            observe A.r B.s
            expected { (0,1) (1,0) }
        "#,
        );
        assert!(!spec.is_trivial());
        let init = Config::initial(&prog).canonical();
        // The initial configuration is fixed by the group: no members.
        assert!(orbit_members(&spec, &init).is_empty());
        // After one step the orbit has exactly two states: the rep and its
        // mirror.
        let succs =
            rc11_lang::successors(&prog, &rc11_lang::NoObjects, &init, Default::default());
        assert!(!succs.is_empty());
        let canon = {
            let perms = sym_perms(&spec, &succs[0].1);
            succs[0].1.canonical_sym(&perms, spec.maps())
        };
        let members = orbit_members(&spec, &canon);
        assert_eq!(members.len(), 1, "one non-representative orbit member");
        assert_ne!(members[0].1, canon);
    }

    #[test]
    fn expansion_restores_orbit_counts() {
        let (prog, spec) = spec_of(
            r#"
            litmus "pair"
            var x = 0
            thread A { r = fai(x); }
            thread B { s = fai(x); }
            observe A.r B.s
            expected { (0,1) (1,0) }
        "#,
        );
        let init = Config::initial(&prog).canonical();
        let succs =
            rc11_lang::successors(&prog, &rc11_lang::NoObjects, &init, Default::default());
        let canon = {
            let perms = sym_perms(&spec, &succs[0].1);
            succs[0].1.canonical_sym(&perms, spec.maps())
        };
        let mut set = vec![canon];
        expand_terminals(&spec, &mut set);
        assert_eq!(set.len(), 2);
        assert_ne!(set[0], set[1]);
    }
}
