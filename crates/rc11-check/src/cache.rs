//! The verdict cache behind the checking service: an in-memory LRU in
//! front of an optional checksummed disk spill.
//!
//! Entries are keyed on the [`Fp128`] fingerprint of a request's canonical
//! words (program + observation tuple + expected set + the semantic
//! exploration options — see `request::option_words`). Syntactically
//! different but canonically identical submissions therefore share one
//! entry, which is the point: for a checking service, "cache hit" must
//! mean "same check", not "same bytes".
//!
//! Soundness over speed, everywhere:
//!
//! * every entry stores its **full key words**, and a probe compares them
//!   before reporting a hit — a 128-bit fingerprint collision costs a
//!   miss, never a wrong verdict (the same confirm-on-hit discipline the
//!   engines apply to state fingerprints);
//! * only **`Complete`** verdicts are admitted: a budget-truncated run is
//!   a lower bound, not an answer, and caching it would serve wrong
//!   results to the next caller with a bigger budget;
//! * the disk spill is **write-through** (an insert is durable before it
//!   is served), one file per fingerprint, with a magic header, a format
//!   version and an FNV-1a checksum — a torn or stale file is detected
//!   and treated as a miss, and writes go through a temp file + rename so
//!   a crash mid-write can never corrupt an existing entry. A daemon
//!   killed hard (SIGKILL/SIGTERM) therefore restarts warm.
//!
//! The in-memory side is a stamp-based LRU: each hit refreshes the
//! entry's stamp and eviction removes the minimum-stamp entry. Eviction
//! only forgets the memory copy; the disk copy (when spilling is on)
//! still serves the next probe.

use crate::engine::{Note, StopReason};
use crate::fxhash::Fp128;
use rc11_core::Val;
use std::collections::{BTreeSet, HashMap};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// File magic: "RC11VRD" + format version digit.
const MAGIC: &[u8; 8] = b"RC11VRD1";

/// A cached check verdict — everything a response needs, so a hit never
/// re-explores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedVerdict {
    /// `observed == expected`, complete and deadlock-free.
    pub pass: bool,
    /// The observed outcome set.
    pub observed: BTreeSet<Vec<Val>>,
    /// States explored by the run that produced this verdict.
    pub states: usize,
    /// Transitions generated.
    pub transitions: usize,
    /// Deadlocked configurations found.
    pub deadlocks: usize,
    /// Why the run stopped (always [`StopReason::Complete`] — enforced on
    /// insert — but stored so responses round-trip bit-identically).
    pub stop: StopReason,
    /// Structured engine notes from the producing run.
    pub notes: Vec<Note>,
}

/// Which tier served a cache hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheTier {
    /// The in-memory LRU.
    Mem,
    /// The disk spill (the entry was then promoted back into memory).
    Disk,
}

/// Running counters, readable while the cache is live.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Probes answered from memory.
    pub mem_hits: u64,
    /// Probes answered from disk.
    pub disk_hits: u64,
    /// Probes answered by neither tier.
    pub misses: u64,
    /// Verdicts admitted.
    pub inserts: u64,
    /// Memory entries evicted by the LRU.
    pub evictions: u64,
}

impl CacheStats {
    /// Total hits across both tiers.
    pub fn hits(&self) -> u64 {
        self.mem_hits + self.disk_hits
    }

    /// Hit rate over all probes, 0.0 when no probe has happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits() + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits() as f64 / total as f64
        }
    }
}

struct Entry {
    words: Vec<u64>,
    verdict: CachedVerdict,
    stamp: u64,
}

/// The cache. Not internally synchronised — the checking service wraps it
/// in a mutex (probes are microseconds; exploration is the slow path and
/// runs outside the lock).
pub struct VerdictCache {
    capacity: usize,
    dir: Option<PathBuf>,
    map: HashMap<Fp128, Entry>,
    clock: u64,
    stats: CacheStats,
}

impl VerdictCache {
    /// An in-memory-only cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> VerdictCache {
        VerdictCache {
            capacity: capacity.max(1),
            dir: None,
            map: HashMap::new(),
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// A cache that additionally spills every insert to one file per
    /// fingerprint under `dir` (created if missing) and serves probes
    /// from disk after a restart or an eviction.
    pub fn with_disk(capacity: usize, dir: impl Into<PathBuf>) -> std::io::Result<VerdictCache> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut c = VerdictCache::new(capacity);
        c.dir = Some(dir);
        Ok(c)
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Entries currently held in memory.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True iff the memory tier is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Look up `fp`, confirming the full key words on any candidate.
    /// A disk hit is promoted into the memory tier.
    pub fn probe(&mut self, fp: Fp128, words: &[u64]) -> Option<(CachedVerdict, CacheTier)> {
        self.clock += 1;
        if let Some(e) = self.map.get_mut(&fp) {
            if e.words == words {
                e.stamp = self.clock;
                self.stats.mem_hits += 1;
                return Some((e.verdict.clone(), CacheTier::Mem));
            }
            // Fingerprint collision: the stored check is a different one.
            self.stats.misses += 1;
            return None;
        }
        if let Some(dir) = self.dir.clone() {
            if let Some(verdict) = load_entry(&dir, fp, words) {
                self.admit(fp, words.to_vec(), verdict.clone());
                self.stats.disk_hits += 1;
                return Some((verdict, CacheTier::Disk));
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Admit a verdict. Only complete runs are cacheable; a non-complete
    /// verdict is ignored (the caller's budgets made it a lower bound, not
    /// an answer).
    pub fn insert(&mut self, fp: Fp128, words: Vec<u64>, verdict: CachedVerdict) {
        if !verdict.stop.is_complete() {
            return;
        }
        self.stats.inserts += 1;
        if let Some(dir) = &self.dir {
            // Write-through; a failed spill degrades durability, never
            // correctness, so it is deliberately non-fatal.
            let _ = store_entry(dir, fp, &words, &verdict);
        }
        self.admit(fp, words, verdict);
    }

    fn admit(&mut self, fp: Fp128, words: Vec<u64>, verdict: CachedVerdict) {
        self.clock += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&fp) {
            if let Some(&victim) =
                self.map.iter().min_by_key(|(_, e)| e.stamp).map(|(k, _)| k)
            {
                self.map.remove(&victim);
                self.stats.evictions += 1;
            }
        }
        self.map.insert(fp, Entry { words, verdict, stamp: self.clock });
    }
}

// ---------------------------------------------------------------------
// Disk format
// ---------------------------------------------------------------------

fn entry_path(dir: &Path, fp: Fp128) -> PathBuf {
    dir.join(format!("{:016x}{:016x}.rcv", fp.hi, fp.lo))
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

fn val_words(v: &Val, out: &mut Vec<u64>) {
    match v {
        Val::Int(n) => {
            out.push(0);
            out.push(*n as u64);
        }
        Val::Bool(b) => {
            out.push(1);
            out.push(*b as u64);
        }
        Val::Empty => out.push(2),
        Val::Bot => out.push(3),
    }
}

fn str_words(s: &str, out: &mut Vec<u64>) {
    let bytes = s.as_bytes();
    out.push(bytes.len() as u64);
    for chunk in bytes.chunks(8) {
        let mut buf = [0u8; 8];
        buf[..chunk.len()].copy_from_slice(chunk);
        out.push(u64::from_le_bytes(buf));
    }
}

fn verdict_words(v: &CachedVerdict, out: &mut Vec<u64>) {
    out.push(v.pass as u64);
    out.push(v.stop.as_u8() as u64);
    out.push(v.states as u64);
    out.push(v.transitions as u64);
    out.push(v.deadlocks as u64);
    out.push(v.observed.len() as u64);
    for tuple in &v.observed {
        out.push(tuple.len() as u64);
        for val in tuple {
            val_words(val, out);
        }
    }
    out.push(v.notes.len() as u64);
    for n in &v.notes {
        match n {
            Note::PorThreadCap { threads } => {
                out.push(0);
                out.push(*threads as u64);
            }
            Note::DporLocationCap => out.push(1),
            Note::SymmetryOrbitCap { orbit } => {
                out.push(2);
                out.push(*orbit as u64);
            }
            Note::WorkerFault { message } => {
                out.push(3);
                str_words(message, out);
            }
            Note::CheckpointError { message } => {
                out.push(4);
                str_words(message, out);
            }
        }
    }
}

struct Cursor<'a> {
    words: &'a [u64],
    pos: usize,
}

impl Cursor<'_> {
    fn word(&mut self) -> Option<u64> {
        let w = self.words.get(self.pos).copied()?;
        self.pos += 1;
        Some(w)
    }

    fn val(&mut self) -> Option<Val> {
        Some(match self.word()? {
            0 => Val::Int(self.word()? as i64),
            1 => Val::Bool(self.word()? != 0),
            2 => Val::Empty,
            3 => Val::Bot,
            _ => return None,
        })
    }

    fn string(&mut self) -> Option<String> {
        let len = self.word()? as usize;
        // 1 MiB guard: a corrupt length must not trigger a huge allocation.
        if len > 1 << 20 {
            return None;
        }
        let mut bytes = Vec::with_capacity(len);
        while bytes.len() < len {
            let w = self.word()?.to_le_bytes();
            let take = (len - bytes.len()).min(8);
            bytes.extend_from_slice(&w[..take]);
        }
        String::from_utf8(bytes).ok()
    }

    fn verdict(&mut self) -> Option<CachedVerdict> {
        let pass = self.word()? != 0;
        let stop = StopReason::from_u8(self.word()? as u8);
        let states = self.word()? as usize;
        let transitions = self.word()? as usize;
        let deadlocks = self.word()? as usize;
        let n_observed = self.word()? as usize;
        let mut observed = BTreeSet::new();
        for _ in 0..n_observed {
            let len = self.word()? as usize;
            let mut tuple = Vec::with_capacity(len.min(1 << 16));
            for _ in 0..len {
                tuple.push(self.val()?);
            }
            observed.insert(tuple);
        }
        let n_notes = self.word()? as usize;
        let mut notes = Vec::new();
        for _ in 0..n_notes {
            notes.push(match self.word()? {
                0 => Note::PorThreadCap { threads: self.word()? as usize },
                1 => Note::DporLocationCap,
                2 => Note::SymmetryOrbitCap { orbit: self.word()? as usize },
                3 => Note::WorkerFault { message: self.string()? },
                4 => Note::CheckpointError { message: self.string()? },
                _ => return None,
            });
        }
        Some(CachedVerdict { pass, observed, states, transitions, deadlocks, stop, notes })
    }
}

fn store_entry(
    dir: &Path,
    fp: Fp128,
    key_words: &[u64],
    verdict: &CachedVerdict,
) -> std::io::Result<()> {
    let mut payload: Vec<u64> = Vec::with_capacity(key_words.len() + 32);
    payload.push(key_words.len() as u64);
    payload.extend_from_slice(key_words);
    verdict_words(verdict, &mut payload);
    let mut bytes = Vec::with_capacity(8 * payload.len());
    for w in &payload {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    let path = entry_path(dir, fp);
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(MAGIC)?;
        f.write_all(&fnv1a(&bytes).to_le_bytes())?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, &path)
}

fn load_entry(dir: &Path, fp: Fp128, expect_words: &[u64]) -> Option<CachedVerdict> {
    let mut raw = Vec::new();
    std::fs::File::open(entry_path(dir, fp)).ok()?.read_to_end(&mut raw).ok()?;
    if raw.len() < 16 || &raw[..8] != MAGIC || raw.len() % 8 != 0 {
        return None;
    }
    let checksum = u64::from_le_bytes(raw[8..16].try_into().unwrap());
    let body = &raw[16..];
    if fnv1a(body) != checksum {
        return None;
    }
    let words: Vec<u64> =
        body.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())).collect();
    let mut cur = Cursor { words: &words, pos: 0 };
    let n_key = cur.word()? as usize;
    if n_key != expect_words.len() || words.get(1..1 + n_key)? != expect_words {
        return None;
    }
    cur.pos = 1 + n_key;
    let verdict = cur.verdict()?;
    // A stored verdict is complete by the insert invariant; a file that
    // claims otherwise is stale or forged — refuse it.
    verdict.stop.is_complete().then_some(verdict)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(n: u64) -> Fp128 {
        Fp128 { hi: n, lo: !n }
    }

    fn verdict(states: usize) -> CachedVerdict {
        CachedVerdict {
            pass: true,
            observed: BTreeSet::from([vec![Val::Int(1), Val::Bool(false)], vec![Val::Empty]]),
            states,
            transitions: states * 2,
            deadlocks: 0,
            stop: StopReason::Complete,
            notes: vec![
                Note::WorkerFault { message: "contained: boom".into() },
                Note::SymmetryOrbitCap { orbit: 720 },
            ],
        }
    }

    #[test]
    fn memory_probe_confirms_key_words() {
        let mut c = VerdictCache::new(8);
        c.insert(fp(1), vec![1, 2, 3], verdict(10));
        assert_eq!(c.probe(fp(1), &[1, 2, 3]).map(|(v, t)| (v.states, t)), Some((10, CacheTier::Mem)));
        // Same fingerprint, different words: a collision is a miss.
        assert!(c.probe(fp(1), &[9, 9, 9]).is_none());
        assert_eq!(c.stats().mem_hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn non_complete_verdicts_are_refused() {
        let mut c = VerdictCache::new(8);
        let mut v = verdict(10);
        v.stop = StopReason::Deadline;
        c.insert(fp(1), vec![1], v);
        assert!(c.probe(fp(1), &[1]).is_none());
        assert_eq!(c.stats().inserts, 0);
    }

    #[test]
    fn lru_evicts_the_stalest_entry() {
        let mut c = VerdictCache::new(2);
        c.insert(fp(1), vec![1], verdict(1));
        c.insert(fp(2), vec![2], verdict(2));
        assert!(c.probe(fp(1), &[1]).is_some()); // refresh 1; 2 is now stalest
        c.insert(fp(3), vec![3], verdict(3));
        assert_eq!(c.len(), 2);
        assert!(c.probe(fp(2), &[2]).is_none(), "the stale entry was evicted");
        assert!(c.probe(fp(1), &[1]).is_some());
        assert!(c.probe(fp(3), &[3]).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn disk_spill_survives_a_restart_and_detects_corruption() {
        let dir = std::env::temp_dir().join("rc11-cache-test-restart");
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut c = VerdictCache::with_disk(8, &dir).unwrap();
            c.insert(fp(7), vec![4, 5], verdict(42));
        }
        // "Restart": a fresh cache over the same directory.
        let mut c = VerdictCache::with_disk(8, &dir).unwrap();
        let (v, tier) = c.probe(fp(7), &[4, 5]).expect("disk hit after restart");
        assert_eq!((v, tier), (verdict(42), CacheTier::Disk));
        // Promoted: the second probe is a memory hit.
        assert_eq!(c.probe(fp(7), &[4, 5]).unwrap().1, CacheTier::Mem);
        // Key-word mismatch on disk is a miss, not a wrong verdict.
        let mut c2 = VerdictCache::with_disk(8, &dir).unwrap();
        assert!(c2.probe(fp(7), &[4, 6]).is_none());
        // Flip a payload byte: the checksum must reject the file.
        let path = entry_path(&dir, fp(7));
        let mut raw = std::fs::read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0xff;
        std::fs::write(&path, &raw).unwrap();
        let mut c3 = VerdictCache::with_disk(8, &dir).unwrap();
        assert!(c3.probe(fp(7), &[4, 5]).is_none(), "corrupt entry must miss");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_keeps_the_disk_copy_serving() {
        let dir = std::env::temp_dir().join("rc11-cache-test-evict");
        let _ = std::fs::remove_dir_all(&dir);
        let mut c = VerdictCache::with_disk(1, &dir).unwrap();
        c.insert(fp(1), vec![1], verdict(1));
        c.insert(fp(2), vec![2], verdict(2)); // evicts fp(1) from memory
        let (v, tier) = c.probe(fp(1), &[1]).expect("served from disk after eviction");
        assert_eq!(tier, CacheTier::Disk);
        assert_eq!(v.states, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
