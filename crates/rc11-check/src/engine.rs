//! The unified exploration-engine surface.
//!
//! Every exhaustive check in the workspace — litmus verdicts, proof-outline
//! validation, refinement harness sweeps, the lock negative controls — asks
//! the same question: "what does the reachable configuration space look
//! like?". This module gives that question one answer type
//! ([`EngineReport`], with [`Violation`]s that carry counterexample traces)
//! and one entry point ([`Engine`]) behind which the sequential explorer
//! ([`crate::explore::Explorer`]) and the batched work-stealing parallel
//! explorer ([`crate::parallel::par_explore`]) are interchangeable.
//!
//! The two engines are proven equivalent — identical state, transition and
//! terminal counts and identical violation sets — by the differential suite
//! (`tests/engine_agreement.rs` at the workspace root), with the sequential
//! explorer serving as the reference oracle. [`choose_engine`] picks the
//! engine for a requested worker count.

use crate::explore::Explorer;
use crate::parallel::par_explore;
use rc11_core::Tid;
use rc11_lang::cfg::CfgProgram;
use rc11_lang::machine::{Config, ObjectSemantics, StepOptions};

/// Exploration limits and knobs, shared by both engines.
#[derive(Debug, Clone, Copy)]
pub struct ExploreOptions {
    /// Step-generation options (local fusion).
    pub step: StepOptions,
    /// Hard cap on visited states (guards against state explosion; the
    /// report marks truncation). The parallel engine checks the cap
    /// against a racy running counter, so its visited map may transiently
    /// overshoot by up to one batch of successors per worker; the report
    /// reconciles that to the sequential oracle's verdict — whenever the
    /// cap was exceeded, `truncated` is set and `states` is clamped to
    /// `max_states` (still a valid lower bound on the reachable space) —
    /// so cap-hitting runs agree across engines.
    pub max_states: usize,
    /// Record parent pointers so violations carry counterexample traces.
    /// Both engines honour this: the sequential explorer keeps a parent
    /// array, the parallel engine a sharded parent-pointer map.
    pub record_traces: bool,
    /// Deduplicate visited states on zero-rebuild 128-bit canonical
    /// fingerprints (`rc11_check::fxhash::Fp128`) instead of materialised
    /// canonical [`Config`] keys. Successors then cost one hash walk
    /// instead of a full renumber-and-rebuild plus a key clone; canonical
    /// configurations are interned exactly once, and fingerprint hits are
    /// confirmed against the interned representative, so verdicts are
    /// bit-identical either way (enforced by the fingerprint-on/off
    /// differential in `tests/engine_agreement.rs`; ablation A4 in
    /// DESIGN.md). Off = the legacy materialised-canonical dedup path.
    pub fingerprint: bool,
    /// Partial-order reduction: sleep-set pruning over the
    /// [`rc11_core::StepFootprint`] independence oracle (ablation A5 in
    /// DESIGN.md, machinery in `crate::por`). Prunes **transitions only,
    /// never states**: the visited state set, terminal/deadlock sets and
    /// violation sets are identical to the unreduced search (enforced
    /// gallery-, corpus- and fuzz-wide by the POR differentials), while
    /// `transitions` shrinks by the number of commuted sibling orders
    /// skipped. Both engines honour it. Default **off** this release;
    /// `rc11 run --por` and the A5 benches turn it on. Ignored by the
    /// outline checker, whose Owicki–Gries classification needs every
    /// edge.
    pub por: bool,
    /// Dynamic partial-order reduction with persistent sets (ablation A7
    /// in DESIGN.md, machinery in `rc11_analyze::persistent` plus
    /// `crate::por`). Implies [`ExploreOptions::por`]: on top of the
    /// sleep-set masks, each state expands only a *persistent set* of
    /// threads — the smallest closure of pc-sensitive future-footprint
    /// conflicts — so whole threads are skipped, not just sibling orders.
    /// Unlike A5/A6 this **may shed states**: configurations only
    /// reachable by commuting an outside-the-set thread first are never
    /// built. Terminal, deadlock, outcome and violation multisets stay
    /// bit-identical to the unreduced search (Godefroid's persistent-set
    /// theorem; enforced gallery-, corpus- and fuzz-wide by the DPOR
    /// differentials), but `states` and `transitions` are only *bounded
    /// above* by the unreduced counts and may differ between engines —
    /// arrival order changes which duplicate wakes which mask. Checks
    /// that must see every reachable intermediate configuration (e.g.
    /// global invariants over non-terminal states) should use sleep-only
    /// POR or the unreduced search instead. Degrades silently to
    /// sleep-sets-only when the program exceeds the 128-location future-
    /// footprint capacity, and to the unreduced search past 64 threads
    /// (reported via [`EngineReport::por_fallback`]). Default **off**;
    /// `rc11 run --dpor` and the A7 benches turn it on.
    pub dpor: bool,
    /// Thread-symmetry reduction (ablation A6 in DESIGN.md, machinery in
    /// `rc11_analyze::symmetry` plus `crate::sym`): configurations that
    /// differ only by a permutation of provably-symmetric threads are
    /// identified, so the visited state count shrinks by up to the orbit
    /// size (`N!` for `N` fully-symmetric threads) — redundancy POR cannot
    /// see (POR prunes transitions; symmetry identifies states). Outcome,
    /// violation and terminal/deadlock sets stay bit-identical to the
    /// unreduced search: the check callback runs on every distinct orbit
    /// member at discovery, and terminal sets are orbit-expanded before
    /// the report is returned. Composes with [`ExploreOptions::por`] and
    /// both dedup modes. Programs without symmetric threads pay one cheap
    /// static analysis and then run the unchanged fast path. Default
    /// **off** this release; `rc11 run --symmetry` and the A6 benches turn
    /// it on. Ignored by the outline checker (Owicki–Gries classification
    /// is per-edge and per-thread).
    pub symmetry: bool,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            step: StepOptions::default(),
            max_states: 5_000_000,
            record_traces: true,
            fingerprint: true,
            por: false,
            dpor: false,
            symmetry: false,
        }
    }
}

/// A violation discovered during exploration.
#[derive(Debug, Clone)]
pub struct Violation {
    /// What was violated (human-readable).
    pub what: String,
    /// The offending configuration.
    pub config: Config,
    /// The step sequence from the initial configuration, if traces were
    /// recorded: `(moving thread, resulting configuration)` pairs.
    pub trace: Option<Vec<(Tid, Config)>>,
}

/// Exploration statistics and results, identical across engines.
#[derive(Debug, Clone, Default)]
pub struct EngineReport {
    /// Distinct canonical configurations visited.
    pub states: usize,
    /// Transitions generated.
    pub transitions: usize,
    /// Terminal configurations where every thread halted.
    pub terminated: Vec<Config>,
    /// Terminal configurations with at least one non-halted (blocked)
    /// thread — deadlocks under the abstract semantics.
    pub deadlocked: Vec<Config>,
    /// Violations reported by the check callback.
    pub violations: Vec<Violation>,
    /// True iff `max_states` was hit (results are a lower bound).
    pub truncated: bool,
    /// True iff partial-order reduction was requested but the program
    /// exceeds POR's 64-thread mask ceiling, so the engine fell back to
    /// the unreduced search (which supports any thread count `Tid` can
    /// name). Results are exact either way; the flag exists so callers —
    /// `rc11 run --por` prints a note — can surface the downgrade instead
    /// of the hard assert this used to be.
    pub por_fallback: bool,
}

impl EngineReport {
    /// No violations and exploration completed.
    pub fn ok(&self) -> bool {
        self.violations.is_empty() && !self.truncated
    }
}

/// Which exploration engine to run. Both decide the same reachability
/// question; the differential suite holds them to identical answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// The sequential reference explorer ([`crate::explore::Explorer`]).
    Sequential,
    /// The batched work-stealing parallel explorer
    /// ([`crate::parallel::par_explore`]) with this many workers.
    Parallel {
        /// Worker-thread count (clamped to at least 1).
        workers: usize,
    },
}

/// Pick an engine for a requested worker count: one worker (or zero) gets
/// the sequential explorer — it has no synchronisation overhead and is the
/// reference oracle — more workers get the parallel engine.
pub fn choose_engine(n_workers: usize) -> Engine {
    if n_workers <= 1 {
        Engine::Sequential
    } else {
        Engine::Parallel { workers: n_workers }
    }
}

impl Engine {
    /// The number of worker threads this engine runs.
    pub fn workers(&self) -> usize {
        match self {
            Engine::Sequential => 1,
            Engine::Parallel { workers } => (*workers).max(1),
        }
    }

    /// Exhaustive reachability with a per-configuration check callback.
    /// The callback pushes a description into `out` for every property the
    /// configuration violates; `out` is a reusable buffer owned by the
    /// engine (one per worker in the parallel engine), so violation-free
    /// configurations — the overwhelmingly common case — allocate nothing.
    /// The callback must be `Sync` because the parallel engine evaluates
    /// it from every worker.
    pub fn explore_with(
        &self,
        prog: &CfgProgram,
        objs: &(dyn ObjectSemantics + Sync),
        opts: ExploreOptions,
        check: impl Fn(&Config, &mut Vec<String>) + Sync,
    ) -> EngineReport {
        match self {
            Engine::Sequential => {
                Explorer::new(prog, objs).with_options(opts).explore_with(|c, out| check(c, out))
            }
            Engine::Parallel { workers } => par_explore(prog, objs, opts, *workers, check),
        }
    }

    /// Plain reachability (no property).
    pub fn explore(
        &self,
        prog: &CfgProgram,
        objs: &(dyn ObjectSemantics + Sync),
        opts: ExploreOptions,
    ) -> EngineReport {
        self.explore_with(prog, objs, opts, |_, _| {})
    }

    /// Check a predicate as a global invariant.
    pub fn check_invariant(
        &self,
        prog: &CfgProgram,
        objs: &(dyn ObjectSemantics + Sync),
        opts: ExploreOptions,
        pred: &rc11_assert::Pred,
    ) -> EngineReport {
        self.explore_with(prog, objs, opts, |cfg, out| {
            let ctx = rc11_assert::EvalCtx { prog, cfg };
            if !pred.eval(ctx) {
                out.push("invariant violated".to_string());
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn choose_engine_prefers_sequential_for_one_worker() {
        assert_eq!(choose_engine(0), Engine::Sequential);
        assert_eq!(choose_engine(1), Engine::Sequential);
        assert_eq!(choose_engine(2), Engine::Parallel { workers: 2 });
        assert_eq!(choose_engine(8), Engine::Parallel { workers: 8 });
    }

    #[test]
    fn workers_clamped_to_at_least_one() {
        assert_eq!(Engine::Sequential.workers(), 1);
        assert_eq!(Engine::Parallel { workers: 0 }.workers(), 1);
        assert_eq!(Engine::Parallel { workers: 4 }.workers(), 4);
    }
}
