//! The unified exploration-engine surface.
//!
//! Every exhaustive check in the workspace — litmus verdicts, proof-outline
//! validation, refinement harness sweeps, the lock negative controls — asks
//! the same question: "what does the reachable configuration space look
//! like?". This module gives that question one answer type
//! ([`EngineReport`], with [`Violation`]s that carry counterexample traces)
//! and one entry point ([`Engine`]) behind which the sequential explorer
//! ([`crate::explore::Explorer`]) and the batched work-stealing parallel
//! explorer ([`crate::parallel::par_explore`]) are interchangeable.
//!
//! The two engines are proven equivalent — identical state, transition and
//! terminal counts and identical violation sets — by the differential suite
//! (`tests/engine_agreement.rs` at the workspace root), with the sequential
//! explorer serving as the reference oracle. [`choose_engine`] picks the
//! engine for a requested worker count.

use crate::chaos::ChaosState;
use crate::checkpoint::CheckpointOpts;
use crate::explore::Explorer;
use crate::parallel::par_explore;
use rc11_core::Tid;
use rc11_lang::cfg::CfgProgram;
use rc11_lang::machine::{Config, ObjectSemantics, StepOptions};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Why an exploration stopped — the generalisation of the old `truncated`
/// bool into an ordered lattice. Reasons are ordered by severity and
/// combined by `max` ([`StopReason::bump`]): a run that hits the state cap
/// *and* loses a worker reports the worker fault. Every non-[`Complete`]
/// stop still yields a **sound lower bound**: all reported states,
/// transitions, terminals, deadlocks and violations are real; only
/// completeness is forfeit. Both engines agree on the verdict class —
/// `ok()` is true only for violation-free `Complete` runs.
///
/// [`Complete`]: StopReason::Complete
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum StopReason {
    /// Exploration exhausted the reachable space.
    #[default]
    Complete,
    /// The `max_states` cap cut the walk short.
    StateCap,
    /// [`Budget::max_transitions`] was reached.
    TransitionCap,
    /// [`Budget::max_mem_bytes`] was reached (approximate arena bytes).
    MemBudget,
    /// [`Budget::deadline`] expired.
    Deadline,
    /// The shared [`CancelToken`] was cancelled. A cancelled run never
    /// claims `Complete`, even when cancellation raced the final state:
    /// both engines re-check the token after their loops.
    Cancelled,
    /// A parallel worker panicked; the run continued degraded on the
    /// surviving workers (see `parallel`), so coverage may have gaps.
    WorkerFault,
}

impl StopReason {
    /// Combine in the lattice: keep the more severe reason.
    pub fn bump(&mut self, other: StopReason) {
        *self = (*self).max(other);
    }

    /// True iff exploration exhausted the space.
    pub fn is_complete(&self) -> bool {
        *self == StopReason::Complete
    }

    pub(crate) fn as_u8(self) -> u8 {
        self as u8
    }

    pub(crate) fn from_u8(v: u8) -> StopReason {
        match v {
            0 => StopReason::Complete,
            1 => StopReason::StateCap,
            2 => StopReason::TransitionCap,
            3 => StopReason::MemBudget,
            4 => StopReason::Deadline,
            5 => StopReason::Cancelled,
            _ => StopReason::WorkerFault,
        }
    }
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StopReason::Complete => "complete",
            StopReason::StateCap => "state-cap",
            StopReason::TransitionCap => "transition-cap",
            StopReason::MemBudget => "mem-budget",
            StopReason::Deadline => "deadline",
            StopReason::Cancelled => "cancelled",
            StopReason::WorkerFault => "worker-fault",
        };
        f.write_str(s)
    }
}

/// Resource budgets for one exploration, all optional. Checked
/// cooperatively in both engines' hot loops (between work items), so each
/// bound may be overshot by at most one item's expansion; any trip stops
/// the walk with the matching [`StopReason`] and a sound partial report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Budget {
    /// Wall-clock deadline, measured from the start of `explore_with`.
    pub deadline: Option<Duration>,
    /// Cap on generated transitions.
    pub max_transitions: Option<usize>,
    /// Cap on the approximate interned-arena footprint in bytes
    /// ([`rc11_lang::machine::Config::approx_bytes`] summed over interned
    /// states).
    pub max_mem_bytes: Option<usize>,
}

impl Budget {
    /// True iff no bound is set (the default).
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_transitions.is_none() && self.max_mem_bytes.is_none()
    }
}

/// A shared cooperative-cancellation handle. Clone it, hand one clone to
/// [`ExploreOptions::cancel`] and keep the other; `cancel()` from any
/// thread makes both engines stop at the next work item with
/// [`StopReason::Cancelled`]. The default token is never cancelled.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation (idempotent, any thread).
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// A structured warning on an [`EngineReport`]: something degraded or went
/// wrong without invalidating the verdict. The old `por_fallback` bool is
/// now [`Note::PorThreadCap`]; `rc11 run` prints notes as a column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Note {
    /// POR was requested but the program exceeds the 64-thread mask
    /// ceiling; the walk ran unreduced (results stay exact).
    PorThreadCap {
        /// The program's thread count.
        threads: usize,
    },
    /// DPOR was requested but the program exceeds the 128-location
    /// future-footprint capacity; the walk degraded to sleep-sets-only
    /// (sound, fewer transitions pruned).
    DporLocationCap,
    /// Symmetry reduction was requested but the detected groups' orbit
    /// exceeds `rc11_analyze::symmetry::ORBIT_CAP`; the walk ran without
    /// reduction (results stay exact).
    SymmetryOrbitCap {
        /// The orbit size detection gave up on.
        orbit: usize,
    },
    /// A parallel worker panicked and was contained; its in-flight state
    /// was dropped and the run continued degraded.
    WorkerFault {
        /// The panic payload, stringified.
        message: String,
    },
    /// A checkpoint write or load failed (or was chaos-injected to fail);
    /// the run continued without that checkpoint.
    CheckpointError {
        /// What failed.
        message: String,
    },
}

impl fmt::Display for Note {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Note::PorThreadCap { threads } => {
                write!(f, "por-fallback: {threads} threads exceed the 64-thread POR ceiling")
            }
            Note::DporLocationCap => {
                f.write_str("dpor-fallback: >128 locations, sleep-sets only")
            }
            Note::SymmetryOrbitCap { orbit } => {
                write!(f, "symmetry-fallback: orbit {orbit} exceeds cap, unreduced")
            }
            Note::WorkerFault { message } => write!(f, "worker-fault: {message}"),
            Note::CheckpointError { message } => write!(f, "checkpoint: {message}"),
        }
    }
}

/// Exploration limits and knobs, shared by both engines.
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Step-generation options (local fusion).
    pub step: StepOptions,
    /// Hard cap on visited states (guards against state explosion; the
    /// report marks truncation). The parallel engine checks the cap
    /// against a racy running counter, so its visited map may transiently
    /// overshoot by up to one batch of successors per worker; the report
    /// reconciles that to the sequential oracle's verdict — whenever the
    /// cap was exceeded, `truncated` is set and `states` is clamped to
    /// `max_states` (still a valid lower bound on the reachable space) —
    /// so cap-hitting runs agree across engines.
    pub max_states: usize,
    /// Record parent pointers so violations carry counterexample traces.
    /// Both engines honour this: the sequential explorer keeps a parent
    /// array, the parallel engine a sharded parent-pointer map.
    pub record_traces: bool,
    /// Deduplicate visited states on zero-rebuild 128-bit canonical
    /// fingerprints (`rc11_check::fxhash::Fp128`) instead of materialised
    /// canonical [`Config`] keys. Successors then cost one hash walk
    /// instead of a full renumber-and-rebuild plus a key clone; canonical
    /// configurations are interned exactly once, and fingerprint hits are
    /// confirmed against the interned representative, so verdicts are
    /// bit-identical either way (enforced by the fingerprint-on/off
    /// differential in `tests/engine_agreement.rs`; ablation A4 in
    /// DESIGN.md). Off = the legacy materialised-canonical dedup path.
    pub fingerprint: bool,
    /// Partial-order reduction: sleep-set pruning over the
    /// [`rc11_core::StepFootprint`] independence oracle (ablation A5 in
    /// DESIGN.md, machinery in `crate::por`). Prunes **transitions only,
    /// never states**: the visited state set, terminal/deadlock sets and
    /// violation sets are identical to the unreduced search (enforced
    /// gallery-, corpus- and fuzz-wide by the POR differentials), while
    /// `transitions` shrinks by the number of commuted sibling orders
    /// skipped. Both engines honour it. Default **off** this release;
    /// `rc11 run --por` and the A5 benches turn it on. Ignored by the
    /// outline checker, whose Owicki–Gries classification needs every
    /// edge.
    pub por: bool,
    /// Dynamic partial-order reduction with persistent sets (ablation A7
    /// in DESIGN.md, machinery in `rc11_analyze::persistent` plus
    /// `crate::por`). Implies [`ExploreOptions::por`]: on top of the
    /// sleep-set masks, each state expands only a *persistent set* of
    /// threads — the smallest closure of pc-sensitive future-footprint
    /// conflicts — so whole threads are skipped, not just sibling orders.
    /// Unlike A5/A6 this **may shed states**: configurations only
    /// reachable by commuting an outside-the-set thread first are never
    /// built. Terminal, deadlock, outcome and violation multisets stay
    /// bit-identical to the unreduced search (Godefroid's persistent-set
    /// theorem; enforced gallery-, corpus- and fuzz-wide by the DPOR
    /// differentials), but `states` and `transitions` are only *bounded
    /// above* by the unreduced counts and may differ between engines —
    /// arrival order changes which duplicate wakes which mask. Checks
    /// that must see every reachable intermediate configuration (e.g.
    /// global invariants over non-terminal states) should use sleep-only
    /// POR or the unreduced search instead. Degrades silently to
    /// sleep-sets-only when the program exceeds the 128-location future-
    /// footprint capacity, and to the unreduced search past 64 threads
    /// (reported via [`EngineReport::por_fallback`]). Default **off**;
    /// `rc11 run --dpor` and the A7 benches turn it on.
    pub dpor: bool,
    /// Thread-symmetry reduction (ablation A6 in DESIGN.md, machinery in
    /// `rc11_analyze::symmetry` plus `crate::sym`): configurations that
    /// differ only by a permutation of provably-symmetric threads are
    /// identified, so the visited state count shrinks by up to the orbit
    /// size (`N!` for `N` fully-symmetric threads) — redundancy POR cannot
    /// see (POR prunes transitions; symmetry identifies states). Outcome,
    /// violation and terminal/deadlock sets stay bit-identical to the
    /// unreduced search: the check callback runs on every distinct orbit
    /// member at discovery, and terminal sets are orbit-expanded before
    /// the report is returned. Composes with [`ExploreOptions::por`] and
    /// both dedup modes. Programs without symmetric threads pay one cheap
    /// static analysis and then run the unchanged fast path. Default
    /// **off** this release; `rc11 run --symmetry` and the A6 benches turn
    /// it on. Ignored by the outline checker (Owicki–Gries classification
    /// is per-edge and per-thread).
    pub symmetry: bool,
    /// Resource budgets (deadline, transition cap, approximate memory
    /// cap). Checked cooperatively between work items in both engines'
    /// hot loops; tripping one stops the walk with the matching
    /// [`StopReason`] and a sound partial report. Unlimited by default.
    pub budget: Budget,
    /// Shared cooperative-cancellation token; `cancel()` on any clone
    /// stops both engines at the next work item with
    /// [`StopReason::Cancelled`]. The default token never cancels.
    pub cancel: CancelToken,
    /// Periodic checkpointing of the sequential explorer's frontier and
    /// visited set ([`crate::checkpoint`]): with `Some`, the explorer
    /// saves a replay-log checkpoint to the directory every
    /// `every` expanded items (and on every non-`Complete` stop), resumes
    /// from a matching checkpoint found there, and deletes it on
    /// `Complete`. Resumed runs produce reports **bit-identical** to
    /// uninterrupted ones. The parallel engine ignores this (callers —
    /// `rc11 run --checkpoint` — force the sequential engine).
    pub checkpoint: Option<CheckpointOpts>,
    /// Seeded deterministic fault injection ([`crate::chaos`]) for the
    /// resilience test harness: worker panics and stalls fire in the
    /// parallel engine's expansion loop, checkpoint-write failures in the
    /// sequential checkpointer. `None` (the default) injects nothing.
    pub chaos: Option<Arc<ChaosState>>,
    /// Telemetry sink (DESIGN.md §9). With `Some`, both engines tally
    /// structured counters — states, transitions, dup hits, confirmed
    /// fingerprint collisions, reduction prunes/sheds/folds, cap
    /// degradations, scheduler traffic, per-worker expansions — into the
    /// shared sink via sharded relaxed atomics, and attach the run's
    /// contribution to [`EngineReport::telemetry`] as a snapshot delta.
    /// `None` (the default) makes every instrumentation site a single
    /// untaken branch; verdicts are bit-identical either way (enforced
    /// corpus-wide by `tests/telemetry.rs`). Deliberately **not** part of
    /// the verdict-cache key ([`crate::request::option_words`]).
    pub telemetry: Option<Arc<rc11_telemetry::Telemetry>>,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            step: StepOptions::default(),
            max_states: 5_000_000,
            record_traces: true,
            fingerprint: true,
            por: false,
            dpor: false,
            symmetry: false,
            budget: Budget::default(),
            cancel: CancelToken::default(),
            checkpoint: None,
            chaos: None,
            telemetry: None,
        }
    }
}

/// A violation discovered during exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// What was violated (human-readable).
    pub what: String,
    /// The offending configuration.
    pub config: Config,
    /// The step sequence from the initial configuration, if traces were
    /// recorded: `(moving thread, resulting configuration)` pairs.
    pub trace: Option<Vec<(Tid, Config)>>,
}

/// Exploration statistics and results, identical across engines.
#[derive(Debug, Clone, Default)]
pub struct EngineReport {
    /// Distinct canonical configurations visited.
    pub states: usize,
    /// Transitions generated.
    pub transitions: usize,
    /// Terminal configurations where every thread halted.
    pub terminated: Vec<Config>,
    /// Terminal configurations with at least one non-halted (blocked)
    /// thread — deadlocks under the abstract semantics.
    pub deadlocked: Vec<Config>,
    /// Violations reported by the check callback.
    pub violations: Vec<Violation>,
    /// Why exploration stopped. Anything but [`StopReason::Complete`]
    /// means the results are a sound lower bound on the reachable space
    /// (the old `truncated` bool generalised to a lattice).
    pub stop: StopReason,
    /// Structured warnings: silent degradations surfaced (POR/DPOR/
    /// symmetry caps), contained worker faults, checkpoint errors. Notes
    /// never change the verdict; `rc11 run` prints them as a column.
    pub notes: Vec<Note>,
    /// Monotonic wall-clock duration of the exploration, measured inside
    /// the engine (from entry to report construction). Populated by both
    /// engines on every run; callers derive states/s from it instead of
    /// timing around the call. Excluded from [`EngineReport::same_results`].
    pub wall: Duration,
    /// This run's telemetry contribution (a snapshot delta against the
    /// sink at run start), present iff [`ExploreOptions::telemetry`] was
    /// set. Excluded from [`EngineReport::same_results`] and from the
    /// verdict cache.
    pub telemetry: Option<rc11_telemetry::TelemetrySnapshot>,
}

impl EngineReport {
    /// No violations and exploration completed.
    pub fn ok(&self) -> bool {
        self.violations.is_empty() && self.stop.is_complete()
    }

    /// True iff exploration stopped early for any reason (results are a
    /// lower bound) — the old `truncated` field as a method.
    pub fn truncated(&self) -> bool {
        !self.stop.is_complete()
    }

    /// True iff POR was requested but fell back to the unreduced search
    /// (the old `por_fallback` field, now [`Note::PorThreadCap`]).
    pub fn por_fallback(&self) -> bool {
        self.notes.iter().any(|n| matches!(n, Note::PorThreadCap { .. }))
    }

    /// Push `note` unless an equal one is already present.
    pub fn note(&mut self, note: Note) {
        if !self.notes.contains(&note) {
            self.notes.push(note);
        }
    }

    /// Are two reports bit-identical in their *results* — states,
    /// transitions, terminal/deadlock sets, violations (including traces)
    /// and stop reason? Notes, wall time and telemetry are excluded: they
    /// describe how the run went, not what it found. This is the equality
    /// the chaos, checkpoint/resume and telemetry differentials enforce.
    pub fn same_results(&self, other: &EngineReport) -> bool {
        self.states == other.states
            && self.transitions == other.transitions
            && self.terminated == other.terminated
            && self.deadlocked == other.deadlocked
            && self.violations == other.violations
            && self.stop == other.stop
    }
}

/// Which exploration engine to run. Both decide the same reachability
/// question; the differential suite holds them to identical answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// The sequential reference explorer ([`crate::explore::Explorer`]).
    Sequential,
    /// The batched work-stealing parallel explorer
    /// ([`crate::parallel::par_explore`]) with this many workers.
    Parallel {
        /// Worker-thread count (clamped to at least 1).
        workers: usize,
    },
}

/// Pick an engine for a requested worker count: one worker (or zero) gets
/// the sequential explorer — it has no synchronisation overhead and is the
/// reference oracle — more workers get the parallel engine.
pub fn choose_engine(n_workers: usize) -> Engine {
    if n_workers <= 1 {
        Engine::Sequential
    } else {
        Engine::Parallel { workers: n_workers }
    }
}

impl Engine {
    /// The number of worker threads this engine runs.
    pub fn workers(&self) -> usize {
        match self {
            Engine::Sequential => 1,
            Engine::Parallel { workers } => (*workers).max(1),
        }
    }

    /// Exhaustive reachability with a per-configuration check callback.
    /// The callback pushes a description into `out` for every property the
    /// configuration violates; `out` is a reusable buffer owned by the
    /// engine (one per worker in the parallel engine), so violation-free
    /// configurations — the overwhelmingly common case — allocate nothing.
    /// The callback must be `Sync` because the parallel engine evaluates
    /// it from every worker.
    pub fn explore_with(
        &self,
        prog: &CfgProgram,
        objs: &(dyn ObjectSemantics + Sync),
        opts: &ExploreOptions,
        check: impl Fn(&Config, &mut Vec<String>) + Sync,
    ) -> EngineReport {
        match self {
            Engine::Sequential => Explorer::new(prog, objs)
                .with_options(opts.clone())
                .explore_with(|c, out| check(c, out)),
            Engine::Parallel { workers } => par_explore(prog, objs, opts, *workers, check),
        }
    }

    /// Plain reachability (no property).
    pub fn explore(
        &self,
        prog: &CfgProgram,
        objs: &(dyn ObjectSemantics + Sync),
        opts: &ExploreOptions,
    ) -> EngineReport {
        self.explore_with(prog, objs, opts, |_, _| {})
    }

    /// Check a predicate as a global invariant. Honours budgets,
    /// cancellation and checkpointing exactly like [`Engine::explore`]:
    /// it is the same walk with a predicate check layered on, so a budget
    /// trip yields a sound partial report with the matching
    /// [`StopReason`] on either engine.
    pub fn check_invariant(
        &self,
        prog: &CfgProgram,
        objs: &(dyn ObjectSemantics + Sync),
        opts: &ExploreOptions,
        pred: &rc11_assert::Pred,
    ) -> EngineReport {
        self.explore_with(prog, objs, opts, |cfg, out| {
            let ctx = rc11_assert::EvalCtx { prog, cfg };
            if !pred.eval(ctx) {
                out.push("invariant violated".to_string());
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn choose_engine_prefers_sequential_for_one_worker() {
        assert_eq!(choose_engine(0), Engine::Sequential);
        assert_eq!(choose_engine(1), Engine::Sequential);
        assert_eq!(choose_engine(2), Engine::Parallel { workers: 2 });
        assert_eq!(choose_engine(8), Engine::Parallel { workers: 8 });
    }

    #[test]
    fn workers_clamped_to_at_least_one() {
        assert_eq!(Engine::Sequential.workers(), 1);
        assert_eq!(Engine::Parallel { workers: 0 }.workers(), 1);
        assert_eq!(Engine::Parallel { workers: 4 }.workers(), 4);
    }
}
