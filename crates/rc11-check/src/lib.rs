//! # rc11-check — exhaustive verification over the RC11 RAR semantics
//!
//! The model-checking counterpart of the paper's Isabelle/HOL mechanisation
//! (see DESIGN.md): where the paper proves lemmas deductively over the
//! operational semantics, this crate decides them for the paper's (finite-
//! state) programs by exhaustive exploration:
//!
//! * [`engine`] — the unified exploration surface: [`engine::Engine`],
//!   [`engine::choose_engine`], and the shared
//!   [`engine::EngineReport`]/[`engine::Violation`] types both engines
//!   produce, plus the resilience layer ([`engine::Budget`],
//!   [`engine::CancelToken`], [`engine::StopReason`], [`engine::Note`]);
//! * [`chaos`] — seeded deterministic fault injection (worker panics,
//!   stalls, checkpoint-write failures) for the resilience harness;
//! * [`checkpoint`] — replay-log checkpoint/resume for the sequential
//!   explorer (`rc11 run --checkpoint`): resumed runs report
//!   bit-identically to uninterrupted ones;
//! * [`explore::Explorer`] — sequential exhaustive search over canonical configurations
//!   with invariant checking, terminal-outcome collection and counterexample
//!   traces — the reference oracle for the differential suite;
//! * [`outline_check`] — proof-outline validity (Figures 3, 7; Lemma 4)
//!   with Owicki–Gries violation classification (local vs interference),
//!   runnable under either engine ([`outline_check::check_outline_with`]);
//! * [`parallel`] — the batched work-stealing parallel engine over a
//!   sharded fingerprint-keyed interned state store, with counterexample
//!   traces (ablations A3/A4);
//! * `por` (internal) — sleep-set partial-order reduction over the
//!   [`rc11_core::StepFootprint`] independence oracle with
//!   `rc11_analyze`'s static may-conflict matrix as a pre-filter, layered
//!   on both engines behind [`engine::ExploreOptions::por`] (ablation A5);
//! * `sym` (internal) — the engine-side glue for thread-symmetry
//!   reduction ([`rc11_analyze::symmetry`]), behind
//!   [`engine::ExploreOptions::symmetry`] (ablation A6);
//! * [`gen`] — seeded random litmus-program generation over the full
//!   statement alphabet, with deletion-based shrinking;
//! * [`fuzz`] — the generative differential harness: every generated
//!   program must produce identical reports under sequential/parallel
//!   engines, fingerprint on/off, the `.litmus` printer/parser round-trip,
//!   and sampler-soundness (`random_walk` ⊆ exhaustive outcomes);
//! * [`random`] — reproducible random-walk sampling for outcome frequency;
//! * [`telemetry`] — wire encoding for [`rc11_telemetry`] snapshots, the
//!   `--trace` JSONL stream ([`telemetry::TraceWriter`]) and its
//!   validating aggregator ([`telemetry::read_trace`]);
//! * [`fxhash`] — the integer-friendly hasher behind all the maps, its
//!   128-bit extension [`fxhash::Fx128Hasher`] and the zero-rebuild
//!   canonical fingerprint surface
//!   ([`fxhash::CanonicalFingerprint`]/[`fxhash::Fp128`]).

#![warn(missing_docs)]

pub mod cache;
pub mod chaos;
pub mod checkpoint;
pub mod engine;
pub mod fuzz;
pub mod gen;
pub mod explore;
pub mod fxhash;
pub mod outline_check;
pub mod parallel;
pub(crate) mod por;
pub mod pretty;
pub mod random;
pub mod request;
pub(crate) mod sym;
pub mod telemetry;
pub mod wire;

pub use cache::{CacheStats, CacheTier, CachedVerdict, VerdictCache};
pub use chaos::{ChaosState, FaultPlan};
pub use checkpoint::CheckpointOpts;
pub use engine::{
    choose_engine, Budget, CancelToken, Engine, EngineReport, ExploreOptions, Note, StopReason,
    Violation,
};
pub use fuzz::{diff_one, fuzz, DiffOptions, DiffVerdict, FuzzFailure, FuzzReport};
pub use gen::{generate, shrink, GProg, GRhs, GStmt, GenOptions};
pub use explore::{Explorer, Report};
pub use fxhash::{CanonicalFingerprint, Fp128, Fx128Hasher};
pub use outline_check::{
    check_outline, check_outline_with, OgClass, OutlineKind, OutlineReport, OutlineViolation,
};
pub use parallel::{par_explore, ShardedFpMap, ShardedMap, ShardedSet};
pub use random::{random_walk, sample_terminals, SampleError};
pub use request::{option_words, CheckParams, CheckResponse, CheckService, Served, StatsSnapshot};
pub use telemetry::{read_trace, snapshot_from_json, snapshot_json, TraceStats, TraceWriter};
pub use wire::{obj, parse_json, Json, JsonError};
