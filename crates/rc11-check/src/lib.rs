//! # rc11-check — exhaustive verification over the RC11 RAR semantics
//!
//! The model-checking counterpart of the paper's Isabelle/HOL mechanisation
//! (see DESIGN.md): where the paper proves lemmas deductively over the
//! operational semantics, this crate decides them for the paper's (finite-
//! state) programs by exhaustive exploration:
//!
//! * [`explore::Explorer`] — sequential BFS over canonical configurations
//!   with invariant checking, terminal-outcome collection and counterexample
//!   traces;
//! * [`outline_check`] — proof-outline validity (Figures 3, 7; Lemma 4)
//!   with Owicki–Gries violation classification (local vs interference);
//! * [`parallel`] — work-stealing parallel exploration over a sharded
//!   visited set (ablation A3);
//! * [`random`] — reproducible random-walk sampling for outcome frequency;
//! * [`fxhash`] — the integer-friendly hasher behind all the maps.

#![warn(missing_docs)]

pub mod explore;
pub mod fxhash;
pub mod outline_check;
pub mod parallel;
pub mod pretty;
pub mod random;

pub use explore::{ExploreOptions, Explorer, Report, Violation};
pub use outline_check::{check_outline, OgClass, OutlineKind, OutlineReport, OutlineViolation};
pub use parallel::{par_explore, ShardedSet};
pub use random::{random_walk, sample_terminals};
