//! Checkpoint/resume for the sequential explorer — the stepping stone to
//! disk spill and a long-running checking daemon.
//!
//! ## Format: a structural replay log
//!
//! A checkpoint does **not** serialise configurations (their memory states
//! are deep, pointer-free but private structures); it records the
//! *discovery log* of the deterministic sequential explorer instead:
//!
//! * per interned node: the first-discovery edge `(parent id, tid,
//!   successor index)` plus the node's current explored-thread mask;
//! * the frontier stack, verbatim (`(id, mask, sleep, first)` items);
//! * the running counters (transitions, approximate arena bytes);
//! * terminal/deadlock/violation references **by node id** (violations
//!   additionally carry their message and, under symmetry, the orbit
//!   permutation of the violating member).
//!
//! Because the sequential explorer is deterministic, resuming replays the
//! discovery edges through `thread_successors` + the unchanged
//! probe/commit path and rebuilds the arena, index and report
//! **bit-identically**, then continues the main loop from the restored
//! frontier — a resumed run's final report equals an uninterrupted run's
//! exactly (enforced by `tests/resilience.rs` and the chaos fuzz lane).
//! Replay costs one `thread_successors` call per node — far cheaper than
//! exploration, which expands every thread of every node.
//!
//! A header binds the checkpoint to the program and the semantic options
//! (fingerprint/por/dpor/symmetry/record_traces/step): a stale or foreign
//! checkpoint is ignored and the run starts fresh with a
//! `Note::CheckpointError`. Budgets are deliberately *not* part of the
//! signature — resuming a deadline-stopped run without the deadline is the
//! point. Writes go to a temp file then rename (atomic on POSIX), the
//! whole file is checksummed, and the file is deleted when a run
//! completes.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Where and how often the sequential explorer checkpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointOpts {
    /// Directory the checkpoint file (`rc11.ckpt`) lives in (created if
    /// missing).
    pub dir: PathBuf,
    /// Save every this-many expanded work items (≥ 1; default 1024).
    pub every: usize,
}

impl CheckpointOpts {
    /// Checkpoint into `dir` with the default cadence.
    pub fn new(dir: impl Into<PathBuf>) -> CheckpointOpts {
        CheckpointOpts { dir: dir.into(), every: 1024 }
    }
}

const MAGIC: &[u8; 8] = b"RC11CKP1";

/// One interned node's discovery record. The root (id 0) has
/// `parent == u32::MAX`.
pub(crate) struct NodeRec {
    pub parent: u32,
    pub tid: u8,
    /// Index of the committing successor within
    /// `thread_successors(parent, tid)` — the replay key.
    pub succ_idx: u32,
    /// The node's explored-thread mask *at checkpoint time* (it evolves
    /// via the POR wake-up rule after discovery).
    pub explored: u64,
}

/// One recorded violation: message, violating node, and — for an orbit
/// member under symmetry — the permutation producing the member from the
/// interned representative (`None` = the representative itself).
pub(crate) struct ViolationRec {
    pub what: String,
    pub node: u32,
    pub pi: Option<Vec<u8>>,
}

/// Everything a resume needs, in discovery order.
pub(crate) struct CheckpointData {
    pub transitions: u64,
    pub mem_bytes: u64,
    pub nodes: Vec<NodeRec>,
    /// Frontier stack, bottom first: `(id, mask, sleep, first)`.
    pub frontier: Vec<(u32, u64, u64, bool)>,
    pub terminated: Vec<u32>,
    pub deadlocked: Vec<u32>,
    pub violations: Vec<ViolationRec>,
}

pub(crate) fn file_path(dir: &Path) -> PathBuf {
    dir.join("rc11.ckpt")
}

fn checksum(bytes: &[u8]) -> u64 {
    // FNV-1a: cheap, order-sensitive, good enough to catch truncation.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct Enc(Vec<u8>);

impl Enc {
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.0.extend_from_slice(v);
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let s = self.buf.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(s)
    }
    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }
    fn u8(&mut self) -> Option<u8> {
        Some(*self.take(1)?.first()?)
    }
    fn len(&mut self, cap: usize) -> Option<usize> {
        let n = self.u64()? as usize;
        (n <= cap).then_some(n)
    }
    fn bytes(&mut self) -> Option<&'a [u8]> {
        let n = self.len(self.buf.len())?;
        self.take(n)
    }
}

/// Serialise and atomically write a checkpoint bound to `sig`.
pub(crate) fn save(dir: &Path, sig: u64, data: &CheckpointData) -> io::Result<()> {
    let mut e = Enc(Vec::with_capacity(64 + data.nodes.len() * 17));
    e.0.extend_from_slice(MAGIC);
    e.u64(sig);
    e.u64(data.transitions);
    e.u64(data.mem_bytes);
    e.u64(data.nodes.len() as u64);
    for n in &data.nodes {
        e.u32(n.parent);
        e.u8(n.tid);
        e.u32(n.succ_idx);
        e.u64(n.explored);
    }
    e.u64(data.frontier.len() as u64);
    for &(id, mask, sleep, first) in &data.frontier {
        e.u32(id);
        e.u64(mask);
        e.u64(sleep);
        e.u8(first as u8);
    }
    for ids in [&data.terminated, &data.deadlocked] {
        e.u64(ids.len() as u64);
        for &id in ids {
            e.u32(id);
        }
    }
    e.u64(data.violations.len() as u64);
    for v in &data.violations {
        e.u32(v.node);
        e.bytes(v.what.as_bytes());
        match &v.pi {
            Some(pi) => {
                e.u8(1);
                e.bytes(pi);
            }
            None => e.u8(0),
        }
    }
    let sum = checksum(&e.0);
    e.u64(sum);

    fs::create_dir_all(dir)?;
    let tmp = dir.join("rc11.ckpt.tmp");
    fs::write(&tmp, &e.0)?;
    fs::rename(&tmp, file_path(dir))
}

/// Load and decode a checkpoint from `dir`; `None` when there is none, it
/// is corrupt, or it was written for a different program/options
/// signature.
pub(crate) fn load(dir: &Path, sig: u64) -> Option<CheckpointData> {
    let buf = fs::read(file_path(dir)).ok()?;
    if buf.len() < MAGIC.len() + 8 || &buf[..MAGIC.len()] != MAGIC {
        return None;
    }
    let (body, tail) = buf.split_at(buf.len() - 8);
    if checksum(body) != u64::from_le_bytes(tail.try_into().ok()?) {
        return None;
    }
    let mut d = Dec { buf: body, pos: MAGIC.len() };
    if d.u64()? != sig {
        return None;
    }
    let transitions = d.u64()?;
    let mem_bytes = d.u64()?;
    let n_nodes = d.len(1 << 32)?;
    let mut nodes = Vec::with_capacity(n_nodes.min(1 << 20));
    for _ in 0..n_nodes {
        nodes.push(NodeRec {
            parent: d.u32()?,
            tid: d.u8()?,
            succ_idx: d.u32()?,
            explored: d.u64()?,
        });
    }
    let n_frontier = d.len(1 << 32)?;
    let mut frontier = Vec::with_capacity(n_frontier.min(1 << 20));
    for _ in 0..n_frontier {
        frontier.push((d.u32()?, d.u64()?, d.u64()?, d.u8()? != 0));
    }
    let mut sets = [Vec::new(), Vec::new()];
    for set in &mut sets {
        let n = d.len(1 << 32)?;
        for _ in 0..n {
            set.push(d.u32()?);
        }
    }
    let [terminated, deadlocked] = sets;
    let n_viol = d.len(1 << 32)?;
    let mut violations = Vec::with_capacity(n_viol.min(1 << 16));
    for _ in 0..n_viol {
        let node = d.u32()?;
        let what = String::from_utf8(d.bytes()?.to_vec()).ok()?;
        let pi = match d.u8()? {
            0 => None,
            _ => Some(d.bytes()?.to_vec()),
        };
        violations.push(ViolationRec { what, node, pi });
    }
    (d.pos == body.len()).then_some(CheckpointData {
        transitions,
        mem_bytes,
        nodes,
        frontier,
        terminated,
        deadlocked,
        violations,
    })
}

/// Delete the checkpoint file, ignoring absence.
pub(crate) fn remove(dir: &Path) {
    let _ = fs::remove_file(file_path(dir));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CheckpointData {
        CheckpointData {
            transitions: 42,
            mem_bytes: 4096,
            nodes: vec![
                NodeRec { parent: u32::MAX, tid: 0, succ_idx: 0, explored: 0b11 },
                NodeRec { parent: 0, tid: 1, succ_idx: 2, explored: 0b01 },
            ],
            frontier: vec![(1, 0b11, 0, true), (0, 0b10, 0b01, false)],
            terminated: vec![1],
            deadlocked: vec![],
            violations: vec![
                ViolationRec { what: "inv".into(), node: 1, pi: None },
                ViolationRec { what: "orbit".into(), node: 1, pi: Some(vec![1, 0]) },
            ],
        }
    }

    #[test]
    fn save_load_round_trips() {
        let dir = std::env::temp_dir().join(format!("rc11-ckpt-rt-{}", std::process::id()));
        let data = sample();
        save(&dir, 0xABCD, &data).unwrap();
        let back = load(&dir, 0xABCD).expect("round trip");
        assert_eq!(back.transitions, 42);
        assert_eq!(back.mem_bytes, 4096);
        assert_eq!(back.nodes.len(), 2);
        assert_eq!(back.nodes[1].succ_idx, 2);
        assert_eq!(back.frontier, data.frontier);
        assert_eq!(back.terminated, vec![1]);
        assert_eq!(back.violations.len(), 2);
        assert_eq!(back.violations[1].pi.as_deref(), Some(&[1u8, 0][..]));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_signature_and_corruption_are_rejected() {
        let dir = std::env::temp_dir().join(format!("rc11-ckpt-bad-{}", std::process::id()));
        save(&dir, 7, &sample()).unwrap();
        assert!(load(&dir, 8).is_none(), "foreign signature must be ignored");
        // Flip a byte in the middle: the checksum must catch it.
        let p = file_path(&dir);
        let mut bytes = fs::read(&p).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&p, &bytes).unwrap();
        assert!(load(&dir, 7).is_none(), "corruption must be detected");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_checkpoint_is_none() {
        let dir = std::env::temp_dir().join("rc11-ckpt-definitely-missing");
        assert!(load(&dir, 0).is_none());
    }
}
