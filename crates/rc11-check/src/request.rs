//! The shared check-request path: parse → canonicalise → fingerprint →
//! cache-probe → explore → report.
//!
//! Every front end — `rc11 run`, `rc11 fuzz`'s request-parity lane, and
//! the `rc11 serve` daemon — funnels litmus checks through
//! [`CheckService`], so there is exactly one place where:
//!
//! * the cache key is computed: the canonical words of the program +
//!   observation tuple + expected set ([`rc11_lang::canonical_litmus_words`])
//!   extended with the **semantic** exploration options
//!   ([`option_words`]), fingerprinted with [`Fx128Hasher`]. Worker
//!   count, budgets, cancellation and checkpointing are deliberately
//!   *excluded*: the engines are proven report-identical by the
//!   differential battery (so an answer computed at 1 worker serves a
//!   4-worker request), and budget-truncated runs are never cached at
//!   all — only [`StopReason::Complete`] verdicts are admitted;
//! * the observed outcome set and pass verdict are computed from an
//!   [`EngineReport`] (mirroring `rc11_litmus::run_with_opts`, pinned to
//!   it by the daemon differential tests);
//! * engine panics are contained: a panic inside exploration becomes a
//!   response with [`StopReason::WorkerFault`] and a
//!   [`Note::WorkerFault`] carrying the panic message — the caller gets
//!   a row and a reason, never an unwound stack.

use crate::cache::{CacheStats, CacheTier, CachedVerdict, VerdictCache};
use crate::chaos::ChaosState;
use crate::checkpoint::CheckpointOpts;
use crate::engine::{
    choose_engine, Budget, CancelToken, EngineReport, ExploreOptions, Note, StopReason,
};
use crate::fxhash::{Fp128, Fx128Hasher};
use rc11_core::Val;
use rc11_lang::machine::{NoObjects, ObjectSemantics};
use rc11_lang::parse::parse_litmus;
use rc11_lang::{canonical_litmus_words, compile, Program, Reg};
use rc11_objects::AbstractObjects;
use rc11_telemetry::{Counter, Phase, Telemetry, TelemetrySnapshot};
use std::collections::BTreeSet;
use std::hash::Hasher;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Per-request parameters. Everything that changes *what* is checked is
/// part of the cache key; everything that only changes *how hard we are
/// willing to work* (workers, budgets, cancellation, checkpointing) is
/// not — see [`option_words`].
#[derive(Clone)]
pub struct CheckParams {
    /// Engine selection: 1 = sequential reference, n > 1 = parallel.
    pub workers: usize,
    /// Hard state cap (in the key: truncation changes the report).
    pub max_states: usize,
    /// Canonical-fingerprint dedup on/off (ablation A4).
    pub fingerprint: bool,
    /// Sleep-set partial-order reduction (ablation A5).
    pub por: bool,
    /// Thread-symmetry reduction (ablation A6).
    pub symmetry: bool,
    /// Persistent-set DPOR (ablation A7; implies sleep sets).
    pub dpor: bool,
    /// Per-request resource budgets (not in the key; non-complete runs
    /// are never cached).
    pub budget: Budget,
    /// Cooperative cancellation, honoured by both engines mid-run.
    pub cancel: CancelToken,
    /// Checkpoint/resume for the sequential engine (CLI `--checkpoint`).
    pub checkpoint: Option<CheckpointOpts>,
    /// Fault injection for the resilience harness.
    pub chaos: Option<std::sync::Arc<ChaosState>>,
    /// Probe/populate the service's verdict cache for this request.
    pub use_cache: bool,
    /// Optional telemetry sink. Observability only: phase timers and
    /// structured counters accumulate here, and the response carries a
    /// per-run delta snapshot. Deliberately **not** part of the cache
    /// key — see [`option_words`].
    pub telemetry: Option<Arc<Telemetry>>,
}

impl Default for CheckParams {
    fn default() -> CheckParams {
        let base = ExploreOptions::default();
        CheckParams {
            workers: 1,
            max_states: base.max_states,
            fingerprint: base.fingerprint,
            por: base.por,
            symmetry: base.symmetry,
            dpor: base.dpor,
            budget: Budget::default(),
            cancel: CancelToken::new(),
            checkpoint: None,
            chaos: None,
            use_cache: true,
            telemetry: None,
        }
    }
}

/// The semantic option words appended to a request's canonical words
/// before fingerprinting. Two requests whose programs *and* option words
/// agree are the same check. Telemetry is observability, not semantics:
/// attaching a sink must never change which cache entry a request maps
/// to, so it is excluded here (a telemetry-on request can be served by a
/// verdict computed with telemetry off, and vice versa).
pub fn option_words(params: &CheckParams) -> Vec<u64> {
    vec![
        params.max_states as u64,
        params.fingerprint as u64,
        params.por as u64,
        params.symmetry as u64,
        params.dpor as u64,
    ]
}

/// Which path produced a response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Served {
    /// In-memory cache hit.
    MemCache,
    /// Disk-spill cache hit (promoted to memory).
    DiskCache,
    /// A fresh exploration.
    Explored,
}

impl Served {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Served::MemCache => "mem-cache",
            Served::DiskCache => "disk-cache",
            Served::Explored => "explored",
        }
    }

    /// True for either cache tier.
    pub fn is_hit(self) -> bool {
        !matches!(self, Served::Explored)
    }
}

/// One check's full answer — the report fields `rc11 run` prints and the
/// daemon serialises, plus provenance (fingerprint, cache tier).
#[derive(Debug, Clone)]
pub struct CheckResponse {
    /// The litmus test's name (display only; never part of the key).
    pub name: String,
    /// The canonical fingerprint the cache keyed this check on.
    pub fingerprint: Fp128,
    /// Where the answer came from.
    pub served: Served,
    /// `observed == expected`, complete and deadlock-free.
    pub pass: bool,
    /// Observed outcome set.
    pub observed: BTreeSet<Vec<Val>>,
    /// Expected outcome set (echoed from the request).
    pub expected: BTreeSet<Vec<Val>>,
    /// States explored by the run that produced the answer.
    pub states: usize,
    /// Transitions generated.
    pub transitions: usize,
    /// Deadlocked configurations.
    pub deadlocks: usize,
    /// Why the producing run stopped.
    pub stop: StopReason,
    /// Structured engine notes.
    pub notes: Vec<Note>,
    /// Wall-clock time spent answering *this* request: the engine run
    /// for explorations, the probe for cache hits.
    pub wall: Duration,
    /// Per-run telemetry delta (only when the request carried a sink).
    /// Cache hits get a synthetic snapshot with `served_from_cache`
    /// set — the cached verdict was not re-explored, so there are no
    /// fresh engine counters to report.
    pub telemetry: Option<TelemetrySnapshot>,
}

/// A point-in-time view of the service counters (the daemon's `stats`
/// response).
#[derive(Debug, Clone, Copy, Default)]
pub struct StatsSnapshot {
    /// Requests answered (hits + explorations + faults).
    pub requests: u64,
    /// Cache counters (all-zero when the service has no cache).
    pub cache: CacheStats,
    /// Runs that actually explored (missed or bypassed the cache).
    pub explored_runs: u64,
    /// Total states explored by those runs.
    pub states_explored: u64,
    /// Total transitions generated by those runs.
    pub transitions_explored: u64,
    /// Wall-clock seconds spent inside the engines.
    pub explore_seconds: f64,
}

impl StatsSnapshot {
    /// Aggregate exploration throughput; 0.0 before any exploration.
    pub fn states_per_sec(&self) -> f64 {
        if self.explore_seconds > 0.0 {
            self.states_explored as f64 / self.explore_seconds
        } else {
            0.0
        }
    }
}

/// The checking service: an optional verdict cache plus counters, shared
/// by every front end. Thread-safe; exploration runs outside the cache
/// lock so concurrent requests only serialise on probe/insert.
pub struct CheckService {
    cache: Option<Mutex<VerdictCache>>,
    requests: AtomicU64,
    explored_runs: AtomicU64,
    states_explored: AtomicU64,
    transitions_explored: AtomicU64,
    explore_nanos: AtomicU64,
}

impl CheckService {
    /// A service with no cache: every request explores.
    pub fn new() -> CheckService {
        CheckService::build(None)
    }

    /// A service fronted by the given verdict cache.
    pub fn with_cache(cache: VerdictCache) -> CheckService {
        CheckService::build(Some(cache))
    }

    fn build(cache: Option<VerdictCache>) -> CheckService {
        CheckService {
            cache: cache.map(Mutex::new),
            requests: AtomicU64::new(0),
            explored_runs: AtomicU64::new(0),
            states_explored: AtomicU64::new(0),
            transitions_explored: AtomicU64::new(0),
            explore_nanos: AtomicU64::new(0),
        }
    }

    /// Current counters.
    pub fn stats(&self) -> StatsSnapshot {
        StatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            cache: self
                .cache
                .as_ref()
                .map(|c| c.lock().expect("cache lock").stats())
                .unwrap_or_default(),
            explored_runs: self.explored_runs.load(Ordering::Relaxed),
            states_explored: self.states_explored.load(Ordering::Relaxed),
            transitions_explored: self.transitions_explored.load(Ordering::Relaxed),
            explore_seconds: self.explore_nanos.load(Ordering::Relaxed) as f64 / 1e9,
        }
    }

    /// Check a `.litmus` source text. A parse error is an `Err` with the
    /// parser's span-carrying message; everything after the parse —
    /// including engine panics — comes back as a [`CheckResponse`].
    pub fn check_source(&self, src: &str, params: &CheckParams) -> Result<CheckResponse, String> {
        let parsed = match &params.telemetry {
            Some(t) => t.time_phase(Phase::Parse, || parse_litmus(src)),
            None => parse_litmus(src),
        }
        .map_err(|e| e.to_string())?;
        Ok(self.check_parts(&parsed.name, &parsed.prog, &parsed.observe, &parsed.expected, params))
    }

    /// Check an already-parsed litmus test. This is the one pipeline:
    /// canonicalise, fingerprint, probe, (maybe) explore, admit.
    pub fn check_parts(
        &self,
        name: &str,
        prog: &Program,
        observe: &[(usize, Reg)],
        expected: &BTreeSet<Vec<Val>>,
        params: &CheckParams,
    ) -> CheckResponse {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let tel = params.telemetry.as_deref();
        // Baseline for the per-request delta: taken before any phase
        // timing so the response snapshot attributes canon, fingerprint,
        // cache-probe *and* exploration to this request.
        let tel0 = tel.map(|t| t.snapshot());
        let req_start = Instant::now();
        let mut words = match tel {
            Some(t) => t.time_phase(Phase::Canon, || canonical_litmus_words(prog, observe, expected)),
            None => canonical_litmus_words(prog, observe, expected),
        };
        words.extend(option_words(params));
        let fp = {
            let hash = || {
                let mut hasher = Fx128Hasher::default();
                for &w in &words {
                    hasher.write_u64(w);
                }
                hasher.finish128()
            };
            match tel {
                Some(t) => t.time_phase(Phase::Fingerprint, hash),
                None => hash(),
            }
        };

        if params.use_cache {
            if let Some(cache) = &self.cache {
                if let Some(t) = tel {
                    t.incr(Counter::CacheProbes);
                }
                let probe = || cache.lock().expect("cache lock").probe(fp, &words);
                let hit = match tel {
                    Some(t) => t.time_phase(Phase::CacheProbe, probe),
                    None => probe(),
                };
                if let Some((v, tier)) = hit {
                    let served = match tier {
                        CacheTier::Mem => Served::MemCache,
                        CacheTier::Disk => Served::DiskCache,
                    };
                    // A hit never re-explores, so there are no fresh
                    // engine counters: the snapshot is the request-path
                    // delta (probe timing, cache counters) flagged as
                    // served-from-cache.
                    let telemetry = tel.map(|t| {
                        t.incr(Counter::CacheHits);
                        let mut snap = t.snapshot().delta(tel0.as_ref().expect("tel0 set with tel"));
                        snap.served_from_cache = true;
                        snap
                    });
                    return CheckResponse {
                        name: name.to_string(),
                        fingerprint: fp,
                        served,
                        pass: v.pass,
                        observed: v.observed,
                        expected: expected.clone(),
                        states: v.states,
                        transitions: v.transitions,
                        deadlocks: v.deadlocks,
                        stop: v.stop,
                        notes: v.notes,
                        wall: req_start.elapsed(),
                        telemetry,
                    };
                }
            }
        }

        let cfg = compile(prog);
        let objs: &(dyn ObjectSemantics + Sync) =
            if prog.objects.is_empty() { &NoObjects } else { &AbstractObjects };
        let opts = ExploreOptions {
            record_traces: false,
            max_states: params.max_states,
            fingerprint: params.fingerprint,
            por: params.por,
            symmetry: params.symmetry,
            dpor: params.dpor,
            budget: params.budget,
            cancel: params.cancel.clone(),
            checkpoint: params.checkpoint.clone(),
            chaos: params.chaos.clone(),
            telemetry: params.telemetry.clone(),
            ..Default::default()
        };
        let engine = choose_engine(params.workers);
        let started = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| engine.explore(&cfg, objs, &opts)));

        let report: EngineReport = match outcome {
            Ok(r) => r,
            Err(payload) => {
                // A panic that escaped the engine (the sequential engine
                // has no internal containment): synthesise an explicit
                // worker-fault report so the caller sees the message in
                // both the stop reason and the note detail. The engine
                // never reported a wall clock, so fall back to our own
                // measurement around the unwind.
                let wall = started.elapsed();
                self.explore_nanos.fetch_add(wall.as_nanos() as u64, Ordering::Relaxed);
                if let Some(t) = tel {
                    t.add_phase_nanos(Phase::Explore, wall.as_nanos() as u64);
                }
                let message = payload
                    .downcast_ref::<&str>()
                    .map(|m| m.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                let telemetry =
                    tel.map(|t| t.snapshot().delta(tel0.as_ref().expect("tel0 set with tel")));
                return CheckResponse {
                    name: name.to_string(),
                    fingerprint: fp,
                    served: Served::Explored,
                    pass: false,
                    observed: BTreeSet::new(),
                    expected: expected.clone(),
                    states: 0,
                    transitions: 0,
                    deadlocks: 0,
                    stop: StopReason::WorkerFault,
                    notes: vec![Note::WorkerFault { message }],
                    wall,
                    telemetry,
                };
            }
        };
        // Both engines measure their own wall clock; the service's
        // aggregate explore-seconds counter is derived from the report
        // so daemon `stats` throughput matches the per-run rows.
        self.explore_nanos.fetch_add(report.wall.as_nanos() as u64, Ordering::Relaxed);
        if let Some(t) = tel {
            t.add_phase_nanos(Phase::Explore, report.wall.as_nanos() as u64);
        }
        self.explored_runs.fetch_add(1, Ordering::Relaxed);
        self.states_explored.fetch_add(report.states as u64, Ordering::Relaxed);
        self.transitions_explored.fetch_add(report.transitions as u64, Ordering::Relaxed);

        // The observed set and the pass predicate, exactly as
        // `rc11_litmus::run_with_opts` computes them (the daemon parity
        // battery pins the two together).
        let observed: BTreeSet<Vec<Val>> = report
            .terminated
            .iter()
            .map(|c| observe.iter().map(|&(t, r)| c.reg(t, r)).collect())
            .collect();
        let pass = observed == *expected && !report.truncated() && report.deadlocked.is_empty();
        let deadlocks = report.deadlocked.len();

        if params.use_cache && report.stop.is_complete() {
            if let Some(cache) = &self.cache {
                cache.lock().expect("cache lock").insert(
                    fp,
                    words,
                    CachedVerdict {
                        pass,
                        observed: observed.clone(),
                        states: report.states,
                        transitions: report.transitions,
                        deadlocks,
                        stop: report.stop,
                        notes: report.notes.clone(),
                    },
                );
            }
        }

        // The response snapshot is the *request-level* delta (canon +
        // fingerprint + probe + engine run), not the engine's own
        // `report.telemetry` delta, so per-phase attribution in trace
        // files covers the whole pipeline.
        let telemetry = tel.map(|t| t.snapshot().delta(tel0.as_ref().expect("tel0 set with tel")));
        CheckResponse {
            name: name.to_string(),
            fingerprint: fp,
            served: Served::Explored,
            pass,
            observed,
            expected: expected.clone(),
            states: report.states,
            transitions: report.transitions,
            deadlocks,
            stop: report.stop,
            notes: report.notes,
            wall: report.wall,
            telemetry,
        }
    }
}

impl Default for CheckService {
    fn default() -> CheckService {
        CheckService::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MP: &str = r#"
litmus "mp-ra"
var x = 0
var y = 0
thread T1 { x = 1; y =rel 1; }
thread T2 { r1 =acq y; r2 = x; }
observe T2.r1 T2.r2
expected { (0, 0) (0, 1) (1, 1) }
"#;

    #[test]
    fn explore_then_hit_then_rename_still_hits() {
        let service = CheckService::with_cache(VerdictCache::new(16));
        let params = CheckParams::default();
        let first = service.check_source(MP, &params).unwrap();
        assert_eq!(first.served, Served::Explored);
        assert!(first.pass, "MP+ra is a passing corpus shape");
        let second = service.check_source(MP, &params).unwrap();
        assert_eq!(second.served, Served::MemCache);
        assert_eq!(second.observed, first.observed);
        assert_eq!((second.states, second.transitions), (first.states, first.transitions));
        // A renamed-but-identical submission is the same check.
        let renamed = MP
            .replace("T1", "Alice")
            .replace("T2", "Bob")
            .replace("r1", "saw_flag")
            .replace("r2", "saw_data");
        let third = service.check_source(&renamed, &params).unwrap();
        assert_eq!(third.served, Served::MemCache);
        assert_eq!(third.fingerprint, first.fingerprint);
    }

    #[test]
    fn different_options_are_different_checks() {
        let service = CheckService::with_cache(VerdictCache::new(16));
        let base = CheckParams::default();
        let a = service.check_source(MP, &base).unwrap();
        let por = CheckParams { por: true, ..CheckParams::default() };
        let b = service.check_source(MP, &por).unwrap();
        assert_ne!(a.fingerprint, b.fingerprint);
        assert_eq!(b.served, Served::Explored);
        assert_eq!(b.observed, a.observed, "POR must not change the verdict");
    }

    #[test]
    fn truncated_runs_are_not_cached() {
        let service = CheckService::with_cache(VerdictCache::new(16));
        let starved = CheckParams {
            budget: Budget { max_transitions: Some(1), ..Budget::default() },
            ..CheckParams::default()
        };
        let partial = service.check_source(MP, &starved).unwrap();
        assert!(!partial.stop.is_complete());
        assert!(!partial.pass);
        // Same key (budgets are not part of it), but nothing was cached.
        let full = service.check_source(MP, &CheckParams::default()).unwrap();
        assert_eq!(full.served, Served::Explored);
        assert!(full.pass);
        // Now the complete verdict is in the cache.
        let again = service.check_source(MP, &CheckParams::default()).unwrap();
        assert_eq!(again.served, Served::MemCache);
    }

    #[test]
    fn parse_errors_are_errors_not_responses() {
        let service = CheckService::new();
        let err = service.check_source("litmus \"broken", &CheckParams::default());
        assert!(err.is_err());
    }

    #[test]
    fn workers_share_one_cache_entry() {
        let service = CheckService::with_cache(VerdictCache::new(16));
        let seq = CheckParams { workers: 1, ..CheckParams::default() };
        let par = CheckParams { workers: 4, ..CheckParams::default() };
        let a = service.check_source(MP, &seq).unwrap();
        let b = service.check_source(MP, &par).unwrap();
        assert_eq!(a.fingerprint, b.fingerprint, "worker count is not part of the key");
        assert_eq!(b.served, Served::MemCache);
    }
}
