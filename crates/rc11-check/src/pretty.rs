//! Rendering configurations and counterexample traces against program
//! metadata (register names, statement labels, location names).

use rc11_core::pretty::StatePrinter;
use rc11_core::Tid;
use rc11_lang::cfg::CfgProgram;
use rc11_lang::machine::Config;
use std::fmt::Write;

/// Render one configuration: per-thread control point and registers, then
/// the memory state.
pub fn render_config(prog: &CfgProgram, cfg: &Config) -> String {
    let mut out = String::new();
    let src = &prog.source;
    for (t, th) in prog.threads.iter().enumerate() {
        let pc = cfg.pcs[t];
        let at = th
            .label_at(pc)
            .map(|k| format!("stmt {k}"))
            .unwrap_or_else(|| format!("pc {pc}"));
        let _ = write!(out, "T{}: {at}", t + 1);
        let names = &src.threads[t].reg_names;
        for (i, v) in cfg.locals[t].iter().enumerate() {
            let name = names.get(i).map(String::as_str).unwrap_or("r?");
            let _ = write!(out, "  {name}={v}");
        }
        let _ = writeln!(out);
    }
    let printer = StatePrinter { client_locs: &src.client_locs, lib_locs: &src.lib_locs };
    out.push_str(&printer.render(&cfg.mem));
    out
}

/// Render a counterexample trace: the moving thread and the configuration
/// after each step.
pub fn render_trace(prog: &CfgProgram, trace: &[(Tid, Config)]) -> String {
    let mut out = String::new();
    for (i, (tid, cfg)) in trace.iter().enumerate() {
        let _ = writeln!(out, "── step {} (by {tid}) ──", i + 1);
        out.push_str(&render_config(prog, cfg));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::Explorer;
    use rc11_lang::builder::*;
    use rc11_lang::compile;
    use rc11_lang::machine::NoObjects;

    #[test]
    fn config_rendering_names_everything() {
        let mut p = ProgramBuilder::new("pp");
        let d = p.client_var("data", 0);
        let mut tb = ThreadBuilder::new();
        let r = tb.reg("result");
        p.add_thread(tb, seq([lab(1, wr(d, 5)), lab(2, rd(r, d))]));
        let prog = compile(&p.build());
        let init = Config::initial(&prog);
        let s = render_config(&prog, &init);
        assert!(s.contains("stmt 1"), "{s}");
        assert!(s.contains("result=⊥"));
        assert!(s.contains("data"));
    }

    #[test]
    fn violation_traces_render() {
        let mut p = ProgramBuilder::new("pp2");
        let d = p.client_var("d", 0);
        let tb = ThreadBuilder::new();
        p.add_thread(tb, seq([wr(d, 1), wr(d, 2)]));
        let prog = compile(&p.build());
        let pred = rc11_assert::dsl::pnot(rc11_assert::dsl::pobs(0, d, 2));
        let report = Explorer::new(&prog, &NoObjects).check_invariant(&pred);
        let v = &report.violations[0];
        let s = render_trace(&prog, v.trace.as_ref().unwrap());
        assert!(s.contains("step 1"));
        assert!(s.contains("wr(2)"));
    }
}
