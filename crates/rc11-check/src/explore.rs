//! The sequential state-space explorer — the reference oracle.
//!
//! Exhaustive exploration of all reachable configurations of
//! a compiled program under the RC11 RAR semantics, deduplicating on
//! canonical forms (rc11-core's canonicalisation makes interleavings that
//! produce the same state collide). This is the executable counterpart of
//! the paper's "for all executions" quantifier: every lemma is checked at
//! every reachable configuration.
//!
//! Deduplication is keyed on zero-rebuild **canonical fingerprints** by
//! default ([`ExploreOptions::fingerprint`]): each successor is hashed in
//! canonical order without materialising the canonical form, the visited
//! map sends `Fp128 → state ids`, and every canonical configuration is
//! **interned exactly once** in the node arena (which doubles as the
//! parent-pointer store for trace reconstruction). A fingerprint hit is
//! confirmed with a zero-rebuild `canonical_eq` walk against the interned
//! representative(s) in its (rare) collision bucket, so verdicts are
//! bit-identical to the legacy materialised-canonical path — which remains
//! available with `fingerprint: false` (ablation A4 in DESIGN.md).
//!
//! With [`ExploreOptions::por`], expansion additionally applies sleep-set
//! partial-order reduction (`crate::por`, ablation A5): work items carry
//! sleep/expansion thread masks, arena nodes remember which threads have
//! been expanded (for the wake-up rule on duplicate hits), and commuted
//! sibling orders are pruned before their successors are generated —
//! transitions shrink, states and verdicts provably do not.
//!
//! With [`ExploreOptions::dpor`] (which implies `por`), expansion further
//! restricts each state to a **persistent set** of threads
//! ([`rc11_analyze::persistent`], ablation A7): the smallest closure of
//! pc-sensitive future-footprint conflicts. Threads outside the closure
//! commute with every member for the rest of the run, so postponing them
//! preserves every terminal, deadlock and violation — but not every
//! intermediate state, so `states` may shrink too. Work items then carry
//! the *true* arriving sleep set (`full & !proposal` would over-sleep the
//! postponed threads), duplicate arrivals wake underexplored threads
//! exactly as in A5, and a **retry rule** handles blocked persistent
//! sets: when an expansion produces no successor but some non-slept,
//! never-explored thread still has one (a persistent member blocked on a
//! lock, say), the expansion grows to those threads instead of
//! classifying the state.
//!
//! The option/report/violation types shared with the parallel engine live
//! in [`crate::engine`]; `Report` is a compatibility alias for
//! [`EngineReport`](crate::engine::EngineReport). The differential suite
//! (`tests/engine_agreement.rs`) holds the parallel engine to this
//! explorer's answers, which makes this file the semantic ground truth.

use crate::checkpoint::{self, CheckpointOpts, ViolationRec};
use crate::engine::{Note, StopReason};
use crate::fxhash::{CanonicalFingerprint, Fp128, FxHashMap, IdBucket};
use crate::por::{self, ThreadMask};
use crate::sym;
use rc11_analyze::SymmetrySpec;
use rc11_core::Tid;
use rc11_lang::cfg::CfgProgram;
use rc11_lang::machine::{thread_successors, Config, ObjectSemantics};
use rc11_telemetry::{Counter, Telemetry};
use std::sync::Arc;
use std::time::Instant;

pub use crate::engine::{EngineReport as Report, ExploreOptions, Violation};

/// One interned state: its canonical configuration (stored exactly once
/// across the whole explorer), the first-discovery parent edge, the
/// mask of threads expansion work has been queued for (the complement of
/// the intersection of every arriving sleep set — always full without
/// POR; see `crate::por` for the wake-up rule), and — under symmetry
/// reduction — the group permutation the committing edge's raw successor
/// was transported through (`None` = identity), from which
/// [`reconstruct_trace_sym`] rebuilds exactly replayable traces.
struct Node {
    cfg: Config,
    parent: Option<(u32, Tid)>,
    explored: ThreadMask,
    sigma: Option<Vec<u8>>,
    /// Index of the committing successor within the parent edge's
    /// `thread_successors` result — the checkpoint replay key (0 for the
    /// root; see `crate::checkpoint`).
    succ_idx: u32,
}

/// The visited index shared by the sequential explorer and the sequential
/// outline checker: either the fingerprint → arena-ids map (default) or
/// the legacy materialised-canonical key map. The index never owns the
/// interned configurations — callers keep them in an arena and hand
/// lookups an `interned(id)` accessor — so each canonical configuration
/// is stored exactly once, whatever the arena's element type.
///
/// The optional telemetry sink is injected at construction so dedup
/// events — dup hits, symmetry-orbit folds, confirmed fingerprint
/// collisions, interned states — are tallied where they happen, without
/// threading a sink through every probe/commit signature.
pub(crate) struct VisitedIndex {
    mode: IndexMode,
    tel: Option<Arc<Telemetry>>,
}

enum IndexMode {
    Fp(FxHashMap<Fp128, IdBucket>),
    Exact(FxHashMap<Config, u32>),
}

/// The outcome of probing a successor against the visited index: already
/// interned, or novel with the probe work (fingerprint + permutations, or
/// the materialised canonical form) carried over for the insert. The
/// `NovelExact` payload is boxed: it carries a whole materialised
/// configuration and only exists on the legacy path.
pub(crate) enum Probe {
    /// Already interned, under this arena id (POR duplicate hits consult
    /// the node's `explored` mask for the wake-up rule, after transporting
    /// the arriving masks through the carried group permutation).
    Dup(u32, Option<Vec<u8>>),
    NovelFp(Fp128, rc11_core::CanonPerms),
    NovelExact(Box<Config>, Option<Vec<u8>>),
}

impl VisitedIndex {
    pub(crate) fn new(fingerprint: bool, tel: Option<Arc<Telemetry>>) -> VisitedIndex {
        let mode = if fingerprint {
            IndexMode::Fp(FxHashMap::default())
        } else {
            IndexMode::Exact(FxHashMap::default())
        };
        VisitedIndex { mode, tel }
    }

    /// Tally a duplicate probe hit (and, when the match went through a
    /// non-identity group permutation, a symmetry-orbit fold).
    #[inline]
    fn count_dup(&self, sigma: &Option<Vec<u8>>) {
        if let Some(t) = &self.tel {
            t.incr(Counter::DupHits);
            if sigma.as_deref().is_some_and(|s| !sym::is_identity(s)) {
                t.incr(Counter::SymmetryFolds);
            }
        }
    }

    /// Probe a raw (non-canonical) successor. The fingerprint path never
    /// materialises the canonical form: one hash walk, plus a
    /// `canonical_eq` confirmation walk per candidate in the (almost
    /// always empty or single-entry, matching) bucket — `interned` reads
    /// the candidate's canonical configuration out of the caller's arena.
    /// With a symmetry spec, the walk first installs the canonical group
    /// permutation (`sym::sym_perms`), so the whole orbit probes to one
    /// interned representative.
    pub(crate) fn probe<'a>(
        &self,
        succ: &Config,
        symm: Option<&SymmetrySpec>,
        interned: impl Fn(u32) -> &'a Config,
    ) -> Probe {
        match &self.mode {
            IndexMode::Fp(map) => {
                let mut perms = succ.canonical_perms();
                if let Some(spec) = symm {
                    perms.threads = spec.choose(succ, &perms);
                }
                let fp = match symm {
                    Some(spec) => sym::fingerprint_sym(succ, &perms, spec),
                    None => succ.fingerprint_with(&perms),
                };
                if let Some(bucket) = map.get(&fp) {
                    for &id in bucket.ids() {
                        let eq = match symm {
                            Some(spec) => {
                                succ.canonical_eq_sym(&perms, spec.maps(), interned(id))
                            }
                            None => succ.canonical_eq_with(&perms, interned(id)),
                        };
                        if eq {
                            self.count_dup(&perms.threads);
                            return Probe::Dup(id, perms.threads);
                        }
                    }
                }
                Probe::NovelFp(fp, perms)
            }
            IndexMode::Exact(map) => {
                let (canon, sigma) = match symm {
                    Some(spec) => {
                        let perms = sym::sym_perms(spec, succ);
                        (succ.canonical_sym(&perms, spec.maps()), perms.threads)
                    }
                    None => (succ.canonical(), None),
                };
                if let Some(&id) = map.get(&canon) {
                    self.count_dup(&sigma);
                    Probe::Dup(id, sigma)
                } else {
                    Probe::NovelExact(Box::new(canon), sigma)
                }
            }
        }
    }

    /// Intern a probed-novel successor under id `new_id`, returning its
    /// canonical configuration (materialised here, exactly once per
    /// distinct state) for the caller to push into its arena, plus the
    /// group permutation the successor was transported through (`None`
    /// without symmetry or when the choice was the identity).
    pub(crate) fn commit(
        &mut self,
        probe: Probe,
        succ: &Config,
        symm: Option<&SymmetrySpec>,
        new_id: u32,
    ) -> (Config, Option<Vec<u8>>) {
        let VisitedIndex { mode, tel } = self;
        if let Some(t) = tel {
            t.incr(Counter::States);
        }
        match (mode, probe) {
            (IndexMode::Fp(map), Probe::NovelFp(fp, perms)) => {
                let canon = match symm {
                    Some(spec) => succ.canonical_sym(&perms, spec.maps()),
                    None => succ.canonical_with(&perms),
                };
                match map.entry(fp) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        // Two distinct canonical states share this Fp128:
                        // a real, confirmed fingerprint collision.
                        if let Some(t) = tel {
                            t.incr(Counter::FpCollisions);
                        }
                        e.get_mut().push(new_id);
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(IdBucket::One(new_id));
                    }
                }
                (canon, perms.threads)
            }
            (IndexMode::Exact(map), Probe::NovelExact(canon, sigma)) => {
                map.insert((*canon).clone(), new_id);
                (*canon, sigma)
            }
            _ => unreachable!("probe/commit mode mismatch"),
        }
    }
}

/// The explorer.
pub struct Explorer<'a> {
    prog: &'a CfgProgram,
    objs: &'a dyn ObjectSemantics,
    opts: ExploreOptions,
}

impl<'a> Explorer<'a> {
    /// A new explorer over `prog` with object semantics `objs`.
    pub fn new(prog: &'a CfgProgram, objs: &'a dyn ObjectSemantics) -> Explorer<'a> {
        Explorer { prog, objs, opts: ExploreOptions::default() }
    }

    /// Replace the options.
    pub fn with_options(mut self, opts: ExploreOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Exhaustive reachability with a per-configuration check callback.
    /// The callback pushes a description into the reusable buffer for
    /// every property the configuration violates, so violation-free
    /// configurations allocate nothing.
    pub fn explore_with(
        &self,
        mut check: impl FnMut(&Config, &mut Vec<String>),
    ) -> Report {
        let run_start = Instant::now();
        // Telemetry rides as a delta: snapshot the (possibly shared,
        // cumulative) sink at entry and attach only this run's
        // contribution to the report.
        let tel = self.opts.telemetry.clone();
        let tel0 = tel.as_ref().map(|t| t.snapshot());
        let mut report = Report::default();
        let mut index = VisitedIndex::new(self.opts.fingerprint, tel.clone());
        // The interned state arena: every canonical configuration stored
        // exactly once, with its first-discovery parent edge.
        let mut nodes: Vec<Node> = Vec::new();
        let mut buf: Vec<String> = Vec::new();
        let n_threads = self.prog.n_threads();
        // POR's thread masks cap at 64 bits; larger programs fall back to
        // the unreduced search (which iterates threads by index and
        // supports any count `Tid` can name), flagged on the report.
        let mut por = self.opts.por || self.opts.dpor;
        if por && n_threads > 64 {
            por = false;
            report.note(Note::PorThreadCap { threads: n_threads });
            if let Some(t) = &tel {
                t.incr(Counter::CapDegradations);
            }
        }
        let full = if por { por::full_mask(n_threads) } else { !0 };
        let (spec, capped_orbit) = sym::active_spec(self.prog, self.opts.symmetry);
        if let Some(orbit) = capped_orbit {
            report.note(Note::SymmetryOrbitCap { orbit });
            if let Some(t) = &tel {
                t.incr(Counter::CapDegradations);
            }
        }
        let symm = spec.as_ref();
        let statics = por.then(|| rc11_analyze::conflict_matrix(self.prog));
        // Persistent-set machinery (A7): `None` unless dpor is on *and*
        // the program fits the 128-location future-footprint capacity —
        // otherwise we degrade to sleep-sets-only, which is sound.
        let pers = (por && self.opts.dpor)
            .then(|| rc11_analyze::future_footprints(self.prog))
            .flatten();
        if por && self.opts.dpor && pers.is_none() {
            report.note(Note::DporLocationCap);
            if let Some(t) = &tel {
                t.incr(Counter::CapDegradations);
            }
        }

        // Resilience machinery: budgets are checked between work items (so
        // every stop lands on a clean item boundary and the report is a
        // sound prefix), checkpointing snapshots the discovery log at the
        // same boundaries.
        let budget = self.opts.budget;
        let deadline = budget.deadline.map(|d| Instant::now() + d);
        let mut mem_bytes: u64 = 0;
        let ckpt = self.opts.checkpoint.clone();
        let sig = ckpt.as_ref().map(|_| self.checkpoint_sig());
        // Id-keyed mirrors of the report, maintained only when
        // checkpointing (`crate::checkpoint` stores references, not
        // configurations).
        let mut term_ids: Vec<u32> = Vec::new();
        let mut dead_ids: Vec<u32> = Vec::new();
        let mut viol_recs: Vec<ViolationRec> = Vec::new();

        // Work items: `(node, threads to expand, arriving sleep set,
        // first visit?)`. Without POR every item is `(id, full, ∅, true)`
        // and the loop below degenerates to the classical search (same
        // expansion order, same transition counts). See `crate::por` for
        // the sleep-set rules. Under dpor the expansion mask starts from
        // the state's persistent set instead of `full`.
        let mut frontier: Vec<(u32, ThreadMask, ThreadMask, bool)> = Vec::new();

        // Resume from a matching checkpoint, or seed afresh. A resumed run
        // restores the exact mid-run state of the interrupted one (arena,
        // index, frontier, counters, report entries), so continuing it
        // produces a report bit-identical to an uninterrupted run's.
        let mut resumed = false;
        if let (Some(ck), Some(sig)) = (&ckpt, sig) {
            if let Some(data) = checkpoint::load(&ck.dir, sig) {
                match self.replay_log(&data, symm) {
                    Ok((ix, ns)) => {
                        index = ix;
                        nodes = ns;
                        report.transitions = data.transitions as usize;
                        mem_bytes = data.mem_bytes;
                        frontier = data.frontier.clone();
                        for &tid_ in &data.terminated {
                            report.terminated.push(nodes[tid_ as usize].cfg.clone());
                        }
                        for &did in &data.deadlocked {
                            report.deadlocked.push(nodes[did as usize].cfg.clone());
                        }
                        term_ids = data.terminated.clone();
                        dead_ids = data.deadlocked.clone();
                        for vr in &data.violations {
                            let node = &nodes[vr.node as usize];
                            let config = match (&vr.pi, symm) {
                                (Some(pi), Some(spec)) => {
                                    node.cfg.permute_threads(pi, spec.maps()).canonical()
                                }
                                _ => node.cfg.clone(),
                            };
                            let trace = self.opts.record_traces.then(|| match node.parent {
                                None => Vec::new(),
                                Some((p, t)) => match symm {
                                    Some(spec) => {
                                        let pi = vr.pi.clone().unwrap_or_else(|| {
                                            (0..n_threads as u8).collect()
                                        });
                                        reconstruct_trace_sym(
                                            &nodes, p, t, &node.sigma, &node.cfg, pi, spec,
                                        )
                                    }
                                    None => reconstruct_trace(&nodes, p, t, &node.cfg),
                                },
                            });
                            report.violations.push(Violation {
                                what: vr.what.clone(),
                                config,
                                trace,
                            });
                            viol_recs.push(ViolationRec {
                                what: vr.what.clone(),
                                node: vr.node,
                                pi: vr.pi.clone(),
                            });
                        }
                        resumed = true;
                    }
                    Err(message) => {
                        report.note(Note::CheckpointError { message });
                        index = VisitedIndex::new(self.opts.fingerprint, tel.clone());
                        nodes = Vec::new();
                    }
                }
            }
        }

        if !resumed {
            let init = Config::initial(self.prog).canonical();
            let probe = index.probe(&init, symm, |id| &nodes[id as usize].cfg);
            let (init, init_sigma) = index.commit(probe, &init, symm, 0);
            let init_prop = pers.as_ref().map_or(full, |p| p.persistent_mask(&init.pcs));
            mem_bytes += init.approx_bytes() as u64;
            nodes.push(Node {
                cfg: init.clone(),
                parent: None,
                explored: init_prop,
                sigma: init_sigma,
                succ_idx: 0,
            });
            check(&init, &mut buf);
            for what in buf.drain(..) {
                if ckpt.is_some() {
                    viol_recs.push(ViolationRec { what: what.clone(), node: 0, pi: None });
                }
                report.violations.push(Violation {
                    what,
                    config: init.clone(),
                    trace: self.opts.record_traces.then(Vec::new),
                });
            }
            frontier.push((0, init_prop, 0, true));
        }

        let mut pops: usize = 0;
        loop {
            // Budget and cancellation gates, between work items: any trip
            // stops on a clean boundary with a sound prefix report.
            if self.opts.cancel.is_cancelled() {
                report.stop.bump(StopReason::Cancelled);
                break;
            }
            if let Some(dl) = deadline {
                if Instant::now() >= dl {
                    report.stop.bump(StopReason::Deadline);
                    break;
                }
            }
            if let Some(cap) = budget.max_transitions {
                if report.transitions >= cap {
                    report.stop.bump(StopReason::TransitionCap);
                    break;
                }
            }
            if let Some(cap) = budget.max_mem_bytes {
                if mem_bytes as usize >= cap {
                    report.stop.bump(StopReason::MemBudget);
                    break;
                }
            }
            if let (Some(ck), Some(sig)) = (&ckpt, sig) {
                if pops > 0 && pops.is_multiple_of(ck.every.max(1)) {
                    self.save_checkpoint(
                        ck, sig, &mut report, &nodes, &frontier, mem_bytes, &term_ids,
                        &dead_ids, &viol_recs,
                    );
                }
            }
            // Gauge the pre-pop depth so the peak registers even a 1-state
            // frontier, then the post-pop depth for the live gauge.
            if let Some(t) = &tel {
                t.frontier_set(frontier.len() as u64);
            }
            let Some((id, mask, sleep, first)) = frontier.pop() else { break };
            pops += 1;
            if let Some(t) = &tel {
                // The sequential engine is worker 0, so the per-worker
                // expansion slots sum to the total on either engine.
                t.add_expansions(0, 1);
                t.frontier_set(frontier.len() as u64);
            }
            // Fault injection: unlike the parallel engine, the sequential
            // explorer has no per-worker containment, so an injected panic
            // unwinds to the caller — the request path's `catch_unwind`
            // converts it to a `WorkerFault` report.
            if let Some(chaos) = &self.opts.chaos {
                chaos.on_expansion();
            }
            let cfg = nodes[id as usize].cfg.clone();
            let mut fps = por.then(|| por::LazyFootprints::new(n_threads));
            let mut any_succ = false;
            let mut earlier: ThreadMask = 0;
            for t in 0..n_threads {
                if por && mask & (1u64 << t) == 0 {
                    continue;
                }
                let succs = thread_successors(self.prog, self.objs, &cfg, t, self.opts.step);
                report.transitions += succs.len();
                if let Some(tl) = &tel {
                    tl.add(Counter::Transitions, succs.len() as u64);
                }
                any_succ |= !succs.is_empty();
                let child_sleep = match (&mut fps, &statics) {
                    (Some(fps), Some(cm)) => {
                        let cs = por::child_sleep_static(
                            self.prog,
                            &cfg,
                            fps,
                            cm.static_indep(),
                            sleep | earlier,
                            t,
                        );
                        earlier |= 1u64 << t;
                        cs
                    }
                    _ => 0,
                };
                let tid = Tid(t as u8);
                for (si, succ) in succs.into_iter().enumerate() {
                    // The successor's persistent set (full without dpor).
                    // A pure function of the program counters, computed on
                    // the raw successor and transported through σ with the
                    // sleep mask — symmetric threads have equal future
                    // footprints, so the remapped mask is exactly the
                    // stored representative's persistent set.
                    let pmask = pers.as_ref().map_or(full, |p| p.persistent_mask(&succ.pcs));
                    if por {
                        if let Some(tl) = &tel {
                            // Reduction attribution, per successor: threads
                            // slept out of the persistent proposal (A5) and
                            // threads the persistent mask sheds whole (A7).
                            // Both are zero when the reduction is off.
                            tl.add(
                                Counter::SleepSetPrunes,
                                (pmask & child_sleep).count_ones() as u64,
                            );
                            tl.add(
                                Counter::PersistentSheds,
                                (full & !pmask).count_ones() as u64,
                            );
                        }
                    }
                    let probe = match index.probe(&succ, symm, |id| &nodes[id as usize].cfg) {
                        Probe::Dup(dup_id, dsigma) => {
                            if por {
                                // Wake-up rule: threads this arrival would
                                // explore but no earlier arrival queued —
                                // with the proposal transported into the
                                // stored state's thread numbering first.
                                // The queued item carries the arrival's
                                // true sleep set: under dpor `full &
                                // !prop` would unsoundly sleep the merely
                                // postponed outside-persistent threads.
                                let (prop, slp) = match &dsigma {
                                    Some(sg) => (
                                        sym::remap_mask(pmask & !child_sleep, sg),
                                        sym::remap_mask(child_sleep, sg),
                                    ),
                                    None => (pmask & !child_sleep, child_sleep),
                                };
                                let missing = prop & !nodes[dup_id as usize].explored;
                                if missing != 0 {
                                    nodes[dup_id as usize].explored |= missing;
                                    frontier.push((dup_id, missing, slp, false));
                                }
                            }
                            continue;
                        }
                        novel => novel,
                    };
                    if nodes.len() >= self.opts.max_states {
                        report.stop.bump(StopReason::StateCap);
                        continue;
                    }
                    let new_id = nodes.len() as u32;
                    let (canon, sigma) = index.commit(probe, &succ, symm, new_id);
                    mem_bytes += canon.approx_bytes() as u64;
                    // The explored/sleep masks live in the stored state's
                    // numbering: transport proposal and sleep through σ.
                    let (prop, slp) = match (&sigma, por) {
                        (Some(sg), true) => (
                            sym::remap_mask(pmask & !child_sleep, sg),
                            sym::remap_mask(child_sleep, sg),
                        ),
                        _ => (pmask & !child_sleep, child_sleep),
                    };
                    check(&canon, &mut buf);
                    for what in buf.drain(..) {
                        if ckpt.is_some() {
                            viol_recs.push(ViolationRec {
                                what: what.clone(),
                                node: new_id,
                                pi: None,
                            });
                        }
                        report.violations.push(Violation {
                            what,
                            config: canon.clone(),
                            trace: self.opts.record_traces.then(|| match symm {
                                Some(spec) => reconstruct_trace_sym(
                                    &nodes,
                                    id,
                                    tid,
                                    &sigma,
                                    &canon,
                                    (0..n_threads as u8).collect(),
                                    spec,
                                ),
                                None => reconstruct_trace(&nodes, id, tid, &canon),
                            }),
                        });
                    }
                    // Under symmetry the check must see every state of the
                    // orbit, not just the representative: observation
                    // tuples and invariants may distinguish thread
                    // identities the reduction just modded out.
                    if let Some(spec) = symm {
                        for (pi, member) in sym::orbit_members(spec, &canon) {
                            check(&member, &mut buf);
                            for what in buf.drain(..) {
                                if ckpt.is_some() {
                                    viol_recs.push(ViolationRec {
                                        what: what.clone(),
                                        node: new_id,
                                        pi: Some(pi.clone()),
                                    });
                                }
                                report.violations.push(Violation {
                                    what,
                                    config: member.clone(),
                                    trace: self.opts.record_traces.then(|| {
                                        reconstruct_trace_sym(
                                            &nodes, id, tid, &sigma, &canon, pi.clone(), spec,
                                        )
                                    }),
                                });
                            }
                        }
                    }
                    nodes.push(Node {
                        cfg: canon,
                        parent: Some((id, tid)),
                        explored: prop,
                        sigma,
                        succ_idx: si as u32,
                    });
                    frontier.push((new_id, prop, slp, true));
                }
            }
            if !any_succ {
                // The expanded threads produced nothing. Only a *first*
                // visit may classify the state as terminal, and only after
                // probing the threads it arrived asleep (a fully slept
                // configuration has successors — all covered elsewhere —
                // and is not terminal; see `por::has_any_successor` for
                // why the probe stays out of the transition count).
                // Without POR, `mask` is full and this probes nothing.
                if first
                    && !por::has_any_successor(
                        self.prog,
                        self.objs,
                        &cfg,
                        full & !mask,
                        self.opts.step,
                    )
                {
                    if cfg.terminated(self.prog) {
                        if ckpt.is_some() {
                            term_ids.push(id);
                        }
                        report.terminated.push(cfg);
                    } else {
                        if ckpt.is_some() {
                            dead_ids.push(id);
                        }
                        report.deadlocked.push(cfg);
                    }
                } else {
                    // Retry rule (dpor): every expanded thread was blocked
                    // — a persistent member stuck on a lock acquire, say —
                    // but the state is not terminal. Persistence cannot
                    // promise an outside thread will unblock a member
                    // (outsiders never conflict with members' futures), so
                    // grow the expansion to every non-slept thread never
                    // queued here. Slept threads stay out: their steps are
                    // covered from a sibling state (the A5 argument).
                    // Without dpor `explored` already covers `full &
                    // !sleep`, so `rest` is zero and nothing changes.
                    let rest = full & !sleep & !nodes[id as usize].explored;
                    if rest != 0
                        && por::has_any_successor(self.prog, self.objs, &cfg, rest, self.opts.step)
                    {
                        nodes[id as usize].explored |= rest;
                        frontier.push((id, rest, sleep, false));
                    }
                }
            }
            // Past the state cap every further expansion can only re-count
            // transitions of states we will drop anyway — stop the walk.
            if !report.stop.is_complete() {
                break;
            }
        }
        // A cancellation that raced the final items must still be
        // reported: a cancelled run never claims `Complete`.
        if self.opts.cancel.is_cancelled() {
            report.stop.bump(StopReason::Cancelled);
        }
        // Completed runs delete their checkpoint; interrupted ones write a
        // final snapshot so a resume continues from this exact boundary.
        if let (Some(ck), Some(sig)) = (&ckpt, sig) {
            if report.stop.is_complete() {
                checkpoint::remove(&ck.dir);
            } else {
                self.save_checkpoint(
                    ck, sig, &mut report, &nodes, &frontier, mem_bytes, &term_ids, &dead_ids,
                    &viol_recs,
                );
            }
        }
        // Terminal/deadlock sets are reported in unreduced terms: expand
        // each representative's orbit back out (orbits of distinct
        // representatives are disjoint, so this is exactly the unreduced
        // search's set).
        if let Some(spec) = symm {
            sym::expand_terminals(spec, &mut report.terminated);
            sym::expand_terminals(spec, &mut report.deadlocked);
        }
        report.states = nodes.len();
        report.wall = run_start.elapsed();
        if let (Some(t), Some(t0)) = (&tel, &tel0) {
            report.telemetry = Some(t.snapshot().delta(t0));
        }
        report
    }

    /// The signature binding a checkpoint to this program and the
    /// semantic options. `max_states` is included (a mid-item state-cap
    /// stop drops successors, so only a same-cap resume is sound);
    /// budgets and cancellation are not (they stop on clean item
    /// boundaries — resuming a deadline-stopped run *without* the
    /// deadline is the point).
    fn checkpoint_sig(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = crate::fxhash::Fx128Hasher::default();
        format!("{:?}", self.prog).hash(&mut h);
        (
            self.opts.fingerprint,
            self.opts.por,
            self.opts.dpor,
            self.opts.symmetry,
            self.opts.record_traces,
            self.opts.step.fuse_local,
            self.opts.max_states,
        )
            .hash(&mut h);
        h.finish()
    }

    /// Rebuild the interned arena and visited index from a checkpoint's
    /// discovery log by replaying each node's `(parent, tid, succ_idx)`
    /// edge through `thread_successors` and the unchanged probe/commit
    /// path. The sequential explorer is deterministic, so a log written
    /// by the same program + options replays to the bit-identical arena;
    /// any divergence (stale file, changed semantics) is detected and
    /// reported, and the caller starts afresh.
    fn replay_log(
        &self,
        data: &checkpoint::CheckpointData,
        symm: Option<&SymmetrySpec>,
    ) -> Result<(VisitedIndex, Vec<Node>), String> {
        let mut index = VisitedIndex::new(self.opts.fingerprint, self.opts.telemetry.clone());
        let mut nodes: Vec<Node> = Vec::with_capacity(data.nodes.len());
        let root = match data.nodes.first() {
            Some(r) if r.parent == u32::MAX => r,
            _ => return Err("stale or corrupt checkpoint ignored (bad root)".into()),
        };
        let init = Config::initial(self.prog).canonical();
        let probe = index.probe(&init, symm, |id| &nodes[id as usize].cfg);
        let (init, init_sigma) = index.commit(probe, &init, symm, 0);
        nodes.push(Node {
            cfg: init,
            parent: None,
            explored: root.explored,
            sigma: init_sigma,
            succ_idx: 0,
        });
        for (k, rec) in data.nodes.iter().enumerate().skip(1) {
            if rec.parent as usize >= k {
                return Err("stale or corrupt checkpoint ignored (forward parent)".into());
            }
            let cfg = nodes[rec.parent as usize].cfg.clone();
            let succs =
                thread_successors(self.prog, self.objs, &cfg, rec.tid as usize, self.opts.step);
            let Some(succ) = succs.into_iter().nth(rec.succ_idx as usize) else {
                return Err("stale or corrupt checkpoint ignored (replay diverged)".into());
            };
            let probe = match index.probe(&succ, symm, |id| &nodes[id as usize].cfg) {
                Probe::Dup(..) => {
                    return Err("stale or corrupt checkpoint ignored (duplicate edge)".into())
                }
                novel => novel,
            };
            let (canon, sigma) = index.commit(probe, &succ, symm, k as u32);
            nodes.push(Node {
                cfg: canon,
                parent: Some((rec.parent, Tid(rec.tid))),
                explored: rec.explored,
                sigma,
                succ_idx: rec.succ_idx,
            });
        }
        let n = nodes.len();
        let in_range = data.frontier.iter().all(|&(id, ..)| (id as usize) < n)
            && data.terminated.iter().all(|&id| (id as usize) < n)
            && data.deadlocked.iter().all(|&id| (id as usize) < n)
            && data.violations.iter().all(|v| (v.node as usize) < n);
        if !in_range {
            return Err("stale or corrupt checkpoint ignored (id out of range)".into());
        }
        Ok((index, nodes))
    }

    /// Snapshot the discovery log to the checkpoint directory. Failures —
    /// real I/O errors or chaos-injected ones — never stop the run; they
    /// surface as a [`Note::CheckpointError`] and the walk continues
    /// without that save.
    #[allow(clippy::too_many_arguments)]
    fn save_checkpoint(
        &self,
        ck: &CheckpointOpts,
        sig: u64,
        report: &mut Report,
        nodes: &[Node],
        frontier: &[(u32, ThreadMask, ThreadMask, bool)],
        mem_bytes: u64,
        term_ids: &[u32],
        dead_ids: &[u32],
        viol_recs: &[ViolationRec],
    ) {
        if let Some(chaos) = &self.opts.chaos {
            if chaos.should_fail_checkpoint() {
                report.note(Note::CheckpointError {
                    message: "injected checkpoint-write failure".into(),
                });
                return;
            }
        }
        let data = checkpoint::CheckpointData {
            transitions: report.transitions as u64,
            mem_bytes,
            nodes: nodes
                .iter()
                .map(|n| checkpoint::NodeRec {
                    parent: n.parent.map_or(u32::MAX, |(p, _)| p),
                    tid: n.parent.map_or(0, |(_, t)| t.0),
                    succ_idx: n.succ_idx,
                    explored: n.explored,
                })
                .collect(),
            frontier: frontier.to_vec(),
            terminated: term_ids.to_vec(),
            deadlocked: dead_ids.to_vec(),
            violations: viol_recs
                .iter()
                .map(|v| ViolationRec { what: v.what.clone(), node: v.node, pi: v.pi.clone() })
                .collect(),
        };
        if let Err(e) = checkpoint::save(&ck.dir, sig, &data) {
            report.note(Note::CheckpointError { message: format!("write failed: {e}") });
        }
    }

    /// Plain reachability (no property).
    pub fn explore(&self) -> Report {
        self.explore_with(|_, _| {})
    }

    /// Check a predicate as a global invariant.
    pub fn check_invariant(&self, pred: &rc11_assert::Pred) -> Report {
        self.explore_with(|cfg, out| {
            let ctx = rc11_assert::EvalCtx { prog: self.prog, cfg };
            if !pred.eval(ctx) {
                out.push("invariant violated".to_string());
            }
        })
    }

    /// All values of thread `t`'s register `r` over *terminated* executions
    /// — the "possible final outcomes" question the litmus figures ask.
    pub fn terminal_reg_values(&self, t: usize, r: rc11_lang::Reg) -> Vec<rc11_core::Val> {
        let report = self.explore();
        assert!(!report.truncated(), "exploration truncated");
        let mut vals: Vec<rc11_core::Val> =
            report.terminated.iter().map(|c| c.reg(t, r)).collect();
        vals.sort();
        vals.dedup();
        vals
    }
}

fn reconstruct_trace(nodes: &[Node], parent: u32, tid: Tid, last: &Config) -> Vec<(Tid, Config)> {
    let mut rev = vec![(tid, last.clone())];
    let mut cur = parent;
    while let Some((p, t)) = nodes[cur as usize].parent {
        rev.push((t, nodes[cur as usize].cfg.clone()));
        cur = p;
    }
    rev.reverse();
    rev
}

/// Trace reconstruction under symmetry reduction. The arena holds one
/// representative per orbit, with each node remembering the group
/// permutation `σ` its committing edge was transported through
/// (`R_k = σ_k(canon(s_k))`). An exactly replayable trace through the
/// *raw* orbit is recovered by walking backward with an accumulated
/// permutation `τ`, seeded with the target state's orbit permutation `π`
/// (identity for the representative itself): the replayed state at step
/// `k` is `τ_k(R_k)` re-canonicalised, the mover is the stored tid mapped
/// through `τ_{k-1}`, and crossing edge `k` composes `τ_{k-1} = τ_k ∘ σ_k`.
/// Group permutations are automorphisms and fix the initial configuration,
/// so every entry is a real transition from its predecessor and the walk
/// bottoms out at the true initial state — the symmetry trace-replay test
/// in `tests/engine_agreement.rs` steps every entry to confirm it.
fn reconstruct_trace_sym(
    nodes: &[Node],
    parent: u32,
    tid: Tid,
    sigma_last: &Option<Vec<u8>>,
    last: &Config,
    tau: Vec<u8>,
    spec: &SymmetrySpec,
) -> Vec<(Tid, Config)> {
    let n = tau.len();
    let compose = |tau: &[u8], sigma: &Option<Vec<u8>>| -> Vec<u8> {
        match sigma {
            Some(sg) => (0..n).map(|i| tau[sg[i] as usize]).collect(),
            None => tau.to_vec(),
        }
    };
    let apply = |cfg: &Config, tau: &[u8]| -> Config {
        if sym::is_identity(tau) {
            cfg.clone()
        } else {
            cfg.permute_threads(tau, spec.maps()).canonical()
        }
    };
    let mut rev = Vec::new();
    let m = apply(last, &tau);
    let mut tau = compose(&tau, sigma_last);
    rev.push((Tid(tau[tid.idx()]), m));
    let mut cur = parent;
    while let Some((p, t)) = nodes[cur as usize].parent {
        let node = &nodes[cur as usize];
        let m = apply(&node.cfg, &tau);
        tau = compose(&tau, &node.sigma);
        rev.push((Tid(tau[t.idx()]), m));
        cur = p;
    }
    rev.reverse();
    rev
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc11_lang::builder::*;
    use rc11_lang::machine::NoObjects;
    use rc11_lang::{compile, Reg};
    use rc11_objects::AbstractObjects;
    use rc11_core::Val;

    /// Figure 1 at the variable level: relaxed message passing leaves both
    /// outcomes reachable.
    fn mp_prog(rel_acq: bool) -> rc11_lang::CfgProgram {
        let mut p = ProgramBuilder::new("mp");
        let d = p.client_var("d", 0);
        let f = p.client_var("f", 0);
        let t1 = ThreadBuilder::new();
        p.add_thread(
            t1,
            seq([wr(d, 5), if rel_acq { wr_rel(f, 1) } else { wr(f, 1) }]),
        );
        let mut t2 = ThreadBuilder::new();
        let r1 = t2.reg("r1");
        let r2 = t2.reg("r2");
        p.add_thread(
            t2,
            seq([
                do_until(if rel_acq { rd_acq(r1, f) } else { rd(r1, f) }, eq(r1, 1)),
                rd(r2, d),
            ]),
        );
        compile(&p.build())
    }

    #[test]
    fn relaxed_mp_has_weak_outcome() {
        let prog = mp_prog(false);
        let ex = Explorer::new(&prog, &NoObjects);
        let vals = ex.terminal_reg_values(1, Reg(1));
        assert_eq!(vals, vec![Val::Int(0), Val::Int(5)], "r2 ∈ {{0, 5}}");
    }

    #[test]
    fn release_acquire_mp_is_exact() {
        let prog = mp_prog(true);
        let ex = Explorer::new(&prog, &NoObjects);
        let vals = ex.terminal_reg_values(1, Reg(1));
        assert_eq!(vals, vec![Val::Int(5)], "r2 = 5 in all executions");
    }

    #[test]
    fn lock_program_explores_and_terminates() {
        let mut p = ProgramBuilder::new("lock2");
        let x = p.client_var("x", 0);
        let l = p.lock("l");
        for _ in 0..2 {
            let mut tb = ThreadBuilder::new();
            let r = tb.reg("r");
            p.add_thread(tb, seq([acquire(l), rd(r, x), wr(x, add(r, 1)), release(l)]));
        }
        let prog = compile(&p.build());
        let report = Explorer::new(&prog, &AbstractObjects).explore();
        assert!(report.ok());
        assert!(report.deadlocked.is_empty(), "the lock must never deadlock");
        // Mutual exclusion ⇒ both increments land: x = 2 in all terminals.
        for term in &report.terminated {
            let st = term.mem.client();
            let max = st.max_op(rc11_core::Loc(0));
            assert_eq!(st.op(max).act.wrval(), Val::Int(2));
        }
    }

    #[test]
    fn invariant_violations_carry_traces() {
        let mut p = ProgramBuilder::new("bad");
        let x = p.client_var("x", 0);
        let t1 = ThreadBuilder::new();
        p.add_thread(t1, seq([wr(x, 1), wr(x, 2)]));
        let prog = compile(&p.build());
        // "x never holds 2" is violated after the second write.
        let pred = rc11_assert::dsl::pnot(rc11_assert::dsl::pobs(0, x, 2));
        let report = Explorer::new(&prog, &NoObjects).check_invariant(&pred);
        assert!(!report.violations.is_empty());
        let v = &report.violations[0];
        let trace = v.trace.as_ref().expect("traces recorded by default");
        assert!(!trace.is_empty(), "violation reached after at least one step");
    }

    #[test]
    fn truncation_is_reported() {
        let prog = mp_prog(false);
        let opts = ExploreOptions { max_states: 3, ..Default::default() };
        let report = Explorer::new(&prog, &NoObjects).with_options(opts).explore();
        assert!(report.truncated());
        assert_eq!(report.stop, crate::engine::StopReason::StateCap);
        assert!(!report.ok());
    }

    #[test]
    fn blocked_threads_report_deadlock() {
        // One thread acquires twice: the second acquire blocks forever.
        let mut p = ProgramBuilder::new("deadlock");
        let l = p.lock("l");
        let tb = ThreadBuilder::new();
        p.add_thread(tb, seq([acquire(l), acquire(l)]));
        let prog = compile(&p.build());
        let report = Explorer::new(&prog, &AbstractObjects).explore();
        assert_eq!(report.terminated.len(), 0);
        assert_eq!(report.deadlocked.len(), 1);
    }
}
