//! Experiment E7 (Figure 7 + Lemma 4): the lock-synchronisation proof
//! outline.
//!
//! Regenerates Lemma 4 — the full 11-annotation outline is valid over the
//! whole state space — and times the check against plain exploration (the
//! annotation-checking overhead). Expected shape: valid; overhead a small
//! constant factor.

use criterion::{criterion_group, criterion_main, Criterion};
use rc11::figures;
use rc11::prelude::*;

fn check_fig7() -> (usize, usize) {
    let f = figures::fig7();
    let outline = figures::fig7_outline(&f);
    let prog = compile(&f.prog);
    let report = check_outline(&prog, &AbstractObjects, &outline, &ExploreOptions::default());
    assert!(report.valid(), "Lemma 4: the Figure-7 outline must be valid");
    (report.states, report.checks)
}

fn bench(c: &mut Criterion) {
    let (states, checks) = check_fig7();
    eprintln!("[fig7] Lemma 4 outline VALID: {checks} checks over {states} states");

    let f = figures::fig7();
    let prog = compile(&f.prog);

    let mut g = c.benchmark_group("fig7");
    g.bench_function("check_outline", |b| b.iter(check_fig7));
    g.bench_function("explore_only", |b| {
        b.iter(|| {
            Explorer::new(&prog, &AbstractObjects)
                .with_options(ExploreOptions { record_traces: false, ..Default::default() })
                .explore()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
