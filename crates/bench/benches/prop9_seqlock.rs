//! Experiment E8 (Proposition 9): the sequence lock forward-simulates the
//! abstract lock.
//!
//! Regenerates the proposition on three clients of growing size and times
//! the simulation search. Expected shape: holds on every client; cost
//! grows with the concrete state count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rc11::prelude::*;
use rc11_refine::{check_forward_simulation, harness, ClientShape, SimOptions};

fn simulate(client: &Program, l: ObjRef) -> rc11_refine::SimReport {
    let shape = ClientShape::of(client);
    let conc = instantiate(client, l, &rc11_locks::seqlock());
    check_forward_simulation(
        &compile(client),
        &AbstractObjects,
        &compile(&conc),
        &NoObjects,
        &shape,
        SimOptions::default(),
    )
}

fn bench(c: &mut Criterion) {
    let clients: Vec<(&str, Program, ObjRef)> = vec![
        ("handoff", harness::handoff_client().0, harness::handoff_client().1),
        ("fig7", harness::fig7_client().0, harness::fig7_client().1),
        ("rounds2", harness::rounds_client(2).0, harness::rounds_client(2).1),
    ];
    let mut g = c.benchmark_group("prop9_seqlock");
    for (name, client, l) in &clients {
        let report = simulate(client, *l);
        assert!(report.holds, "Proposition 9 must hold on {name}");
        eprintln!(
            "[prop9] {name}: HOLDS — {} concrete × {} abstract states, product {}",
            report.concrete_states, report.abstract_states, report.product_size
        );
        g.bench_with_input(BenchmarkId::from_parameter(name), &(client, *l), |b, (cl, l)| {
            b.iter(|| {
                let r = simulate(cl, *l);
                assert!(r.holds);
                r.concrete_states
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
