//! Experiment E2 (Figure 2): publication via a synchronising stack.
//!
//! Regenerates the figure's claim — `r2 = 5` in **all** executions — and
//! times the exhaustive proof. Expected shape: zero stale terminals.

use criterion::{criterion_group, criterion_main, Criterion};
use rc11::figures;
use rc11::prelude::*;

fn verify_fig2() -> usize {
    let f = figures::fig2();
    let prog = compile(&f.prog);
    let report = Explorer::new(&prog, &AbstractObjects)
        .with_options(ExploreOptions { record_traces: false, ..Default::default() })
        .explore();
    assert!(report.ok());
    assert!(!report.terminated.is_empty());
    assert!(
        report.terminated.iter().all(|c| c.reg(1, f.r2) == Val::Int(5)),
        "Figure 2: r2 = 5 must hold in every execution"
    );
    report.states
}

fn bench(c: &mut Criterion) {
    let states = verify_fig2();
    eprintln!("[fig2] states={states} — r2 = 5 in all executions ✓ (paper: {{r2 = 5}})");

    let mut g = c.benchmark_group("fig2");
    g.bench_function("exhaustive_verify", |b| b.iter(verify_fig2));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
