//! Experiment E6 (Figure 6 + Lemma 3): the abstract-lock proof rules.
//!
//! Regenerates Lemma 3 by checking all six rules over every reachable
//! configuration of the standard harnesses, and times the abstract lock's
//! own transitions. Expected shape: thousands of non-vacuous rule
//! instances, zero violations.

use criterion::{criterion_group, criterion_main, Criterion};
use rc11::lemma3::{check_all_rules, standard_harnesses};
use rc11_core::{Combined, InitLoc, Loc, Tid};
use rc11_objects::lock;

fn bench(c: &mut Criterion) {
    let harnesses = standard_harnesses(3);
    for h in &harnesses {
        let stats = check_all_rules(h);
        eprintln!(
            "[lemma3] {}: {} configs, instances r1..r6 = {}/{}/{}/{}/{}/{} (total {})",
            h.prog.source.name,
            h.configs.len(),
            stats.r1,
            stats.r2,
            stats.r3,
            stats.r4,
            stats.r5,
            stats.r6,
            stats.total()
        );
    }

    let mut g = c.benchmark_group("lemma3");
    g.bench_function("check_all_rules_fig7_harness", |b| {
        b.iter(|| check_all_rules(&harnesses[0]))
    });
    g.bench_function("check_all_rules_3thread_harness", |b| {
        b.iter(|| check_all_rules(&harnesses[1]))
    });
    // Figure 6 transition microbench: a full acquire/release round-trip.
    g.bench_function("lock_acquire_release_roundtrip", |b| {
        let s = Combined::new(&[], &[InitLoc::Obj], 2);
        b.iter(|| {
            let (_, s1) = lock::acquire_steps(&s, Tid(0), Loc(0)).pop().unwrap();
            let (_, s2) = lock::release_steps(&s1, Tid(0), Loc(0)).pop().unwrap();
            s2
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
