//! Experiment E1 (Figure 1): unsynchronised message passing via a stack.
//!
//! Regenerates the figure's claim — `r2 ∈ {0, 5}` with the weak outcome
//! genuinely reachable — and times (a) exhaustive verification and (b)
//! random-walk outcome sampling. Expected shape: both outcomes present;
//! stale-read frequency well away from 0% under uniform scheduling.

use criterion::{criterion_group, criterion_main, Criterion};
use rc11::figures;
use rc11::prelude::*;

fn verify_fig1() -> (usize, usize, usize) {
    let f = figures::fig1();
    let prog = compile(&f.prog);
    let report = Explorer::new(&prog, &AbstractObjects)
        .with_options(ExploreOptions { record_traces: false, ..Default::default() })
        .explore();
    assert!(report.ok());
    let stale = report.terminated.iter().filter(|c| c.reg(1, f.r2) == Val::Int(0)).count();
    let fresh = report.terminated.iter().filter(|c| c.reg(1, f.r2) == Val::Int(5)).count();
    assert!(stale > 0 && fresh > 0, "Figure 1: both outcomes must be reachable");
    (report.states, stale, fresh)
}

fn bench(c: &mut Criterion) {
    let (states, stale, fresh) = verify_fig1();
    eprintln!("[fig1] states={states} stale-terminals={stale} fresh-terminals={fresh}");

    let f = figures::fig1();
    let prog = compile(&f.prog);
    let samples = sample_terminals(&prog, &AbstractObjects, 2000, 5_000, 7).expect("Figure 1 terminates");
    let pct =
        samples.iter().filter(|cfg| cfg.reg(1, f.r2) == Val::Int(0)).count() as f64 / 20.0;
    eprintln!("[fig1] sampled stale-read frequency: {pct:.1}% (paper: weak outcome observable)");

    let mut g = c.benchmark_group("fig1");
    g.bench_function("exhaustive_verify", |b| b.iter(verify_fig1));
    g.bench_function("sample_100_walks", |b| {
        b.iter(|| sample_terminals(&prog, &AbstractObjects, 100, 5_000, 7).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
