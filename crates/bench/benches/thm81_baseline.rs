//! Experiment E10 / ablation A2 (Theorem 8.1): forward simulation versus
//! the literal trace-inclusion baseline.
//!
//! Both checkers decide the same question (`C[AO] ⊑ C[CO]`); the
//! simulation checker scales with the product of *state* spaces while the
//! baseline enumerates stutter-free *traces*. Expected shape: agreement on
//! every verdict; the baseline's cost grows much faster with client size
//! (the crossover is the practical content of Definition 8).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rc11::prelude::*;
use rc11_refine::{
    check_forward_simulation, check_trace_inclusion, harness, ClientShape, SimOptions,
    TraceOptions,
};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("thm81");
    for rounds in [1usize, 2] {
        let (client, l) = harness::rounds_client(rounds);
        let shape = ClientShape::of(&client);
        let abs_cfg = compile(&client);
        let conc = instantiate(&client, l, &rc11_locks::seqlock());
        let conc_cfg = compile(&conc);

        let sim = check_forward_simulation(
            &abs_cfg,
            &AbstractObjects,
            &conc_cfg,
            &NoObjects,
            &shape,
            SimOptions::default(),
        );
        let incl = check_trace_inclusion(
            &abs_cfg,
            &AbstractObjects,
            &conc_cfg,
            &NoObjects,
            &shape,
            TraceOptions::default(),
        );
        assert!(sim.holds && incl.holds, "rounds({rounds}): both checkers must agree (hold)");
        eprintln!(
            "[thm81] rounds({rounds}): sim states={} vs baseline traces={} (abs traces={})",
            sim.concrete_states, incl.concrete_traces, incl.abstract_traces
        );

        g.bench_with_input(BenchmarkId::new("simulation", rounds), &rounds, |b, _| {
            b.iter(|| {
                check_forward_simulation(
                    &abs_cfg,
                    &AbstractObjects,
                    &conc_cfg,
                    &NoObjects,
                    &shape,
                    SimOptions::default(),
                )
                .holds
            })
        });
        g.bench_with_input(BenchmarkId::new("trace_baseline", rounds), &rounds, |b, _| {
            b.iter(|| {
                check_trace_inclusion(
                    &abs_cfg,
                    &AbstractObjects,
                    &conc_cfg,
                    &NoObjects,
                    &shape,
                    TraceOptions::default(),
                )
                .holds
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
