//! Ablation A3: parallel exploration scaling.
//!
//! Explores a four-thread ticket-lock client (the largest state space in
//! the suite: ~3.7k canonical states, ~15k transitions) with the
//! sequential reference engine and the batched work-stealing parallel
//! engine at 1, 2, 4 and 8 workers, asserting that every engine visits the
//! identical state count. The parallel engine is benched through the
//! unified [`Engine`] API (worker-local flush batches + batched sharded-map
//! insertion); `Engine::Parallel { workers: 1 }` is forced (rather than
//! `choose_engine(1)`, which would hand back the sequential engine) so the
//! sweep exposes the parallel engine's fixed overhead at one worker.
//! Expected shape: speedup rising with workers until the frontier is too
//! shallow to feed them.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rc11::prelude::*;
use rc11_refine::harness;
use std::time::Instant;

fn build_prog() -> CfgProgram {
    let (client, l) = harness::counter_client(4);
    let conc = instantiate(&client, l, &rc11_locks::ticket());
    compile(&conc)
}

fn bench(c: &mut Criterion) {
    if !criterion::selected("parallel_scaling") {
        return;
    }
    let prog = build_prog();
    let opts = ExploreOptions { record_traces: false, ..Default::default() };

    let seq = Engine::Sequential.explore(&prog, &NoObjects, opts);
    eprintln!(
        "[parallel] {}: {} states, {} transitions (sequential reference)",
        prog.source.name, seq.states, seq.transitions
    );

    let mut g = c.benchmark_group("parallel_scaling");
    g.throughput(Throughput::Elements(seq.states as u64));
    g.sample_size(10);
    g.bench_function("sequential", |b| {
        b.iter(|| {
            let r = Engine::Sequential.explore(&prog, &NoObjects, opts);
            assert_eq!(r.states, seq.states);
        })
    });
    for workers in [1usize, 2, 4, 8] {
        let engine = Engine::Parallel { workers };
        g.bench_with_input(BenchmarkId::new("workers", workers), &engine, |b, engine| {
            b.iter(|| {
                let r = engine.explore(&prog, &NoObjects, opts);
                assert_eq!(r.states, seq.states, "worker count must not change the state count");
            })
        });
    }
    g.finish();

    // States/second throughput lines for the perf trajectory
    // (BENCH_explore.json): best-of-3 wall clock per engine.
    let states_per_sec = |engine: &Engine| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t0 = Instant::now();
            let r = engine.explore(&prog, &NoObjects, opts);
            assert_eq!(r.states, seq.states);
            best = best.min(t0.elapsed().as_secs_f64());
        }
        seq.states as f64 / best
    };
    let mut entries: Vec<(String, f64)> = Vec::new();
    entries.push(("sequential_states_per_sec".to_string(), states_per_sec(&Engine::Sequential)));
    for workers in [1usize, 2, 4, 8] {
        entries.push((
            format!("parallel_{workers}w_states_per_sec"),
            states_per_sec(&Engine::Parallel { workers }),
        ));
    }
    for (name, v) in &entries {
        eprintln!("[parallel_scaling] {name}: {v:.0} states/s");
    }
    let borrowed: Vec<(&str, f64)> = entries.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    bench::record_bench_json("parallel_scaling", &borrowed);
}

criterion_group!(benches, bench);
criterion_main!(benches);
