//! Ablation A3: parallel exploration scaling — plus the A5 POR lines.
//!
//! Two workloads:
//!
//! * **counter4** — the four-thread ticket-lock client (~3.7k canonical
//!   states): the criterion group sweeps it through the unified [`Engine`]
//!   API at 1/2/4/8 workers, asserting identical state counts.
//!   `Engine::Parallel { workers: 1 }` is forced (rather than
//!   `choose_engine(1)`, which would hand back the sequential engine) so
//!   the sweep exposes the parallel engine's fixed overhead at one worker.
//! * **counter5** — the five-thread client (~56k states, ~319k
//!   transitions): a frontier deep enough to keep every worker fed, used
//!   for the states/second throughput lines recorded into
//!   `BENCH_explore.json` and for the scaling-shape assertions.
//!
//! Since the keep-local scheduling fix (workers drain a private backlog
//! and only export overflow chunks — see `rc11_check::parallel`), the
//! expected shape is: the one-worker parallel engine tracks the
//! sequential explorer closely (it no longer round-trips every state
//! through the shared injector), and adding workers must not *lose*
//! throughput on the deep frontier. The multi-worker speedup assertion is
//! gated on the host actually having more than one CPU —
//! `available_parallelism` — because on a single-core host every extra
//! worker is pure context-switch overhead and the "shape" cannot be
//! observed. The always-on assertions are CPU-count-independent:
//! identical state counts everywhere, and the one-worker engine within 2×
//! of sequential.
//!
//! The A5 lines re-run the deep workload with sleep-set POR on
//! (`ExploreOptions::por`): same state count, fewer transitions, and the
//! recorded `deep_por_*` throughput shows what the reduction buys
//! end-to-end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rc11::prelude::*;
use rc11_refine::harness;
use std::time::Instant;

fn build_prog(n_threads: usize) -> CfgProgram {
    let (client, l) = harness::counter_client(n_threads);
    let conc = instantiate(&client, l, &rc11_locks::ticket());
    compile(&conc)
}

fn bench(c: &mut Criterion) {
    if !criterion::selected("parallel_scaling") {
        return;
    }
    let prog = build_prog(4);
    let opts = ExploreOptions { record_traces: false, ..Default::default() };

    let seq = Engine::Sequential.explore(&prog, &NoObjects, &opts);
    eprintln!(
        "[parallel] {}: {} states, {} transitions (sequential reference)",
        prog.source.name, seq.states, seq.transitions
    );

    let mut g = c.benchmark_group("parallel_scaling");
    g.throughput(Throughput::Elements(seq.states as u64));
    g.sample_size(10);
    g.bench_function("sequential", |b| {
        b.iter(|| {
            let r = Engine::Sequential.explore(&prog, &NoObjects, &opts);
            assert_eq!(r.states, seq.states);
        })
    });
    for workers in [1usize, 2, 4, 8] {
        let engine = Engine::Parallel { workers };
        g.bench_with_input(BenchmarkId::new("workers", workers), &engine, |b, engine| {
            b.iter(|| {
                let r = engine.explore(&prog, &NoObjects, &opts);
                assert_eq!(r.states, seq.states, "worker count must not change the state count");
            })
        });
    }
    g.finish();

    // ------------------------------------------------------------------
    // Shallow-workload throughput lines (the historical counter4 keys,
    // kept fresh): best-of-3 wall clock per engine configuration.
    // ------------------------------------------------------------------
    let mut entries: Vec<(String, f64)> = Vec::new();
    {
        let states_per_sec = |engine: &Engine| -> f64 {
            let mut best = f64::INFINITY;
            for _ in 0..3 {
                let t0 = Instant::now();
                let r = engine.explore(&prog, &NoObjects, &opts);
                assert_eq!(r.states, seq.states);
                best = best.min(t0.elapsed().as_secs_f64());
            }
            seq.states as f64 / best
        };
        entries.push((
            "sequential_states_per_sec".to_string(),
            states_per_sec(&Engine::Sequential),
        ));
        for workers in [1usize, 2, 4, 8] {
            entries.push((
                format!("parallel_{workers}w_states_per_sec"),
                states_per_sec(&Engine::Parallel { workers }),
            ));
        }
    }

    // ------------------------------------------------------------------
    // Deep-frontier throughput lines (BENCH_explore.json): the five-thread
    // client, best-of-2 wall clock per engine configuration.
    // ------------------------------------------------------------------
    let deep = build_prog(5);
    let deep_seq = Engine::Sequential.explore(&deep, &NoObjects, &opts);
    eprintln!(
        "[parallel] {}: {} states, {} transitions (deep frontier)",
        deep.source.name, deep_seq.states, deep_seq.transitions
    );
    let states_per_sec = |engine: &Engine, opts: &ExploreOptions| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..2 {
            let t0 = Instant::now();
            let r = engine.explore(&deep, &NoObjects, opts);
            assert_eq!(r.states, deep_seq.states);
            best = best.min(t0.elapsed().as_secs_f64());
        }
        deep_seq.states as f64 / best
    };
    let seq_tput = states_per_sec(&Engine::Sequential, &opts);
    entries.push(("deep_sequential_states_per_sec".to_string(), seq_tput));
    let mut worker_tput = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let tput = states_per_sec(&Engine::Parallel { workers }, &opts);
        worker_tput.push((workers, tput));
        entries.push((format!("deep_parallel_{workers}w_states_per_sec"), tput));
    }

    // A5: the same deep exploration with sleep-set POR on. States must not
    // change; the transition reduction is the work POR saves end-to-end.
    let por_opts = ExploreOptions { por: true, ..opts.clone() };
    let deep_por = Engine::Sequential.explore(&deep, &NoObjects, &por_opts);
    assert_eq!(deep_por.states, deep_seq.states, "POR must not change the state count");
    assert!(deep_por.transitions <= deep_seq.transitions);
    entries.push((
        "deep_por_transition_reduction".to_string(),
        deep_seq.transitions as f64 / deep_por.transitions.max(1) as f64,
    ));
    entries.push((
        "deep_por_sequential_states_per_sec".to_string(),
        states_per_sec(&Engine::Sequential, &por_opts),
    ));
    entries.push((
        "deep_por_parallel_4w_states_per_sec".to_string(),
        states_per_sec(&Engine::Parallel { workers: 4 }, &por_opts),
    ));

    for (name, v) in &entries {
        eprintln!("[parallel_scaling] {name}: {v:.0}");
    }
    let borrowed: Vec<(&str, f64)> = entries.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    bench::record_bench_json("parallel_scaling", &borrowed);

    // ------------------------------------------------------------------
    // Scaling-shape assertions.
    // ------------------------------------------------------------------
    let one_w = worker_tput[0].1;
    let two_w = worker_tput[1].1;
    assert!(
        one_w >= 0.5 * seq_tput,
        "one parallel worker fell to {one_w:.0} states/s vs sequential {seq_tput:.0}: \
         the keep-local backlog should keep its overhead far below 2x"
    );
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if cpus >= 2 {
        assert!(
            two_w >= 0.95 * one_w,
            "two workers ({two_w:.0} states/s) lost to one ({one_w:.0}) on a deep \
             frontier with {cpus} CPUs available — the scaling regression is back"
        );
    } else {
        eprintln!(
            "[parallel_scaling] single-CPU host: skipping the ≥2-worker speedup \
             assertion (2w {two_w:.0} vs 1w {one_w:.0} states/s is pure scheduling noise here)"
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
