//! Ablation A3: parallel exploration scaling.
//!
//! Explores a four-thread ticket-lock client (the largest state space in
//! the suite: ~3.7k canonical states, ~15k transitions) with 1, 2, 4 and 8
//! workers, asserting that every worker count visits the identical state
//! count. Expected shape: speedup rising with workers until the frontier
//! is too shallow to feed them.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rc11::prelude::*;
use rc11_refine::harness;

fn build_prog() -> CfgProgram {
    let (client, l) = harness::counter_client(4);
    let conc = instantiate(&client, l, &rc11_locks::ticket());
    compile(&conc)
}

fn bench(c: &mut Criterion) {
    let prog = build_prog();
    let opts = ExploreOptions { record_traces: false, ..Default::default() };

    let seq = Explorer::new(&prog, &NoObjects).with_options(opts).explore();
    eprintln!(
        "[parallel] {}: {} states, {} transitions (sequential reference)",
        prog.source.name, seq.states, seq.transitions
    );

    let mut g = c.benchmark_group("parallel_scaling");
    g.throughput(Throughput::Elements(seq.states as u64));
    g.sample_size(10);
    g.bench_function("sequential", |b| {
        b.iter(|| {
            let r = Explorer::new(&prog, &NoObjects).with_options(opts).explore();
            assert_eq!(r.states, seq.states);
        })
    });
    for workers in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, &w| {
            b.iter(|| {
                let r = par_explore(&prog, &NoObjects, opts, w, |_| Vec::new());
                assert_eq!(r.states, seq.states, "worker count must not change the state count");
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
