//! Ablation A1: the literal Figure-5 engine (rational timestamps, set-based
//! states) versus the fast engine (dense ranks, canonicalising states) —
//! plus a sweep of the *exploration* engines (sequential reference vs the
//! batched parallel engine) over a real lock client, so one bench file
//! covers both engine axes of DESIGN.md.
//!
//! Both memory engines execute the same deterministic transition script;
//! the fast engine additionally pays for canonicalisation, which is what
//! makes state-space deduplication possible at all (the literal engine's
//! rational timestamps make every interleaving representationally
//! distinct). Expected shape: the fast engine wins by an order of magnitude
//! on raw transitions, and only it supports visited-set dedup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rc11::prelude::*;
use rc11_core::lit::{step as lit_step, LitCombined};
use rc11_core::{Combined, Comp, InitLoc, Loc, Tid, Val};
use rc11_refine::harness;

const N_STEPS: usize = 60;

fn fast_script() -> Combined {
    let mut s = Combined::new(
        &[InitLoc::Var(Val::Int(0)), InitLoc::Var(Val::Int(0))],
        &[InitLoc::Var(Val::Int(0))],
        2,
    );
    for i in 0..N_STEPS {
        let t = Tid((i % 2) as u8);
        let u = Tid(((i + 1) % 2) as u8);
        let (comp, x) = match i % 3 {
            0 => (Comp::Client, Loc(0)),
            1 => (Comp::Client, Loc(1)),
            _ => (Comp::Lib, Loc(0)),
        };
        let w = *s.write_preds(comp, t, x).last().unwrap();
        s = s.apply_write(comp, t, x, Val::Int(i as i64), i % 2 == 0, w);
        let c = s.read_choices(comp, u, x).last().unwrap().from;
        s = s.apply_read(comp, u, x, true, c);
    }
    s
}

fn lit_script() -> LitCombined {
    let mut s = LitCombined::new(
        &[InitLoc::Var(Val::Int(0)), InitLoc::Var(Val::Int(0))],
        &[InitLoc::Var(Val::Int(0))],
        2,
    );
    for i in 0..N_STEPS {
        let t = Tid((i % 2) as u8);
        let u = Tid(((i + 1) % 2) as u8);
        let (comp, x) = match i % 3 {
            0 => (Comp::Client, Loc(0)),
            1 => (Comp::Client, Loc(1)),
            _ => (Comp::Lib, Loc(0)),
        };
        let w = *lit_step::write_choices(&s, comp, t, x).last().unwrap();
        s = lit_step::apply_write(&s, comp, t, x, Val::Int(i as i64), i % 2 == 0, w);
        let c = *lit_step::read_choices(&s, comp, u, x).last().unwrap();
        s = lit_step::apply_read(&s, comp, u, x, true, c);
    }
    s
}

fn bench(c: &mut Criterion) {
    // Cross-validate before timing: same observable value sequence.
    let f = fast_script();
    let l = lit_script();
    for loc in [Loc(0), Loc(1)] {
        let fv: Vec<Val> =
            f.client().mo(loc).iter().map(|&w| f.client().op(w).act.wrval()).collect();
        let mut lops: Vec<_> =
            l.client.ops.iter().filter(|(a, _)| a.loc() == loc).copied().collect();
        lops.sort_by_key(|a| a.1);
        let lv: Vec<Val> = lops.iter().map(|w| w.0.wrval()).collect();
        assert_eq!(fv, lv, "engines diverged on the ablation script");
    }
    eprintln!("[ablate_engine] engines agree on the {N_STEPS}-step script ✓");

    let mut g = c.benchmark_group("engine");
    g.bench_function("fast_script", |b| b.iter(fast_script));
    g.bench_function("literal_script", |b| b.iter(lit_script));
    g.bench_function("fast_script_plus_canonicalise", |b| {
        b.iter(|| fast_script().canonical())
    });
    g.finish();
}

/// The exploration-engine axis: sequential reference vs the batched
/// parallel engine (via `choose_engine`) over a three-thread ticket-lock
/// client, with identical-state-count assertions on every iteration.
fn bench_exploration(c: &mut Criterion) {
    let (client, l) = harness::counter_client(3);
    let conc = instantiate(&client, l, &rc11_locks::ticket());
    let prog = compile(&conc);
    let opts = ExploreOptions { record_traces: false, ..Default::default() };
    let seq = Engine::Sequential.explore(&prog, &NoObjects, opts);
    eprintln!(
        "[ablate_engine] exploration reference: {} states, {} transitions",
        seq.states, seq.transitions
    );

    let mut g = c.benchmark_group("exploration_engine");
    g.sample_size(10);
    g.bench_function("sequential", |b| {
        b.iter(|| {
            let r = Engine::Sequential.explore(&prog, &NoObjects, opts);
            assert_eq!(r.states, seq.states);
        })
    });
    for workers in [2usize, 4] {
        let engine = choose_engine(workers);
        g.bench_with_input(BenchmarkId::new("parallel", workers), &engine, |b, engine| {
            b.iter(|| {
                let r = engine.explore(&prog, &NoObjects, opts);
                assert_eq!(r.states, seq.states);
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench, bench_exploration);
criterion_main!(benches);
