//! Ablation A1: the literal Figure-5 engine (rational timestamps, set-based
//! states) versus the fast engine (dense ranks, canonicalising states) —
//! plus a sweep of the *exploration* engines (sequential reference vs the
//! batched parallel engine) over a real lock client, so one bench file
//! covers both engine axes of DESIGN.md — plus ablation A4
//! (`canon_vs_fingerprint`): the per-successor cost of materialised
//! canonicalisation + key clone (what visited-dedup used to pay on every
//! edge) against the zero-rebuild canonical fingerprint that replaced it,
//! measured over real successor configurations of a ticket-lock client
//! and recorded into `BENCH_explore.json`.
//!
//! Both memory engines execute the same deterministic transition script;
//! the fast engine additionally pays for canonicalisation, which is what
//! makes state-space deduplication possible at all (the literal engine's
//! rational timestamps make every interleaving representationally
//! distinct). Expected shape: the fast engine wins by an order of magnitude
//! on raw transitions, and only it supports visited-set dedup.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rc11::prelude::*;
use rc11_check::fxhash::{CanonicalFingerprint, FxHashSet};
use rc11_core::lit::{step as lit_step, LitCombined};
use rc11_core::{Combined, Comp, InitLoc, Loc, Tid, Val};
use rc11_lang::machine::successors;
use rc11_refine::harness;
use std::time::Instant;

const N_STEPS: usize = 60;

fn fast_script() -> Combined {
    let mut s = Combined::new(
        &[InitLoc::Var(Val::Int(0)), InitLoc::Var(Val::Int(0))],
        &[InitLoc::Var(Val::Int(0))],
        2,
    );
    for i in 0..N_STEPS {
        let t = Tid((i % 2) as u8);
        let u = Tid(((i + 1) % 2) as u8);
        let (comp, x) = match i % 3 {
            0 => (Comp::Client, Loc(0)),
            1 => (Comp::Client, Loc(1)),
            _ => (Comp::Lib, Loc(0)),
        };
        let w = *s.write_preds(comp, t, x).last().unwrap();
        s = s.apply_write(comp, t, x, Val::Int(i as i64), i % 2 == 0, w);
        let c = s.read_choices(comp, u, x).last().unwrap().from;
        s = s.apply_read(comp, u, x, true, c);
    }
    s
}

fn lit_script() -> LitCombined {
    let mut s = LitCombined::new(
        &[InitLoc::Var(Val::Int(0)), InitLoc::Var(Val::Int(0))],
        &[InitLoc::Var(Val::Int(0))],
        2,
    );
    for i in 0..N_STEPS {
        let t = Tid((i % 2) as u8);
        let u = Tid(((i + 1) % 2) as u8);
        let (comp, x) = match i % 3 {
            0 => (Comp::Client, Loc(0)),
            1 => (Comp::Client, Loc(1)),
            _ => (Comp::Lib, Loc(0)),
        };
        let w = *lit_step::write_choices(&s, comp, t, x).last().unwrap();
        s = lit_step::apply_write(&s, comp, t, x, Val::Int(i as i64), i % 2 == 0, w);
        let c = *lit_step::read_choices(&s, comp, u, x).last().unwrap();
        s = lit_step::apply_read(&s, comp, u, x, true, c);
    }
    s
}

fn bench(c: &mut Criterion) {
    if !criterion::selected("engine") {
        return;
    }
    // Cross-validate before timing: same observable value sequence.
    let f = fast_script();
    let l = lit_script();
    for loc in [Loc(0), Loc(1)] {
        let fv: Vec<Val> =
            f.client().mo(loc).iter().map(|&w| f.client().op(w).act.wrval()).collect();
        let mut lops: Vec<_> =
            l.client.ops.iter().filter(|(a, _)| a.loc() == loc).copied().collect();
        lops.sort_by_key(|a| a.1);
        let lv: Vec<Val> = lops.iter().map(|w| w.0.wrval()).collect();
        assert_eq!(fv, lv, "engines diverged on the ablation script");
    }
    eprintln!("[ablate_engine] engines agree on the {N_STEPS}-step script ✓");

    let mut g = c.benchmark_group("engine");
    g.bench_function("fast_script", |b| b.iter(fast_script));
    g.bench_function("literal_script", |b| b.iter(lit_script));
    g.bench_function("fast_script_plus_canonicalise", |b| {
        b.iter(|| fast_script().canonical())
    });
    g.finish();
}

/// The exploration-engine axis: sequential reference vs the batched
/// parallel engine (via `choose_engine`) over a three-thread ticket-lock
/// client, with identical-state-count assertions on every iteration.
fn bench_exploration(c: &mut Criterion) {
    if !criterion::selected("exploration_engine") {
        return;
    }
    let (client, l) = harness::counter_client(3);
    let conc = instantiate(&client, l, &rc11_locks::ticket());
    let prog = compile(&conc);
    let opts = ExploreOptions { record_traces: false, ..Default::default() };
    let seq = Engine::Sequential.explore(&prog, &NoObjects, &opts);
    eprintln!(
        "[ablate_engine] exploration reference: {} states, {} transitions",
        seq.states, seq.transitions
    );

    let mut g = c.benchmark_group("exploration_engine");
    g.sample_size(10);
    g.bench_function("sequential", |b| {
        b.iter(|| {
            let r = Engine::Sequential.explore(&prog, &NoObjects, &opts);
            assert_eq!(r.states, seq.states);
        })
    });
    for workers in [2usize, 4] {
        let engine = choose_engine(workers);
        g.bench_with_input(BenchmarkId::new("parallel", workers), &engine, |b, engine| {
            b.iter(|| {
                let r = engine.explore(&prog, &NoObjects, &opts);
                assert_eq!(r.states, seq.states);
            })
        });
    }
    g.finish();
}

/// Ablation A4: per-successor deduplication cost. Collect real raw
/// successor configurations from a ticket-lock exploration, then compare
/// what the visited structures pay per successor:
///
/// * `canonicalise_and_clone` — the old cost: materialise the canonical
///   form (rebuilding every op record, `mo` vector and view) and clone it
///   as the map key;
/// * `fingerprint_only` — the new duplicate-hit fast path: one
///   zero-rebuild hash walk;
/// * `fingerprint_plus_confirm` — the full new duplicate path including
///   the collision-bucket `canonical_eq` confirmation walk against the
///   interned representative.
///
/// The acceptance bar (checked here, not just plotted): fingerprinting is
/// strictly faster per successor than materialised canonicalisation.
fn bench_canon_vs_fingerprint(c: &mut Criterion) {
    if !criterion::selected("canon_vs_fingerprint") {
        return;
    }
    let (client, l) = harness::counter_client(3);
    let conc = instantiate(&client, l, &rc11_locks::ticket());
    let prog = compile(&conc);

    // Breadth-first sweep collecting raw (non-canonical) successors — the
    // exact objects the engines' visited structures are probed with.
    let mut raw_succs: Vec<Config> = Vec::new();
    let mut seen: FxHashSet<Config> = FxHashSet::default();
    let init = Config::initial(&prog).canonical();
    seen.insert(init.clone());
    let mut frontier = vec![init];
    while let Some(cfg) = frontier.pop() {
        if raw_succs.len() >= 1_500 {
            break;
        }
        for (_, succ) in successors(&prog, &NoObjects, &cfg, StepOptions::default()) {
            let canon = succ.canonical();
            raw_succs.push(succ);
            if seen.insert(canon.clone()) {
                frontier.push(canon);
            }
        }
    }
    // The interned representatives the confirmation walk compares against.
    let interned: Vec<Config> = raw_succs.iter().map(|s| s.canonical()).collect();
    eprintln!("[canon_vs_fingerprint] measuring over {} real successors", raw_succs.len());

    // Each per-successor workload is defined once and measured twice: by
    // the criterion group (plotted lines) and by the best-of-5 sweep below
    // (the BENCH_explore.json headline numbers) — so the two can't drift.
    let canon_workload = || {
        for s in &raw_succs {
            let canon = black_box(s).canonical();
            black_box(canon.clone());
        }
    };
    let fp_workload = || {
        for s in &raw_succs {
            black_box(black_box(s).canonical_fingerprint());
        }
    };
    let confirm_workload = || {
        for (s, canon) in raw_succs.iter().zip(&interned) {
            let perms = s.canonical_perms();
            black_box(s.fingerprint_with(&perms));
            assert!(s.canonical_eq_with(&perms, black_box(canon)));
        }
    };

    let mut g = c.benchmark_group("canon_vs_fingerprint");
    g.throughput(criterion::Throughput::Elements(raw_succs.len() as u64));
    g.bench_function("canonicalise_and_clone", |b| b.iter(canon_workload));
    g.bench_function("fingerprint_only", |b| b.iter(fp_workload));
    g.bench_function("fingerprint_plus_confirm", |b| b.iter(confirm_workload));
    g.finish();

    // Headline numbers for the perf trajectory: best-of-5 wall clock over
    // the whole successor set, reduced to ns per successor.
    let best_ns_per_succ = |f: &dyn Fn()| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let t0 = Instant::now();
            f();
            best = best.min(t0.elapsed().as_nanos() as f64 / raw_succs.len() as f64);
        }
        best
    };
    let canon_ns = best_ns_per_succ(&canon_workload);
    let fp_ns = best_ns_per_succ(&fp_workload);
    let confirm_ns = best_ns_per_succ(&confirm_workload);
    eprintln!(
        "[canon_vs_fingerprint] canonicalise+clone {canon_ns:.0} ns/succ, \
         fingerprint {fp_ns:.0} ns/succ ({:.2}x), fingerprint+confirm {confirm_ns:.0} ns/succ",
        canon_ns / fp_ns
    );
    // End to end: the same sequential exploration with fingerprint dedup
    // on (default) and off (legacy materialised-canonical keys).
    let explore_secs = |fingerprint: bool| -> (f64, usize) {
        let opts =
            ExploreOptions { record_traces: false, fingerprint, ..Default::default() };
        let mut best = f64::INFINITY;
        let mut states = 0;
        for _ in 0..3 {
            let t0 = Instant::now();
            let r = Engine::Sequential.explore(&prog, &NoObjects, &opts);
            best = best.min(t0.elapsed().as_secs_f64());
            states = r.states;
        }
        (best, states)
    };
    let (on, on_states) = explore_secs(true);
    let (off, off_states) = explore_secs(false);
    assert_eq!(on_states, off_states, "dedup mode must not change the state count");
    eprintln!(
        "[canon_vs_fingerprint] full exploration: fingerprint on {:.1} ms, off {:.1} ms ({:.2}x)",
        on * 1e3,
        off * 1e3,
        off / on
    );
    bench::record_bench_json(
        "canon_vs_fingerprint",
        &[
            ("canonicalise_and_clone_ns_per_succ", canon_ns),
            ("fingerprint_only_ns_per_succ", fp_ns),
            ("fingerprint_plus_confirm_ns_per_succ", confirm_ns),
            ("speedup_fingerprint_vs_canonical", canon_ns / fp_ns),
            ("explore_fp_on_ms", on * 1e3),
            ("explore_fp_off_ms", off * 1e3),
            ("explore_speedup_fp_on_vs_off", off / on),
        ],
    );
    assert!(
        fp_ns < canon_ns,
        "fingerprinting ({fp_ns:.0} ns/succ) must beat materialised \
         canonicalisation ({canon_ns:.0} ns/succ)"
    );
}

/// Ablation A5: sleep-set partial-order reduction. For each entry the
/// same exploration is decided with `ExploreOptions::por` off and on; POR
/// must preserve the state count bit-exactly (it prunes commuted sibling
/// orders, not states) while generating fewer transitions. The headline
/// metric is the *transition reduction factor* (full / reduced), recorded
/// into `BENCH_explore.json`; the acceptance bar — checked here, not just
/// plotted — is ≥ 1.5× on the spinlock (`ttas4`) and MP-spin (`mp_spin4`)
/// corpus entries, the diamond-dense shapes sleep sets prune hardest. The
/// smaller two-thread corpus twins ride along as report-only context, as
/// does the ticket-lock client the other ablations measure.
fn bench_por(c: &mut Criterion) {
    if !criterion::selected("por_reduction") {
        return;
    }
    let corpus = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../corpus");
    // (json key, corpus file, must hit the ≥1.5× acceptance bar)
    let corpus_entries: [(&str, &str, bool); 4] = [
        ("spinlock_ttas4", "ttas4.litmus", true),
        ("mp_spin4", "mp_spin4.litmus", true),
        ("caslock", "caslock.litmus", false),
        ("mp_spin_ra", "mp_spin_ra.litmus", false),
    ];
    let mut progs: Vec<(&str, bool, rc11_lang::CfgProgram, bool)> = corpus_entries
        .iter()
        .map(|&(key, file, must)| {
            let l = rc11_litmus::load_file(corpus.join(file))
                .unwrap_or_else(|e| panic!("{file}: {e}"));
            let uses_objects = !l.prog.objects.is_empty();
            (key, must, compile(&l.prog), uses_objects)
        })
        .collect();
    let (client, l) = harness::counter_client(3);
    let conc = instantiate(&client, l, &rc11_locks::ticket());
    progs.push(("ticket_counter3", false, compile(&conc), false));

    let base = ExploreOptions { record_traces: false, ..Default::default() };
    let por_opts = ExploreOptions { por: true, ..base.clone() };
    let mut json: Vec<(String, f64)> = Vec::new();
    let mut bench_progs = Vec::new();
    for (key, must_reduce, prog, uses_objects) in progs {
        let objs: &(dyn rc11_lang::machine::ObjectSemantics + Sync) =
            if uses_objects { &AbstractObjects } else { &NoObjects };
        let full = Engine::Sequential.explore(&prog, objs, &base);
        let por = Engine::Sequential.explore(&prog, objs, &por_opts);
        assert_eq!(por.states, full.states, "{key}: POR must not change the state count");
        assert_eq!(
            por.terminated.len(),
            full.terminated.len(),
            "{key}: POR must not change the terminal count"
        );
        assert!(por.transitions <= full.transitions, "{key}: POR must not add transitions");
        let factor = full.transitions as f64 / por.transitions.max(1) as f64;
        eprintln!(
            "[por_reduction] {key}: {} states, {} → {} transitions ({factor:.2}x)",
            full.states, full.transitions, por.transitions
        );
        if must_reduce {
            assert!(
                factor >= 1.5,
                "{key}: POR reduction {factor:.2}x below the 1.5x acceptance bar \
                 ({} vs {} transitions)",
                por.transitions,
                full.transitions
            );
        }
        json.push((format!("{key}_transitions_full"), full.transitions as f64));
        json.push((format!("{key}_transitions_por"), por.transitions as f64));
        json.push((format!("{key}_reduction"), factor));
        bench_progs.push((key, prog, uses_objects));
    }

    // Wall-clock lines for the spinlock entry: the reduction must also be
    // a real time win, not just a transition count.
    let mut g = c.benchmark_group("por_reduction");
    g.sample_size(10);
    for (key, prog, uses_objects) in &bench_progs {
        if *key != "spinlock_ttas4" && *key != "ticket_counter3" {
            continue;
        }
        let objs: &(dyn rc11_lang::machine::ObjectSemantics + Sync) =
            if *uses_objects { &AbstractObjects } else { &NoObjects };
        for (mode, opts) in [("full", base.clone()), ("por", por_opts.clone())] {
            g.bench_function(format!("{key}/{mode}"), |b| {
                b.iter(|| black_box(Engine::Sequential.explore(prog, objs, &opts).states))
            });
        }
    }
    g.finish();

    let borrowed: Vec<(&str, f64)> = json.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    bench::record_bench_json("por_reduction", &borrowed);
}

/// Ablation A6: thread-symmetry reduction. Each entry is decided with
/// `ExploreOptions::symmetry` off and on; the reduction collapses every
/// orbit of thread-permuted states to one representative, so the headline
/// metric is the *state reduction factor* (full / symmetric states),
/// recorded into `BENCH_explore.json`. The acceptance bar — checked here,
/// not just plotted — is ≥ 3× on the fully symmetric corpus entries
/// (`sym_cas3`, `sym_inc3`, `sym_fai4`). Orbit expansion must keep the
/// terminal count bit-identical, which every iteration asserts. The
/// gallery's two-thread `2RMW` rides along as report-only context.
fn bench_symmetry(c: &mut Criterion) {
    if !criterion::selected("symmetry_reduction") {
        return;
    }
    let corpus = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../corpus");
    // (json key, corpus file, must hit the ≥3x acceptance bar)
    let corpus_entries: [(&str, &str, bool); 4] = [
        ("sym_cas3", "sym_cas3.litmus", true),
        ("sym_inc3", "sym_inc3.litmus", true),
        ("sym_fai4", "sym_fai4.litmus", true),
        ("two_rmw", "2rmw.litmus", false),
    ];
    let progs: Vec<(&str, bool, rc11_lang::CfgProgram)> = corpus_entries
        .iter()
        .map(|&(key, file, must)| {
            let l = rc11_litmus::load_file(corpus.join(file))
                .unwrap_or_else(|e| panic!("{file}: {e}"));
            (key, must, compile(&l.prog))
        })
        .collect();

    let base = ExploreOptions { record_traces: false, ..Default::default() };
    let sym_opts = ExploreOptions { symmetry: true, ..base.clone() };
    let mut json: Vec<(String, f64)> = Vec::new();
    for (key, must_reduce, prog) in &progs {
        let full = Engine::Sequential.explore(prog, &NoObjects, &base);
        let sym = Engine::Sequential.explore(prog, &NoObjects, &sym_opts);
        assert!(sym.states <= full.states, "{key}: symmetry must not add states");
        assert_eq!(
            sym.terminated.len(),
            full.terminated.len(),
            "{key}: orbit expansion must restore the terminal count"
        );
        let factor = full.states as f64 / sym.states.max(1) as f64;
        eprintln!(
            "[symmetry_reduction] {key}: {} → {} states ({factor:.2}x), {} terminals",
            full.states,
            sym.states,
            full.terminated.len()
        );
        if *must_reduce {
            assert!(
                factor >= 3.0,
                "{key}: symmetry reduction {factor:.2}x below the 3x acceptance bar \
                 ({} vs {} states)",
                sym.states,
                full.states
            );
        }
        json.push((format!("{key}_states_full"), full.states as f64));
        json.push((format!("{key}_states_sym"), sym.states as f64));
        json.push((format!("{key}_reduction"), factor));
    }

    // Wall-clock lines for the widest orbit (4! = 24 on sym_fai4) — plotted
    // context only: on entries this small the orbit bookkeeping dominates,
    // so the acceptance bar is the state count, not the time.
    let mut g = c.benchmark_group("symmetry_reduction");
    g.sample_size(10);
    for (key, _, prog) in &progs {
        if *key != "sym_fai4" {
            continue;
        }
        for (mode, opts) in [("full", base.clone()), ("sym", sym_opts.clone())] {
            g.bench_function(format!("{key}/{mode}"), |b| {
                b.iter(|| black_box(Engine::Sequential.explore(prog, &NoObjects, &opts).states))
            });
        }
    }
    g.finish();

    let borrowed: Vec<(&str, f64)> = json.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    bench::record_bench_json("symmetry_reduction", &borrowed);
}

/// Ablation A7: persistent-set DPOR on top of sleep sets. Each entry is
/// decided with sleep sets only (`ExploreOptions::por`) and with the
/// persistent-set layer added (`ExploreOptions::dpor`); persistent sets
/// postpone whole threads, collapsing the state-space *product* of
/// independent conflict components into a sum, so the headline metric is
/// the *transition reduction factor* versus the sleep-set baseline
/// (sleep / dpor transitions), recorded into `BENCH_explore.json`. The
/// acceptance bar — checked here, not just plotted — is ≥ 5× on the
/// multi-component corpus entries (`ttas2x2`, `mp_spin2x3`,
/// `deqspin2x2`). Every iteration asserts the A7 exactness contract:
/// terminal counts bit-identical, states and transitions never grow. The
/// single-component `ticket2` (pc-sensitivity only, factor 1×) and the
/// stack pipe `popspin2x2` ride along as report-only context, as does
/// `mp_spin4` from the A5 group.
fn bench_dpor(c: &mut Criterion) {
    if !criterion::selected("dpor_reduction") {
        return;
    }
    let corpus = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../corpus");
    // (json key, corpus file, must hit the ≥5x acceptance bar)
    let corpus_entries: [(&str, &str, bool); 6] = [
        ("ttas2x2", "ttas2x2.litmus", true),
        ("mp_spin2x3", "mp_spin2x3.litmus", true),
        ("deqspin2x2", "deqspin2x2.litmus", true),
        ("popspin2x2", "popspin2x2.litmus", false),
        ("ticket2", "ticket2.litmus", false),
        ("mp_spin4", "mp_spin4.litmus", false),
    ];
    let progs: Vec<(&str, bool, rc11_lang::CfgProgram, bool)> = corpus_entries
        .iter()
        .map(|&(key, file, must)| {
            let l = rc11_litmus::load_file(corpus.join(file))
                .unwrap_or_else(|e| panic!("{file}: {e}"));
            let uses_objects = !l.prog.objects.is_empty();
            (key, must, compile(&l.prog), uses_objects)
        })
        .collect();

    let base = ExploreOptions { record_traces: false, ..Default::default() };
    let sleep_opts = ExploreOptions { por: true, ..base.clone() };
    let dpor_opts = ExploreOptions { dpor: true, ..base.clone() };
    let mut json: Vec<(String, f64)> = Vec::new();
    for (key, must_reduce, prog, uses_objects) in &progs {
        let objs: &(dyn rc11_lang::machine::ObjectSemantics + Sync) =
            if *uses_objects { &AbstractObjects } else { &NoObjects };
        let sleep = Engine::Sequential.explore(prog, objs, &sleep_opts);
        let dpor = Engine::Sequential.explore(prog, objs, &dpor_opts);
        assert!(dpor.states <= sleep.states, "{key}: DPOR must not add states");
        assert!(
            dpor.transitions <= sleep.transitions,
            "{key}: DPOR must not add transitions"
        );
        assert_eq!(
            dpor.terminated.len(),
            sleep.terminated.len(),
            "{key}: DPOR must not change the terminal count"
        );
        let factor = sleep.transitions as f64 / dpor.transitions.max(1) as f64;
        eprintln!(
            "[dpor_reduction] {key}: {} → {} states, {} → {} transitions ({factor:.2}x)",
            sleep.states, dpor.states, sleep.transitions, dpor.transitions
        );
        if *must_reduce {
            assert!(
                factor >= 5.0,
                "{key}: DPOR reduction {factor:.2}x below the 5x acceptance bar \
                 ({} vs {} transitions)",
                dpor.transitions,
                sleep.transitions
            );
        }
        json.push((format!("{key}_transitions_sleep"), sleep.transitions as f64));
        json.push((format!("{key}_transitions_dpor"), dpor.transitions as f64));
        json.push((format!("{key}_states_sleep"), sleep.states as f64));
        json.push((format!("{key}_states_dpor"), dpor.states as f64));
        json.push((format!("{key}_reduction"), factor));
    }

    // Wall-clock lines for the largest entry: the product→sum collapse
    // must also be a real time win, not just a transition count.
    let mut g = c.benchmark_group("dpor_reduction");
    g.sample_size(10);
    for (key, _, prog, uses_objects) in &progs {
        if *key != "ttas2x2" {
            continue;
        }
        let objs: &(dyn rc11_lang::machine::ObjectSemantics + Sync) =
            if *uses_objects { &AbstractObjects } else { &NoObjects };
        for (mode, opts) in [("sleep", sleep_opts.clone()), ("dpor", dpor_opts.clone())] {
            g.bench_function(format!("{key}/{mode}"), |b| {
                b.iter(|| black_box(Engine::Sequential.explore(prog, objs, &opts).states))
            });
        }
    }
    g.finish();

    let borrowed: Vec<(&str, f64)> = json.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    bench::record_bench_json("dpor_reduction", &borrowed);
}

/// The telemetry tax (DESIGN.md §9). The same ticket-lock exploration is
/// decided with no sink on `ExploreOptions::telemetry` (the default — one
/// `Option` test per instrumentation point) and with a live sink attached
/// (sharded relaxed counters + frontier gauge + phase timer). The two
/// configurations are measured *interleaved* (round-robin, best-of-N each)
/// so drift in the container's background load cannot masquerade as
/// overhead, and the headline states/s pair plus their ratio is recorded
/// into `BENCH_explore.json`. The acceptance bar — checked here, not just
/// plotted — is that an attached sink keeps ≥ 0.75× of the disabled-path
/// throughput; every iteration also asserts bit-identical state counts and
/// that the attached snapshot's `states` counter agrees with the report.
fn bench_telemetry_overhead(c: &mut Criterion) {
    if !criterion::selected("telemetry_overhead") {
        return;
    }
    let (client, l) = harness::counter_client(3);
    let conc = instantiate(&client, l, &rc11_locks::ticket());
    let prog = compile(&conc);
    let off_opts = ExploreOptions { record_traces: false, ..Default::default() };
    let reference = Engine::Sequential.explore(&prog, &NoObjects, &off_opts);
    eprintln!(
        "[telemetry_overhead] reference: {} states, {} transitions",
        reference.states, reference.transitions
    );

    let run = |opts: &ExploreOptions| -> f64 {
        let t0 = Instant::now();
        let r = Engine::Sequential.explore(&prog, &NoObjects, opts);
        let secs = t0.elapsed().as_secs_f64();
        assert_eq!(r.states, reference.states, "telemetry changed the state count");
        if let Some(snap) = &r.telemetry {
            assert_eq!(
                snap.get(rc11::telemetry::Counter::States),
                r.states as u64,
                "snapshot disagrees with the report it rides on"
            );
        }
        r.states as f64 / secs
    };

    // Interleaved best-of-N: a fresh sink per enabled round, alternating
    // with disabled rounds so background-load drift hits both equally.
    const ROUNDS: usize = 7;
    let (mut off_best, mut on_best) = (0.0f64, 0.0f64);
    for _ in 0..ROUNDS {
        off_best = off_best.max(run(&off_opts));
        let on_opts = ExploreOptions {
            telemetry: Some(rc11::telemetry::Telemetry::shared()),
            ..off_opts.clone()
        };
        on_best = on_best.max(run(&on_opts));
    }
    let ratio = on_best / off_best;
    eprintln!(
        "[telemetry_overhead] disabled {off_best:.0} states/s, \
         enabled {on_best:.0} states/s ({ratio:.3}x)"
    );
    bench::record_bench_json(
        "telemetry_overhead",
        &[
            ("disabled_states_per_sec", off_best),
            ("enabled_states_per_sec", on_best),
            ("enabled_over_disabled", ratio),
        ],
    );
    assert!(
        ratio >= 0.75,
        "an attached telemetry sink costs too much: {on_best:.0} vs {off_best:.0} states/s \
         ({ratio:.3}x, bar 0.75x)"
    );

    // Plotted lines: the same pair under criterion, sequential and at two
    // workers (the parallel engine shares the instrumentation points).
    let mut g = c.benchmark_group("telemetry_overhead");
    g.sample_size(10);
    for (mode, sink) in [("disabled", false), ("enabled", true)] {
        for workers in [1usize, 2] {
            let engine = choose_engine(workers);
            g.bench_function(format!("{mode}/{workers}w"), |b| {
                b.iter(|| {
                    let opts = ExploreOptions {
                        telemetry: sink.then(rc11::telemetry::Telemetry::shared),
                        ..off_opts.clone()
                    };
                    let r = engine.explore(&prog, &NoObjects, &opts);
                    assert_eq!(r.states, reference.states);
                    black_box(r.states)
                })
            });
        }
    }
    g.finish();
}

criterion_group!(
    benches,
    bench,
    bench_exploration,
    bench_canon_vs_fingerprint,
    bench_por,
    bench_symmetry,
    bench_dpor,
    bench_telemetry_overhead
);
criterion_main!(benches);
