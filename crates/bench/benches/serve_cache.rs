//! rc11d serving-layer ablation: what a verdict-cache hit saves.
//!
//! The daemon's value proposition (DESIGN.md §8) is that a resubmitted
//! program — or any renaming/reordering of one — costs a canonicalise +
//! fingerprint + probe instead of a full exploration. This bench pins
//! that claim on the real corpus through the same `CheckService` request
//! path `rc11 run`, `rc11 fuzz`, and `rc11 serve` share: a cold pass
//! explores every file, a warm pass must be served entirely from the
//! in-memory cache, and the per-file warm cost must beat the cold cost
//! by a wide margin (asserted ≥10×; measured ~3 orders of magnitude).
//! Headline numbers land in `BENCH_explore.json` under `serve_cache`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rc11_check::{CheckParams, CheckService, Served, VerdictCache};
use rc11_litmus::{load_dir, Litmus};
use std::path::PathBuf;
use std::time::Instant;

fn corpus() -> Vec<Litmus> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../corpus");
    load_dir(&dir)
        .expect("corpus dir readable")
        .into_iter()
        .map(|(path, r)| r.unwrap_or_else(|e| panic!("{}: {e}", path.display())))
        .collect()
}

fn check_all(service: &CheckService, files: &[Litmus], params: &CheckParams) -> Vec<Served> {
    files
        .iter()
        .map(|l| {
            black_box(
                service
                    .check_parts(&l.name, &l.prog, &l.observe, &l.expected, params)
                    .served,
            )
        })
        .collect()
}

fn bench_serve_cache(c: &mut Criterion) {
    if !criterion::selected("serve_cache") {
        return;
    }
    let files = corpus();
    let params = CheckParams::default();
    eprintln!("[serve_cache] corpus: {} files", files.len());

    // Cold cost: a fresh service per pass, so every file explores.
    // Best-of-3 (each pass is a full corpus exploration — seconds, not
    // microseconds — so criterion's inner loop would be excessive here).
    let mut cold_ns = f64::INFINITY;
    for _ in 0..3 {
        let service = CheckService::with_cache(VerdictCache::new(4096));
        let t0 = Instant::now();
        let served = check_all(&service, &files, &params);
        cold_ns = cold_ns.min(t0.elapsed().as_nanos() as f64 / files.len() as f64);
        assert!(
            served.iter().all(|s| *s == Served::Explored),
            "a fresh service must explore every file"
        );
    }

    // Warm cost: one populated service; every resubmission must be a
    // memory hit (exploring even once would invalidate the comparison).
    let service = CheckService::with_cache(VerdictCache::new(4096));
    check_all(&service, &files, &params);
    let warm_served = check_all(&service, &files, &params);
    assert!(
        warm_served.iter().all(|s| *s == Served::MemCache),
        "a warm resubmission must be served from memory"
    );

    let mut g = c.benchmark_group("serve_cache");
    g.throughput(criterion::Throughput::Elements(files.len() as u64));
    g.bench_function("warm_probe_full_corpus", |b| {
        b.iter(|| check_all(&service, &files, &params))
    });
    g.finish();

    let mut warm_ns = f64::INFINITY;
    for _ in 0..5 {
        let t0 = Instant::now();
        check_all(&service, &files, &params);
        warm_ns = warm_ns.min(t0.elapsed().as_nanos() as f64 / files.len() as f64);
    }

    let speedup = cold_ns / warm_ns;
    eprintln!(
        "[serve_cache] cold explore {:.1} µs/file, warm probe {:.2} µs/file, {speedup:.0}x",
        cold_ns / 1e3,
        warm_ns / 1e3
    );
    assert!(
        speedup >= 10.0,
        "a cache hit must beat exploration by ≥10x (got {speedup:.1}x)"
    );
    bench::record_bench_json(
        "serve_cache",
        &[
            ("cold_explore_us_per_file", cold_ns / 1e3),
            ("warm_probe_us_per_file", warm_ns / 1e3),
            ("hit_speedup", speedup),
        ],
    );
}

criterion_group!(benches, bench_serve_cache);
criterion_main!(benches);
