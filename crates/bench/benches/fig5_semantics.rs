//! Experiment E5 (Figures 4–5): the program/memory semantics, pinned by the
//! litmus gallery, plus a transition-throughput microbench of the memory
//! rules themselves.
//!
//! Expected shape: every litmus verdict exact (soundness *and*
//! completeness against RC11 RAR); individual transitions in the
//! microsecond range.

use criterion::{criterion_group, criterion_main, Criterion};
use rc11_core::{Combined, Comp, InitLoc, Loc, Tid, Val};

fn run_gallery() -> usize {
    let mut states = 0;
    for l in rc11_litmus::all() {
        let res = rc11_litmus::run(&l);
        assert!(res.pass, "{}: verdict mismatch", l.name);
        states += res.states;
    }
    states
}

fn transition_microbench(n: usize) -> Combined {
    // A write/read churn over two variables and two threads.
    let mut s = Combined::new(
        &[InitLoc::Var(Val::Int(0)), InitLoc::Var(Val::Int(0))],
        &[],
        2,
    );
    for i in 0..n {
        let t = Tid((i % 2) as u8);
        let u = Tid(((i + 1) % 2) as u8);
        let x = Loc((i % 2) as u16);
        let w = *s.write_preds(Comp::Client, t, x).last().unwrap();
        s = s.apply_write(Comp::Client, t, x, Val::Int(i as i64), i % 3 == 0, w);
        let c = s.read_choices(Comp::Client, u, x).last().unwrap().from;
        s = s.apply_read(Comp::Client, u, x, i % 2 == 0, c);
    }
    s
}

fn bench(c: &mut Criterion) {
    let total = run_gallery();
    eprintln!(
        "[fig5] all {} litmus verdicts exact over {total} total states",
        rc11_litmus::all().len()
    );

    let mut g = c.benchmark_group("fig5");
    g.bench_function("litmus_gallery_exhaustive", |b| b.iter(run_gallery));
    g.bench_function("memory_transitions_x100", |b| b.iter(|| transition_microbench(100)));
    g.bench_function("canonicalise_after_40_ops", |b| {
        let s = transition_microbench(20);
        b.iter(|| s.canonical())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
