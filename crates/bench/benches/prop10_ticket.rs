//! Experiment E9 (Proposition 10): the ticket lock forward-simulates the
//! abstract lock.
//!
//! Same harness as prop9; the interesting comparison is the relative cost
//! (the ticket lock's FAI yields a smaller concrete space than the
//! seqlock's CAS retry loop). Includes the extension locks (TAS/TTAS) and
//! the broken locks as timed refutations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rc11::prelude::*;
use rc11_refine::{check_forward_simulation, harness, ClientShape, SimOptions};

fn simulate(client: &Program, l: ObjRef, imp: &rc11_lang::ObjectImpl) -> rc11_refine::SimReport {
    let shape = ClientShape::of(client);
    let conc = instantiate(client, l, imp);
    check_forward_simulation(
        &compile(client),
        &AbstractObjects,
        &compile(&conc),
        &NoObjects,
        &shape,
        SimOptions::default(),
    )
}

fn bench(c: &mut Criterion) {
    let (client, l) = harness::fig7_client();

    let mut g = c.benchmark_group("prop10_ticket");
    for imp in [rc11_locks::ticket(), rc11_locks::tas(), rc11_locks::ttas()] {
        let report = simulate(&client, l, &imp);
        assert!(report.holds, "{} must simulate the abstract lock", imp.name);
        eprintln!(
            "[prop10] {}: HOLDS — {} concrete × {} abstract states",
            imp.name, report.concrete_states, report.abstract_states
        );
        g.bench_with_input(BenchmarkId::from_parameter(imp.name), &imp, |b, imp| {
            b.iter(|| {
                let r = simulate(&client, l, imp);
                assert!(r.holds);
                r.concrete_states
            })
        });
    }
    // Refutation cost (negative controls).
    for imp in [rc11_locks::broken_relaxed_seqlock(), rc11_locks::broken_noop_lock()] {
        let report = simulate(&client, l, &imp);
        assert!(!report.holds, "{} must be refuted", imp.name);
        eprintln!(
            "[prop10] {}: REFUTED with a {}-point counterexample",
            imp.name,
            report.counterexample.as_ref().map_or(0, |c| c.len())
        );
        g.bench_with_input(
            BenchmarkId::new("refute", imp.name),
            &imp,
            |b, imp| {
                b.iter(|| {
                    let r = simulate(&client, l, imp);
                    assert!(!r.holds);
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
