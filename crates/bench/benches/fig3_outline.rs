//! Experiment E3 (Figure 3): the message-passing proof outline.
//!
//! Regenerates "the proof outline in Figure 3 is valid" by checking every
//! annotation at every reachable configuration, and times the check.
//! Expected shape: valid on Figure 2's program, violated on Figure 1's.

use criterion::{criterion_group, criterion_main, Criterion};
use rc11::figures;
use rc11::prelude::*;

fn check_fig3() -> (usize, usize) {
    let f = figures::fig2();
    let outline = figures::fig3_outline(&f);
    let prog = compile(&f.prog);
    let report = check_outline(&prog, &AbstractObjects, &outline, &ExploreOptions::default());
    assert!(report.valid(), "Figure 3 outline must be valid");
    (report.states, report.checks)
}

fn bench(c: &mut Criterion) {
    let (states, checks) = check_fig3();
    eprintln!("[fig3] outline VALID: {checks} assertion checks over {states} states");

    // Negative control timing: the same outline on the relaxed program.
    let f1 = figures::fig1();
    let o1 = figures::fig3_outline(&f1);
    let p1 = compile(&f1.prog);
    let bad = check_outline(&p1, &AbstractObjects, &o1, &ExploreOptions::default());
    assert!(!bad.violations.is_empty());
    eprintln!("[fig3] negative control (Figure 1 program): {} violations", bad.violations.len());

    let mut g = c.benchmark_group("fig3");
    g.bench_function("check_outline_valid", |b| b.iter(check_fig3));
    g.bench_function("check_outline_invalid", |b| {
        b.iter(|| check_outline(&p1, &AbstractObjects, &o1, &ExploreOptions::default()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
