//! Shared helpers for the benchmark binaries (see `benches/`).
//!
//! [`record_bench_json`] maintains `BENCH_explore.json` at the workspace
//! root — the start of the exploration-performance trajectory: each bench
//! binary merges its section of headline numbers (ns/successor, states/s)
//! into the file, so successive PRs can diff the trajectory instead of
//! re-reading bench logs. The format is deliberately tiny (two levels,
//! float leaves) and both written and parsed here, with no external JSON
//! dependency — the workspace builds offline.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// The perf-trajectory file, at the workspace root.
pub fn bench_json_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_explore.json")
}

/// Parse the two-level `{ "section": { "key": number } }` shape emitted by
/// [`render`]. Tolerant of whitespace and trailing commas; anything else
/// (including a malformed hand edit) yields an empty map, and the next
/// write starts the file fresh.
pub fn parse(text: &str) -> BTreeMap<String, BTreeMap<String, f64>> {
    let mut out: BTreeMap<String, BTreeMap<String, f64>> = BTreeMap::new();
    let mut section: Option<String> = None;
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        if let Some(rest) = line.strip_prefix('"') {
            let Some((name, tail)) = rest.split_once('"') else { continue };
            let tail = tail.trim_start_matches(':').trim();
            if tail == "{" {
                section = Some(name.to_string());
                out.entry(name.to_string()).or_default();
            } else if let (Some(sec), Ok(v)) = (&section, tail.parse::<f64>()) {
                out.entry(sec.clone()).or_default().insert(name.to_string(), v);
            }
        } else if line == "}" {
            section = None;
        }
    }
    out
}

/// Render the two-level map as deterministic, diff-friendly JSON.
pub fn render(data: &BTreeMap<String, BTreeMap<String, f64>>) -> String {
    let mut s = String::from("{\n");
    let mut first_sec = true;
    for (sec, entries) in data {
        if !first_sec {
            s.push_str(",\n");
        }
        first_sec = false;
        s.push_str(&format!("  \"{sec}\": {{\n"));
        let mut first = true;
        for (k, v) in entries {
            if !first {
                s.push_str(",\n");
            }
            first = false;
            s.push_str(&format!("    \"{k}\": {v:.2}"));
        }
        s.push_str("\n  }");
    }
    s.push_str("\n}\n");
    s
}

/// Merge `entries` into `section` of `BENCH_explore.json` (read-modify-
/// write; other sections are preserved). Failures to write are reported,
/// not fatal — a read-only checkout must not fail the bench run.
pub fn record_bench_json(section: &str, entries: &[(&str, f64)]) {
    let path = bench_json_path();
    let mut data = std::fs::read_to_string(&path).map(|t| parse(&t)).unwrap_or_default();
    let sec = data.entry(section.to_string()).or_default();
    for (k, v) in entries {
        sec.insert((*k).to_string(), *v);
    }
    let text = render(&data);
    match std::fs::write(&path, &text) {
        Ok(()) => eprintln!(
            "[bench] recorded {} entries under \"{section}\" in {}",
            entries.len(),
            path.display()
        ),
        Err(e) => eprintln!("[bench] could not write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BTreeMap<String, BTreeMap<String, f64>> {
        let mut m: BTreeMap<String, BTreeMap<String, f64>> = BTreeMap::new();
        m.entry("alpha".into()).or_default().insert("x_ns".into(), 12.5);
        m.entry("alpha".into()).or_default().insert("y_ns".into(), 3.0);
        m.entry("beta".into()).or_default().insert("states_per_sec".into(), 123456.0);
        m
    }

    #[test]
    fn render_parse_round_trips() {
        let m = sample();
        assert_eq!(parse(&render(&m)), m);
    }

    #[test]
    fn parse_tolerates_garbage() {
        assert!(parse("not json at all").is_empty());
        assert!(parse("").is_empty());
    }

    #[test]
    fn merge_preserves_other_sections() {
        let mut m = sample();
        // Simulate record_bench_json's merge step on parsed content.
        let reparsed = parse(&render(&m));
        m.entry("beta".into()).or_default().insert("new".into(), 1.0);
        assert_eq!(reparsed.get("alpha"), m.get("alpha"));
        assert!(m["beta"].contains_key("new") && !reparsed["beta"].contains_key("new"));
    }
}
