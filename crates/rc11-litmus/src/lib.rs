//! # rc11-litmus — litmus tests with expected RC11 RAR verdicts
//!
//! A gallery of classic weak-memory litmus tests (plus the paper's
//! message-passing figures as litmus entries), each with the **exact** set
//! of final-register outcomes RC11 RAR admits. The runner explores
//! exhaustively and compares observed outcomes against the expectation —
//! both directions: an unexpected outcome is a soundness bug in the
//! semantics, a missing outcome is a completeness bug. Together these pin
//! the executable semantics to the model (experiment E5).
//!
//! Verdicts are engine-parametric: [`run_with`] takes any
//! [`rc11_check::Engine`], so the whole gallery runs under the parallel
//! engine too (and the differential suite compares the engines verdict by
//! verdict); [`run`] is the sequential-reference shorthand.
//!
//! Beyond the built-in gallery, litmus tests are **data**: [`load_str`]
//! parses the `.litmus` surface syntax ([`rc11_lang::parse`]) into the same
//! [`Litmus`] type, [`load_file`]/[`load_dir`] read them off disk, and the
//! committed `corpus/` directory at the workspace root carries the full
//! test set (every gallery entry round-tripped to text plus the classic
//! weak-memory shapes). The `rc11 run` CLI batch-runs a corpus under any
//! engine.

#![warn(missing_docs)]

use rc11_check::{Engine, ExploreOptions, Note, StopReason};
use rc11_core::Val;
use rc11_lang::builder::*;
use rc11_lang::machine::{NoObjects, ObjectSemantics};
use rc11_lang::parse::{parse_litmus, ParsedLitmus};
use rc11_lang::{compile, Program, Reg};
use rc11_objects::AbstractObjects;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// One litmus test: a program, the registers to observe, and the exact
/// expected outcome set.
pub struct Litmus {
    /// Short conventional name (`MP+rlx`, `SB+ra`, …).
    pub name: String,
    /// What the test demonstrates.
    pub about: String,
    /// The program.
    pub prog: Program,
    /// Which registers form the observation tuple: `(thread, register)`.
    pub observe: Vec<(usize, Reg)>,
    /// The exact set of admissible outcome tuples.
    pub expected: BTreeSet<Vec<Val>>,
}

impl From<ParsedLitmus> for Litmus {
    fn from(p: ParsedLitmus) -> Litmus {
        Litmus {
            name: p.name,
            about: p.about,
            prog: p.prog,
            observe: p.observe,
            expected: p.expected,
        }
    }
}

/// An error loading a litmus test from disk: I/O or parse, with the file
/// path for context.
#[derive(Debug)]
pub enum LoadError {
    /// The file could not be read.
    Io(PathBuf, std::io::Error),
    /// The file did not parse; the [`rc11_lang::ParseError`] carries the
    /// line/column span.
    Parse(PathBuf, rc11_lang::ParseError),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(p, e) => write!(f, "{}: {e}", p.display()),
            LoadError::Parse(p, e) => write!(f, "{}:{e}", p.display()),
        }
    }
}

impl std::error::Error for LoadError {}

/// Parse a `.litmus` source string into a runnable [`Litmus`].
pub fn load_str(src: &str) -> Result<Litmus, rc11_lang::ParseError> {
    parse_litmus(src).map(Litmus::from)
}

/// Load one `.litmus` file.
pub fn load_file(path: impl AsRef<Path>) -> Result<Litmus, LoadError> {
    let path = path.as_ref();
    let src =
        std::fs::read_to_string(path).map_err(|e| LoadError::Io(path.to_path_buf(), e))?;
    load_str(&src).map_err(|e| LoadError::Parse(path.to_path_buf(), e))
}

/// Load every `*.litmus` file directly inside `dir`, sorted by file name.
/// Each file loads independently, so one bad file does not hide the rest —
/// including entries whose directory iteration errors, which surface as
/// [`LoadError::Io`] entries rather than vanishing from the list.
pub fn load_dir(dir: impl AsRef<Path>) -> std::io::Result<Vec<(PathBuf, Result<Litmus, LoadError>)>> {
    let dir = dir.as_ref();
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut broken: Vec<(PathBuf, Result<Litmus, LoadError>)> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        match entry {
            Ok(e) => {
                let p = e.path();
                if p.extension().is_some_and(|x| x == "litmus") {
                    paths.push(p);
                }
            }
            Err(e) => broken.push((dir.to_path_buf(), Err(LoadError::Io(dir.to_path_buf(), e)))),
        }
    }
    paths.sort();
    let mut out: Vec<(PathBuf, Result<Litmus, LoadError>)> =
        paths.into_iter().map(|p| (p.clone(), load_file(&p))).collect();
    out.extend(broken);
    Ok(out)
}

/// Result of running one litmus test.
#[derive(Debug)]
pub struct LitmusResult {
    /// Outcomes actually reachable.
    pub observed: BTreeSet<Vec<Val>>,
    /// Outcomes expected.
    pub expected: BTreeSet<Vec<Val>>,
    /// States explored.
    pub states: usize,
    /// Transitions generated — with partial-order reduction
    /// ([`ExploreOptions::por`]) this shrinks while `states` and the
    /// verdict stay fixed; the `rc11 run --por` reduction column is the
    /// ratio of this value between a reduced and an unreduced run.
    pub transitions: usize,
    /// `observed == expected`.
    pub pass: bool,
    /// Structured engine warnings ([`rc11_check::Note`]): reduction
    /// fallbacks (POR thread cap, DPOR location cap, symmetry orbit cap),
    /// contained worker faults, checkpoint errors. The result stays exact
    /// for reduction fallbacks; `rc11 run` prints these as a column.
    pub notes: Vec<Note>,
}

fn ints(rows: &[&[i64]]) -> BTreeSet<Vec<Val>> {
    rows.iter().map(|r| r.iter().map(|&n| Val::Int(n)).collect()).collect()
}

/// The object semantics a litmus program needs: none for pure-variable
/// programs, the abstract registry otherwise.
pub fn objects_for(l: &Litmus) -> &'static (dyn ObjectSemantics + Sync) {
    if l.prog.objects.is_empty() {
        &NoObjects
    } else {
        &AbstractObjects
    }
}

/// Run a litmus test by exhaustive exploration with the sequential
/// reference engine.
pub fn run(l: &Litmus) -> LitmusResult {
    run_with(l, &Engine::Sequential)
}

/// Run a litmus test by exhaustive exploration under the given engine.
/// Panics on truncation or deadlock (gallery programs do neither); use
/// [`run_with_opts`] for the non-panicking, options-taking variant.
pub fn run_with(l: &Litmus, engine: &Engine) -> LitmusResult {
    let opts = ExploreOptions { record_traces: false, ..Default::default() };
    let (res, stop, deadlocked) = run_with_opts(l, engine, &opts);
    assert!(stop.is_complete(), "litmus {} stopped early: {stop}", l.name);
    assert_eq!(deadlocked, 0, "litmus {} deadlocked", l.name);
    res
}

/// [`run_with`] with explicit exploration options and no panicking:
/// returns the result plus why the run stopped
/// ([`StopReason::Complete`] = exhaustive) and how many deadlocked
/// configurations it found. `pass` additionally requires a complete,
/// deadlock-free run. This is the one place the observed outcome set and
/// the pass predicate are computed — the CLI and the corpus tests both go
/// through it.
pub fn run_with_opts(
    l: &Litmus,
    engine: &Engine,
    opts: &ExploreOptions,
) -> (LitmusResult, StopReason, usize) {
    let prog = compile(&l.prog);
    let report = engine.explore(&prog, objects_for(l), opts);
    let observed: BTreeSet<Vec<Val>> = report
        .terminated
        .iter()
        .map(|c| l.observe.iter().map(|&(t, r)| c.reg(t, r)).collect())
        .collect();
    let pass = observed == l.expected && !report.truncated() && report.deadlocked.is_empty();
    let res = LitmusResult {
        observed,
        expected: l.expected.clone(),
        states: report.states,
        transitions: report.transitions,
        pass,
        notes: report.notes,
    };
    (res, report.stop, report.deadlocked.len())
}

/// `MP+rlx` — message passing, all-relaxed: the stale read is visible.
pub fn mp_rlx() -> Litmus {
    let mut p = ProgramBuilder::new("MP+rlx");
    let d = p.client_var("d", 0);
    let f = p.client_var("f", 0);
    let t1 = ThreadBuilder::new();
    p.add_thread(t1, seq([wr(d, 5), wr(f, 1)]));
    let mut t2 = ThreadBuilder::new();
    let r1 = t2.reg("r1");
    let r2 = t2.reg("r2");
    p.add_thread(t2, seq([rd(r1, f), rd(r2, d)]));
    Litmus {
        name: "MP+rlx".into(),
        about: "relaxed message passing admits the stale data read".into(),
        prog: p.build(),
        observe: vec![(1, r1), (1, r2)],
        expected: ints(&[&[0, 0], &[0, 5], &[1, 0], &[1, 5]]),
    }
}

/// `MP+ra` — message passing with release/acquire: seeing the flag implies
/// seeing the data.
pub fn mp_ra() -> Litmus {
    let mut p = ProgramBuilder::new("MP+ra");
    let d = p.client_var("d", 0);
    let f = p.client_var("f", 0);
    let t1 = ThreadBuilder::new();
    p.add_thread(t1, seq([wr(d, 5), wr_rel(f, 1)]));
    let mut t2 = ThreadBuilder::new();
    let r1 = t2.reg("r1");
    let r2 = t2.reg("r2");
    p.add_thread(t2, seq([rd_acq(r1, f), rd(r2, d)]));
    Litmus {
        name: "MP+ra".into(),
        about: "release/acquire message passing forbids the stale read".into(),
        prog: p.build(),
        observe: vec![(1, r1), (1, r2)],
        expected: ints(&[&[0, 0], &[0, 5], &[1, 5]]),
    }
}

/// `SB+ra` — store buffering: both threads may read the initial values even
/// under release/acquire.
pub fn sb_ra() -> Litmus {
    let mut p = ProgramBuilder::new("SB+ra");
    let x = p.client_var("x", 0);
    let y = p.client_var("y", 0);
    let mut t1 = ThreadBuilder::new();
    let r1 = t1.reg("r1");
    p.add_thread(t1, seq([wr_rel(x, 1), rd_acq(r1, y)]));
    let mut t2 = ThreadBuilder::new();
    let r2 = t2.reg("r2");
    p.add_thread(t2, seq([wr_rel(y, 1), rd_acq(r2, x)]));
    Litmus {
        name: "SB+ra".into(),
        about: "store buffering stays weak under release/acquire".into(),
        prog: p.build(),
        observe: vec![(0, r1), (1, r2)],
        expected: ints(&[&[0, 0], &[0, 1], &[1, 0], &[1, 1]]),
    }
}

/// `LB+rlx` — load buffering: RC11 RAR (which disallows load-buffering
/// cycles) forbids the `(1, 1)` outcome.
pub fn lb_rlx() -> Litmus {
    let mut p = ProgramBuilder::new("LB+rlx");
    let x = p.client_var("x", 0);
    let y = p.client_var("y", 0);
    let mut t1 = ThreadBuilder::new();
    let r1 = t1.reg("r1");
    p.add_thread(t1, seq([rd(r1, x), wr(y, 1)]));
    let mut t2 = ThreadBuilder::new();
    let r2 = t2.reg("r2");
    p.add_thread(t2, seq([rd(r2, y), wr(x, 1)]));
    Litmus {
        name: "LB+rlx".into(),
        about: "load-buffering cycles are disallowed in RC11 RAR".into(),
        prog: p.build(),
        observe: vec![(0, r1), (1, r2)],
        expected: ints(&[&[0, 0], &[0, 1], &[1, 0]]),
    }
}

/// `CoRR` — coherence of read-read: two reads by one thread never observe
/// one thread's same-variable writes out of modification order.
pub fn corr() -> Litmus {
    let mut p = ProgramBuilder::new("CoRR");
    let x = p.client_var("x", 0);
    let t1 = ThreadBuilder::new();
    p.add_thread(t1, seq([wr(x, 1), wr(x, 2)]));
    let mut t2 = ThreadBuilder::new();
    let r1 = t2.reg("r1");
    let r2 = t2.reg("r2");
    p.add_thread(t2, seq([rd(r1, x), rd(r2, x)]));
    Litmus {
        name: "CoRR".into(),
        about: "per-location coherence: no read-read inversion".into(),
        prog: p.build(),
        observe: vec![(1, r1), (1, r2)],
        expected: ints(&[&[0, 0], &[0, 1], &[0, 2], &[1, 1], &[1, 2], &[2, 2]]),
    }
}

/// `CoWR` — coherence of write-read: a thread never reads something older
/// than its own write.
pub fn cowr() -> Litmus {
    let mut p = ProgramBuilder::new("CoWR");
    let x = p.client_var("x", 0);
    let mut t1 = ThreadBuilder::new();
    let r1 = t1.reg("r1");
    p.add_thread(t1, seq([wr(x, 1), rd(r1, x)]));
    let t2 = ThreadBuilder::new();
    p.add_thread(t2, seq([wr(x, 2)]));
    Litmus {
        name: "CoWR".into(),
        about: "a writer reads its own write or something newer".into(),
        prog: p.build(),
        observe: vec![(0, r1)],
        expected: ints(&[&[1], &[2]]),
    }
}

/// `IRIW+ra` — independent reads of independent writes: the two readers may
/// disagree on the order of the writes even under release/acquire (RC11 RAR
/// has no per-execution total order on writes to different locations).
pub fn iriw_ra() -> Litmus {
    let mut p = ProgramBuilder::new("IRIW+ra");
    let x = p.client_var("x", 0);
    let y = p.client_var("y", 0);
    let t1 = ThreadBuilder::new();
    p.add_thread(t1, seq([wr_rel(x, 1)]));
    let t2 = ThreadBuilder::new();
    p.add_thread(t2, seq([wr_rel(y, 1)]));
    let mut t3 = ThreadBuilder::new();
    let r1 = t3.reg("r1");
    let r2 = t3.reg("r2");
    p.add_thread(t3, seq([rd_acq(r1, x), rd_acq(r2, y)]));
    let mut t4 = ThreadBuilder::new();
    let r3 = t4.reg("r3");
    let r4 = t4.reg("r4");
    p.add_thread(t4, seq([rd_acq(r3, y), rd_acq(r4, x)]));
    // All 16 combinations are admissible: the readers synchronise only with
    // the writers, never with each other.
    let mut expected = BTreeSet::new();
    for a in 0..2i64 {
        for b in 0..2i64 {
            for c in 0..2i64 {
                for d in 0..2i64 {
                    expected.insert(vec![Val::Int(a), Val::Int(b), Val::Int(c), Val::Int(d)]);
                }
            }
        }
    }
    Litmus {
        name: "IRIW+ra".into(),
        about: "independent readers may disagree on write order under RA".into(),
        prog: p.build(),
        observe: vec![(2, r1), (2, r2), (3, r3), (3, r4)],
        expected,
    }
}

/// `WRC+ra` — write-read causality: release/acquire chains are transitive.
pub fn wrc_ra() -> Litmus {
    let mut p = ProgramBuilder::new("WRC+ra");
    let x = p.client_var("x", 0);
    let y = p.client_var("y", 0);
    let t1 = ThreadBuilder::new();
    p.add_thread(t1, seq([wr_rel(x, 1)]));
    let mut t2 = ThreadBuilder::new();
    let r1 = t2.reg("r1");
    p.add_thread(t2, seq([rd_acq(r1, x), wr_rel(y, 1)]));
    let mut t3 = ThreadBuilder::new();
    let r2 = t3.reg("r2");
    let r3 = t3.reg("r3");
    p.add_thread(t3, seq([rd_acq(r2, y), rd(r3, x)]));
    // Forbidden: r1 = 1 ∧ r2 = 1 ∧ r3 = 0 (causality chain must deliver x).
    let mut expected = BTreeSet::new();
    for a in 0..2i64 {
        for b in 0..2i64 {
            for c in 0..2i64 {
                if a == 1 && b == 1 && c == 0 {
                    continue;
                }
                expected.insert(vec![Val::Int(a), Val::Int(b), Val::Int(c)]);
            }
        }
    }
    Litmus {
        name: "WRC+ra".into(),
        about: "write-read causality through a release/acquire chain".into(),
        prog: p.build(),
        observe: vec![(1, r1), (2, r2), (2, r3)],
        expected,
    }
}

/// `2RMW` — atomicity of updates: two fetch-and-increments never observe
/// the same predecessor.
pub fn two_rmw() -> Litmus {
    let mut p = ProgramBuilder::new("2RMW");
    let x = p.client_var("x", 0);
    let mut t1 = ThreadBuilder::new();
    let r1 = t1.reg("r1");
    p.add_thread(t1, seq([fai(r1, x)]));
    let mut t2 = ThreadBuilder::new();
    let r2 = t2.reg("r2");
    p.add_thread(t2, seq([fai(r2, x)]));
    Litmus {
        name: "2RMW".into(),
        about: "update atomicity: FAIs hand out distinct values".into(),
        prog: p.build(),
        observe: vec![(0, r1), (1, r2)],
        expected: ints(&[&[0, 1], &[1, 0]]),
    }
}

/// Figure 1 as a litmus test: unsynchronised message passing via the
/// abstract stack — `r2 ∈ {0, 5}`.
pub fn fig1_stack_mp_unsync() -> Litmus {
    let mut p = ProgramBuilder::new("Fig1");
    let d = p.client_var("d", 0);
    let s = p.stack("s");
    let t1 = ThreadBuilder::new();
    p.add_thread(t1, seq([wr(d, 5), push(s, 1)]));
    let mut t2 = ThreadBuilder::new();
    let r1 = t2.reg("r1");
    let r2 = t2.reg("r2");
    p.add_thread(t2, seq([do_until(pop(s, r1), eq(r1, 1)), rd(r2, d)]));
    Litmus {
        name: "Fig1".into(),
        about: "unsynchronised stack message passing: r2 ∈ {0, 5}".into(),
        prog: p.build(),
        observe: vec![(1, r2)],
        expected: ints(&[&[0], &[5]]),
    }
}

/// Figure 2 as a litmus test: publication via `push^R`/`pop^A` — `r2 = 5`.
pub fn fig2_stack_mp_sync() -> Litmus {
    let mut p = ProgramBuilder::new("Fig2");
    let d = p.client_var("d", 0);
    let s = p.stack("s");
    let t1 = ThreadBuilder::new();
    p.add_thread(t1, seq([wr(d, 5), push_rel(s, 1)]));
    let mut t2 = ThreadBuilder::new();
    let r1 = t2.reg("r1");
    let r2 = t2.reg("r2");
    p.add_thread(t2, seq([do_until(pop_acq(s, r1), eq(r1, 1)), rd(r2, d)]));
    Litmus {
        name: "Fig2".into(),
        about: "publication via a synchronising stack: r2 = 5".into(),
        prog: p.build(),
        observe: vec![(1, r2)],
        expected: ints(&[&[5]]),
    }
}

/// Message passing via the extension FIFO queue, synchronised
/// (`enq^R`/`deq^A`) — the Figure-2 pattern over the future-work ADT.
pub fn queue_mp_sync() -> Litmus {
    let mut p = ProgramBuilder::new("QueueMP+ra");
    let d = p.client_var("d", 0);
    let q = p.queue("q");
    let t1 = ThreadBuilder::new();
    p.add_thread(t1, seq([wr(d, 5), enq_rel(q, 1)]));
    let mut t2 = ThreadBuilder::new();
    let r1 = t2.reg("r1");
    let r2 = t2.reg("r2");
    p.add_thread(t2, seq([do_until(deq_acq(q, r1), eq(r1, 1)), rd(r2, d)]));
    Litmus {
        name: "QueueMP+ra".into(),
        about: "publication via a synchronising queue: r2 = 5".into(),
        prog: p.build(),
        observe: vec![(1, r2)],
        expected: ints(&[&[5]]),
    }
}

/// Message passing via the FIFO queue, unsynchronised — the stale read
/// survives, exactly as for the stack.
pub fn queue_mp_unsync() -> Litmus {
    let mut p = ProgramBuilder::new("QueueMP+rlx");
    let d = p.client_var("d", 0);
    let q = p.queue("q");
    let t1 = ThreadBuilder::new();
    p.add_thread(t1, seq([wr(d, 5), enq(q, 1)]));
    let mut t2 = ThreadBuilder::new();
    let r1 = t2.reg("r1");
    let r2 = t2.reg("r2");
    p.add_thread(t2, seq([do_until(deq(q, r1), eq(r1, 1)), rd(r2, d)]));
    Litmus {
        name: "QueueMP+rlx".into(),
        about: "unsynchronised queue message passing: r2 ∈ {0, 5}".into(),
        prog: p.build(),
        observe: vec![(1, r2)],
        expected: ints(&[&[0], &[5]]),
    }
}

/// FIFO vs LIFO, observably: one producer enqueues/pushes 1 then 2; the
/// consumer's first dequeue sees 1 (queue) — the stack litmus `Fig1`
/// family sees 2 first. This pins the ADT orderings apart.
pub fn queue_fifo_order() -> Litmus {
    let mut p = ProgramBuilder::new("QueueFIFO");
    let q = p.queue("q");
    let t1 = ThreadBuilder::new();
    p.add_thread(t1, seq([enq(q, 1), enq(q, 2)]));
    let mut t2 = ThreadBuilder::new();
    let r1 = t2.reg("r1");
    let r2 = t2.reg("r2");
    p.add_thread(
        t2,
        seq([
            do_until(deq(q, r1), ne(r1, Val::Empty)),
            do_until(deq(q, r2), ne(r2, Val::Empty)),
        ]),
    );
    Litmus {
        name: "QueueFIFO".into(),
        about: "dequeues observe enqueue order".into(),
        prog: p.build(),
        observe: vec![(1, r1), (1, r2)],
        expected: ints(&[&[1, 2]]),
    }
}

/// Lock-based message passing: the Figure-7 pattern reduced to a litmus.
pub fn lock_mp() -> Litmus {
    let mut p = ProgramBuilder::new("LockMP");
    let d = p.client_var("d", 0);
    let l = p.lock("l");
    let t1 = ThreadBuilder::new();
    p.add_thread(t1, seq([acquire(l), wr(d, 5), release(l)]));
    let mut t2 = ThreadBuilder::new();
    let r = t2.reg("r");
    p.add_thread(t2, seq([acquire(l), rd(r, d), release(l)]));
    Litmus {
        name: "LockMP".into(),
        about: "lock hand-off publishes the protected write: r ∈ {0, 5}".into(),
        prog: p.build(),
        observe: vec![(1, r)],
        expected: ints(&[&[0], &[5]]),
    }
}

/// The whole gallery.
pub fn all() -> Vec<Litmus> {
    vec![
        mp_rlx(),
        mp_ra(),
        sb_ra(),
        lb_rlx(),
        corr(),
        cowr(),
        iriw_ra(),
        wrc_ra(),
        two_rmw(),
        fig1_stack_mp_unsync(),
        fig2_stack_mp_sync(),
        queue_mp_sync(),
        queue_mp_unsync(),
        queue_fifo_order(),
        lock_mp(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_litmus_verdict_is_exact() {
        for l in all() {
            let res = run(&l);
            assert!(
                res.pass,
                "{}: observed {:?} ≠ expected {:?}",
                l.name, res.observed, res.expected
            );
        }
    }

    #[test]
    fn every_litmus_verdict_is_exact_under_the_parallel_engine() {
        let engine = rc11_check::choose_engine(4);
        for l in all() {
            let res = run_with(&l, &engine);
            assert!(
                res.pass,
                "{} (parallel): observed {:?} ≠ expected {:?}",
                l.name, res.observed, res.expected
            );
        }
    }

    #[test]
    fn gallery_is_nonempty_and_named_uniquely() {
        let tests = all();
        assert!(tests.len() >= 12);
        let mut names: Vec<_> = tests.iter().map(|l| l.name.clone()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), tests.len());
    }
}
