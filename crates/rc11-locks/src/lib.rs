//! # rc11-locks — lock implementations (Sections 6.2–6.3)
//!
//! The paper's two refinements of the abstract lock, expressed as
//! [`ObjectImpl`]s whose bodies are ordinary `Com` code over library
//! variables (filled into client holes by `rc11_lang::inline::instantiate`):
//!
//! * [`seqlock`] — the sequence lock over a single variable `glb`
//!   (Section 6.2): acquire spins for an even value and CASes it odd;
//!   release adds 2 with a releasing write.
//! * [`ticket`] — the ticket lock over `nt`/`sn` (Section 6.3): acquire
//!   takes a ticket with `FAI` and spins until served; release publishes
//!   the next ticket with a releasing write.
//!
//! Extensions (not in the paper, same abstract specification — the point of
//! question (3) in the introduction):
//!
//! * [`tas`] — test-and-set lock;
//! * [`ttas`] — test-and-test-and-set lock.
//!
//! Negative controls for the refinement checker (deliberately wrong):
//!
//! * [`broken_relaxed_seqlock`] — seqlock whose release write is *relaxed*:
//!   mutual exclusion still holds but the publication guarantee is lost;
//! * [`broken_noop_lock`] — no lock at all (acquire/release do nothing).
//!
//! Method-local registers persist across calls per thread (both paper locks
//! rely on this: their `Release` bodies reuse values read during
//! `Acquire`).

#![warn(missing_docs)]

use rc11_lang::builder::*;
use rc11_lang::inline::{CallSite, ObjectImpl};
use rc11_lang::{Com, Method, Reg, VarRef};

fn ret_true(call: &CallSite) -> Com {
    match call.ret {
        Some(r) => assign(r, true),
        None => Com::Skip,
    }
}

/// The sequence lock of Section 6.2.
///
/// ```text
/// Init: glb = 0
/// Acquire():  do { do r ←A glb until even(r); loc ← CAS(glb, r, r+1) } until loc
/// Release():  glb :=R r + 2
/// ```
pub fn seqlock() -> ObjectImpl {
    fn build(call: &CallSite, regs: &[Reg], vars: &[VarRef]) -> Com {
        let (r, loc) = (regs[0], regs[1]);
        let glb = vars[0];
        match call.method {
            Method::Acquire => seq([
                do_until(
                    seq([do_until(rd_acq(r, glb), even(r)), cas(loc, glb, r, add(r, 1))]),
                    loc,
                ),
                ret_true(call),
            ]),
            Method::Release => wr_rel(glb, add(r, 2)),
            m => panic!("seqlock has no method {m}"),
        }
    }
    ObjectImpl { name: "seqlock", lib_vars: &[("glb", 0)], regs: &["r", "loc"], build }
}

/// The ticket lock of Section 6.3.
///
/// ```text
/// Init: nt = 0, sn = 0
/// Acquire():  m ← FAI(nt); do s ←A sn until m = s
/// Release():  sn :=R s + 1
/// ```
pub fn ticket() -> ObjectImpl {
    fn build(call: &CallSite, regs: &[Reg], vars: &[VarRef]) -> Com {
        let (m, s) = (regs[0], regs[1]);
        let (nt, sn) = (vars[0], vars[1]);
        match call.method {
            Method::Acquire => seq([
                fai(m, nt),
                do_until(rd_acq(s, sn), eq(m, s)),
                ret_true(call),
            ]),
            Method::Release => wr_rel(sn, add(s, 1)),
            mth => panic!("ticket lock has no method {mth}"),
        }
    }
    ObjectImpl { name: "ticket", lib_vars: &[("nt", 0), ("sn", 0)], regs: &["m", "s"], build }
}

/// Extension: a test-and-set lock (same abstract specification).
pub fn tas() -> ObjectImpl {
    fn build(call: &CallSite, regs: &[Reg], vars: &[VarRef]) -> Com {
        let ok = regs[0];
        let flag = vars[0];
        match call.method {
            Method::Acquire => seq([do_until(cas(ok, flag, 0, 1), ok), ret_true(call)]),
            Method::Release => wr_rel(flag, 0),
            m => panic!("tas lock has no method {m}"),
        }
    }
    ObjectImpl { name: "tas", lib_vars: &[("flag", 0)], regs: &["ok"], build }
}

/// Extension: a test-and-test-and-set lock (spin on a relaxed read before
/// attempting the CAS).
pub fn ttas() -> ObjectImpl {
    fn build(call: &CallSite, regs: &[Reg], vars: &[VarRef]) -> Com {
        let (v, ok) = (regs[0], regs[1]);
        let flag = vars[0];
        match call.method {
            Method::Acquire => seq([
                do_until(
                    seq([do_until(rd(v, flag), eq(v, 0)), cas(ok, flag, 0, 1)]),
                    ok,
                ),
                ret_true(call),
            ]),
            Method::Release => wr_rel(flag, 0),
            m => panic!("ttas lock has no method {m}"),
        }
    }
    ObjectImpl { name: "ttas", lib_vars: &[("flag", 0)], regs: &["v", "ok"], build }
}

/// Negative control: the sequence lock with a **relaxed** release write.
/// Mutual exclusion still holds, but the release no longer publishes the
/// critical section's writes — contextual refinement of the abstract lock
/// must fail (the abstract acquire guarantees publication).
pub fn broken_relaxed_seqlock() -> ObjectImpl {
    fn build(call: &CallSite, regs: &[Reg], vars: &[VarRef]) -> Com {
        let (r, loc) = (regs[0], regs[1]);
        let glb = vars[0];
        match call.method {
            Method::Acquire => seq([
                do_until(
                    seq([do_until(rd_acq(r, glb), even(r)), cas(loc, glb, r, add(r, 1))]),
                    loc,
                ),
                ret_true(call),
            ]),
            // BUG (deliberate): relaxed instead of releasing.
            Method::Release => wr(glb, add(r, 2)),
            m => panic!("broken seqlock has no method {m}"),
        }
    }
    ObjectImpl {
        name: "broken-relaxed-seqlock",
        lib_vars: &[("glb", 0)],
        regs: &["r", "loc"],
        build,
    }
}

/// Negative control: no lock at all — acquire and release are no-ops.
/// Fails both mutual exclusion and publication.
pub fn broken_noop_lock() -> ObjectImpl {
    fn build(call: &CallSite, _regs: &[Reg], _vars: &[VarRef]) -> Com {
        match call.method {
            Method::Acquire => ret_true(call),
            Method::Release => Com::Skip,
            m => panic!("noop lock has no method {m}"),
        }
    }
    ObjectImpl { name: "broken-noop-lock", lib_vars: &[], regs: &[], build }
}

/// All correct lock implementations, for parameterised tests and benches.
pub fn all_correct() -> Vec<ObjectImpl> {
    vec![seqlock(), ticket(), tas(), ttas()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc11_check::{choose_engine, Engine, EngineReport, ExploreOptions};
    use rc11_core::Val;
    use rc11_lang::inline::instantiate;
    use rc11_lang::machine::NoObjects;
    use rc11_lang::{compile, Program};

    /// Both engines: every lock scenario (positive and negative control)
    /// runs sequentially and in parallel.
    fn engines() -> [Engine; 2] {
        [choose_engine(1), choose_engine(4)]
    }

    /// The Figure-7 client shape: two threads, lock-protected writes/reads.
    fn lock_client() -> (Program, rc11_lang::ObjRef, [Reg; 2]) {
        let mut p = ProgramBuilder::new("client");
        let d1 = p.client_var("d1", 0);
        let d2 = p.client_var("d2", 0);
        let l = p.lock("l");
        let t1 = ThreadBuilder::new();
        p.add_thread(t1, seq([acquire(l), wr(d1, 5), wr(d2, 5), release(l)]));
        let mut t2 = ThreadBuilder::new();
        let r1 = t2.reg("r1");
        let r2 = t2.reg("r2");
        p.add_thread(t2, seq([acquire(l), rd(r1, d1), rd(r2, d2), release(l)]));
        (p.build(), l, [r1, r2])
    }

    fn explore_lock_client(imp: &ObjectImpl, engine: &Engine) -> (EngineReport, [Reg; 2]) {
        let (abs, l, regs) = lock_client();
        let conc = instantiate(&abs, l, imp);
        let prog = compile(&conc);
        let opts = ExploreOptions { record_traces: false, ..Default::default() };
        (engine.explore(&prog, &NoObjects, &opts), regs)
    }

    fn check_lock_client(imp: ObjectImpl) {
        for engine in engines() {
            let (report, [r1, r2]) = explore_lock_client(&imp, &engine);
            assert!(report.ok(), "{} ({engine:?}): exploration failed", imp.name);
            assert!(report.deadlocked.is_empty(), "{} ({engine:?}): deadlock", imp.name);
            assert!(
                !report.terminated.is_empty(),
                "{} ({engine:?}): no terminal states",
                imp.name
            );
            for term in &report.terminated {
                let (v1, v2) = (term.reg(1, r1), term.reg(1, r2));
                assert!(
                    (v1, v2) == (Val::Int(0), Val::Int(0))
                        || (v1, v2) == (Val::Int(5), Val::Int(5)),
                    "{} ({engine:?}): critical section torn: r1={v1}, r2={v2}",
                    imp.name
                );
            }
        }
    }

    /// Negative controls must leak the torn read under *both* engines.
    fn check_broken_lock_leaks(imp: ObjectImpl) {
        for engine in engines() {
            let (report, [r1, r2]) = explore_lock_client(&imp, &engine);
            let torn = report
                .terminated
                .iter()
                .any(|t| t.reg(1, r1) != t.reg(1, r2));
            assert!(
                torn,
                "{} ({engine:?}): the broken lock must leak a torn read somewhere",
                imp.name
            );
        }
    }

    #[test]
    fn seqlock_client_is_atomic() {
        check_lock_client(seqlock());
    }

    #[test]
    fn ticket_client_is_atomic() {
        check_lock_client(ticket());
    }

    #[test]
    fn tas_client_is_atomic() {
        check_lock_client(tas());
    }

    #[test]
    fn ttas_client_is_atomic() {
        check_lock_client(ttas());
    }

    #[test]
    fn relaxed_seqlock_leaks_weak_behaviour() {
        check_broken_lock_leaks(broken_relaxed_seqlock());
    }

    #[test]
    fn noop_lock_leaks_weak_behaviour() {
        check_broken_lock_leaks(broken_noop_lock());
    }

    /// Three threads through the ticket lock: still atomic, under both
    /// engines.
    #[test]
    fn ticket_lock_three_threads() {
        let mut p = ProgramBuilder::new("counter3");
        let x = p.client_var("x", 0);
        let l = p.lock("l");
        for _ in 0..3 {
            let mut tb = ThreadBuilder::new();
            let r = tb.reg("r");
            p.add_thread(tb, seq([acquire(l), rd(r, x), wr(x, add(r, 1)), release(l)]));
        }
        let conc = instantiate(&p.build(), l, &ticket());
        let prog = compile(&conc);
        let opts = ExploreOptions { record_traces: false, ..Default::default() };
        for engine in engines() {
            let report = engine.explore(&prog, &NoObjects, &opts);
            assert!(report.ok());
            for term in &report.terminated {
                let st = term.mem.client();
                let max = st.max_op(x.loc);
                assert_eq!(
                    st.op(max).act.wrval(),
                    Val::Int(3),
                    "all increments must land ({engine:?})"
                );
            }
        }
    }
}
