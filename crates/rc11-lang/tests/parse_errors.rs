//! Parser error reporting: every rejection carries the 1-based line/column
//! of the offending token and a message naming the offence. These tests
//! pin both, so error spans cannot silently drift.

use rc11_lang::parse::{parse_litmus, ParseError};

fn err(src: &str) -> ParseError {
    parse_litmus(src).expect_err("source must be rejected")
}

#[test]
fn malformed_annotation_is_rejected_at_the_equals_sign() {
    let e = err("litmus \"e\"\n\
                 var x = 0\n\
                 thread T {\n\
                 \x20 x =rlx 1;\n\
                 }\n\
                 observe T.x\n\
                 expected { (0) }\n");
    assert_eq!((e.span.line, e.span.col), (4, 5));
    assert!(
        e.msg.contains("unknown access annotation `=rlx`"),
        "message must name the bad annotation: {}",
        e.msg
    );
    assert!(e.msg.contains("`=rel` or `=acq`"), "message must list the valid ones: {}", e.msg);
}

#[test]
fn undeclared_shared_variable_is_rejected_at_its_use() {
    let e = err("litmus \"e\"\n\
                 var x = 0\n\
                 thread T {\n\
                 \x20 r1 =acq zz;\n\
                 }\n\
                 observe T.r1\n\
                 expected { (0) }\n");
    assert_eq!((e.span.line, e.span.col), (4, 11));
    assert!(e.msg.contains("undeclared shared variable `zz`"), "{}", e.msg);
}

#[test]
fn undeclared_register_in_an_expression_is_rejected() {
    let e = err("litmus \"e\"\n\
                 var x = 0\n\
                 thread T {\n\
                 \x20 r1 = r9 + 1;\n\
                 }\n\
                 observe T.r1\n\
                 expected { (0) }\n");
    assert_eq!((e.span.line, e.span.col), (4, 8));
    assert!(e.msg.contains("undeclared variable or register `r9`"), "{}", e.msg);
    assert!(
        e.msg.contains("assigned before first use"),
        "message must explain the register rule: {}",
        e.msg
    );
}

#[test]
fn duplicate_thread_name_is_rejected_at_the_second_declaration() {
    let e = err("litmus \"e\"\n\
                 var x = 0\n\
                 thread T { r = x; }\n\
                 thread T { r = x; }\n\
                 observe T.r\n\
                 expected { (0) }\n");
    assert_eq!((e.span.line, e.span.col), (4, 8));
    assert!(e.msg.contains("duplicate thread name `T`"), "{}", e.msg);
}

#[test]
fn wrong_expected_tuple_arity_is_rejected_at_the_tuple() {
    let e = err("litmus \"e\"\n\
                 var x = 0\n\
                 thread T {\n\
                 \x20 r1 = x;\n\
                 \x20 r2 = x;\n\
                 }\n\
                 observe T.r1 T.r2\n\
                 expected {\n\
                 \x20 (0, 0, 0)\n\
                 }\n");
    assert_eq!((e.span.line, e.span.col), (9, 3));
    assert!(
        e.msg.contains("outcome tuple has 3 values but `observe` names 2 registers"),
        "{}",
        e.msg
    );
}

#[test]
fn unknown_method_is_rejected_at_the_method_name() {
    let e = err("litmus \"e\"\n\
                 stack s\n\
                 thread T {\n\
                 \x20 s.psuh(1);\n\
                 \x20 r = s.pop();\n\
                 }\n\
                 observe T.r\n\
                 expected { (empty) }\n");
    assert_eq!((e.span.line, e.span.col), (4, 5));
    assert!(e.msg.contains("no method `psuh`"), "{}", e.msg);
}

#[test]
fn observing_an_unknown_thread_or_register_is_rejected() {
    let base = "litmus \"e\"\n\
                var x = 0\n\
                thread T { r = x; }\n";
    let e = err(&format!("{base}observe Z.r\nexpected {{ (0) }}\n"));
    assert_eq!((e.span.line, e.span.col), (4, 9));
    assert!(e.msg.contains("unknown thread `Z`"), "{}", e.msg);

    let e = err(&format!("{base}observe T.r9\nexpected {{ (0) }}\n"));
    assert_eq!((e.span.line, e.span.col), (4, 11));
    assert!(e.msg.contains("thread `T` has no register `r9`"), "{}", e.msg);
}

#[test]
fn shared_variables_cannot_appear_inside_expressions() {
    let e = err("litmus \"e\"\n\
                 var x = 0\n\
                 thread T {\n\
                 \x20 r1 = x + 1;\n\
                 }\n\
                 observe T.r1\n\
                 expected { (1) }\n");
    assert_eq!((e.span.line, e.span.col), (4, 8));
    assert!(e.msg.contains("read it into a register first"), "{}", e.msg);
}

#[test]
fn binding_the_result_of_a_void_method_is_rejected() {
    let e = err("litmus \"e\"\n\
                 stack s\n\
                 thread T {\n\
                 \x20 r = s.push(1);\n\
                 }\n\
                 observe T.r\n\
                 expected { (bot) }\n");
    assert_eq!((e.span.line, e.span.col), (4, 9));
    assert!(e.msg.contains("method `push` returns no value"), "{}", e.msg);
}

#[test]
fn assignments_need_no_space_after_the_equals_sign() {
    // `r1=x` must lex as an assignment, not a malformed annotation; only
    // annotation-like names (`rlx`, `sc`, …) get the annotation error.
    let p = rc11_lang::parse::parse_litmus(
        "litmus \"e\"\n\
         var x = 0\n\
         thread T {\n\
         \x20 r1=x;\n\
         \x20 r2=r1;\n\
         \x20 r3=true;\n\
         }\n\
         observe T.r1 T.r2 T.r3\n\
         expected { (0, 0, true) }\n",
    )
    .expect("glued assignments parse");
    assert_eq!(p.prog.threads[0].n_regs, 3);

    let e = err("litmus \"e\"\nvar x = 0\nthread T { x =sc 1; }\nobserve T.x\nexpected {}\n");
    assert!(e.msg.contains("unknown access annotation `=sc`"), "{}", e.msg);
}

#[test]
fn lexer_errors_carry_spans_too() {
    let e = err("litmus \"e\"\nvar x = @\n");
    assert_eq!((e.span.line, e.span.col), (2, 9));
    assert!(e.msg.contains("unexpected character `@`"), "{}", e.msg);
}

#[test]
fn error_display_is_line_colon_column() {
    let e = err("litmus \"e\"\nvar x = @\n");
    assert_eq!(e.to_string(), "2:9: unexpected character `@`");
}
