//! # rc11-lang — program syntax and semantics (Figure 4)
//!
//! The `Com` grammar of Section 3.1 with method-call holes, its small-step
//! semantics in two interchangeable forms, and the program-assembly tooling:
//!
//! * [`ast`] — the grammar, expressions and local-state evaluation;
//! * [`ast_step`] — the literal Figure-4 engine (ε-steps and all);
//! * [`cfg`]/[`machine`] — compilation to flat CFGs so configurations carry
//!   an honest `pc` per thread (the paper's proof outlines quantify over
//!   `pc_t`), plus successor enumeration against the rc11-core memory;
//! * [`builder`] — combinators mirroring the paper's surface syntax;
//! * [`parse`] — the `.litmus` text front-end: litmus tests as data files
//!   (program + observation tuple + exact expected outcome set), compiled
//!   onto the same [`builder`]/[`program`] types;
//! * [`inline`] — hole filling (`C[AO]` → `C[CO]`) for refinement checking.
//!
//! Abstract method calls are delegated through [`machine::ObjectSemantics`],
//! implemented by the rc11-objects crate.

#![warn(missing_docs)]

pub mod ast;
pub mod ast_step;
pub mod builder;
pub mod canon_prog;
pub mod cfg;
pub mod inline;
pub mod machine;
pub mod parse;
pub mod program;

pub use ast::{BinOp, Com, EvalError, Exp, Method, ObjRef, Reg, UnOp, VarRef};
pub use ast_step::{ast_successors, AstConfig};
pub use canon_prog::{canonical_litmus_words, canonical_words};
pub use cfg::{compile, CfgProgram, Instr, ThreadCfg};
pub use inline::{instantiate, CallSite, ObjectImpl};
pub use machine::{
    successors, thread_successors, Config, NoObjects, ObjectSemantics, StepOptions, SymMaps,
};
pub use parse::{parse_litmus, LintInfo, ParseError, ParsedLitmus, Span, ThreadLintInfo};
pub use program::{ObjKind, Program, ThreadDef};
