//! Whole programs: `Init; (C1 || … || Cn)` (Section 3.2).

use crate::ast::{Com, VarRef};
use rc11_core::{Comp, InitLoc, Loc, LocTable, Val};

/// The kind of an abstract object — selects which Section-4 transition rules
/// govern its method calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjKind {
    /// The Figure-6 lock.
    Lock,
    /// The abstract stack of Figures 1–3 (semantics per DESIGN.md §3).
    Stack,
    /// An abstract atomic register (extension).
    Register,
    /// An abstract fetch-and-increment counter (extension).
    Counter,
    /// An abstract FIFO queue (extension; the paper's future-work ADT).
    Queue,
}

/// One thread's code plus its local-state layout.
#[derive(Debug, Clone)]
pub struct ThreadDef {
    /// The thread's command.
    pub body: Com,
    /// Number of registers (local state size).
    pub n_regs: u16,
    /// Register names, for display (`reg_names[r]`).
    pub reg_names: Vec<String>,
    /// Initial register values (`Init` may initialise locals; default `⊥`).
    pub reg_inits: Vec<Val>,
}

/// A complete concurrent program over a client component and a library
/// component, with initialisation for every shared location.
#[derive(Debug, Clone)]
pub struct Program {
    /// Human-readable name (used in reports and benches).
    pub name: String,
    /// Client location names/kinds.
    pub client_locs: LocTable,
    /// Client location initialisation.
    pub client_inits: Vec<InitLoc>,
    /// Library location names/kinds.
    pub lib_locs: LocTable,
    /// Library location initialisation.
    pub lib_inits: Vec<InitLoc>,
    /// Abstract objects among the library locations.
    pub objects: Vec<(Loc, ObjKind)>,
    /// The threads.
    pub threads: Vec<ThreadDef>,
}

impl Program {
    /// Number of threads.
    pub fn n_threads(&self) -> usize {
        self.threads.len()
    }

    /// The object kind at library location `loc`, if it is an object.
    pub fn obj_kind(&self, loc: Loc) -> Option<ObjKind> {
        self.objects.iter().find(|(l, _)| *l == loc).map(|(_, k)| *k)
    }

    /// Resolve a variable name for display.
    pub fn var_name(&self, var: VarRef) -> &str {
        match var.comp {
            Comp::Client => self.client_locs.name(var.loc),
            Comp::Lib => self.lib_locs.name(var.loc),
        }
    }

    /// Initial local states, one `Vec<Val>` per thread.
    pub fn initial_locals(&self) -> Vec<Vec<Val>> {
        self.threads.iter().map(|t| t.reg_inits.clone()).collect()
    }

    /// Sanity-check the program: register indices within bounds, variable
    /// references within the location tables, objects only accessed through
    /// method calls, plain variables never used as objects.
    pub fn validate(&self) -> Result<(), String> {
        for (ti, th) in self.threads.iter().enumerate() {
            if let Some(max) = th.body.max_reg() {
                if max >= th.n_regs {
                    return Err(format!(
                        "thread {ti}: register r{max} out of range (n_regs = {})",
                        th.n_regs
                    ));
                }
            }
            if th.reg_inits.len() != th.n_regs as usize {
                return Err(format!("thread {ti}: reg_inits length mismatch"));
            }
            let mut err = None;
            th.body.visit(&mut |c| {
                use rc11_core::LocKind;
                let check_var = |v: VarRef, err: &mut Option<String>| {
                    let table = match v.comp {
                        Comp::Client => &self.client_locs,
                        Comp::Lib => &self.lib_locs,
                    };
                    if v.loc.idx() >= table.len() {
                        *err = Some(format!("thread {ti}: variable {v:?} out of range"));
                    } else if table.kind(v.loc) != LocKind::Var {
                        *err = Some(format!(
                            "thread {ti}: object location {} accessed as a variable",
                            table.name(v.loc)
                        ));
                    }
                };
                match c {
                    Com::Write { var, .. } | Com::Read { var, .. } => check_var(*var, &mut err),
                    Com::Cas { var, .. } | Com::Fai { var, .. } => check_var(*var, &mut err),
                    Com::MethodCall { obj, .. }
                        if obj.loc.idx() >= self.lib_locs.len()
                            || self.lib_locs.kind(obj.loc) != LocKind::Obj =>
                    {
                        err = Some(format!(
                            "thread {ti}: method call on non-object location {:?}",
                            obj.loc
                        ));
                    }
                    _ => {}
                }
            });
            if let Some(e) = err {
                return Err(e);
            }
        }
        Ok(())
    }
}
