//! The *literal* program semantics: Figure 4's small-step rules over the
//! `Com` AST.
//!
//! This engine exists for fidelity and cross-validation: the CFG machine
//! ([`crate::machine`]) is what the model checker runs, and the agreement
//! test (`tests/semantics_agreement.rs`, experiment E4) checks that both
//! engines produce the same terminal local-state and memory outcomes on the
//! same programs. Silent (`ε`) steps — sequencing, branch resolution, loop
//! unfolding — are real steps here, exactly as in Figure 4.

use crate::ast::Com;
use crate::machine::ObjectSemantics;
use crate::program::Program;
use rc11_core::{Combined, Tid, Val};

/// A configuration of the AST engine: per-thread residual commands, local
/// states and the combined memory.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AstConfig {
    /// Per-thread residual command (`Skip` = terminated, the paper's `⊥`).
    pub coms: Vec<Com>,
    /// Per-thread register files.
    pub locals: Vec<Vec<Val>>,
    /// Combined memory state.
    pub mem: Combined,
}

impl AstConfig {
    /// The initial configuration of a program.
    pub fn initial(prog: &Program) -> AstConfig {
        AstConfig {
            coms: prog.threads.iter().map(|t| t.body.clone()).collect(),
            locals: prog.initial_locals(),
            mem: Combined::new(&prog.client_inits, &prog.lib_inits, prog.n_threads()),
        }
    }

    /// Canonical form (memory canonicalised) for visited-set dedup.
    #[must_use]
    pub fn canonical(&self) -> AstConfig {
        AstConfig {
            coms: self.coms.clone(),
            locals: self.locals.clone(),
            mem: self.mem.canonical(),
        }
    }

    /// All threads terminated?
    pub fn terminated(&self) -> bool {
        self.coms.iter().all(|c| matches!(c, Com::Skip))
    }
}

/// All steps of one command: `(C, ls) —a→ (C', ls')` combined with the
/// memory constraint `γ, β ⟿ₜᵃ γ', β'`. Returns `(C', ls', mem')` triples.
fn com_steps(
    prog: &Program,
    objs: &dyn ObjectSemantics,
    com: &Com,
    t: Tid,
    ls: &[Val],
    mem: &Combined,
) -> Vec<(Com, Vec<Val>, Combined)> {
    match com {
        Com::Skip => Vec::new(),

        // (r := E, ls) —ε→ (⊥, ls[r := v])
        Com::Assign(r, e) => {
            let v = e.eval(ls).expect("well-typed program");
            let mut ls2 = ls.to_vec();
            ls2[r.idx()] = v;
            vec![(Com::Skip, ls2, mem.clone())]
        }

        // (x :=[R] E, ls) —wr[R](x,v)→ (⊥, ls)
        Com::Write { var, exp, rel } => {
            let v = exp.eval(ls).expect("well-typed program");
            mem.write_preds(var.comp, t, var.loc)
                .into_iter()
                .map(|w| {
                    (Com::Skip, ls.to_vec(), mem.apply_write(var.comp, t, var.loc, v, *rel, w))
                })
                .collect()
        }

        // (r ←[A] x, ls) —rd[A](x,v)→ (⊥, ls[r := v])
        Com::Read { reg, var, acq } => mem
            .read_choices(var.comp, t, var.loc)
            .into_iter()
            .map(|choice| {
                let mut ls2 = ls.to_vec();
                ls2[reg.idx()] = choice.val;
                (
                    Com::Skip,
                    ls2,
                    mem.apply_read(var.comp, t, var.loc, *acq, choice.from),
                )
            })
            .collect(),

        // CAS: failure rule (plain read of v' ≠ u, r := false) and success
        // rule (upd^RA, r := true).
        Com::Cas { reg, var, expect, new } => {
            let u = expect.eval(ls).expect("well-typed program");
            let v = new.eval(ls).expect("well-typed program");
            let mut out = Vec::new();
            for choice in mem.read_choices(var.comp, t, var.loc) {
                if choice.val == u {
                    continue;
                }
                let mut ls2 = ls.to_vec();
                ls2[reg.idx()] = Val::Bool(false);
                out.push((
                    Com::Skip,
                    ls2,
                    mem.apply_read(var.comp, t, var.loc, false, choice.from),
                ));
            }
            for w in mem.update_preds(var.comp, t, var.loc, Some(u)) {
                let mut ls2 = ls.to_vec();
                ls2[reg.idx()] = Val::Bool(true);
                out.push((Com::Skip, ls2, mem.apply_update(var.comp, t, var.loc, v, w)));
            }
            out
        }

        // (r ← FAI(x), ls) —upd^RA(x,u,u+1)→ (⊥, ls[r := u])
        Com::Fai { reg, var } => mem
            .update_preds(var.comp, t, var.loc, None)
            .into_iter()
            .map(|w| {
                let old = mem.wrval_of(var.comp, w);
                let n = old.as_int().expect("FAI over integer variable");
                let mut ls2 = ls.to_vec();
                ls2[reg.idx()] = old;
                (
                    Com::Skip,
                    ls2,
                    mem.apply_update(var.comp, t, var.loc, Val::Int(n + 1), w),
                )
            })
            .collect(),

        Com::MethodCall { reg, obj, method, arg, sync } => {
            let kind = prog.obj_kind(obj.loc).expect("method call on non-object");
            let argv = arg.as_ref().map(|e| e.eval(ls).expect("well-typed program"));
            objs.method_steps(mem, t, obj.loc, kind, *method, argv, *sync)
                .into_iter()
                .map(|(ret, mem2)| {
                    let mut ls2 = ls.to_vec();
                    if let Some(r) = reg {
                        ls2[r.idx()] = ret;
                    }
                    (Com::Skip, ls2, mem2)
                })
                .collect()
        }

        // Sequencing: (v; C2) —ε→ C2 and the congruence rule.
        Com::Seq(a, b) => {
            if matches!(**a, Com::Skip) {
                vec![((**b).clone(), ls.to_vec(), mem.clone())]
            } else {
                com_steps(prog, objs, a, t, ls, mem)
                    .into_iter()
                    .map(|(a2, ls2, mem2)| (a2.then((**b).clone()), ls2, mem2))
                    .collect()
            }
        }

        // (IF, ls) —ε→ (C1, ls) / (C2, ls)
        Com::If { cond, then_, else_ } => {
            let btrue = cond
                .eval(ls)
                .expect("well-typed program")
                .truthy()
                .expect("boolean guard");
            let next = if btrue { (**then_).clone() } else { (**else_).clone() };
            vec![(next, ls.to_vec(), mem.clone())]
        }

        // (WHILE, ls) —ε→ (C; WHILE, ls) / (⊥, ls)
        Com::While { cond, body } => {
            let btrue = cond
                .eval(ls)
                .expect("well-typed program")
                .truthy()
                .expect("boolean guard");
            if btrue {
                vec![((**body).clone().then(com.clone()), ls.to_vec(), mem.clone())]
            } else {
                vec![(Com::Skip, ls.to_vec(), mem.clone())]
            }
        }

        // do C until B —ε→ C; if B then ⊥ else (do C until B)
        Com::DoUntil { body, cond } => {
            let unfolded = (**body).clone().then(Com::If {
                cond: cond.clone(),
                then_: Box::new(Com::Skip),
                else_: Box::new(com.clone()),
            });
            vec![(unfolded, ls.to_vec(), mem.clone())]
        }

        // Labels have no runtime meaning in the AST engine.
        Com::Labeled(_, inner) => com_steps(prog, objs, inner, t, ls, mem),
    }
}

/// All successors of an AST configuration.
pub fn ast_successors(
    prog: &Program,
    objs: &dyn ObjectSemantics,
    cfg: &AstConfig,
) -> Vec<(Tid, AstConfig)> {
    let mut out = Vec::new();
    for (ti, com) in cfg.coms.iter().enumerate() {
        let t = Tid(ti as u8);
        for (c2, ls2, mem2) in com_steps(prog, objs, com, t, &cfg.locals[ti], &cfg.mem) {
            let mut coms = cfg.coms.clone();
            coms[ti] = c2;
            let mut locals = cfg.locals.clone();
            locals[ti] = ls2;
            out.push((t, AstConfig { coms, locals, mem: mem2 }));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinOp, Exp, Reg, VarRef};
    use crate::machine::NoObjects;
    use crate::program::ThreadDef;
    use rc11_core::{Comp, InitLoc, Loc, LocKind, LocTable};
    use std::collections::HashSet;

    fn x() -> VarRef {
        VarRef { comp: Comp::Client, loc: Loc(0) }
    }

    fn mk_prog(threads: Vec<(Com, u16)>) -> Program {
        let mut locs = LocTable::new();
        locs.add("x", LocKind::Var);
        let prog = Program {
            name: "t".into(),
            client_locs: locs,
            client_inits: vec![InitLoc::Var(Val::Int(0))],
            lib_locs: LocTable::new(),
            lib_inits: vec![],
            objects: vec![],
            threads: threads
                .into_iter()
                .map(|(body, n_regs)| ThreadDef {
                    body,
                    n_regs,
                    reg_names: (0..n_regs).map(|i| format!("r{i}")).collect(),
                    reg_inits: vec![Val::Bot; n_regs as usize],
                })
                .collect(),
        };
        prog.validate().unwrap();
        prog
    }

    fn terminal_locals(prog: &Program) -> HashSet<Vec<Vec<Val>>> {
        let mut seen = HashSet::new();
        let mut frontier = vec![AstConfig::initial(prog)];
        seen.insert(frontier[0].canonical());
        let mut terms = HashSet::new();
        while let Some(c) = frontier.pop() {
            let succ = ast_successors(prog, &NoObjects, &c);
            if succ.is_empty() {
                assert!(c.terminated());
                terms.insert(c.locals.clone());
                continue;
            }
            for (_, s) in succ {
                if seen.insert(s.canonical()) {
                    frontier.push(s);
                }
            }
        }
        terms
    }

    #[test]
    fn sequencing_and_assignment() {
        let body = Com::Assign(Reg(0), Exp::Val(Val::Int(1)))
            .then(Com::Assign(Reg(1), Exp::Bin(
                BinOp::Add,
                Box::new(Exp::Reg(Reg(0))),
                Box::new(Exp::Val(Val::Int(1))),
            )));
        let prog = mk_prog(vec![(body, 2)]);
        let terms = terminal_locals(&prog);
        assert_eq!(terms.len(), 1);
        assert!(terms.contains(&vec![vec![Val::Int(1), Val::Int(2)]]));
    }

    #[test]
    fn store_buffering_weak_outcome_reachable() {
        // SB: T1: x:=1; r1←y.  T2: y:=1; r2←x.  Under RA both r1=r2=0 is allowed.
        let mut locs = LocTable::new();
        locs.add("x", LocKind::Var);
        locs.add("y", LocKind::Var);
        let xv = VarRef { comp: Comp::Client, loc: Loc(0) };
        let yv = VarRef { comp: Comp::Client, loc: Loc(1) };
        let t1 = Com::Write { var: xv, exp: Exp::Val(Val::Int(1)), rel: true }
            .then(Com::Read { reg: Reg(0), var: yv, acq: true });
        let t2 = Com::Write { var: yv, exp: Exp::Val(Val::Int(1)), rel: true }
            .then(Com::Read { reg: Reg(0), var: xv, acq: true });
        let prog = Program {
            name: "sb".into(),
            client_locs: locs,
            client_inits: vec![InitLoc::Var(Val::Int(0)), InitLoc::Var(Val::Int(0))],
            lib_locs: LocTable::new(),
            lib_inits: vec![],
            objects: vec![],
            threads: vec![
                ThreadDef { body: t1, n_regs: 1, reg_names: vec!["r1".into()], reg_inits: vec![Val::Bot] },
                ThreadDef { body: t2, n_regs: 1, reg_names: vec!["r2".into()], reg_inits: vec![Val::Bot] },
            ],
        };
        let terms = terminal_locals(&prog);
        let outcomes: HashSet<(Val, Val)> =
            terms.iter().map(|ls| (ls[0][0], ls[1][0])).collect();
        assert!(outcomes.contains(&(Val::Int(0), Val::Int(0))), "SB weak outcome allowed in RA");
        assert!(outcomes.contains(&(Val::Int(1), Val::Int(1))));
        // Coherence: (0,0),(0,1),(1,0),(1,1) all allowed under RA: 4 outcomes.
        assert_eq!(outcomes.len(), 4);
    }

    #[test]
    fn do_until_unfolds_and_terminates() {
        let body = Com::DoUntil {
            body: Box::new(Com::Fai { reg: Reg(0), var: x() }),
            cond: Exp::Bin(BinOp::Eq, Box::new(Exp::Reg(Reg(0))), Box::new(Exp::Val(Val::Int(2)))),
        };
        let prog = mk_prog(vec![(body, 1)]);
        let terms = terminal_locals(&prog);
        assert_eq!(terms.len(), 1);
        assert!(terms.contains(&vec![vec![Val::Int(2)]]), "FAI counts 0,1,2 then exits");
    }
}
