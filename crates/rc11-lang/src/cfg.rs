//! Compilation of `Com` to a flat control-flow graph.
//!
//! The paper's proof outlines are indexed by statement numbers (`pc1`, `pc2`
//! appear *inside* the assertions of Figure 7), so the checker needs the
//! program counter as an honest state component. Compiling the Figure-4
//! grammar to a vector of instructions with explicit jumps gives
//! configurations the shape `(pc⃗, ρ, γ, β)` and makes the paper's
//! `pc_t ∈ {…}` assertions directly evaluable.
//!
//! Labels (`Com::Labeled`) mark the paper's statement numbers. A label's
//! *region* is the instruction range from its first instruction up to the
//! next label; "thread t is at statement k" means t's pc lies in k's region.

use crate::ast::{Com, Exp, Method, ObjRef, Reg, VarRef};
use crate::program::Program;
use std::collections::BTreeMap;

/// One CFG instruction. `Assign`, `Jmp`, `JmpUnless` and `Halt` are *local*
/// (no shared-memory interaction); the rest touch the combined state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Instr {
    /// `r := E`.
    Assign(Reg, Exp),
    /// `x :=[R] E`.
    Write {
        /// Target variable.
        var: VarRef,
        /// Value expression.
        exp: Exp,
        /// Release annotation.
        rel: bool,
    },
    /// `r ←[A] x`.
    Read {
        /// Destination register.
        reg: Reg,
        /// Source variable.
        var: VarRef,
        /// Acquire annotation.
        acq: bool,
    },
    /// `r ← CAS(x, u, v)^RA`.
    Cas {
        /// Success-flag register.
        reg: Reg,
        /// Target variable.
        var: VarRef,
        /// Expected-value expression.
        expect: Exp,
        /// New-value expression.
        new: Exp,
    },
    /// `r ← FAI(x)^RA`.
    Fai {
        /// Old-value register.
        reg: Reg,
        /// Target variable.
        var: VarRef,
    },
    /// A method-call hole (abstract execution).
    Method {
        /// Optional destination register.
        reg: Option<Reg>,
        /// Target object.
        obj: ObjRef,
        /// Method.
        method: Method,
        /// Optional argument.
        arg: Option<Exp>,
        /// Synchronising-variant annotation.
        sync: bool,
    },
    /// Unconditional jump.
    Jmp(u32),
    /// Jump to `target` when `cond` is **false**; fall through when true.
    JmpUnless {
        /// Guard expression.
        cond: Exp,
        /// Jump target when the guard is false.
        target: u32,
    },
    /// Thread termination.
    Halt,
}

impl Instr {
    /// True iff the instruction never touches shared state.
    pub fn is_local(&self) -> bool {
        matches!(self, Instr::Assign(..) | Instr::Jmp(_) | Instr::JmpUnless { .. } | Instr::Halt)
    }
}

/// One thread's compiled code.
#[derive(Debug, Clone)]
pub struct ThreadCfg {
    /// The instruction vector; `pcs` index into it.
    pub instrs: Vec<Instr>,
    /// Label → first instruction of its region, in label order.
    pub labels: BTreeMap<u32, u32>,
    /// Per-pc label region (`region[pc]` = label covering `pc`, if any).
    pub region: Vec<Option<u32>>,
}

impl ThreadCfg {
    /// The label whose region contains `pc` (the paper's `pc_t = k`).
    pub fn label_at(&self, pc: u32) -> Option<u32> {
        self.region.get(pc as usize).copied().flatten()
    }

    /// The pc of the `Halt` instruction (the post-state of the thread).
    pub fn halt_pc(&self) -> u32 {
        (self.instrs.len() - 1) as u32
    }

    /// First instruction pc of label `k`.
    pub fn label_pc(&self, k: u32) -> Option<u32> {
        self.labels.get(&k).copied()
    }
}

/// A compiled program: per-thread CFGs plus the source program (layout,
/// initialisation, object table).
#[derive(Debug, Clone)]
pub struct CfgProgram {
    /// Per-thread code.
    pub threads: Vec<ThreadCfg>,
    /// The source program (locations, inits, objects, names).
    pub source: Program,
}

impl CfgProgram {
    /// Number of threads.
    pub fn n_threads(&self) -> usize {
        self.threads.len()
    }
}

struct Compiler {
    instrs: Vec<Instr>,
    labels: BTreeMap<u32, u32>,
}

impl Compiler {
    fn emit(&mut self, i: Instr) -> u32 {
        let pc = self.instrs.len() as u32;
        self.instrs.push(i);
        pc
    }

    fn here(&self) -> u32 {
        self.instrs.len() as u32
    }

    fn compile(&mut self, c: &Com) {
        match c {
            Com::Skip => {}
            Com::Assign(r, e) => {
                self.emit(Instr::Assign(*r, e.clone()));
            }
            Com::Write { var, exp, rel } => {
                self.emit(Instr::Write { var: *var, exp: exp.clone(), rel: *rel });
            }
            Com::Read { reg, var, acq } => {
                self.emit(Instr::Read { reg: *reg, var: *var, acq: *acq });
            }
            Com::Cas { reg, var, expect, new } => {
                self.emit(Instr::Cas {
                    reg: *reg,
                    var: *var,
                    expect: expect.clone(),
                    new: new.clone(),
                });
            }
            Com::Fai { reg, var } => {
                self.emit(Instr::Fai { reg: *reg, var: *var });
            }
            Com::MethodCall { reg, obj, method, arg, sync } => {
                self.emit(Instr::Method {
                    reg: *reg,
                    obj: *obj,
                    method: *method,
                    arg: arg.clone(),
                    sync: *sync,
                });
            }
            Com::Seq(a, b) => {
                self.compile(a);
                self.compile(b);
            }
            Com::If { cond, then_, else_ } => {
                let jmp_else = self.emit(Instr::JmpUnless { cond: cond.clone(), target: 0 });
                self.compile(then_);
                if matches!(**else_, Com::Skip) {
                    let end = self.here();
                    self.patch(jmp_else, end);
                } else {
                    let jmp_end = self.emit(Instr::Jmp(0));
                    let else_start = self.here();
                    self.patch(jmp_else, else_start);
                    self.compile(else_);
                    let end = self.here();
                    self.patch(jmp_end, end);
                }
            }
            Com::While { cond, body } => {
                let top = self.here();
                let jmp_end = self.emit(Instr::JmpUnless { cond: cond.clone(), target: 0 });
                self.compile(body);
                self.emit(Instr::Jmp(top));
                let end = self.here();
                self.patch(jmp_end, end);
            }
            Com::DoUntil { body, cond } => {
                let top = self.here();
                self.compile(body);
                self.emit(Instr::JmpUnless { cond: cond.clone(), target: top });
            }
            Com::Labeled(k, inner) => {
                let pc = self.here();
                let prev = self.labels.insert(*k, pc);
                assert!(prev.is_none(), "duplicate label {k}");
                self.compile(inner);
            }
        }
    }

    fn patch(&mut self, at: u32, target: u32) {
        match &mut self.instrs[at as usize] {
            Instr::Jmp(t) => *t = target,
            Instr::JmpUnless { target: t, .. } => *t = target,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }
}

/// Compile every thread of `prog`. Panics on invalid programs (call
/// [`Program::validate`] first for a graceful error).
pub fn compile(prog: &Program) -> CfgProgram {
    let threads = prog
        .threads
        .iter()
        .map(|t| {
            let mut c = Compiler { instrs: Vec::new(), labels: BTreeMap::new() };
            c.compile(&t.body);
            c.emit(Instr::Halt);
            // Region map: label pcs partition [first-label, end).
            let mut region = vec![None; c.instrs.len()];
            let mut bounds: Vec<(u32, u32)> = c.labels.iter().map(|(&k, &pc)| (pc, k)).collect();
            bounds.sort_unstable();
            for (i, &(start, k)) in bounds.iter().enumerate() {
                let end = bounds.get(i + 1).map_or(c.instrs.len() as u32, |&(s, _)| s);
                for pc in start..end {
                    region[pc as usize] = Some(k);
                }
            }
            ThreadCfg { instrs: c.instrs, labels: c.labels, region }
        })
        .collect();
    CfgProgram { threads, source: prog.clone() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::BinOp;
    use rc11_core::{Comp, Loc, Val};

    fn var(loc: u16) -> VarRef {
        VarRef { comp: Comp::Client, loc: Loc(loc) }
    }

    fn exp_true() -> Exp {
        Exp::Val(Val::Bool(true))
    }

    fn prog_of(body: Com, n_regs: u16) -> Program {
        use crate::program::ThreadDef;
        use rc11_core::{InitLoc, LocKind, LocTable};
        let mut locs = LocTable::new();
        locs.add("x", LocKind::Var);
        Program {
            name: "t".into(),
            client_locs: locs,
            client_inits: vec![InitLoc::Var(Val::Int(0))],
            lib_locs: LocTable::new(),
            lib_inits: vec![],
            objects: vec![],
            threads: vec![ThreadDef {
                body,
                n_regs,
                reg_names: (0..n_regs).map(|i| format!("r{i}")).collect(),
                reg_inits: vec![Val::Bot; n_regs as usize],
            }],
        }
    }

    #[test]
    fn straight_line_compiles_in_order() {
        let body = Com::Write { var: var(0), exp: Exp::Val(Val::Int(1)), rel: false }
            .then(Com::Read { reg: Reg(0), var: var(0), acq: false });
        let cfg = compile(&prog_of(body, 1));
        let t = &cfg.threads[0];
        assert_eq!(t.instrs.len(), 3); // write, read, halt
        assert!(matches!(t.instrs[0], Instr::Write { .. }));
        assert!(matches!(t.instrs[1], Instr::Read { .. }));
        assert!(matches!(t.instrs[2], Instr::Halt));
    }

    #[test]
    fn do_until_jumps_back_when_false() {
        let body = Com::DoUntil {
            body: Box::new(Com::Read { reg: Reg(0), var: var(0), acq: false }),
            cond: Exp::Bin(
                BinOp::Eq,
                Box::new(Exp::Reg(Reg(0))),
                Box::new(Exp::Val(Val::Int(1))),
            ),
        };
        let cfg = compile(&prog_of(body, 1));
        let t = &cfg.threads[0];
        assert!(matches!(t.instrs[1], Instr::JmpUnless { target: 0, .. }));
    }

    #[test]
    fn if_without_else_skips_over() {
        let body = Com::If {
            cond: exp_true(),
            then_: Box::new(Com::Write { var: var(0), exp: Exp::Val(Val::Int(1)), rel: false }),
            else_: Box::new(Com::Skip),
        };
        let cfg = compile(&prog_of(body, 0));
        let t = &cfg.threads[0];
        assert!(matches!(t.instrs[0], Instr::JmpUnless { target: 2, .. }));
    }

    #[test]
    fn while_loop_shape() {
        let body = Com::While {
            cond: exp_true(),
            body: Box::new(Com::Write { var: var(0), exp: Exp::Val(Val::Int(1)), rel: false }),
        };
        let cfg = compile(&prog_of(body, 0));
        let t = &cfg.threads[0];
        // JmpUnless(end), Write, Jmp(0), Halt
        assert!(matches!(t.instrs[0], Instr::JmpUnless { target: 3, .. }));
        assert!(matches!(t.instrs[2], Instr::Jmp(0)));
    }

    #[test]
    fn labels_and_regions() {
        let body = Com::Labeled(
            1,
            Box::new(Com::Write { var: var(0), exp: Exp::Val(Val::Int(5)), rel: false }),
        )
        .then(Com::Labeled(
            2,
            Box::new(Com::DoUntil {
                body: Box::new(Com::Read { reg: Reg(0), var: var(0), acq: false }),
                cond: exp_true(),
            }),
        ));
        let cfg = compile(&prog_of(body, 1));
        let t = &cfg.threads[0];
        assert_eq!(t.label_pc(1), Some(0));
        assert_eq!(t.label_pc(2), Some(1));
        assert_eq!(t.label_at(0), Some(1));
        assert_eq!(t.label_at(1), Some(2));
        assert_eq!(t.label_at(2), Some(2)); // the loop's JmpUnless
        assert_eq!(t.label_at(t.halt_pc()), Some(2));
    }

    #[test]
    #[should_panic(expected = "duplicate label")]
    fn duplicate_labels_rejected() {
        let body = Com::Labeled(1, Box::new(Com::Skip)).then(Com::Labeled(
            1,
            Box::new(Com::Write { var: var(0), exp: Exp::Val(Val::Int(1)), rel: false }),
        ));
        compile(&prog_of(body, 0));
    }
}
