//! Configurations and successor enumeration over compiled programs.
//!
//! A configuration is the tuple `(P, ρ, γ, β)` of Section 3.2 with the
//! program component flattened to per-thread pcs. `successors` enumerates
//! every `=⇒` step: for each thread, the program semantics proposes an
//! action and the memory semantics (rc11-core) constrains/fans out the
//! possible next states. Abstract method calls are delegated through
//! [`ObjectSemantics`] (implemented by rc11-objects), keeping this crate's
//! dependency surface to the memory substrate only.

use crate::ast::{Method, Reg};
use crate::cfg::{CfgProgram, Instr};
use crate::program::ObjKind;
use rc11_core::{AccessKind, Combined, Loc, StepFootprint, Tid, Val};

/// Execution semantics of abstract objects (Section 4), supplied by the
/// objects crate. Given the call description and current memory, returns
/// every possible `(return value, successor memory)` pair. An empty vector
/// means the call is *blocked* (e.g. `Acquire` on a held lock).
pub trait ObjectSemantics {
    /// Enumerate the possible outcomes of one abstract method call.
    #[allow(clippy::too_many_arguments)]
    fn method_steps(
        &self,
        mem: &Combined,
        tid: Tid,
        obj: Loc,
        kind: ObjKind,
        method: Method,
        arg: Option<Val>,
        sync: bool,
    ) -> Vec<(Val, Combined)>;
}

/// Object semantics for programs without abstract objects: every method
/// call is a program error.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoObjects;

impl ObjectSemantics for NoObjects {
    fn method_steps(
        &self,
        _mem: &Combined,
        _tid: Tid,
        _obj: Loc,
        _kind: ObjKind,
        _method: Method,
        _arg: Option<Val>,
        _sync: bool,
    ) -> Vec<(Val, Combined)> {
        panic!("method call executed under NoObjects semantics")
    }
}

/// Per-thread register renaming maps between each thread's own register
/// numbering and the *representative* numbering of its thread-symmetry
/// group (first-use order of the group's representative member). Threads
/// outside any symmetry group carry identity maps. Produced by the
/// detection pass in `rc11-analyze`; consumed by the symmetry-aware
/// canonicalisation walks below.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymMaps {
    /// `to_rep[t][r]` — the representative-numbering index of thread `t`'s
    /// register `r`.
    pub to_rep: Vec<Vec<u16>>,
    /// `from_rep[t][k]` — the register of thread `t` that plays
    /// representative index `k` (the inverse of `to_rep[t]`).
    pub from_rep: Vec<Vec<u16>>,
}

impl SymMaps {
    /// Identity maps for a program whose threads have the given register
    /// counts.
    pub fn identity(n_regs: &[u16]) -> SymMaps {
        let id: Vec<Vec<u16>> = n_regs.iter().map(|&n| (0..n).collect()).collect();
        SymMaps { to_rep: id.clone(), from_rep: id }
    }
}

/// A machine configuration: per-thread pcs, per-thread register files and
/// the combined memory state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Config {
    /// Per-thread program counters.
    pub pcs: Vec<u32>,
    /// Per-thread register files (`ρ`).
    pub locals: Vec<Vec<Val>>,
    /// The combined client–library memory state.
    pub mem: Combined,
}

impl Config {
    /// The initial configuration of a compiled program.
    pub fn initial(prog: &CfgProgram) -> Config {
        let src = &prog.source;
        Config {
            pcs: vec![0; prog.n_threads()],
            locals: src.initial_locals(),
            mem: Combined::new(&src.client_inits, &src.lib_inits, prog.n_threads()),
        }
    }

    /// Approximate heap footprint of this configuration in bytes — what an
    /// interned state arena pays to hold it. Feeds the exploration
    /// engines' approximate memory budget (`Budget::max_mem_bytes` /
    /// `StopReason::MemBudget` in rc11-check).
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        size_of::<Config>()
            + self.pcs.len() * size_of::<u32>()
            + self
                .locals
                .iter()
                .map(|l| size_of::<Vec<rc11_core::Val>>() + l.len() * size_of::<rc11_core::Val>())
                .sum::<usize>()
            + self.mem.approx_bytes()
    }

    /// Canonical form for visited-state deduplication: memory canonicalised,
    /// pcs/locals as-is (they are already canonical).
    #[must_use]
    pub fn canonical(&self) -> Config {
        Config { pcs: self.pcs.clone(), locals: self.locals.clone(), mem: self.mem.canonical() }
    }

    /// The memory state's canonical permutations
    /// ([`rc11_core::Combined::canonical_perms`]) — the shared input of the
    /// zero-rebuild fingerprint/equality walks and of
    /// [`Config::canonical_with`].
    #[must_use]
    pub fn canonical_perms(&self) -> rc11_core::CanonPerms {
        self.mem.canonical_perms()
    }

    /// [`Config::canonical`] with precomputed permutations, so a caller
    /// that already fingerprinted this configuration materialises the
    /// canonical form without recomputing them.
    #[must_use]
    pub fn canonical_with(&self, perms: &rc11_core::CanonPerms) -> Config {
        Config {
            pcs: self.pcs.clone(),
            locals: self.locals.clone(),
            mem: self.mem.canonical_with(perms),
        }
    }

    /// Stream this configuration's canonical serialisation into `h`
    /// without materialising it: pcs and locals as-is (already canonical),
    /// memory via the zero-rebuild canonical walk. Two configurations feed
    /// identical streams iff their canonical forms are equal.
    pub fn hash_canonical_with<H: std::hash::Hasher>(
        &self,
        perms: &rc11_core::CanonPerms,
        h: &mut H,
    ) {
        use std::hash::Hash;
        self.pcs.hash(h);
        self.locals.hash(h);
        self.mem.hash_canonical_with(perms, h);
    }

    /// [`Config::hash_canonical_with`], computing the permutations
    /// internally.
    pub fn hash_canonical<H: std::hash::Hasher>(&self, h: &mut H) {
        self.hash_canonical_with(&self.canonical_perms(), h);
    }

    /// True iff `self.canonical() == *canon`, decided without building the
    /// canonical form. `canon` must already be canonical — this is the
    /// collision-bucket confirmation step of fingerprint deduplication.
    #[must_use]
    pub fn canonical_eq_with(&self, perms: &rc11_core::CanonPerms, canon: &Config) -> bool {
        self.pcs == canon.pcs
            && self.locals == canon.locals
            && self.mem.canonical_eq_with(perms, &canon.mem)
    }

    /// [`Config::canonical_eq_with`], computing the permutations
    /// internally.
    #[must_use]
    pub fn canonical_eq(&self, canon: &Config) -> bool {
        self.canonical_eq_with(&self.canonical_perms(), canon)
    }

    /// The thread-permuted control state `(pcs, locals)` under
    /// `sigma[old] = new`: slot `sigma[t]` receives thread `t`'s pc and its
    /// register file re-expressed in the destination slot's numbering via
    /// `maps` (`file'[k] = file_t[from_rep_t[to_rep_dest[k]]]`). Only
    /// meaningful when `sigma` permutes threads within symmetry groups
    /// (equal instruction streams modulo the register renaming), which is
    /// what `rc11-analyze` detects.
    fn permuted_control(&self, sigma: &[u8], maps: &SymMaps) -> (Vec<u32>, Vec<Vec<Val>>) {
        let n = self.pcs.len();
        let mut pcs = vec![0u32; n];
        let mut locals: Vec<Vec<Val>> = vec![Vec::new(); n];
        for t in 0..n {
            let dest = sigma[t] as usize;
            pcs[dest] = self.pcs[t];
            let file = &self.locals[t];
            locals[dest] = maps.to_rep[dest]
                .iter()
                .map(|&rep| file[maps.from_rep[t][rep as usize] as usize])
                .collect();
        }
        (pcs, locals)
    }

    /// Rebuild this configuration with threads permuted by
    /// `sigma[old] = new`: control state via [`SymMaps`]-aware slot moves,
    /// memory via [`rc11_core::Combined::permute_threads`]. When `sigma` is
    /// a program automorphism the result is a reachable configuration with
    /// the same future behaviour up to the same permutation.
    #[must_use]
    pub fn permute_threads(&self, sigma: &[u8], maps: &SymMaps) -> Config {
        let (pcs, locals) = self.permuted_control(sigma, maps);
        Config { pcs, locals, mem: self.mem.permute_threads(sigma) }
    }

    /// [`Config::hash_canonical_with`] honouring the thread permutation in
    /// `perms.threads`: streams the canonical serialisation of the
    /// thread-permuted configuration. Feeds byte-identical input to `h` as
    /// the plain walk over `self.permute_threads(σ).canonical()` would, so
    /// sym-fingerprints and plain fingerprints of materialised sym-canonical
    /// forms coincide. Falls back to the plain walk when `perms.threads` is
    /// `None`.
    pub fn hash_canonical_sym<H: std::hash::Hasher>(
        &self,
        perms: &rc11_core::CanonPerms,
        maps: &SymMaps,
        h: &mut H,
    ) {
        use std::hash::Hash;
        match &perms.threads {
            Some(sigma) => {
                let (pcs, locals) = self.permuted_control(sigma, maps);
                pcs.hash(h);
                locals.hash(h);
                self.mem.hash_canonical_with(perms, h);
            }
            None => self.hash_canonical_with(perms, h),
        }
    }

    /// [`Config::canonical_eq_with`] honouring the thread permutation in
    /// `perms.threads` (see [`Config::hash_canonical_sym`]).
    #[must_use]
    pub fn canonical_eq_sym(
        &self,
        perms: &rc11_core::CanonPerms,
        maps: &SymMaps,
        canon: &Config,
    ) -> bool {
        match &perms.threads {
            Some(sigma) => {
                let (pcs, locals) = self.permuted_control(sigma, maps);
                pcs == canon.pcs
                    && locals == canon.locals
                    && self.mem.canonical_eq_with(perms, &canon.mem)
            }
            None => self.canonical_eq_with(perms, canon),
        }
    }

    /// [`Config::canonical_with`] honouring the thread permutation in
    /// `perms.threads`: materialises the thread-permuted canonical form.
    #[must_use]
    pub fn canonical_sym(&self, perms: &rc11_core::CanonPerms, maps: &SymMaps) -> Config {
        match &perms.threads {
            Some(sigma) => {
                let (pcs, locals) = self.permuted_control(sigma, maps);
                Config { pcs, locals, mem: self.mem.canonical_with(perms) }
            }
            None => self.canonical_with(perms),
        }
    }

    /// True iff every thread is at `Halt`.
    pub fn terminated(&self, prog: &CfgProgram) -> bool {
        self.pcs
            .iter()
            .enumerate()
            .all(|(t, &pc)| matches!(prog.threads[t].instrs[pc as usize], Instr::Halt))
    }

    /// Register value of thread `t`.
    pub fn reg(&self, t: usize, r: Reg) -> Val {
        self.locals[t][r.idx()]
    }
}

/// Step-generation options.
#[derive(Debug, Clone, Copy)]
pub struct StepOptions {
    /// Fuse runs of *local* instructions (assignments, jumps) into the
    /// preceding step, stopping at labels, shared accesses and `Halt`.
    /// Sound for reachability of label/shared points (local steps commute
    /// with every other thread's steps); disable for instruction-granular
    /// Owicki–Gries interference checking.
    pub fuse_local: bool,
}

impl Default for StepOptions {
    fn default() -> Self {
        StepOptions { fuse_local: true }
    }
}

/// Execute local instructions of thread `t` starting at its current pc until
/// a fusion barrier: a shared instruction, `Halt`, or a labelled pc (after
/// at least one instruction has executed). Mutates `cfg` in place.
fn run_local_chain(prog: &CfgProgram, cfg: &mut Config, t: usize, mut budget: u32) {
    let th = &prog.threads[t];
    loop {
        let pc = cfg.pcs[t];
        let instr = &th.instrs[pc as usize];
        match instr {
            Instr::Assign(r, e) => {
                let v = e.eval(&cfg.locals[t]).expect("well-typed program");
                cfg.locals[t][r.idx()] = v;
                cfg.pcs[t] = pc + 1;
            }
            Instr::Jmp(target) => cfg.pcs[t] = *target,
            Instr::JmpUnless { cond, target } => {
                let b = cond
                    .eval(&cfg.locals[t])
                    .expect("well-typed program")
                    .truthy()
                    .expect("boolean guard");
                cfg.pcs[t] = if b { pc + 1 } else { *target };
            }
            _ => return, // shared instruction or Halt: barrier
        }
        // Barrier at labelled pcs so proof-outline points are never skipped.
        if th.label_at(cfg.pcs[t]).is_some() && th.label_at(pc) != th.label_at(cfg.pcs[t]) {
            return;
        }
        budget -= 1;
        assert!(budget > 0, "thread {t}: local-instruction loop without shared access");
    }
}

/// The footprint of thread `t`'s next step at `cfg` — the input of the
/// partial-order-reduction independence oracle
/// ([`rc11_core::StepFootprint::may_conflict`]).
///
/// The footprint summarises **every** successor the thread can produce
/// from here, because sleep-set pruning skips threads wholesale: a `Cas`
/// fans out into failure reads and success updates, so it reports the
/// write-capable [`AccessKind::Update`]; a leading local instruction (and
/// the whole fused chain behind it — fusion barriers stop *before* the
/// next shared access) touches nothing shared and reports a local
/// footprint, as does a halted thread. The shared access an instruction
/// performs is static — its location and component are fixed in the
/// instruction — so the footprint depends only on `cfg.pcs[t]` **except**
/// for two state-dependent refinements. First, a `Cas` none of whose
/// uncovered observable predecessors carries the expected value can only
/// *fail*, i.e. only relaxed-read, and is footprinted as a read. Second,
/// a `pop`/`deq` on an object with no uncovered insert can only return
/// `Empty`, which performs no operation at all (the object semantics
/// return the memory unchanged), so it too is footprinted as a read —
/// empty-spinning ADT retry loops commute the same way CAS spin loops
/// do. Both refinements are as persistent as the rest (the property
/// sleep sets need): a step independent of a read of `x` touches neither
/// `x`'s history nor the reader's views, so the success-impossible /
/// still-empty verdict survives it — while any step that could create a
/// matching uncovered operation writes `x` and conflicts with the read
/// footprint anyway.
///
/// When the state already determines *which* operation a step covers —
/// a CAS with exactly one matching uncovered predecessor, an FAI with
/// one uncovered predecessor, or an ADT removal (the stack's top / the
/// queue's front are global properties of the state) — the footprint
/// records that identity in [`rc11_core::Access::covers`]. The conflict
/// oracle stays covers-blind (two removals covering different inserts
/// still race on `mo`); the identities feed A7's DPOR trace battery.
pub fn thread_footprint(prog: &CfgProgram, cfg: &Config, t: usize) -> StepFootprint {
    let tid = Tid(t as u8);
    match &prog.threads[t].instrs[cfg.pcs[t] as usize] {
        Instr::Halt | Instr::Assign(..) | Instr::Jmp(_) | Instr::JmpUnless { .. } => {
            StepFootprint::local(tid)
        }
        Instr::Write { var, rel, .. } => {
            StepFootprint::access(tid, var.comp, var.loc, AccessKind::Write { rel: *rel })
        }
        Instr::Read { var, acq, .. } => {
            StepFootprint::access(tid, var.comp, var.loc, AccessKind::Read { acq: *acq })
        }
        Instr::Cas { var, expect, .. } => {
            let u = expect.eval(&cfg.locals[t]).expect("well-typed program");
            let preds = cfg.mem.update_preds(var.comp, tid, var.loc, Some(u));
            let kind = if !preds.is_empty() {
                AccessKind::Update
            } else {
                // A spinning CAS that can only fail is a relaxed read
                // (Figure 4's failure case) — it commutes with other
                // read-only steps on the location, which is where lock
                // spin loops win their reduction.
                AccessKind::Read { acq: false }
            };
            // With exactly one matching uncovered predecessor, the success
            // branch's cover is already determined by this state.
            let covers = (preds.len() == 1).then(|| preds[0]);
            StepFootprint::access_covering(tid, var.comp, var.loc, kind, covers)
        }
        Instr::Fai { var, .. } => {
            let preds = cfg.mem.update_preds(var.comp, tid, var.loc, None);
            let covers = (preds.len() == 1).then(|| preds[0]);
            StepFootprint::access_covering(tid, var.comp, var.loc, AccessKind::Update, covers)
        }
        Instr::Method { obj, method, sync, .. } => {
            // State-dependent refinements mirroring the CAS one above: an
            // ADT removal (pop/deq) covers a *state-determined* insert —
            // the stack's global top or the queue's front — and, on an
            // empty object, performs no operation at all. An empty pop/deq
            // is literally state-preserving (see rc11-objects:
            // `pop_steps`/`deq_steps` return the memory unchanged), so it
            // is footprinted as a relaxed read: it commutes with other
            // read-only steps on the object, which is where empty-spinning
            // ADT clients win their reduction. The verdict is as
            // persistent as the CAS one: only a new uncovered Push/Enq can
            // make the object non-empty, and inserting one is a Method
            // write on this location — a conflict with the read footprint.
            let removal_target = |is_match: fn(&rc11_core::MethodOp) -> bool,
                                  newest_first: bool| {
                let lib = cfg.mem.lib();
                let mut uncovered = lib
                    .mo(obj.loc)
                    .iter()
                    .copied()
                    .filter(|&w| !lib.is_covered(w))
                    .filter(|&w| lib.op(w).act.method().as_ref().is_some_and(is_match));
                if newest_first {
                    uncovered.next_back()
                } else {
                    uncovered.next()
                }
            };
            let (kind, covers) = match method {
                // The abstract register's read never modifies the object
                // history — it is a Figure-5 read over method operations.
                Method::RegRead => (AccessKind::Read { acq: *sync }, None),
                Method::Pop => match removal_target(
                    |m| matches!(m, rc11_core::MethodOp::Push { .. }),
                    true,
                ) {
                    Some(top) => (AccessKind::Method { sync: *sync }, Some(top)),
                    None => (AccessKind::Read { acq: false }, None),
                },
                Method::Deq => match removal_target(
                    |m| matches!(m, rc11_core::MethodOp::Enq { .. }),
                    false,
                ) {
                    Some(front) => (AccessKind::Method { sync: *sync }, Some(front)),
                    None => (AccessKind::Read { acq: false }, None),
                },
                _ => (AccessKind::Method { sync: *sync }, None),
            };
            // Objects always live in the library component (`ObjRef`).
            StepFootprint::access_covering(tid, rc11_core::Comp::Lib, obj.loc, kind, covers)
        }
    }
}

/// All successor configurations of `cfg` by a step of thread `t`, or `None`
/// entries filtered out. An empty result means `t` is blocked or halted.
pub fn thread_successors(
    prog: &CfgProgram,
    objs: &dyn ObjectSemantics,
    cfg: &Config,
    t: usize,
    opts: StepOptions,
) -> Vec<Config> {
    let th = &prog.threads[t];
    let tid = Tid(t as u8);
    let pc = cfg.pcs[t];
    let instr = &th.instrs[pc as usize];
    let ls = &cfg.locals[t];

    let finish = |mut c: Config| -> Config {
        if opts.fuse_local {
            run_local_chain(prog, &mut c, t, 100_000);
        }
        c
    };

    let mut out = Vec::new();
    match instr {
        Instr::Halt => {}
        // A leading local instruction: one deterministic (fused) step.
        Instr::Assign(..) | Instr::Jmp(_) | Instr::JmpUnless { .. } => {
            let mut c = cfg.clone();
            if opts.fuse_local {
                run_local_chain(prog, &mut c, t, 100_000);
            } else {
                // Single local step.
                let th = &prog.threads[t];
                let pc = c.pcs[t];
                match &th.instrs[pc as usize] {
                    Instr::Assign(r, e) => {
                        let v = e.eval(&c.locals[t]).expect("well-typed program");
                        c.locals[t][r.idx()] = v;
                        c.pcs[t] = pc + 1;
                    }
                    Instr::Jmp(target) => c.pcs[t] = *target,
                    Instr::JmpUnless { cond, target } => {
                        let b = cond
                            .eval(&c.locals[t])
                            .expect("well-typed program")
                            .truthy()
                            .expect("boolean guard");
                        c.pcs[t] = if b { pc + 1 } else { *target };
                    }
                    _ => unreachable!(),
                }
            }
            out.push(c);
        }
        Instr::Write { var, exp, rel } => {
            let v = exp.eval(ls).expect("well-typed program");
            for w in cfg.mem.write_preds(var.comp, tid, var.loc) {
                let mem = cfg.mem.apply_write(var.comp, tid, var.loc, v, *rel, w);
                let mut c = Config { pcs: cfg.pcs.clone(), locals: cfg.locals.clone(), mem };
                c.pcs[t] = pc + 1;
                out.push(finish(c));
            }
        }
        Instr::Read { reg, var, acq } => {
            for choice in cfg.mem.read_choices(var.comp, tid, var.loc) {
                let mem = cfg.mem.apply_read(var.comp, tid, var.loc, *acq, choice.from);
                let mut c = Config { pcs: cfg.pcs.clone(), locals: cfg.locals.clone(), mem };
                c.locals[t][reg.idx()] = choice.val;
                c.pcs[t] = pc + 1;
                out.push(finish(c));
            }
        }
        Instr::Cas { reg, var, expect, new } => {
            let u = expect.eval(ls).expect("well-typed program");
            let v = new.eval(ls).expect("well-typed program");
            // Failure: a plain relaxed read of any value ≠ u (Figure 4).
            for choice in cfg.mem.read_choices(var.comp, tid, var.loc) {
                if choice.val == u {
                    continue;
                }
                let mem = cfg.mem.apply_read(var.comp, tid, var.loc, false, choice.from);
                let mut c = Config { pcs: cfg.pcs.clone(), locals: cfg.locals.clone(), mem };
                c.locals[t][reg.idx()] = Val::Bool(false);
                c.pcs[t] = pc + 1;
                out.push(finish(c));
            }
            // Success: an RA update of an uncovered observable op with value u.
            for w in cfg.mem.update_preds(var.comp, tid, var.loc, Some(u)) {
                let mem = cfg.mem.apply_update(var.comp, tid, var.loc, v, w);
                let mut c = Config { pcs: cfg.pcs.clone(), locals: cfg.locals.clone(), mem };
                c.locals[t][reg.idx()] = Val::Bool(true);
                c.pcs[t] = pc + 1;
                out.push(finish(c));
            }
        }
        Instr::Fai { reg, var } => {
            for w in cfg.mem.update_preds(var.comp, tid, var.loc, None) {
                let old = cfg.mem.wrval_of(var.comp, w);
                let old_n = old.as_int().expect("FAI over integer variable");
                let mem = cfg.mem.apply_update(var.comp, tid, var.loc, Val::Int(old_n + 1), w);
                let mut c = Config { pcs: cfg.pcs.clone(), locals: cfg.locals.clone(), mem };
                c.locals[t][reg.idx()] = old;
                c.pcs[t] = pc + 1;
                out.push(finish(c));
            }
        }
        Instr::Method { reg, obj, method, arg, sync } => {
            let kind = prog
                .source
                .obj_kind(obj.loc)
                .expect("method call on a location without an object kind");
            let argv = arg.as_ref().map(|e| e.eval(ls).expect("well-typed program"));
            for (ret, mem) in objs.method_steps(&cfg.mem, tid, obj.loc, kind, *method, argv, *sync)
            {
                let mut c = Config { pcs: cfg.pcs.clone(), locals: cfg.locals.clone(), mem };
                if let Some(r) = reg {
                    c.locals[t][r.idx()] = ret;
                }
                c.pcs[t] = pc + 1;
                out.push(finish(c));
            }
        }
    }
    out
}

/// All successors of `cfg` across all threads, tagged with the moving
/// thread.
pub fn successors(
    prog: &CfgProgram,
    objs: &dyn ObjectSemantics,
    cfg: &Config,
    opts: StepOptions,
) -> Vec<(Tid, Config)> {
    let mut out = Vec::new();
    for t in 0..prog.n_threads() {
        for c in thread_successors(prog, objs, cfg, t, opts) {
            out.push((Tid(t as u8), c));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinOp, Com, Exp, VarRef};
    use crate::cfg::compile;
    use crate::program::{Program, ThreadDef};
    use rc11_core::{Comp, InitLoc, LocKind, LocTable};

    fn x() -> VarRef {
        VarRef { comp: Comp::Client, loc: Loc(0) }
    }

    fn mk_prog(threads: Vec<(Com, u16)>) -> CfgProgram {
        let mut locs = LocTable::new();
        locs.add("x", LocKind::Var);
        let prog = Program {
            name: "test".into(),
            client_locs: locs,
            client_inits: vec![InitLoc::Var(Val::Int(0))],
            lib_locs: LocTable::new(),
            lib_inits: vec![],
            objects: vec![],
            threads: threads
                .into_iter()
                .map(|(body, n_regs)| ThreadDef {
                    body,
                    n_regs,
                    reg_names: (0..n_regs).map(|i| format!("r{i}")).collect(),
                    reg_inits: vec![Val::Bot; n_regs as usize],
                })
                .collect(),
        };
        prog.validate().unwrap();
        compile(&prog)
    }

    /// Exhaustive exploration helper (tiny BFS used only by these tests).
    fn reachable_terminals(prog: &CfgProgram, opts: StepOptions) -> Vec<Config> {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        let mut frontier = vec![Config::initial(prog)];
        let mut terminals = Vec::new();
        seen.insert(frontier[0].canonical());
        while let Some(c) = frontier.pop() {
            let succs = successors(prog, &NoObjects, &c, opts);
            if succs.is_empty() {
                terminals.push(c);
                continue;
            }
            for (_, s) in succs {
                if seen.insert(s.canonical()) {
                    frontier.push(s);
                }
            }
        }
        terminals
    }

    #[test]
    fn single_thread_write_read() {
        let body = Com::Write { var: x(), exp: Exp::Val(Val::Int(7)), rel: false }
            .then(Com::Read { reg: Reg(0), var: x(), acq: false });
        let prog = mk_prog(vec![(body, 1)]);
        let terms = reachable_terminals(&prog, StepOptions::default());
        assert_eq!(terms.len(), 1);
        assert_eq!(terms[0].reg(0, Reg(0)), Val::Int(7));
    }

    #[test]
    fn cas_success_and_failure_both_explored() {
        // Two threads CAS x: 0 -> 1; exactly one succeeds per execution.
        let cas = |reg| Com::Cas {
            reg,
            var: x(),
            expect: Exp::Val(Val::Int(0)),
            new: Exp::Val(Val::Int(1)),
        };
        let prog = mk_prog(vec![(cas(Reg(0)), 1), (cas(Reg(0)), 1)]);
        let terms = reachable_terminals(&prog, StepOptions::default());
        assert!(!terms.is_empty());
        for t in &terms {
            let a = t.reg(0, Reg(0));
            let b = t.reg(1, Reg(0));
            assert!(
                a == Val::Bool(true) && b == Val::Bool(false)
                    || a == Val::Bool(false) && b == Val::Bool(true)
                    // both can succeed if the second CASes the first's update? No:
                    // value is then 1 ≠ 0, so no. Both-false impossible: last one
                    // sees 0 if first failed... first can only fail by reading 1,
                    // impossible before any success. So exactly one true.
                    ,
                "exactly one CAS must win, got {a:?}, {b:?}"
            );
        }
    }

    #[test]
    fn fai_returns_old_values_in_any_order() {
        let fai = |reg| Com::Fai { reg, var: x() };
        let prog = mk_prog(vec![(fai(Reg(0)), 1), (fai(Reg(0)), 1)]);
        let terms = reachable_terminals(&prog, StepOptions::default());
        for t in &terms {
            let mut got = vec![t.reg(0, Reg(0)), t.reg(1, Reg(0))];
            got.sort();
            assert_eq!(got, vec![Val::Int(0), Val::Int(1)], "FAI hands out 0 and 1");
        }
    }

    #[test]
    fn loop_until_terminates_via_state_revisit() {
        // T1: do r ← x until r = 1;   T2: x := 1.
        let t1 = Com::DoUntil {
            body: Box::new(Com::Read { reg: Reg(0), var: x(), acq: false }),
            cond: Exp::Bin(BinOp::Eq, Box::new(Exp::Reg(Reg(0))), Box::new(Exp::Val(Val::Int(1)))),
        };
        let t2 = Com::Write { var: x(), exp: Exp::Val(Val::Int(1)), rel: false };
        let prog = mk_prog(vec![(t1, 1), (t2, 0)]);
        let terms = reachable_terminals(&prog, StepOptions::default());
        assert!(!terms.is_empty());
        for t in &terms {
            assert_eq!(t.reg(0, Reg(0)), Val::Int(1));
        }
    }

    #[test]
    fn fusion_and_no_fusion_reach_same_terminals() {
        let t1 = Com::Assign(Reg(0), Exp::Val(Val::Int(3)))
            .then(Com::Write { var: x(), exp: Exp::Reg(Reg(0)), rel: false })
            .then(Com::Assign(Reg(1), Exp::Bin(
                BinOp::Add,
                Box::new(Exp::Reg(Reg(0))),
                Box::new(Exp::Val(Val::Int(1))),
            )));
        let t2 = Com::Read { reg: Reg(0), var: x(), acq: false };
        let prog = mk_prog(vec![(t1, 2), (t2, 1)]);
        let summarise = |terms: Vec<Config>| {
            let mut v: Vec<(Vec<Val>, Vec<Val>)> =
                terms.into_iter().map(|c| (c.locals[0].clone(), c.locals[1].clone())).collect();
            v.sort();
            v.dedup();
            v
        };
        let fused = summarise(reachable_terminals(&prog, StepOptions { fuse_local: true }));
        let plain = summarise(reachable_terminals(&prog, StepOptions { fuse_local: false }));
        assert_eq!(fused, plain);
    }
}
