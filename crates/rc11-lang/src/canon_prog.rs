//! Name-free canonical serialisation of whole programs.
//!
//! The verdict cache in rc11-check (and the `rc11 serve` daemon above it)
//! keys cached check results on a 128-bit fingerprint of the *canonical*
//! form of a submitted program, so syntactically different but semantically
//! identical submissions share one cache entry. Canonicalisation here means:
//!
//! * **no names**: thread names, register names, variable names and the
//!   program's `name`/`about` strings are never serialised — renaming any
//!   of them leaves the words unchanged;
//! * **location renumbering by first use**: shared locations are numbered
//!   in the order the program text first references them (threads in
//!   order, bodies in pre-order), so reordering `var` declarations leaves
//!   the words unchanged; locations no thread references are appended
//!   after the used ones, sorted by their (kind, initialisation) — two
//!   such locations are observably interchangeable;
//! * **everything semantic is included**: location kinds, object kinds,
//!   initial values, per-thread register counts and initial register
//!   values, and the full command trees (with annotations — a `rel`/`acq`
//!   flip *changes* the words, as does a changed initial value).
//!
//! Register indices are *not* renumbered: the `.litmus` parser assigns
//! them in first-use order per thread already, so renaming a register
//! never changes its index. Thread order **is** significant — `T1 || T2`
//! and `T2 || T1` explore different (if symmetric) state spaces and are
//! deliberately kept distinct; thread-symmetry collapsing is the
//! exploration engine's job, not the cache key's.
//!
//! The encoding is injective over the serialised content: every node is
//! emitted as a tag word followed by a fixed, tag-determined shape of
//! operand words (variable-length lists carry an explicit length), so two
//! different canonical programs can never produce the same word stream.

use crate::ast::{BinOp, Com, Exp, Method, UnOp, VarRef};
use crate::program::{ObjKind, Program};
use crate::Reg;
use rc11_core::{Comp, InitLoc, Loc, LocKind, Val};
use std::collections::BTreeSet;

/// Serialisation format version — bump when the word layout changes, so
/// stale disk-spilled cache entries can never be misread as current ones.
const VERSION: u64 = 1;

fn val_words(v: &Val, out: &mut Vec<u64>) {
    match v {
        Val::Int(n) => {
            out.push(0);
            out.push(*n as u64);
        }
        Val::Bool(b) => {
            out.push(1);
            out.push(*b as u64);
        }
        Val::Empty => out.push(2),
        Val::Bot => out.push(3),
    }
}

fn init_words(i: &InitLoc, out: &mut Vec<u64>) {
    match i {
        InitLoc::Var(v) => {
            out.push(0);
            val_words(v, out);
        }
        InitLoc::Obj => out.push(1),
    }
}

fn un_op_code(op: UnOp) -> u64 {
    match op {
        UnOp::Not => 0,
        UnOp::Neg => 1,
        UnOp::Even => 2,
    }
}

fn bin_op_code(op: BinOp) -> u64 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Mod => 3,
        BinOp::Eq => 4,
        BinOp::Ne => 5,
        BinOp::Lt => 6,
        BinOp::Le => 7,
        BinOp::And => 8,
        BinOp::Or => 9,
    }
}

fn method_code(m: Method) -> u64 {
    match m {
        Method::Acquire => 0,
        Method::AcquireV => 1,
        Method::Release => 2,
        Method::Push => 3,
        Method::Pop => 4,
        Method::RegRead => 5,
        Method::RegWrite => 6,
        Method::Inc => 7,
        Method::Enq => 8,
        Method::Deq => 9,
    }
}

fn exp_words(e: &Exp, out: &mut Vec<u64>) {
    match e {
        Exp::Val(v) => {
            out.push(0);
            val_words(v, out);
        }
        Exp::Reg(r) => {
            out.push(1);
            out.push(r.0 as u64);
        }
        Exp::Un(op, a) => {
            out.push(2);
            out.push(un_op_code(*op));
            exp_words(a, out);
        }
        Exp::Bin(op, a, b) => {
            out.push(3);
            out.push(bin_op_code(*op));
            exp_words(a, out);
            exp_words(b, out);
        }
    }
}

/// The per-component location renumbering: `map[old] = Some(new)` once a
/// location has been assigned its canonical index.
struct Renumber {
    client: Vec<Option<u16>>,
    lib: Vec<Option<u16>>,
    next_client: u16,
    next_lib: u16,
}

impl Renumber {
    fn new(p: &Program) -> Renumber {
        Renumber {
            client: vec![None; p.client_locs.len()],
            lib: vec![None; p.lib_locs.len()],
            next_client: 0,
            next_lib: 0,
        }
    }

    fn touch(&mut self, comp: Comp, loc: Loc) {
        let (map, next) = match comp {
            Comp::Client => (&mut self.client, &mut self.next_client),
            Comp::Lib => (&mut self.lib, &mut self.next_lib),
        };
        if map[loc.idx()].is_none() {
            map[loc.idx()] = Some(*next);
            *next += 1;
        }
    }

    fn get(&self, comp: Comp, loc: Loc) -> u64 {
        let map = match comp {
            Comp::Client => &self.client,
            Comp::Lib => &self.lib,
        };
        map[loc.idx()].expect("every location is numbered before serialisation") as u64
    }
}

/// Pre-order walk over the shared-location references of a command tree,
/// in the same order the serialisation walk visits them.
fn touch_locs(c: &Com, ren: &mut Renumber) {
    match c {
        Com::Skip | Com::Assign(..) => {}
        Com::Write { var, .. }
        | Com::Read { var, .. }
        | Com::Cas { var, .. }
        | Com::Fai { var, .. } => ren.touch(var.comp, var.loc),
        Com::MethodCall { obj, .. } => ren.touch(Comp::Lib, obj.loc),
        Com::Seq(a, b) => {
            touch_locs(a, ren);
            touch_locs(b, ren);
        }
        Com::If { then_, else_, .. } => {
            touch_locs(then_, ren);
            touch_locs(else_, ren);
        }
        Com::While { body, .. } | Com::DoUntil { body, .. } => touch_locs(body, ren),
        Com::Labeled(_, c) => touch_locs(c, ren),
    }
}

fn var_words(v: &VarRef, ren: &Renumber, out: &mut Vec<u64>) {
    out.push(match v.comp {
        Comp::Client => 0,
        Comp::Lib => 1,
    });
    out.push(ren.get(v.comp, v.loc));
}

fn com_words(c: &Com, ren: &Renumber, out: &mut Vec<u64>) {
    match c {
        Com::Skip => out.push(0),
        Com::Assign(r, e) => {
            out.push(1);
            out.push(r.0 as u64);
            exp_words(e, out);
        }
        Com::Write { var, exp, rel } => {
            out.push(2);
            var_words(var, ren, out);
            out.push(*rel as u64);
            exp_words(exp, out);
        }
        Com::Read { reg, var, acq } => {
            out.push(3);
            out.push(reg.0 as u64);
            var_words(var, ren, out);
            out.push(*acq as u64);
        }
        Com::Cas { reg, var, expect, new } => {
            out.push(4);
            out.push(reg.0 as u64);
            var_words(var, ren, out);
            exp_words(expect, out);
            exp_words(new, out);
        }
        Com::Fai { reg, var } => {
            out.push(5);
            out.push(reg.0 as u64);
            var_words(var, ren, out);
        }
        Com::MethodCall { reg, obj, method, arg, sync } => {
            out.push(6);
            out.push(reg.map_or(0, |r| r.0 as u64 + 1));
            out.push(ren.get(Comp::Lib, obj.loc));
            out.push(method_code(*method));
            out.push(*sync as u64);
            match arg {
                None => out.push(0),
                Some(a) => {
                    out.push(1);
                    exp_words(a, out);
                }
            }
        }
        Com::Seq(a, b) => {
            out.push(7);
            com_words(a, ren, out);
            com_words(b, ren, out);
        }
        Com::If { cond, then_, else_ } => {
            out.push(8);
            exp_words(cond, out);
            com_words(then_, ren, out);
            com_words(else_, ren, out);
        }
        Com::While { cond, body } => {
            out.push(9);
            exp_words(cond, out);
            com_words(body, ren, out);
        }
        Com::DoUntil { body, cond } => {
            out.push(10);
            com_words(body, ren, out);
            exp_words(cond, out);
        }
        Com::Labeled(k, c) => {
            out.push(11);
            out.push(*k as u64);
            com_words(c, ren, out);
        }
    }
}

fn kind_code(k: LocKind) -> u64 {
    match k {
        LocKind::Var => 0,
        LocKind::Obj => 1,
    }
}

fn obj_kind_code(k: ObjKind) -> u64 {
    match k {
        ObjKind::Lock => 0,
        ObjKind::Stack => 1,
        ObjKind::Register => 2,
        ObjKind::Counter => 3,
        ObjKind::Queue => 4,
    }
}

/// One location's serialised description (kind, object kind, init) —
/// emitted per location in canonical order, and also the sort key that
/// orders the *unused* locations (which have no first use to number them).
fn loc_desc(p: &Program, comp: Comp, loc: Loc) -> Vec<u64> {
    let (table, inits) = match comp {
        Comp::Client => (&p.client_locs, &p.client_inits),
        Comp::Lib => (&p.lib_locs, &p.lib_inits),
    };
    let mut out = vec![kind_code(table.kind(loc))];
    out.push(p.obj_kind(loc).filter(|_| comp == Comp::Lib).map_or(0, |k| obj_kind_code(k) + 1));
    init_words(&inits[loc.idx()], &mut out);
    out
}

/// Serialise `p` to its canonical word stream. Two programs produce the
/// same words iff they differ only in names (program, thread, register,
/// variable) and in the declaration order of shared locations.
pub fn canonical_words(p: &Program) -> Vec<u64> {
    // Pass 1: number every referenced location in first-use order.
    let mut ren = Renumber::new(p);
    for t in &p.threads {
        touch_locs(&t.body, &mut ren);
    }
    // Unused locations follow, ordered by their observable description
    // (declaration order must not matter, and names are out of bounds).
    for comp in [Comp::Client, Comp::Lib] {
        let len = match comp {
            Comp::Client => p.client_locs.len(),
            Comp::Lib => p.lib_locs.len(),
        };
        let mut unused: Vec<Loc> = (0..len)
            .map(|i| Loc(i as u16))
            .filter(|&l| match comp {
                Comp::Client => ren.client[l.idx()].is_none(),
                Comp::Lib => ren.lib[l.idx()].is_none(),
            })
            .collect();
        unused.sort_by_key(|&l| loc_desc(p, comp, l));
        for l in unused {
            ren.touch(comp, l);
        }
    }

    // Pass 2: emit. Locations appear in canonical order via the inverse
    // permutation; bodies re-walk the same pre-order with locations
    // remapped through `ren`.
    let mut out = vec![VERSION];
    for comp in [Comp::Client, Comp::Lib] {
        let (map, len) = match comp {
            Comp::Client => (&ren.client, p.client_locs.len()),
            Comp::Lib => (&ren.lib, p.lib_locs.len()),
        };
        let mut inv: Vec<Loc> = vec![Loc(0); len];
        for (old, new) in map.iter().enumerate() {
            inv[new.expect("all locations numbered") as usize] = Loc(old as u16);
        }
        out.push(len as u64);
        for &old in &inv {
            out.extend(loc_desc(p, comp, old));
        }
    }
    out.push(p.threads.len() as u64);
    for t in &p.threads {
        out.push(t.n_regs as u64);
        out.push(t.reg_inits.len() as u64);
        for v in &t.reg_inits {
            val_words(v, &mut out);
        }
        com_words(&t.body, &ren, &mut out);
    }
    out
}

/// Serialise a whole litmus check request — program, observation tuple and
/// expected outcome set — to canonical words. This is the cache key the
/// checking service fingerprints: two requests with equal words are the
/// same check and may share a verdict.
pub fn canonical_litmus_words(
    p: &Program,
    observe: &[(usize, Reg)],
    expected: &BTreeSet<Vec<Val>>,
) -> Vec<u64> {
    let mut out = canonical_words(p);
    out.push(observe.len() as u64);
    for &(t, r) in observe {
        out.push(t as u64);
        out.push(r.0 as u64);
    }
    out.push(expected.len() as u64);
    for tuple in expected {
        out.push(tuple.len() as u64);
        for v in tuple {
            val_words(v, &mut out);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_litmus;

    fn words(src: &str) -> Vec<u64> {
        let p = parse_litmus(src).expect("test source must parse");
        canonical_litmus_words(&p.prog, &p.observe, &p.expected)
    }

    const BASE: &str = r#"
litmus "mp"
var x = 0
var y = 0
thread T1 { x = 1; y =rel 1; }
thread T2 { r1 =acq y; r2 = x; }
observe T2.r1 T2.r2
expected { (0, 0) (0, 1) (1, 1) }
"#;

    #[test]
    fn renaming_everything_preserves_the_words() {
        let renamed = r#"
litmus "a completely different name"
about "and a description"
var b = 0
var a = 0
thread Writer { b = 1; a =rel 1; }
thread Reader { got_a =acq a; got_b = b; }
observe Reader.got_a Reader.got_b
expected { (0, 0) (0, 1) (1, 1) }
"#;
        assert_eq!(words(BASE), words(renamed));
    }

    #[test]
    fn declaration_order_does_not_matter() {
        let reordered = r#"
litmus "mp"
var y = 0
var x = 0
thread T1 { x = 1; y =rel 1; }
thread T2 { r1 =acq y; r2 = x; }
observe T2.r1 T2.r2
expected { (0, 0) (0, 1) (1, 1) }
"#;
        assert_eq!(words(BASE), words(reordered));
    }

    #[test]
    fn changed_init_changes_the_words() {
        let perturbed = BASE.replace("var x = 0", "var x = 1");
        assert_ne!(words(BASE), words(&perturbed));
    }

    #[test]
    fn flipped_annotation_changes_the_words() {
        let relaxed = BASE.replace("y =rel 1", "y = 1");
        assert_ne!(words(BASE), words(&relaxed));
        let relaxed_read = BASE.replace("r1 =acq y", "r1 = y");
        assert_ne!(words(BASE), words(&relaxed_read));
    }

    #[test]
    fn changed_expectation_changes_the_words() {
        let narrowed = BASE.replace("(0, 1) ", "");
        assert_ne!(words(BASE), words(&narrowed));
    }

    #[test]
    fn thread_order_is_significant() {
        let swapped = r#"
litmus "mp"
var x = 0
var y = 0
thread T2 { r1 =acq y; r2 = x; }
thread T1 { x = 1; y =rel 1; }
observe T2.r1 T2.r2
expected { (0, 0) (0, 1) (1, 1) }
"#;
        assert_ne!(words(BASE), words(swapped));
    }

    #[test]
    fn unused_locations_are_order_insensitive_but_not_free() {
        let with_unused_ab = r#"
litmus "mp"
var x = 0
var dead1 = 3
var dead2 = 7
thread T1 { r1 = 0; x = 1; }
observe T1.r1
expected { (0) }
"#;
        let with_unused_ba = r#"
litmus "mp"
var dead2 = 7
var x = 0
var dead1 = 3
thread T1 { r1 = 0; x = 1; }
observe T1.r1
expected { (0) }
"#;
        assert_eq!(words(with_unused_ab), words(with_unused_ba));
        let without = r#"
litmus "mp"
var x = 0
thread T1 { r1 = 0; x = 1; }
observe T1.r1
expected { (0) }
"#;
        assert_ne!(words(with_unused_ab), words(without));
    }
}
