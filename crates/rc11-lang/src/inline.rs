//! Hole filling: turning `C[AO]` into `C[CO]`.
//!
//! The paper's contextual-refinement statement (Definition 7) compares a
//! client running an *abstract* object against the same client with the
//! object's method-call holes filled by a concrete *implementation* whose
//! body is ordinary `Com` code over library variables. [`instantiate`]
//! performs that filling: it adds the implementation's library variables,
//! gives every thread a private copy of the implementation's registers
//! (method-local state persists across calls, which the sequence lock and
//! ticket lock both rely on — their `Release` bodies reuse values read
//! during `Acquire`), and splices method bodies over every call site.

use crate::ast::{Com, Exp, Method, ObjRef, Reg, VarRef};
use crate::program::Program;
use rc11_core::{InitLoc, LocKind, Val};

/// A method-call site being replaced.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The called method.
    pub method: Method,
    /// Destination register for the return value, if any.
    pub ret: Option<Reg>,
    /// Argument expression, if any.
    pub arg: Option<Exp>,
    /// The call-site synchronisation annotation.
    pub sync: bool,
}

/// A concrete object implementation: the library variables it owns, the
/// per-thread private registers its bodies use, and a body constructor.
pub struct ObjectImpl {
    /// Implementation name (e.g. `"seqlock"`).
    pub name: &'static str,
    /// Library variables `(name, initial value)` the implementation needs.
    pub lib_vars: &'static [(&'static str, i64)],
    /// Names of the implementation-private registers each thread gets.
    pub regs: &'static [&'static str],
    /// Build the body replacing one call site. `regs` are the thread's
    /// private implementation registers (in `Self::regs` order), `vars` the
    /// resolved library variables (in `Self::lib_vars` order).
    pub build: fn(call: &CallSite, regs: &[Reg], vars: &[VarRef]) -> Com,
}

fn replace_calls(com: &Com, obj: ObjRef, imp: &ObjectImpl, regs: &[Reg], vars: &[VarRef]) -> Com {
    match com {
        Com::MethodCall { reg, obj: o, method, arg, sync } if *o == obj => {
            let call =
                CallSite { method: *method, ret: *reg, arg: arg.clone(), sync: *sync };
            (imp.build)(&call, regs, vars)
        }
        Com::Seq(a, b) => Com::Seq(
            Box::new(replace_calls(a, obj, imp, regs, vars)),
            Box::new(replace_calls(b, obj, imp, regs, vars)),
        ),
        Com::If { cond, then_, else_ } => Com::If {
            cond: cond.clone(),
            then_: Box::new(replace_calls(then_, obj, imp, regs, vars)),
            else_: Box::new(replace_calls(else_, obj, imp, regs, vars)),
        },
        Com::While { cond, body } => Com::While {
            cond: cond.clone(),
            body: Box::new(replace_calls(body, obj, imp, regs, vars)),
        },
        Com::DoUntil { body, cond } => Com::DoUntil {
            body: Box::new(replace_calls(body, obj, imp, regs, vars)),
            cond: cond.clone(),
        },
        Com::Labeled(k, c) => Com::Labeled(*k, Box::new(replace_calls(c, obj, imp, regs, vars))),
        other => other.clone(),
    }
}

/// Fill every `obj` method-call hole in `prog` with `imp`'s bodies,
/// producing the concrete program `C[CO]`.
///
/// The abstract object's location remains in the library layout (unused —
/// no abstract step will ever touch it), so client locations are unchanged:
/// the refinement checker compares client states position by position.
pub fn instantiate(prog: &Program, obj: ObjRef, imp: &ObjectImpl) -> Program {
    let mut out = prog.clone();
    out.name = format!("{}[{}]", prog.name, imp.name);

    // The object is no longer abstract.
    out.objects.retain(|(l, _)| *l != obj.loc);

    // Add the implementation's library variables.
    let vars: Vec<VarRef> = imp
        .lib_vars
        .iter()
        .map(|(name, init)| {
            let loc = out.lib_locs.add(format!("{}.{}", imp.name, name), LocKind::Var);
            out.lib_inits.push(InitLoc::Var(Val::Int(*init)));
            VarRef { comp: rc11_core::Comp::Lib, loc }
        })
        .collect();

    // Per thread: private registers + body splicing.
    for th in &mut out.threads {
        let base = th.n_regs;
        let regs: Vec<Reg> = (0..imp.regs.len()).map(|i| Reg(base + i as u16)).collect();
        for (i, name) in imp.regs.iter().enumerate() {
            th.reg_names.push(format!("{}.{}", imp.name, name));
            th.reg_inits.push(Val::Bot);
            let _ = i;
        }
        th.n_regs += imp.regs.len() as u16;
        th.body = replace_calls(&th.body, obj, imp, &regs, &vars);
    }

    if let Err(e) = out.validate() {
        panic!("instantiate({}) produced an invalid program: {e}", imp.name);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::program::ObjKind;

    /// A toy "implementation" of a lock by a single library flag CASed
    /// 0→1 on acquire and written 0 on release (a test-and-set lock).
    fn tas_impl() -> ObjectImpl {
        fn build(call: &CallSite, regs: &[Reg], vars: &[VarRef]) -> Com {
            let flag = vars[0];
            let ok = regs[0];
            match call.method {
                Method::Acquire => seq([
                    do_until(cas(ok, flag, 0, 1), Exp::Reg(ok)),
                    match call.ret {
                        Some(r) => assign(r, true),
                        None => Com::Skip,
                    },
                ]),
                Method::Release => wr_rel(flag, 0),
                _ => panic!("lock has no such method"),
            }
        }
        ObjectImpl { name: "tas", lib_vars: &[("flag", 0)], regs: &["ok"], build }
    }

    #[test]
    fn instantiate_replaces_calls_and_extends_layout() {
        let mut p = ProgramBuilder::new("client");
        let l = p.lock("l");
        let d = p.client_var("d", 0);
        let tb = ThreadBuilder::new();
        p.add_thread(tb, seq([lab(1, acquire(l)), lab(2, wr(d, 1)), lab(3, release(l))]));
        let abs = p.build();
        let conc = instantiate(&abs, l, &tas_impl());

        assert_eq!(conc.name, "client[tas]");
        assert!(conc.objects.is_empty(), "no abstract objects remain");
        assert_eq!(conc.lib_locs.len(), abs.lib_locs.len() + 1, "flag variable added");
        assert_eq!(conc.threads[0].n_regs, abs.threads[0].n_regs + 1);
        // No method calls remain.
        let mut found_call = false;
        conc.threads[0].body.visit(&mut |c| {
            if matches!(c, Com::MethodCall { .. }) {
                found_call = true;
            }
        });
        assert!(!found_call);
        // Client layout unchanged.
        assert_eq!(conc.client_locs.len(), abs.client_locs.len());
    }

    #[test]
    fn labels_survive_inlining() {
        let mut p = ProgramBuilder::new("client");
        let l = p.object("l", ObjKind::Lock);
        let tb = ThreadBuilder::new();
        p.add_thread(tb, seq([lab(1, acquire(l)), lab(2, release(l))]));
        let conc = instantiate(&p.build(), l, &tas_impl());
        let cfg = crate::cfg::compile(&conc);
        assert!(cfg.threads[0].label_pc(1).is_some());
        assert!(cfg.threads[0].label_pc(2).is_some());
        assert!(cfg.threads[0].label_pc(1) < cfg.threads[0].label_pc(2));
    }
}
