//! The program syntax of Section 3.1 (Figure 4's `Com` grammar).
//!
//! Sequential programs are commands over local registers (`LVar`), shared
//! global variables (`GVar`, split into client and library variables) and
//! abstract objects. Global accesses carry optional synchronisation
//! annotations: acquire (`A`) on reads, release (`R`) on writes; `CAS`/`FAI`
//! are `RA` updates. Method-call *holes* (`o.m(u)`) are represented by
//! [`Com::MethodCall`]; they are executed either abstractly (Section 4
//! object semantics) or after being *filled* with a concrete implementation
//! (`inline` module), which is exactly the paper's `C[AO]` vs `C[CO]`.

use rc11_core::{Comp, Loc, Val};
use std::fmt;

/// A local register identifier (thread-private; `LVar` in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u16);

impl Reg {
    /// Index form for dense per-register tables.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A reference to a shared global variable: which component owns it and its
/// location index there.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarRef {
    /// Owning component (`GVar_C` or `GVar_L`).
    pub comp: Comp,
    /// Location index within that component.
    pub loc: Loc,
}

/// A reference to an abstract object (always a library location).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ObjRef {
    /// The object's location index in the library component.
    pub loc: Loc,
}

/// Unary operators (`⊖` in the grammar).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Boolean negation `¬`.
    Not,
    /// Integer negation `-`.
    Neg,
    /// Integer parity test `even(·)` (used by the sequence lock).
    Even,
}

/// Binary operators (`⊕` in the grammar).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Integer modulus.
    Mod,
    /// Equality (on any values).
    Eq,
    /// Disequality.
    Ne,
    /// Integer less-than.
    Lt,
    /// Integer at-most.
    Le,
    /// Boolean conjunction.
    And,
    /// Boolean disjunction.
    Or,
}

/// Local expressions (`Exp_L`): values, registers and operator applications.
/// Expressions never read shared state — Figure 4's grammar only allows
/// local variables inside expressions.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Exp {
    /// A constant.
    Val(Val),
    /// A register read.
    Reg(Reg),
    /// A unary operator application.
    Un(UnOp, Box<Exp>),
    /// A binary operator application.
    Bin(BinOp, Box<Exp>, Box<Exp>),
}

/// An expression evaluation error (type mismatch) — programs in the test
/// suites are well-typed, so these only surface programming mistakes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError(pub String);

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "expression evaluation error: {}", self.0)
    }
}

impl std::error::Error for EvalError {}

impl Exp {
    /// Evaluate under a register valuation — `⟦E⟧ls` in the paper.
    pub fn eval(&self, ls: &[Val]) -> Result<Val, EvalError> {
        match self {
            Exp::Val(v) => Ok(*v),
            Exp::Reg(r) => ls
                .get(r.idx())
                .copied()
                .ok_or_else(|| EvalError(format!("register {r} out of range"))),
            Exp::Un(op, e) => {
                let v = e.eval(ls)?;
                match op {
                    UnOp::Not => v
                        .as_bool()
                        .map(|b| Val::Bool(!b))
                        .ok_or_else(|| EvalError(format!("¬ applied to {v}"))),
                    UnOp::Neg => v
                        .as_int()
                        .map(|n| Val::Int(-n))
                        .ok_or_else(|| EvalError(format!("- applied to {v}"))),
                    UnOp::Even => v
                        .as_int()
                        .map(|n| Val::Bool(n % 2 == 0))
                        .ok_or_else(|| EvalError(format!("even applied to {v}"))),
                }
            }
            Exp::Bin(op, a, b) => {
                let va = a.eval(ls)?;
                let vb = b.eval(ls)?;
                let int = |v: Val, what: &str| {
                    v.as_int().ok_or_else(|| EvalError(format!("{what} applied to {v}")))
                };
                let boolean = |v: Val, what: &str| {
                    v.as_bool().ok_or_else(|| EvalError(format!("{what} applied to {v}")))
                };
                Ok(match op {
                    BinOp::Add => Val::Int(int(va, "+")? + int(vb, "+")?),
                    BinOp::Sub => Val::Int(int(va, "-")? - int(vb, "-")?),
                    BinOp::Mul => Val::Int(int(va, "*")? * int(vb, "*")?),
                    BinOp::Mod => {
                        let d = int(vb, "%")?;
                        if d == 0 {
                            return Err(EvalError("modulo by zero".into()));
                        }
                        Val::Int(int(va, "%")? % d)
                    }
                    BinOp::Eq => Val::Bool(va == vb),
                    BinOp::Ne => Val::Bool(va != vb),
                    BinOp::Lt => Val::Bool(int(va, "<")? < int(vb, "<")?),
                    BinOp::Le => Val::Bool(int(va, "≤")? <= int(vb, "≤")?),
                    BinOp::And => Val::Bool(boolean(va, "∧")? && boolean(vb, "∧")?),
                    BinOp::Or => Val::Bool(boolean(va, "∨")? || boolean(vb, "∨")?),
                })
            }
        }
    }

    /// The registers this expression reads (used by the CFG compiler's
    /// sanity checks).
    pub fn regs(&self, out: &mut Vec<Reg>) {
        match self {
            Exp::Val(_) => {}
            Exp::Reg(r) => out.push(*r),
            Exp::Un(_, e) => e.regs(out),
            Exp::Bin(_, a, b) => {
                a.regs(out);
                b.regs(out);
            }
        }
    }
}

/// The methods of the abstract objects shipped with this reproduction.
///
/// Call sites additionally carry a `sync` flag for the annotated variants
/// (`push^R`, `pop^A`); locks are "by default synchronising" (Section 4) so
/// their flag is ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// `l.Acquire()` — returns `true` (Example 1's `rval := true`).
    Acquire,
    /// `l.Acquire(v)` — like `Acquire` but returns the lock *version* `n`
    /// (the proof device of Figure 7, where `rl` records which acquire this
    /// was). Only available on abstract locks; refinement clients must use
    /// `Acquire` so abstract and concrete `rval`s coincide.
    AcquireV,
    /// `l.Release()`.
    Release,
    /// `s.push(v)` / `s.push^R(v)`.
    Push,
    /// `s.pop()` / `s.pop^A()` — returns the popped value or `Empty`.
    Pop,
    /// `reg.read()` / `reg.read^A()` (extension object).
    RegRead,
    /// `reg.write(v)` / `reg.write^R(v)` (extension object).
    RegWrite,
    /// `ctr.inc()` — fetch-and-increment (extension object).
    Inc,
    /// `q.enq(v)` / `q.enq^R(v)` (extension object: FIFO queue).
    Enq,
    /// `q.deq()` / `q.deq^A()` — returns the dequeued value or `Empty`.
    Deq,
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Method::Acquire => "Acquire",
            Method::AcquireV => "AcquireV",
            Method::Release => "Release",
            Method::Push => "push",
            Method::Pop => "pop",
            Method::RegRead => "read",
            Method::RegWrite => "write",
            Method::Inc => "inc",
            Method::Enq => "enq",
            Method::Deq => "deq",
        };
        write!(f, "{s}")
    }
}

/// Commands — Figure 4's `Com`, with `do … until` kept primitive because the
/// paper's examples use it directly.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Com {
    /// The terminated command `⊥` (also the empty program).
    Skip,
    /// `r := E`.
    Assign(Reg, Exp),
    /// `x :=[R] E`.
    Write {
        /// Target variable.
        var: VarRef,
        /// Value expression (local).
        exp: Exp,
        /// Release annotation (`x :=R E`).
        rel: bool,
    },
    /// `r ←[A] x`.
    Read {
        /// Destination register.
        reg: Reg,
        /// Source variable.
        var: VarRef,
        /// Acquire annotation (`r ←A x`).
        acq: bool,
    },
    /// `r ← CAS(x, u, v)^RA` — `r` becomes `true`/`false` for success/fail.
    Cas {
        /// Destination register for the success flag.
        reg: Reg,
        /// Target variable.
        var: VarRef,
        /// Expected value expression.
        expect: Exp,
        /// New value expression.
        new: Exp,
    },
    /// `r ← FAI(x)^RA` — fetch-and-increment; `r` gets the old value.
    Fai {
        /// Destination register for the fetched value.
        reg: Reg,
        /// Target variable.
        var: VarRef,
    },
    /// A method-call hole `[r :=] o.m([arg])`, executed abstractly or after
    /// inlining a concrete implementation.
    MethodCall {
        /// Optional destination register for the return value.
        reg: Option<Reg>,
        /// The object.
        obj: ObjRef,
        /// The method.
        method: Method,
        /// Optional argument expression.
        arg: Option<Exp>,
        /// Synchronising-variant annotation (`push^R` / `pop^A`).
        sync: bool,
    },
    /// `C1; C2`.
    Seq(Box<Com>, Box<Com>),
    /// `if B then C1 else C2`.
    If {
        /// Guard (local expression of boolean type).
        cond: Exp,
        /// Then-branch.
        then_: Box<Com>,
        /// Else-branch.
        else_: Box<Com>,
    },
    /// `while B do C`.
    While {
        /// Guard.
        cond: Exp,
        /// Body.
        body: Box<Com>,
    },
    /// `do C until B`.
    DoUntil {
        /// Body.
        body: Box<Com>,
        /// Exit condition (checked after each iteration).
        cond: Exp,
    },
    /// A labelled program point: `k: C`. Labels name the statement numbers
    /// of the paper's proof outlines (Figures 3 and 7) and are where
    /// proof-outline assertions attach.
    Labeled(u32, Box<Com>),
}

impl Com {
    /// Sequence two commands, flattening `Skip`s.
    pub fn then(self, next: Com) -> Com {
        match (self, next) {
            (Com::Skip, c) | (c, Com::Skip) => c,
            (a, b) => Com::Seq(Box::new(a), Box::new(b)),
        }
    }

    /// Visit every node (pre-order).
    pub fn visit(&self, f: &mut impl FnMut(&Com)) {
        f(self);
        match self {
            Com::Seq(a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Com::If { then_, else_, .. } => {
                then_.visit(f);
                else_.visit(f);
            }
            Com::While { body, .. } | Com::DoUntil { body, .. } => body.visit(f),
            Com::Labeled(_, c) => c.visit(f),
            _ => {}
        }
    }

    /// The maximal register index mentioned (for sizing local states).
    pub fn max_reg(&self) -> Option<u16> {
        let mut max: Option<u16> = None;
        let mut bump = |r: Reg| max = Some(max.map_or(r.0, |m| m.max(r.0)));
        self.visit(&mut |c| {
            let mut regs = Vec::new();
            match c {
                Com::Assign(r, e) => {
                    bump(*r);
                    e.regs(&mut regs);
                }
                Com::Write { exp, .. } => exp.regs(&mut regs),
                Com::Read { reg, .. } => bump(*reg),
                Com::Cas { reg, expect, new, .. } => {
                    bump(*reg);
                    expect.regs(&mut regs);
                    new.regs(&mut regs);
                }
                Com::Fai { reg, .. } => bump(*reg),
                Com::MethodCall { reg, arg, .. } => {
                    if let Some(r) = reg {
                        bump(*r);
                    }
                    if let Some(a) = arg {
                        a.regs(&mut regs);
                    }
                }
                Com::If { cond, .. } | Com::While { cond, .. } | Com::DoUntil { cond, .. } => {
                    cond.regs(&mut regs)
                }
                _ => {}
            }
            for r in regs {
                bump(r);
            }
        });
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ls(vals: &[i64]) -> Vec<Val> {
        vals.iter().map(|&n| Val::Int(n)).collect()
    }

    #[test]
    fn eval_arithmetic() {
        let e = Exp::Bin(
            BinOp::Add,
            Box::new(Exp::Reg(Reg(0))),
            Box::new(Exp::Val(Val::Int(2))),
        );
        assert_eq!(e.eval(&ls(&[40])), Ok(Val::Int(42)));
    }

    #[test]
    fn eval_even() {
        let e = Exp::Un(UnOp::Even, Box::new(Exp::Reg(Reg(0))));
        assert_eq!(e.eval(&ls(&[4])), Ok(Val::Bool(true)));
        assert_eq!(e.eval(&ls(&[5])), Ok(Val::Bool(false)));
    }

    #[test]
    fn eval_type_errors_are_reported() {
        let e = Exp::Bin(BinOp::Add, Box::new(Exp::Val(Val::Bool(true))), Box::new(Exp::Val(Val::Int(1))));
        assert!(e.eval(&[]).is_err());
        let e = Exp::Bin(BinOp::Mod, Box::new(Exp::Val(Val::Int(1))), Box::new(Exp::Val(Val::Int(0))));
        assert!(e.eval(&[]).is_err());
    }

    #[test]
    fn eval_eq_on_mixed_values() {
        let e = Exp::Bin(BinOp::Eq, Box::new(Exp::Val(Val::Empty)), Box::new(Exp::Val(Val::Int(1))));
        assert_eq!(e.eval(&[]), Ok(Val::Bool(false)));
    }

    #[test]
    fn then_flattens_skip() {
        let c = Com::Skip.then(Com::Assign(Reg(0), Exp::Val(Val::Int(1))));
        assert!(matches!(c, Com::Assign(..)));
    }

    #[test]
    fn max_reg_scans_all_positions() {
        let c = Com::Seq(
            Box::new(Com::Assign(Reg(3), Exp::Reg(Reg(7)))),
            Box::new(Com::Read {
                reg: Reg(5),
                var: VarRef { comp: Comp::Client, loc: Loc(0) },
                acq: false,
            }),
        );
        assert_eq!(c.max_reg(), Some(7));
    }
}
