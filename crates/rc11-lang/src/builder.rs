//! Ergonomic program construction.
//!
//! [`ProgramBuilder`] manages the location tables and initialisation; thread
//! bodies are assembled from the free-function combinators at the bottom of
//! this module, which mirror the paper's surface syntax:
//!
//! ```
//! use rc11_lang::builder::*;
//! use rc11_lang::program::ObjKind;
//!
//! // Figure 2: publication via a synchronising stack.
//! let mut p = ProgramBuilder::new("mp_sync");
//! let d = p.client_var("d", 0);
//! let s = p.object("s", ObjKind::Stack);
//!
//! let mut t1 = ThreadBuilder::new();
//! p.add_thread(t1.clone(), seq([
//!     lab(1, wr(d, 5)),
//!     lab(2, push_rel(s, 1)),
//! ]));
//!
//! let mut t2 = ThreadBuilder::new();
//! let r1 = t2.reg("r1");
//! let r2 = t2.reg("r2");
//! p.add_thread(t2, seq([
//!     lab(3, do_until(pop_acq(s, r1), eq(r1, 1))),
//!     lab(4, rd(r2, d)),
//! ]));
//! let prog = p.build();
//! assert_eq!(prog.n_threads(), 2);
//! let _ = &t1;
//! ```

use crate::ast::{BinOp, Com, Exp, Method, ObjRef, Reg, UnOp, VarRef};
use crate::program::{ObjKind, Program, ThreadDef};
use rc11_core::{Comp, InitLoc, LocKind, LocTable, Val};

/// Anything convertible to an expression: constants, registers, booleans.
pub trait IntoExp {
    /// Convert to an expression.
    fn into_exp(self) -> Exp;
}

impl IntoExp for Exp {
    fn into_exp(self) -> Exp {
        self
    }
}

impl IntoExp for i64 {
    fn into_exp(self) -> Exp {
        Exp::Val(Val::Int(self))
    }
}

impl IntoExp for bool {
    fn into_exp(self) -> Exp {
        Exp::Val(Val::Bool(self))
    }
}

impl IntoExp for Val {
    fn into_exp(self) -> Exp {
        Exp::Val(self)
    }
}

impl IntoExp for Reg {
    fn into_exp(self) -> Exp {
        Exp::Reg(self)
    }
}

/// Builds one program: locations, objects, threads.
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    name: String,
    client_locs: LocTable,
    client_inits: Vec<InitLoc>,
    lib_locs: LocTable,
    lib_inits: Vec<InitLoc>,
    objects: Vec<(rc11_core::Loc, ObjKind)>,
    threads: Vec<ThreadDef>,
}

impl ProgramBuilder {
    /// Start a new program.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            client_locs: LocTable::new(),
            client_inits: Vec::new(),
            lib_locs: LocTable::new(),
            lib_inits: Vec::new(),
            objects: Vec::new(),
            threads: Vec::new(),
        }
    }

    /// Declare a client shared variable with an integer initial value.
    pub fn client_var(&mut self, name: &str, init: i64) -> VarRef {
        let loc = self.client_locs.add(name, LocKind::Var);
        self.client_inits.push(InitLoc::Var(Val::Int(init)));
        VarRef { comp: Comp::Client, loc }
    }

    /// Declare a library shared variable with an integer initial value.
    pub fn lib_var(&mut self, name: &str, init: i64) -> VarRef {
        let loc = self.lib_locs.add(name, LocKind::Var);
        self.lib_inits.push(InitLoc::Var(Val::Int(init)));
        VarRef { comp: Comp::Lib, loc }
    }

    /// Declare an abstract object of the given kind (always library-side).
    pub fn object(&mut self, name: &str, kind: ObjKind) -> ObjRef {
        let loc = self.lib_locs.add(name, LocKind::Obj);
        self.lib_inits.push(InitLoc::Obj);
        self.objects.push((loc, kind));
        ObjRef { loc }
    }

    /// Shorthand for [`ProgramBuilder::object`] with [`ObjKind::Lock`].
    pub fn lock(&mut self, name: &str) -> ObjRef {
        self.object(name, ObjKind::Lock)
    }

    /// Shorthand for [`ProgramBuilder::object`] with [`ObjKind::Stack`].
    pub fn stack(&mut self, name: &str) -> ObjRef {
        self.object(name, ObjKind::Stack)
    }

    /// Shorthand for [`ProgramBuilder::object`] with [`ObjKind::Queue`].
    pub fn queue(&mut self, name: &str) -> ObjRef {
        self.object(name, ObjKind::Queue)
    }

    /// Add a thread: its register declarations and its body.
    pub fn add_thread(&mut self, tb: ThreadBuilder, body: Com) {
        self.threads.push(ThreadDef {
            body,
            n_regs: tb.names.len() as u16,
            reg_names: tb.names,
            reg_inits: tb.inits,
        });
    }

    /// Finish and validate. Panics on malformed programs (tests construct
    /// programs statically, so this is a construction-time assertion).
    pub fn build(self) -> Program {
        let prog = Program {
            name: self.name,
            client_locs: self.client_locs,
            client_inits: self.client_inits,
            lib_locs: self.lib_locs,
            lib_inits: self.lib_inits,
            objects: self.objects,
            threads: self.threads,
        };
        if let Err(e) = prog.validate() {
            panic!("invalid program {}: {e}", prog.name);
        }
        prog
    }
}

/// Declares one thread's registers.
#[derive(Debug, Clone, Default)]
pub struct ThreadBuilder {
    names: Vec<String>,
    inits: Vec<Val>,
}

impl ThreadBuilder {
    /// A thread with no registers yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a register initialised to `⊥`.
    pub fn reg(&mut self, name: &str) -> Reg {
        self.reg_init(name, Val::Bot)
    }

    /// Declare a register with an explicit initial value (the optional
    /// `r := l` clauses of `Init`).
    pub fn reg_init(&mut self, name: &str, init: Val) -> Reg {
        let r = Reg(self.names.len() as u16);
        self.names.push(name.into());
        self.inits.push(init);
        r
    }
}

// ---------------------------------------------------------------------
// Statement combinators
// ---------------------------------------------------------------------

/// `r := E`.
pub fn assign(reg: Reg, e: impl IntoExp) -> Com {
    Com::Assign(reg, e.into_exp())
}

/// Relaxed write `x := E`.
pub fn wr(var: VarRef, e: impl IntoExp) -> Com {
    Com::Write { var, exp: e.into_exp(), rel: false }
}

/// Releasing write `x :=R E`.
pub fn wr_rel(var: VarRef, e: impl IntoExp) -> Com {
    Com::Write { var, exp: e.into_exp(), rel: true }
}

/// Relaxed read `r ← x`.
pub fn rd(reg: Reg, var: VarRef) -> Com {
    Com::Read { reg, var, acq: false }
}

/// Acquiring read `r ←A x`.
pub fn rd_acq(reg: Reg, var: VarRef) -> Com {
    Com::Read { reg, var, acq: true }
}

/// `r ← CAS(x, u, v)^RA`.
pub fn cas(reg: Reg, var: VarRef, expect: impl IntoExp, new: impl IntoExp) -> Com {
    Com::Cas { reg, var, expect: expect.into_exp(), new: new.into_exp() }
}

/// `r ← FAI(x)^RA`.
pub fn fai(reg: Reg, var: VarRef) -> Com {
    Com::Fai { reg, var }
}

/// `l.Acquire()` discarding the version.
pub fn acquire(obj: ObjRef) -> Com {
    Com::MethodCall { reg: None, obj, method: Method::Acquire, arg: None, sync: true }
}

/// `l.Acquire(r)` binding the lock *version* into `r` (Figure 7's `rl`).
pub fn acquire_into(obj: ObjRef, reg: Reg) -> Com {
    Com::MethodCall { reg: Some(reg), obj, method: Method::AcquireV, arg: None, sync: true }
}

/// `l.Release()`.
pub fn release(obj: ObjRef) -> Com {
    Com::MethodCall { reg: None, obj, method: Method::Release, arg: None, sync: true }
}

/// Relaxed `s.push(E)`.
pub fn push(obj: ObjRef, e: impl IntoExp) -> Com {
    Com::MethodCall { reg: None, obj, method: Method::Push, arg: Some(e.into_exp()), sync: false }
}

/// Releasing `s.push^R(E)` (Figure 2).
pub fn push_rel(obj: ObjRef, e: impl IntoExp) -> Com {
    Com::MethodCall { reg: None, obj, method: Method::Push, arg: Some(e.into_exp()), sync: true }
}

/// Relaxed `r := s.pop()`.
pub fn pop(obj: ObjRef, reg: Reg) -> Com {
    Com::MethodCall { reg: Some(reg), obj, method: Method::Pop, arg: None, sync: false }
}

/// Acquiring `r := s.pop^A()` (Figure 2).
pub fn pop_acq(obj: ObjRef, reg: Reg) -> Com {
    Com::MethodCall { reg: Some(reg), obj, method: Method::Pop, arg: None, sync: true }
}

/// Relaxed `q.enq(E)`.
pub fn enq(obj: ObjRef, e: impl IntoExp) -> Com {
    Com::MethodCall { reg: None, obj, method: Method::Enq, arg: Some(e.into_exp()), sync: false }
}

/// Releasing `q.enq^R(E)`.
pub fn enq_rel(obj: ObjRef, e: impl IntoExp) -> Com {
    Com::MethodCall { reg: None, obj, method: Method::Enq, arg: Some(e.into_exp()), sync: true }
}

/// Relaxed `r := q.deq()`.
pub fn deq(obj: ObjRef, reg: Reg) -> Com {
    Com::MethodCall { reg: Some(reg), obj, method: Method::Deq, arg: None, sync: false }
}

/// Acquiring `r := q.deq^A()`.
pub fn deq_acq(obj: ObjRef, reg: Reg) -> Com {
    Com::MethodCall { reg: Some(reg), obj, method: Method::Deq, arg: None, sync: true }
}

/// Sequential composition of any number of statements.
pub fn seq(items: impl IntoIterator<Item = Com>) -> Com {
    items.into_iter().fold(Com::Skip, Com::then)
}

/// `if B then C` (no else).
pub fn if_then(cond: impl IntoExp, then_: Com) -> Com {
    Com::If { cond: cond.into_exp(), then_: Box::new(then_), else_: Box::new(Com::Skip) }
}

/// `if B then C1 else C2`.
pub fn if_else(cond: impl IntoExp, then_: Com, else_: Com) -> Com {
    Com::If { cond: cond.into_exp(), then_: Box::new(then_), else_: Box::new(else_) }
}

/// `while B do C`.
pub fn while_do(cond: impl IntoExp, body: Com) -> Com {
    Com::While { cond: cond.into_exp(), body: Box::new(body) }
}

/// `do C until B`.
pub fn do_until(body: Com, cond: impl IntoExp) -> Com {
    Com::DoUntil { body: Box::new(body), cond: cond.into_exp() }
}

/// `k: C` — a labelled statement (the paper's proof-outline line numbers).
pub fn lab(k: u32, com: Com) -> Com {
    Com::Labeled(k, Box::new(com))
}

// ---------------------------------------------------------------------
// Expression combinators
// ---------------------------------------------------------------------

/// Equality `a = b`.
pub fn eq(a: impl IntoExp, b: impl IntoExp) -> Exp {
    Exp::Bin(BinOp::Eq, Box::new(a.into_exp()), Box::new(b.into_exp()))
}

/// Disequality `a ≠ b`.
pub fn ne(a: impl IntoExp, b: impl IntoExp) -> Exp {
    Exp::Bin(BinOp::Ne, Box::new(a.into_exp()), Box::new(b.into_exp()))
}

/// `a + b`.
pub fn add(a: impl IntoExp, b: impl IntoExp) -> Exp {
    Exp::Bin(BinOp::Add, Box::new(a.into_exp()), Box::new(b.into_exp()))
}

/// `a - b`.
pub fn sub(a: impl IntoExp, b: impl IntoExp) -> Exp {
    Exp::Bin(BinOp::Sub, Box::new(a.into_exp()), Box::new(b.into_exp()))
}

/// `a < b`.
pub fn lt(a: impl IntoExp, b: impl IntoExp) -> Exp {
    Exp::Bin(BinOp::Lt, Box::new(a.into_exp()), Box::new(b.into_exp()))
}

/// `a ≤ b`.
pub fn le(a: impl IntoExp, b: impl IntoExp) -> Exp {
    Exp::Bin(BinOp::Le, Box::new(a.into_exp()), Box::new(b.into_exp()))
}

/// `a ∧ b`.
pub fn and(a: impl IntoExp, b: impl IntoExp) -> Exp {
    Exp::Bin(BinOp::And, Box::new(a.into_exp()), Box::new(b.into_exp()))
}

/// `a ∨ b`.
pub fn or(a: impl IntoExp, b: impl IntoExp) -> Exp {
    Exp::Bin(BinOp::Or, Box::new(a.into_exp()), Box::new(b.into_exp()))
}

/// `¬ a`.
pub fn not(a: impl IntoExp) -> Exp {
    Exp::Un(UnOp::Not, Box::new(a.into_exp()))
}

/// `even(a)` — used by the sequence lock.
pub fn even(a: impl IntoExp) -> Exp {
    Exp::Un(UnOp::Even, Box::new(a.into_exp()))
}

/// The `Empty` constant (stack pop result).
pub fn empty() -> Exp {
    Exp::Val(Val::Empty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::compile;

    #[test]
    fn builder_constructs_valid_mp_program() {
        let mut p = ProgramBuilder::new("mp");
        let d = p.client_var("d", 0);
        let f = p.client_var("f", 0);
        let mut t1 = ThreadBuilder::new();
        p.add_thread(t1.clone(), seq([wr(d, 5), wr_rel(f, 1)]));
        let mut t2 = ThreadBuilder::new();
        let r1 = t2.reg("r1");
        let r2 = t2.reg("r2");
        p.add_thread(t2, seq([do_until(rd_acq(r1, f), eq(r1, 1)), rd(r2, d)]));
        let prog = p.build();
        assert_eq!(prog.n_threads(), 2);
        let cfg = compile(&prog);
        assert!(cfg.threads[0].instrs.len() >= 3);
        let _ = &mut t1;
    }

    #[test]
    fn object_declaration_and_calls() {
        let mut p = ProgramBuilder::new("locked");
        let l = p.lock("l");
        let tb = ThreadBuilder::new();
        p.add_thread(tb, seq([acquire(l), release(l)]));
        let prog = p.build();
        assert_eq!(prog.objects.len(), 1);
        assert_eq!(prog.obj_kind(l.loc), Some(ObjKind::Lock));
    }

    #[test]
    fn expression_combinators_build_well_typed_trees() {
        let mut tb = ThreadBuilder::new();
        let r = tb.reg("r");
        let e = and(eq(r, 1), not(even(add(r, 1))));
        // r = 1 ∧ ¬even(r+1) with r=1: true ∧ ¬even(2)=false → false.
        assert_eq!(e.eval(&[Val::Int(1)]), Ok(Val::Bool(false)));
    }
}
